"""Concurrent fleet verification must equal serial verification.

A 50-device mixed fleet (honest, faulty, and hostile transports over
fibcall/prime/vulnerable) is interleaved against the service once
serially and once with 4 pool workers; the runs are driven by the same
seed, so every device transmits byte-identical traffic, and the
per-session verdicts must compare ``==`` — the whole point of routing
both paths through ``verify_session_chain``.
"""

import pytest

from repro.cfa.fleet import FleetService, FleetSimulator, build_fleet_specs

DEVICES = 50
SEED = 11


@pytest.fixture(scope="module")
def specs():
    return build_fleet_specs(DEVICES, attack_fraction=0.3, seed=SEED)


@pytest.fixture(scope="module")
def serial_run(specs):
    sim = FleetSimulator(specs, seed=SEED)
    service = FleetService(workers=0, idle_timeout=5.0)
    report = sim.run(service)
    return sim, report, dict(service.verdicts)


def concurrent_run(specs, serial_sim, executor):
    sim = FleetSimulator(specs, seed=SEED)
    sim.factory = serial_sim.factory  # share the attested templates
    with FleetService(workers=4, idle_timeout=5.0,
                      executor=executor) as service:
        report = sim.run(service)
        return report, dict(service.verdicts), service.metrics


class TestSerialBaseline:
    def test_every_expectation_met(self, serial_run):
        _, report, verdicts = serial_run
        assert report.ok, report.mismatches
        assert len(verdicts) == DEVICES

    def test_mixed_outcomes_present(self, specs, serial_run):
        _, _, verdicts = serial_run
        accepted = sum(1 for v in verdicts.values() if v.accepted)
        assert 0 < accepted < DEVICES  # the fleet is genuinely mixed


class TestConcurrentEqualsSerial:
    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_verdicts_identical(self, specs, serial_run, executor):
        serial_sim, _, serial_verdicts = serial_run
        report, verdicts, metrics = concurrent_run(
            specs, serial_sim, executor)
        assert report.ok, report.mismatches
        assert verdicts == serial_verdicts
        assert metrics.workers == 4
        assert metrics.executor == executor
        assert metrics.queue_depth == 0  # fully drained
