"""Integration: full attestation + lossless verification, every
workload under every method, with ground-truth path equality."""

import pytest

from repro.cfa.engine import EngineConfig
from repro.workloads import WORKLOADS, load_workload
from conftest import (
    assert_lossless,
    naive_setup,
    rap_setup,
    text_path,
    traces_setup,
)

ALL = sorted(WORKLOADS)


@pytest.mark.parametrize("name", ALL)
def test_rap_track_lossless(name, keystore):
    workload = load_workload(name)
    image, _, _, engine, verifier, tracer = rap_setup(
        workload, keystore=keystore)
    assert_lossless(image, engine, verifier, tracer)


@pytest.mark.parametrize("name", ALL)
def test_traces_lossless(name, keystore):
    workload = load_workload(name)
    image, _, _, engine, verifier, tracer = traces_setup(
        workload, keystore=keystore)
    assert_lossless(image, engine, verifier, tracer)


@pytest.mark.parametrize("name", ALL)
def test_naive_lossless(name, keystore):
    workload = load_workload(name)
    image, _, _, engine, verifier, tracer = naive_setup(
        workload, keystore=keystore)
    result = engine.attest(b"test-ch")
    outcome = verifier.verify(result, b"test-ch")
    assert outcome.ok, outcome.error
    assert outcome.path == text_path(image, tracer)


@pytest.mark.parametrize("name", ALL)
def test_paper_shape_holds_per_workload(name, keystore):
    """The headline comparison of figure 8/9 on every workload:
    RAP-Track is never slower than TRACES and the naive MTB log is
    never smaller than RAP-Track's."""
    workload = load_workload(name)
    _, _, _, rap_engine, _, _ = rap_setup(workload, keystore=keystore)
    rap = rap_engine.attest(b"c")
    workload = load_workload(name)
    _, _, _, traces_engine, _, _ = traces_setup(workload, keystore=keystore)
    traces = traces_engine.attest(b"c")
    workload = load_workload(name)
    _, _, _, naive_engine, _, _ = naive_setup(workload, keystore=keystore)
    naive = naive_engine.attest(b"c")

    assert rap.cycles <= traces.cycles
    assert rap.cflog_bytes <= naive.cflog_bytes
    # both optimized methods log the same *events*
    assert len(rap.cflog) == len(traces.cflog)


def test_quickstart_api():
    from repro import attest_rap_track

    outcome = attest_rap_track("temperature")
    assert outcome.verification.ok
    assert outcome.result.final_report.final


def test_public_api_surface():
    import repro

    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, name
