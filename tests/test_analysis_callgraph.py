"""Tests: the interprocedural call graph (`core/analysis/callgraph`)."""

from repro.asm import assemble
from repro.core.analysis import build_call_graph
from repro.core.classify import classify_module
from repro.workloads import WORKLOADS, load_workload
from repro.workloads import vulnerable


def graph_for(name):
    return build_call_graph(classify_module(load_workload(name).module()))


def graph_of(source):
    return build_call_graph(classify_module(
        assemble(".entry main\n" + source)))


class TestWorkloadGraphs:
    def test_direct_call_edges(self):
        graph = graph_for("fibcall")
        assert graph.entry == "main"
        assert set(graph.functions) == {"main", "fib"}
        kinds = {(f, t, s.kind) for f, t, s in graph.edges()}
        assert ("main", "fib", "direct") in kinds
        assert ("fib", "fib", "direct") in kinds

    def test_self_recursion_reported(self):
        graph = graph_for("fibcall")
        assert graph.recursion_cycles() == [("fib",)]
        assert "fib" in graph.recursive
        assert "main" not in graph.recursive

    def test_devirtualized_edge_is_resolved(self):
        graph = graph_for("temperature")
        edges = {(f, t): s for f, t, s in graph.edges()}
        site = edges[("main", "settle")]
        assert site.kind == "devirt" and site.resolved

    def test_unresolved_indirect_over_approximates(self):
        # gps dispatches through a data table of handlers: the indirect
        # call must cover every address-taken handler, conservatively
        graph = graph_for("gps")
        targets = {t for f, t, s in graph.edges()
                   if f == "dispatch_field" and s.kind == "indirect"}
        assert {"field_lat", "field_lon", "field_alt", "field_time",
                "field_talker"} <= targets
        assert all(not s.resolved for f, t, s in graph.edges()
                   if f == "dispatch_field" and s.kind == "indirect")

    def test_leaf_program_has_single_function(self):
        graph = graph_for("dijkstra")
        assert set(graph.functions) == {"main"}
        assert graph.edges() == []
        assert graph.recursion_cycles() == []

    def test_every_registry_workload_fully_reachable(self):
        # pinned by the lint gate too: no registry workload ships
        # functions its entry point cannot reach
        for name in sorted(WORKLOADS):
            graph = graph_for(name)
            assert graph.reachable() == set(graph.functions), name

    def test_vulnerable_hides_its_landing_pad(self):
        # maintenance_unlock is neither called nor address-taken: it is
        # invisible to the call graph (the gadget miner's job), while
        # the functions on the honest path are all present
        module = vulnerable.make().module()
        graph = build_call_graph(classify_module(module))
        assert "maintenance_unlock" not in graph.functions
        assert {"main", "read_input", "read_word"} <= set(graph.functions)
        assert graph.reachable() == set(graph.functions)


class TestSyntheticGraphs:
    def test_mutual_recursion_scc(self):
        graph = graph_of("""
main:
    push {lr}
    bl even
    pop {pc}
even:
    push {lr}
    bl odd
    pop {pc}
odd:
    push {lr}
    bl even
    pop {pc}
""")
        assert graph.recursion_cycles() == [("even", "odd")]
        assert graph.recursive == {"even", "odd"}

    def test_sccs_emitted_callees_first(self):
        graph = graph_of("""
main:
    push {lr}
    bl helper
    pop {pc}
helper:
    bx lr
""")
        # Tarjan emits reverse-topologically: helper's SCC before main's
        assert graph.scc_of["helper"] < graph.scc_of["main"]

    def test_address_taken_uncalled_function_is_a_node(self):
        graph = graph_of("""
main:
    adr r0, orphan
    bkpt
orphan:
    bx lr
""")
        assert "orphan" in graph.functions
        assert "orphan" not in graph.reachable()
