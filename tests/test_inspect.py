"""Tests for the analysis-inspection tooling (dot export, report)."""

import pytest

from repro.asm import assemble
from repro.cli import main
from repro.core.classify import classify_module
from repro.core.inspect import analysis_report, cfg_to_dot

SAMPLE = """
.entry main
main:
    push {r4, lr}
    mov r4, #0
top:
    add r4, r4, #1
    cmp r4, #5
    blt top
    adr r2, helper
    blx r2
    pop {r4, pc}
helper:
    bx lr
"""


@pytest.fixture(scope="module")
def classification():
    # syntactic mode: these tests pin the pre-devirtualization rendering
    return classify_module(assemble(SAMPLE), enable_dataflow=False)


class TestDotExport:
    def test_valid_digraph_structure(self, classification):
        dot = cfg_to_dot(classification, title="sample")
        assert dot.startswith('digraph "sample" {')
        assert dot.rstrip().endswith("}")
        assert dot.count("->") >= 3

    def test_blocks_carry_instructions(self, classification):
        dot = cfg_to_dot(classification)
        assert "blt top" in dot
        assert "blx r2" in dot
        assert "main:" in dot

    def test_classes_colour_coded(self, classification):
        dot = cfg_to_dot(classification)
        assert "palegreen" in dot  # fixed loop latch
        assert "salmon" in dot  # indirect call / return

    def test_every_block_is_a_node(self, classification):
        dot = cfg_to_dot(classification)
        for block in classification.cfg.blocks:
            assert f"b{block.bid} [" in dot


class TestReport:
    def test_report_sections(self, classification):
        report = analysis_report(classification)
        assert "offline analysis report" in report
        assert "FIXED_LOOP_LATCH" in report
        assert "INDIRECT_CALL" in report
        assert "trip count 5" in report

    def test_tracked_ratio_line(self, classification):
        report = analysis_report(classification)
        assert "tracked (trampolined) sites:" in report

    def test_address_taken_listed(self, classification):
        assert "helper" in analysis_report(classification)


class TestAnalyzeCli:
    def test_report_output(self, capsys):
        assert main(["analyze", "syringe"]) == 0
        out = capsys.readouterr().out
        assert "LOOP_OPT_LATCH" in out
        assert "INDIRECT_LDR" in out

    def test_dot_output(self, capsys):
        assert main(["analyze", "fibcall", "--dot"]) == 0
        out = capsys.readouterr().out
        assert out.startswith('digraph "fibcall"')


class TestPolicyExcludesEquates:
    def test_equate_values_are_not_legal_targets(self):
        from repro.asm import link
        from repro.core.pipeline import transform

        source = """
.entry main
.equ MAGIC, 0x40000500
main:
    ldr r0, =MAGIC
    adr r1, f
    blx r1
    bkpt
f:  bx lr
"""
        result = transform(assemble(source))
        image = link(result.module)
        bound = result.rmap.bind(image)
        assert 0x40000500 not in bound.address_taken_addrs
        assert image.addr_of("f") in bound.address_taken_addrs
