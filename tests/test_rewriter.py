"""Unit tests: the RAP-Track rewriter and the TRACES instrumenter.

The gold property throughout: rewriting must preserve the program's
*architectural* behaviour — same final registers, memory, and device
state — while relocating the non-deterministic transfers.
"""

import pytest

from repro.asm import assemble, link
from repro.asm.program import MTBAR
from repro.baselines.traces import rewrite_for_traces
from repro.core.classify import classify_module
from repro.core.pipeline import RapTrackConfig, transform
from repro.core.rewriter import RewriterConfig, rewrite_for_rap_track
from repro.isa.instructions import InstrKind
from repro.machine.mcu import MCU
from repro.tz.gateway import SecureGateway
from repro.workloads import WORKLOADS, load_workload
from repro.workloads.base import make_mcu

SAMPLE = """
.entry main
main:
    push {r4, r5, lr}
    mov r4, #0
    mov r0, #0
floop:
    add r4, r4, #2
    add r0, r0, #1
    cmp r0, #5
    blt floop
    cmp r4, #6
    blt small
    adr r2, callee
    blx r2
small:
    pop {r4, r5, pc}
callee:
    push {lr}
    add r4, r4, #100
    pop {pc}
"""


class TestRapRewriteStructure:
    def setup_method(self):
        self.module = assemble(SAMPLE)
        self.result = transform(self.module)
        self.image = link(self.result.module)

    def test_mtbar_section_created(self):
        assert self.image.section_size(MTBAR) > 0

    def test_no_indirect_transfers_remain_in_text(self):
        lo, hi = self.image.section_ranges["text"]
        for addr, instr in self.image.instr_at.items():
            if not (lo <= addr < hi):
                continue
            assert instr.kind is not InstrKind.INDIRECT_CALL
            if instr.kind is InstrKind.POP:
                assert not instr.writes_pc()

    def test_stubs_live_in_mtbar(self):
        lo, hi = self.image.section_ranges[MTBAR]
        kinds = {instr.mnemonic
                 for addr, instr in self.image.instr_at.items()
                 if lo <= addr < hi}
        assert "nop" in kinds  # activation padding
        assert kinds <= {"nop", "b", "bx", "pop", "ldr"}

    def test_rewrite_map_sites_bound(self):
        bound = self.result.rmap.bind(self.image)
        assert bound.indirect_at  # blx + two pops
        assert bound.cond_at  # the if/else conditional
        assert bound.fixed_trip_at  # floop

    def test_fixed_loop_not_instrumented(self):
        # the fixed loop latch stays a conditional branch in text
        bound = self.result.rmap.bind(self.image)
        (latch_addr,) = bound.fixed_trip_at
        instr = self.image.instr_at[latch_addr]
        assert instr.cond == "lt"
        assert self.image.section_of(latch_addr) == "text"

    def test_data_and_equates_copied(self):
        module = assemble(SAMPLE + "\n.equ M, 5\n.data\nv: .word 9\n")
        result = transform(module)
        image = link(result.module)
        assert image.equates["M"] == 5
        assert image.rodata_word(image.addr_of("v")) == 9

    def test_shared_pop_stub_is_single(self):
        # two pop-pc sites, one shared MTBAR_POP_ADDR stub (figure 4)
        lo, hi = self.image.section_ranges[MTBAR]
        pops = [a for a, i in self.image.instr_at.items()
                if lo <= a < hi and i.mnemonic == "pop"]
        assert len(pops) == 1

    def test_private_pop_stubs_option(self):
        classification = classify_module(assemble(SAMPLE))
        rewritten, _ = rewrite_for_rap_track(
            assemble(SAMPLE), classification,
            RewriterConfig(share_pop_stub=False))
        image = link(rewritten)
        lo, hi = image.section_ranges[MTBAR]
        pops = [a for a, i in image.instr_at.items()
                if lo <= a < hi and i.mnemonic == "pop"]
        assert len(pops) == 2

    def test_nop_padding_off_shrinks_mtbar(self):
        with_pad = transform(assemble(SAMPLE),
                             RapTrackConfig(nop_padding=True))
        without = transform(assemble(SAMPLE),
                            RapTrackConfig(nop_padding=False))
        assert (link(without.module).section_size(MTBAR)
                < link(with_pad.module).section_size(MTBAR))

    def test_code_size_grows(self):
        original = link(assemble(SAMPLE))
        assert self.image.code_size() > original.code_size()

    def test_site_counts_reported(self):
        # adr+blx has a provable single target: devirtualized by default
        assert self.result.site_counts["devirt_call"] == 1
        assert "indirect_call" not in self.result.site_counts
        assert self.result.site_counts["return_pop"] == 2
        assert self.result.site_counts["fixed_loop_latch"] == 1

    def test_dataflow_off_keeps_indirect_call(self):
        result = transform(self.module,
                           RapTrackConfig(enable_dataflow=False))
        assert result.site_counts["indirect_call"] == 1
        assert "devirt_call" not in result.site_counts


def _final_state(mcu):
    return (list(mcu.cpu.regs[:13]),
            [d.latches if hasattr(d, "latches") else None
             for _, _, d in mcu.mmio._devices])


class TestSemanticPreservation:
    def test_sample_behaviour_preserved(self):
        original = MCU(link(assemble(SAMPLE)))
        original.run()

        result = transform(assemble(SAMPLE))
        rewritten = MCU(link(result.module))
        # the rewritten binary needs the loop-opt svc handled; SAMPLE
        # has none, so no gateway required
        rewritten.run()
        # r2 holds a code address (layouts legitimately differ);
        # computational results must be identical
        assert rewritten.cpu.regs[0] == original.cpu.regs[0]
        assert rewritten.cpu.regs[4] == original.cpu.regs[4]

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_workload_behaviour_preserved_rap(self, name):
        workload = load_workload(name)
        result = transform(workload.module())
        image = link(result.module)
        mcu = make_mcu(image, workload)
        gateway = SecureGateway()
        from repro.cfa.services import SVC_LOG_LOOP

        gateway.register(SVC_LOG_LOOP, lambda cpu: 0)
        gateway.install(mcu.cpu)
        mcu.run()
        if workload.check:
            workload.check(mcu)

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_workload_behaviour_preserved_traces(self, name):
        workload = load_workload(name)
        module = workload.module()
        classification = classify_module(module)
        rewritten, _ = rewrite_for_traces(module, classification)
        image = link(rewritten)
        mcu = make_mcu(image, workload)
        gateway = SecureGateway()
        from repro.cfa import services as svc

        for sid in (svc.SVC_LOG_LOOP, svc.SVC_TRACES_COND_TAKEN,
                    svc.SVC_TRACES_COND_NOT_TAKEN, svc.SVC_TRACES_IND_CALL,
                    svc.SVC_TRACES_RET_POP, svc.SVC_TRACES_LDR,
                    svc.SVC_TRACES_BX):
            gateway.register(sid, lambda cpu: 0)
        gateway.install(mcu.cpu)
        mcu.run()
        if workload.check:
            workload.check(mcu)


class TestTracesRewriteStructure:
    def setup_method(self):
        module = assemble(SAMPLE)
        # syntactic mode: keep the blx an indirect (instrumented) call
        self.classification = classify_module(module, enable_dataflow=False)
        self.rewritten, self.rmap = rewrite_for_traces(
            assemble(SAMPLE), self.classification)
        self.image = link(self.rewritten)

    def test_no_mtbar_section(self):
        assert self.image.section_size(MTBAR) == 0

    def test_svcs_inserted(self):
        svcs = [i for i in self.image.instr_at.values()
                if i.mnemonic == "svc"]
        # blx + 2 pops + cond thunk
        assert len(svcs) >= 4

    def test_original_branches_kept_after_svc(self):
        bound = self.rmap.bind(self.image)
        for addr, info in bound.indirect_at.items():
            svc = self.image.instr_at[addr]
            assert svc.mnemonic == "svc"
            branch = self.image.instr_at[addr + svc.size]
            assert branch.writes_pc()

    def test_method_tag(self):
        assert self.rmap.method == "traces"

    def test_smaller_code_than_rap(self):
        rap_image = link(transform(assemble(SAMPLE)).module)
        # TRACES inline svcs are narrow; RAP pays stub + padding
        assert self.image.code_size() <= rap_image.code_size()
