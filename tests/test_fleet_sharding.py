"""Sharding must be invisible to verdicts and evidence.

The differential at the heart of the tentpole: the same fleet driven
through 1, 2, and 4 shards must produce *identical* verdict maps and
*identical* per-device evidence-chain head digests — device-scoped
nonces make the wire bytes shard-count-invariant, the ring gives every
device exactly one owner, and per-device hash chains make evidence
heads independent of how devices interleave inside shard logs.

Plus the consistent-hashing contract that makes resharding cheap
(growing the ring remaps only ~1/(n+1) of devices, all onto the new
shard) and the wire-level shard handoff framing every routed report
crosses.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.cfa.fleet import (
    ChainFactory,
    FleetService,
    FleetSimulator,
    HashRing,
    ShardedFleetService,
    audit_key,
    build_fleet_specs,
    verify_evidence_trail,
)
from repro.cfa.wire import (
    SHARD_KIND_CHALLENGE,
    SHARD_KIND_REPORT,
    WireError,
    decode_shard_frame,
    encode_shard_frame,
)

SEED = b"fleet-vrf"


@pytest.fixture(scope="module")
def factory():
    return ChainFactory(watermark=256)


@pytest.fixture(scope="module")
def specs():
    return build_fleet_specs(24, workloads=("fibcall",), seed=3)


def run_sharded(specs, factory, shards, store_dir):
    service = ShardedFleetService(
        shards=shards, store_dir=store_dir, seed=SEED, idle_timeout=5.0)
    report = FleetSimulator(specs, seed=7, factory=factory).run(service)
    service.close()
    assert report.ok, report.mismatches
    return report.verdicts, service.evidence_heads(), service


class TestShardCountInvariance:
    def test_sharded_matches_single_and_unsharded(self, specs, factory,
                                                  tmp_path):
        """shards ∈ {1, 2, 4}: identical verdicts, identical evidence
        heads; and the plain (storeless, counter-nonce) FleetService
        agrees on every verdict's accept/reject outcome."""
        runs = {}
        for shards in (1, 2, 4):
            runs[shards] = run_sharded(
                specs, factory, shards, tmp_path / f"s{shards}")
        verdicts_1, heads_1, _ = runs[1]
        for shards in (2, 4):
            verdicts_n, heads_n, _ = runs[shards]
            assert verdicts_n == verdicts_1
            assert heads_n == heads_1
        assert set(heads_1) == {s.device_id for s in specs}

        plain = FleetService(seed=SEED, idle_timeout=5.0)
        report = FleetSimulator(specs, seed=7, factory=factory).run(plain)
        assert report.ok, report.mismatches
        for device_id, verdict in verdicts_1.items():
            assert (report.verdicts[device_id].accepted
                    == verdict.accepted)

    def test_every_shard_log_audits_clean(self, specs, factory,
                                          tmp_path):
        _, heads, service = run_sharded(specs, factory, 4,
                                        tmp_path / "audit")
        key = audit_key(SEED)
        seen = {}
        populated = 0
        for store in service.stores:
            records = verify_evidence_trail(store.path, key)
            populated += bool(records)
            for record in records:
                seen[record.device_id] = record.digest
        # the union of the shard logs is exactly the fleet's heads,
        # and the fleet actually spread across several logs
        assert seen == heads
        assert populated >= 2

    def test_devices_route_to_owning_shard_only(self, specs, factory,
                                                tmp_path):
        _, _, service = run_sharded(specs, factory, 4,
                                    tmp_path / "owners")
        key = audit_key(SEED)
        for shard_id, store in enumerate(service.stores):
            for record in verify_evidence_trail(store.path, key):
                assert service.ring.route(record.device_id) == shard_id


class TestHashRing:
    def test_total_and_deterministic(self):
        ring = HashRing(4)
        again = HashRing(4)
        for index in range(500):
            device = f"prv-{index:04d}"
            shard = ring.route(device)
            assert 0 <= shard < 4
            assert again.route(device) == shard

    def test_all_shards_get_traffic(self):
        ring = HashRing(4)
        owners = {ring.route(f"prv-{i:04d}") for i in range(500)}
        assert owners == {0, 1, 2, 3}

    def test_growing_ring_remaps_only_onto_new_shard(self):
        """4 -> 5 shards: every device either stays put or moves to
        the *new* shard (never between existing shards), and the moved
        fraction is ~1/5 — the consistent-hashing contract."""
        old, new = HashRing(4), HashRing(5)
        devices = [f"prv-{i:05d}" for i in range(4000)]
        moved = 0
        for device in devices:
            before, after = old.route(device), new.route(device)
            if before != after:
                assert after == 4, (device, before, after)
                moved += 1
        fraction = moved / len(devices)
        assert 0.08 < fraction < 0.35, fraction

    def test_more_vnodes_balance_load(self):
        ring = HashRing(4, vnodes=128)
        counts = [0, 0, 0, 0]
        for index in range(4000):
            counts[ring.route(f"prv-{index:05d}")] += 1
        assert min(counts) > 0.5 * (4000 / 4)

    def test_rejects_degenerate_rings(self):
        with pytest.raises(ValueError):
            HashRing(0)
        with pytest.raises(ValueError):
            HashRing(2, vnodes=0)


class TestHashRingRemoval:
    """The decommission mirror of the grow-by-one contract: removing a
    shard may move only that shard's keys, and repeated churn keeps
    the survivors balanced."""

    @given(shards=st.integers(2, 8), victim_index=st.integers(0, 7),
           vnodes=st.sampled_from([16, 64]))
    @settings(deadline=None, max_examples=40)
    def test_removal_remaps_only_the_removed_shards_keys(
            self, shards, victim_index, vnodes):
        ring = HashRing(shards, vnodes=vnodes)
        victim = ring.shard_ids[victim_index % shards]
        shrunk = ring.remove(victim)
        assert victim not in shrunk.shard_ids
        assert shrunk.shard_count == shards - 1
        for index in range(400):
            device = f"prv-{index:05d}"
            before, after = ring.route(device), shrunk.route(device)
            if before == victim:
                assert after in shrunk.shard_ids
            else:
                assert after == before, device

    @given(victims=st.lists(st.integers(0, 5), min_size=1,
                            max_size=4, unique=True))
    @settings(deadline=None, max_examples=25)
    def test_churn_sequence_never_moves_survivor_keys(self, victims):
        ring = HashRing(6)
        devices = [f"prv-{index:04d}" for index in range(250)]
        for victim in victims:
            owners = {device: ring.route(device) for device in devices}
            ring = ring.remove(victim)
            for device in devices:
                if owners[device] == victim:
                    assert ring.route(device) != victim
                else:
                    assert ring.route(device) == owners[device]

    def test_removed_fraction_is_about_one_over_n(self):
        ring = HashRing(5, vnodes=128)
        shrunk = ring.remove(2)
        devices = [f"prv-{index:05d}" for index in range(4000)]
        moved = sum(1 for device in devices
                    if ring.route(device) != shrunk.route(device))
        assert 0.08 < moved / len(devices) < 0.35

    def test_balance_holds_after_churn(self):
        ring = HashRing(6, vnodes=128)
        for victim in (1, 4):
            ring = ring.remove(victim)
        assert ring.shard_ids == (0, 2, 3, 5)
        counts = {shard: 0 for shard in ring.shard_ids}
        for index in range(4000):
            counts[ring.route(f"prv-{index:05d}")] += 1
        assert min(counts.values()) > 0.5 * (4000 / 4)

    def test_remove_rejects_unknown_and_final_shard(self):
        ring = HashRing(2)
        with pytest.raises(ValueError, match="not on the ring"):
            ring.remove(7)
        last = ring.remove(0)
        assert last.shard_ids == (1,)
        with pytest.raises(ValueError):
            last.remove(1)


class TestShardFrameCodec:
    def test_roundtrip(self):
        frame = encode_shard_frame(7, "prv-0042", b"\x00\xffpayload")
        shard, device, kind, payload = decode_shard_frame(frame)
        assert (shard, device, kind, payload) == (
            7, "prv-0042", SHARD_KIND_REPORT, b"\x00\xffpayload")

    def test_challenge_kind_roundtrip(self):
        frame = encode_shard_frame(0, "d", b"nonce",
                                   kind=SHARD_KIND_CHALLENGE)
        assert decode_shard_frame(frame)[2] == SHARD_KIND_CHALLENGE

    def test_rejects_bad_magic_version_kind_and_trailing(self):
        good = encode_shard_frame(1, "dev", b"x")
        with pytest.raises(WireError):
            decode_shard_frame(b"XXXX" + good[4:])
        with pytest.raises(WireError):
            decode_shard_frame(good[:4] + b"\x99" + good[5:])
        with pytest.raises(WireError):
            encode_shard_frame(1, "dev", b"x", kind=250)
        with pytest.raises(WireError):
            decode_shard_frame(good + b"\x00")
        with pytest.raises(WireError):
            decode_shard_frame(good[:-1])

    def test_rejects_non_utf8_device_id(self):
        frame = bytearray(encode_shard_frame(1, "dev", b"x"))
        # device id length-prefixed field starts right after the
        # 4-byte magic + 6-byte header; corrupt its bytes
        frame[14:17] = b"\xff\xfe\xfd"
        with pytest.raises(WireError):
            decode_shard_frame(bytes(frame))
