"""Unit tests for the policy control plane's building blocks.

Covers the firmware registry (signed monotone policy documents with
revocation and strict reload), the quarantine engine's state machine
(hard signals, consecutive-failure scoring, recovery, healing, revoke
escalation), the engine's evidence-fold restore (including the
crash-window repair and tamper detection), the MAC'd PLCY/HEAL wire
frames, and policy records in the evidence store's hash chains.
"""

from types import SimpleNamespace

import pytest

from repro.cfa.fleet.store import (
    EvidenceError,
    EvidenceStore,
    chain_digest,
    PolicyRecord,
    verify_evidence_trail,
)
from repro.cfa.fleet.verify import DeviceProfile, SessionVerdict
from repro.cfa.policy import (
    HEALING,
    HEALTHY,
    PolicyDecision,
    PolicyDoc,
    PolicyEngine,
    PolicyError,
    PolicyRegistry,
    QUARANTINED,
    REJOINED,
    REVOKED,
    SUSPECT,
    build_heal_frame,
    build_policy_frame,
    policy_key,
    state_name,
    verify_heal_frame,
    verify_policy_frame,
)
from repro.cfa.policy.engine import (
    ACT_HEAL,
    ACT_HEAL_FAIL,
    ACT_QUARANTINE,
    ACT_RECOVER,
    ACT_REJOIN,
    ACT_REVOKE,
    ACT_SUSPECT,
)
from repro.cfa.policy.registry import (
    ALLOWED,
    REVOKED_FW,
    UNKNOWN_PROFILE,
    UNPINNED,
    pack_policy,
    unpack_policy,
)

PROFILE = DeviceProfile("fibcall", "rap-track")
GOOD = b"\x11" * 32
BAD = b"\x22" * 32
OTHER = b"\x33" * 32
KEY = policy_key(b"fleet-vrf")


def obs(device="prv-0", accepted=True, reason="", violations=(),
        measurement=b"", healing=False, profile=PROFILE):
    """A session observation shaped like a v3 evidence record."""
    return SimpleNamespace(
        device_id=device, profile=profile, accepted=accepted,
        reason=reason, violations=tuple(violations),
        measurement=measurement, healing=healing)


# ---------------------------------------------------------------------------
# the firmware registry
# ---------------------------------------------------------------------------


class TestPolicyRegistry:
    def test_epochs_are_monotone_and_content_addressed(self):
        registry = PolicyRegistry(KEY)
        assert registry.latest_epoch(PROFILE) == 0
        assert registry.latest(PROFILE).is_permissive
        doc1 = registry.publish(PROFILE, GOOD)
        doc2 = registry.publish(PROFILE, GOOD, allowed=(OTHER,))
        assert (doc1.epoch, doc2.epoch) == (1, 2)
        assert registry.latest_epoch(PROFILE) == 2
        assert doc1.digest != doc2.digest
        assert registry.get(PROFILE, 1) is doc1

    def test_republish_identical_content_is_idempotent(self):
        registry = PolicyRegistry(KEY)
        doc = registry.publish(PROFILE, GOOD, allowed=(OTHER,))
        again = registry.publish(PROFILE, GOOD, allowed=(OTHER,))
        assert again is doc
        assert registry.latest_epoch(PROFILE) == 1

    def test_evaluate_outcomes(self):
        registry = PolicyRegistry(KEY)
        # no document published: permissive by design
        assert registry.evaluate(PROFILE, GOOD) == UNKNOWN_PROFILE
        registry.publish(PROFILE, GOOD, revoked=(BAD,))
        assert registry.evaluate(PROFILE, GOOD) == ALLOWED
        assert registry.evaluate(PROFILE, BAD) == REVOKED_FW
        assert registry.evaluate(PROFILE, OTHER) == UNPINNED
        # records predating measurement capture cannot be judged
        assert registry.evaluate(PROFILE, b"") == UNKNOWN_PROFILE

    def test_revoke_publishes_a_new_epoch(self):
        registry = PolicyRegistry(KEY)
        registry.publish(PROFILE, GOOD, allowed=(OTHER,))
        doc = registry.revoke(PROFILE, OTHER)
        assert doc.epoch == 2
        assert OTHER in doc.revoked and OTHER not in doc.allowed
        assert registry.evaluate(PROFILE, OTHER) == REVOKED_FW

    def test_pinned_measurement_cannot_be_revoked(self):
        registry = PolicyRegistry(KEY)
        with pytest.raises(PolicyError, match="cannot be revoked"):
            registry.publish(PROFILE, GOOD, revoked=(GOOD,))
        registry.publish(PROFILE, GOOD)
        with pytest.raises(PolicyError, match="publish a new pin"):
            registry.revoke(PROFILE, GOOD)

    def test_revoke_requires_a_published_policy(self):
        registry = PolicyRegistry(KEY)
        with pytest.raises(PolicyError, match="no published policy"):
            registry.revoke(PROFILE, BAD)

    def test_epoch_zero_is_the_permissive_document(self):
        registry = PolicyRegistry(KEY)
        doc = registry.get(PROFILE, 0)
        assert doc.is_permissive
        assert (doc.pinned, doc.allowed, doc.revoked) == (b"", (), ())
        with pytest.raises(KeyError):
            registry.get(PROFILE, 1)

    def test_persist_and_strict_reload(self, tmp_path):
        registry = PolicyRegistry(KEY, tmp_path)
        registry.publish(PROFILE, GOOD, revoked=(BAD,))
        registry.publish(PROFILE, GOOD, allowed=(OTHER,), revoked=(BAD,))
        reloaded = PolicyRegistry(KEY, tmp_path)
        assert reloaded.latest_epoch(PROFILE) == 2
        assert reloaded.latest(PROFILE).payload == \
            registry.latest(PROFILE).payload
        assert reloaded.profiles() == [PROFILE]

    def test_tampered_policy_file_refuses_to_load(self, tmp_path):
        registry = PolicyRegistry(KEY, tmp_path)
        registry.publish(PROFILE, GOOD)
        path = next(tmp_path.glob("*.pol"))
        blob = bytearray(path.read_bytes())
        blob[10] ^= 0x01
        path.write_bytes(bytes(blob))
        with pytest.raises(PolicyError, match="MAC verification"):
            PolicyRegistry(KEY, tmp_path)

    def test_epoch_gap_refuses_to_load(self, tmp_path):
        registry = PolicyRegistry(KEY, tmp_path)
        registry.publish(PROFILE, GOOD)
        registry.publish(PROFILE, GOOD, allowed=(OTHER,))
        next(tmp_path.glob("*__000001.pol")).unlink()
        with pytest.raises(PolicyError, match="gap"):
            PolicyRegistry(KEY, tmp_path)

    def test_wrong_key_refuses_to_load(self, tmp_path):
        PolicyRegistry(KEY, tmp_path).publish(PROFILE, GOOD)
        with pytest.raises(PolicyError, match="MAC verification"):
            PolicyRegistry(policy_key(b"other-seed"), tmp_path)


class TestPolicyDocCodec:
    def test_roundtrip(self):
        payload = pack_policy(PROFILE, 3, GOOD, (GOOD, OTHER), (BAD,))
        profile, epoch, pinned, allowed, revoked = unpack_policy(payload)
        assert (profile, epoch, pinned) == (PROFILE, 3, GOOD)
        assert (allowed, revoked) == ((GOOD, OTHER), (BAD,))

    def test_strict_parse_failures(self):
        payload = pack_policy(PROFILE, 1, GOOD, (GOOD,), ())
        with pytest.raises(PolicyError, match="magic"):
            unpack_policy(b"XXXX" + payload[4:])
        with pytest.raises(PolicyError, match="version"):
            unpack_policy(payload[:4] + b"\x63" + payload[5:])
        with pytest.raises(PolicyError, match="trailing"):
            unpack_policy(payload + b"\x00")
        with pytest.raises(PolicyError, match="truncated"):
            unpack_policy(payload[:-1])


# ---------------------------------------------------------------------------
# the quarantine engine's state machine
# ---------------------------------------------------------------------------


class TestStateMachine:
    def test_soft_failures_score_up_to_quarantine(self):
        engine = PolicyEngine(suspect_threshold=2)
        first = engine.observe(obs(accepted=False, reason="bad MAC"))
        assert [d.action for d in first] == [ACT_SUSPECT]
        assert engine.state_of("prv-0") == SUSPECT
        assert engine.admits("prv-0")
        second = engine.observe(obs(accepted=False, reason="bad MAC"))
        assert [d.action for d in second] == [ACT_QUARANTINE]
        assert second[0].score == 2
        assert engine.state_of("prv-0") == QUARANTINED
        assert not engine.admits("prv-0")
        assert "QUARANTINED" in engine.deny_reason("prv-0")

    def test_accepted_session_recovers_a_suspect(self):
        engine = PolicyEngine()
        engine.observe(obs(accepted=False, reason="truncated"))
        cleared = engine.observe(obs(accepted=True, measurement=GOOD))
        assert [d.action for d in cleared] == [ACT_RECOVER]
        assert cleared[0].score == 0
        assert engine.state_of("prv-0") == HEALTHY

    def test_healthy_accept_makes_no_decision(self):
        engine = PolicyEngine()
        assert engine.observe(obs(accepted=True, measurement=GOOD)) == []
        assert engine.state_of("prv-0") == HEALTHY
        assert engine.decisions_made == 0

    def test_authenticated_violation_is_a_hard_quarantine(self):
        engine = PolicyEngine()
        decisions = engine.observe(obs(
            accepted=False, reason="control-flow violation",
            violations=(("rop-gadget", 4, "bad edge"),)))
        assert [d.action for d in decisions] == [ACT_QUARANTINE]
        assert "control-flow violation" in decisions[0].reason
        assert engine.state_of("prv-0") == QUARANTINED

    def test_equivocation_is_a_hard_quarantine(self):
        engine = PolicyEngine()
        decisions = engine.observe(obs(
            accepted=False,
            reason="conflicting duplicate of report #3"))
        assert [d.action for d in decisions] == [ACT_QUARANTINE]
        assert decisions[0].reason.startswith("equivocation")

    def test_revoked_firmware_hard_quarantines_even_when_accepted(self):
        registry = PolicyRegistry(KEY)
        registry.publish(PROFILE, GOOD, revoked=(BAD,))
        engine = PolicyEngine(registry=registry)
        decisions = engine.observe(obs(accepted=True, measurement=BAD))
        assert [d.action for d in decisions] == [ACT_QUARANTINE]
        assert "revoked" in decisions[0].reason

    def test_unpinned_firmware_hard_quarantines(self):
        registry = PolicyRegistry(KEY)
        registry.publish(PROFILE, GOOD)
        engine = PolicyEngine(registry=registry)
        decisions = engine.observe(obs(accepted=True, measurement=OTHER))
        assert [d.action for d in decisions] == [ACT_QUARANTINE]
        assert "not pinned" in decisions[0].reason

    def test_pinned_firmware_passes(self):
        registry = PolicyRegistry(KEY)
        registry.publish(PROFILE, GOOD)
        engine = PolicyEngine(registry=registry)
        assert engine.observe(obs(accepted=True, measurement=GOOD)) == []

    def test_observations_while_quarantined_are_ignored(self):
        engine = PolicyEngine()
        engine.observe(obs(accepted=False,
                           violations=(("rop", 1, "x"),)))
        assert engine.observe(obs(accepted=False, reason="junk")) == []
        assert engine.observe(obs(accepted=True)) == []
        assert engine.state_of("prv-0") == QUARANTINED

    def test_rejects_degenerate_thresholds(self):
        with pytest.raises(ValueError):
            PolicyEngine(suspect_threshold=0)
        with pytest.raises(ValueError):
            PolicyEngine(max_heal_attempts=0)

    def test_state_name_rejects_unknown_codes(self):
        assert state_name(REVOKED) == "REVOKED"
        with pytest.raises(ValueError):
            state_name(99)


class TestHealing:
    def _quarantine(self, engine, device="prv-0"):
        engine.observe(obs(device=device, accepted=False,
                           violations=(("rop", 1, "x"),)))
        assert engine.state_of(device) == QUARANTINED

    def test_begin_heal_only_from_quarantine(self):
        engine = PolicyEngine()
        assert engine.begin_heal("prv-0") is None  # unknown device
        engine.observe(obs(accepted=False, reason="soft"))
        assert engine.begin_heal("prv-0") is None  # merely SUSPECT
        self._quarantine(PolicyEngine())  # sanity on the helper

    def test_heal_then_clean_chain_rejoins(self):
        engine = PolicyEngine()
        self._quarantine(engine)
        decision = engine.begin_heal("prv-0")
        assert (decision.action, decision.heal_attempt) == (ACT_HEAL, 1)
        # begin_heal mints the decision; the caller persists + applies
        assert engine.state_of("prv-0") == QUARANTINED
        engine.apply(decision)
        assert engine.state_of("prv-0") == HEALING
        assert engine.healing_devices() == ["prv-0"]
        rejoined = engine.observe(obs(accepted=True, measurement=GOOD,
                                      healing=True))
        assert [d.action for d in rejoined] == [ACT_REJOIN]
        assert engine.state_of("prv-0") == REJOINED
        assert engine.admits("prv-0")
        # a rejoin resets the attempt budget
        assert engine.states["prv-0"].heal_attempts == 0

    def test_failed_heal_burns_the_attempt(self):
        engine = PolicyEngine(max_heal_attempts=2)
        self._quarantine(engine)
        engine.apply(engine.begin_heal("prv-0"))
        failed = engine.observe(obs(accepted=False, reason="bad MAC",
                                    healing=True))
        assert [d.action for d in failed] == [ACT_HEAL_FAIL]
        assert engine.state_of("prv-0") == QUARANTINED
        # attempt 2 is still available
        assert engine.begin_heal("prv-0").heal_attempt == 2

    def test_exhausted_healing_escalates_to_revoked(self):
        engine = PolicyEngine(max_heal_attempts=1)
        self._quarantine(engine)
        engine.apply(engine.begin_heal("prv-0"))
        decisions = engine.observe(obs(accepted=False, reason="bad",
                                       healing=True))
        assert [d.action for d in decisions] == [ACT_HEAL_FAIL,
                                                 ACT_REVOKE]
        assert engine.state_of("prv-0") == REVOKED
        assert not engine.admits("prv-0")
        assert engine.begin_heal("prv-0") is None

    def test_healing_chain_on_banned_firmware_fails_the_attempt(self):
        registry = PolicyRegistry(KEY)
        registry.publish(PROFILE, GOOD, revoked=(BAD,))
        engine = PolicyEngine(registry=registry, max_heal_attempts=2)
        self._quarantine(engine)
        engine.apply(engine.begin_heal("prv-0"))
        decisions = engine.observe(obs(accepted=True, measurement=BAD,
                                       healing=True))
        assert [d.action for d in decisions] == [ACT_HEAL_FAIL]
        assert "revoked" in decisions[0].reason

    def test_heal_measurement_prefers_the_pinned_image(self):
        registry = PolicyRegistry(KEY)
        engine = PolicyEngine(registry=registry)
        engine.observe(obs(accepted=True, measurement=OTHER))
        assert engine.heal_measurement("prv-0") == OTHER  # last good
        registry.publish(PROFILE, GOOD)
        assert engine.heal_measurement("prv-0") == GOOD   # policy pin

    def test_heal_order_is_the_standing_order(self):
        registry = PolicyRegistry(KEY)
        registry.publish(PROFILE, GOOD)
        engine = PolicyEngine(registry=registry)
        self._quarantine(engine)
        assert engine.heal_order("prv-0") is None  # not HEALING yet
        engine.apply(engine.begin_heal("prv-0"))
        attempt, epoch, measurement, profile = engine.heal_order("prv-0")
        assert (attempt, epoch, measurement, profile) == \
            (1, 1, GOOD, PROFILE)

    def test_stale_healing_report_is_ignored(self):
        engine = PolicyEngine()
        # a healing chain for a device that is not HEALING (e.g. after
        # a manual registry reset) must not fabricate transitions
        assert engine.observe(obs(accepted=True, healing=True)) == []


class TestNotices:
    def test_take_notices_drains_once(self):
        engine = PolicyEngine()
        engine.observe(obs(accepted=False, reason="soft"))
        notices = engine.take_notices()
        assert [(d, s) for d, s, _r, _e in notices] == [("prv-0",
                                                         SUSPECT)]
        assert engine.take_notices() == []


# ---------------------------------------------------------------------------
# the evidence-fold restore
# ---------------------------------------------------------------------------


def _session_record(device="prv-0", accepted=False, reason="bad MAC",
                    violations=(), measurement=b"", healing=False,
                    seq=0):
    record = obs(device=device, accepted=accepted, reason=reason,
                 violations=violations, measurement=measurement,
                 healing=healing)
    record.is_policy = False
    record.seq = seq
    record.workload = PROFILE.workload
    record.method = PROFILE.method
    return record


def _policy_record(decision, seq):
    return SimpleNamespace(is_policy=True, seq=seq,
                           **decision.__dict__)


class TestRestore:
    def test_replay_matches_the_live_fold(self):
        live = PolicyEngine()
        session = _session_record(seq=0)
        decisions = live.observe(session)
        records = [session] + [_policy_record(d, seq=1)
                               for d in decisions]
        restored = PolicyEngine()
        replayed, repaired = restored.restore(records)
        assert (replayed, repaired) == (1, 0)
        assert restored.state_names() == live.state_names()

    def test_crash_window_decisions_are_repaired(self):
        # the log ends with a session record whose decision the crash
        # lost: restore re-derives and re-applies it
        restored = PolicyEngine()
        replayed, repaired = restored.restore([_session_record(seq=0)])
        assert (replayed, repaired) == (0, 1)
        assert restored.state_of("prv-0") == SUSPECT

    def test_mismatched_policy_record_is_tamper(self):
        live = PolicyEngine()
        session = _session_record(seq=0)
        decision = live.observe(session)[0]  # ACT_SUSPECT
        forged = _policy_record(decision, seq=1)
        forged.to_state = QUARANTINED
        forged.action = ACT_QUARANTINE
        with pytest.raises(ValueError, match="does not match the fold"):
            PolicyEngine().restore([session, forged])

    def test_unpredicted_policy_record_is_tamper(self):
        decision = PolicyDecision(
            device_id="prv-0", workload=PROFILE.workload,
            method=PROFILE.method, from_state=HEALTHY,
            to_state=QUARANTINED, action=ACT_QUARANTINE,
            reason="forged", score=0, heal_attempt=0, policy_epoch=0,
            measurement=b"")
        with pytest.raises(ValueError, match="no session record"):
            PolicyEngine().restore([_policy_record(decision, seq=0)])

    def test_heal_records_need_no_predicting_session(self):
        # ACT_HEAL is exogenous (coordinator-driven), so it may appear
        # without a preceding session record deriving it
        live = PolicyEngine()
        live.observe(obs(accepted=False, violations=(("rop", 1, "x"),)))
        heal = live.begin_heal("prv-0")
        session = _session_record(
            violations=(("rop", 1, "x"),), reason="violation", seq=0)
        quarantine = PolicyEngine().observe(session)[0]
        records = [session, _policy_record(quarantine, seq=1),
                   _policy_record(heal, seq=2)]
        restored = PolicyEngine()
        replayed, repaired = restored.restore(records)
        assert (replayed, repaired) == (2, 0)
        assert restored.state_of("prv-0") == HEALING
        assert restored.heal_order("prv-0") is not None

    def test_session_record_before_owed_decisions_is_tamper(self):
        with pytest.raises(ValueError, match="expected policy record"):
            PolicyEngine().restore([_session_record(seq=0),
                                    _session_record(seq=1)])


# ---------------------------------------------------------------------------
# the MAC'd PLCY / HEAL wire frames
# ---------------------------------------------------------------------------


class TestHealFrames:
    KEY = b"\xaa" * 32
    NONCE = b"\x42" * 32

    def test_heal_order_roundtrip(self):
        frame = build_heal_frame(self.KEY, "prv-7", 2, 5, GOOD,
                                 self.NONCE)
        assert verify_heal_frame(self.KEY, "prv-7", frame) == \
            (2, 5, GOOD, self.NONCE)

    def test_heal_order_refused_on_wrong_key_or_device(self):
        frame = build_heal_frame(self.KEY, "prv-7", 1, 1, GOOD,
                                 self.NONCE)
        assert verify_heal_frame(b"\xbb" * 32, "prv-7", frame) is None
        assert verify_heal_frame(self.KEY, "prv-8", frame) is None

    def test_heal_order_refused_on_any_bit_flip(self):
        frame = build_heal_frame(self.KEY, "prv-7", 1, 1, GOOD,
                                 self.NONCE)
        for index in range(len(frame)):
            damaged = bytearray(frame)
            damaged[index] ^= 0x01
            assert verify_heal_frame(
                self.KEY, "prv-7", bytes(damaged)) is None

    def test_policy_notice_roundtrip(self):
        frame = build_policy_frame(self.KEY, "prv-7", QUARANTINED,
                                   "2 consecutive failures", 3)
        assert verify_policy_frame(self.KEY, "prv-7", frame) == \
            ("QUARANTINED", "2 consecutive failures", 3)

    def test_policy_notice_refused_on_forgery(self):
        frame = build_policy_frame(self.KEY, "prv-7", REVOKED, "gone", 1)
        assert verify_policy_frame(b"\xcc" * 32, "prv-7", frame) is None
        assert verify_policy_frame(self.KEY, "prv-9", frame) is None
        damaged = bytearray(frame)
        damaged[-1] ^= 0x01
        assert verify_policy_frame(self.KEY, "prv-7",
                                   bytes(damaged)) is None


# ---------------------------------------------------------------------------
# policy records in the evidence chain
# ---------------------------------------------------------------------------


def _verdict(device="prv-0", accepted=False, reason="bad MAC"):
    return SessionVerdict(
        device_id=device, profile=PROFILE, accepted=accepted,
        authenticated=accepted, lossless=accepted, violations=(),
        reason=reason, reports=1, records=4, path_len=4,
        path_digest="ab" * 16, records_digest="cd" * 16)


class TestPolicyEvidenceRecords:
    def test_decision_joins_the_device_hash_chain(self, tmp_path):
        store = EvidenceStore(tmp_path / "evidence.log", KEY)
        session = store.append(_verdict(), chain_digest([b"chain-bytes"]))
        engine = PolicyEngine()
        decisions = engine.observe(session)
        persisted = store.append_decision(decisions[0])
        store.close()
        assert isinstance(persisted, PolicyRecord)
        assert persisted.seq == session.seq + 1
        assert persisted.prev_digest == session.digest
        records = verify_evidence_trail(tmp_path / "evidence.log", KEY)
        assert [r.is_policy for r in records] == [False, True]
        assert records[1].action == ACT_SUSPECT
        assert records[1].to_state == SUSPECT

    def test_persisted_decision_round_trips_every_field(self, tmp_path):
        store = EvidenceStore(tmp_path / "evidence.log", KEY)
        decision = PolicyDecision(
            device_id="prv-0", workload=PROFILE.workload,
            method=PROFILE.method, from_state=QUARANTINED,
            to_state=HEALING, action=ACT_HEAL,
            reason="healing attempt 1 of 2", score=2, heal_attempt=1,
            policy_epoch=7, measurement=GOOD)
        record = store.append_decision(decision)
        store.close()
        reread = verify_evidence_trail(tmp_path / "evidence.log", KEY)[0]
        for field in ("device_id", "workload", "method", "from_state",
                      "to_state", "action", "reason", "score",
                      "heal_attempt", "policy_epoch", "measurement"):
            assert getattr(reread, field) == getattr(decision, field)
        assert reread.digest == record.digest

    def test_legacy_logs_refuse_policy_records(self, tmp_path):
        path = tmp_path / "evidence.log"
        path.write_bytes(b"EVD1\x01")  # a v1-format log
        store = EvidenceStore(path, KEY)
        assert store.version == 1
        engine = PolicyEngine()
        decision = engine.observe(_session_record())[0]
        with pytest.raises(EvidenceError, match="version 3"):
            store.append_decision(decision)
        store.close()

    def test_restore_repairs_into_the_store_byte_identically(
            self, tmp_path):
        # reference: session + decision both persisted
        ref = EvidenceStore(tmp_path / "ref.log", KEY)
        session = ref.append(_verdict(), chain_digest([b"chain-bytes"]))
        decision = PolicyEngine().observe(session)[0]
        ref.append_decision(decision)
        ref_head = ref.head("prv-0")
        ref.close()
        # crashed: only the session record made it to disk
        crashed = EvidenceStore(tmp_path / "crashed.log", KEY)
        crashed.append(_verdict(), chain_digest([b"chain-bytes"]))
        crashed.close()
        resumed = EvidenceStore(tmp_path / "crashed.log", KEY)
        engine = PolicyEngine()
        replayed, repaired = engine.restore(resumed.recovered,
                                            store=resumed)
        resumed.close()
        assert (replayed, repaired) == (0, 1)
        # the repaired chain head equals the uninterrupted reference
        assert resumed.head("prv-0") == ref_head
