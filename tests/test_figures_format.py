"""Dedicated coverage for the figure generators and table formatter.

These run on synthetic :class:`MethodRun` records, so they exercise the
row/formatting logic without touching the simulator.
"""

from __future__ import annotations

import pytest

from repro.eval.figures import (
    fig1_motivation,
    fig8_runtime,
    fig9_cflog,
    fig10_code_size,
    format_table,
    partial_report_table,
    _fmt,
    _numeric,
)
from repro.eval.runner import MethodRun


def _run(workload, method, cycles, cflog_bytes=0, cflog_records=0,
         code_size=100, partials=0):
    return MethodRun(workload=workload, method=method, cycles=cycles,
                     instructions=cycles, cflog_bytes=cflog_bytes,
                     cflog_records=cflog_records, code_size=code_size,
                     partial_reports=partials, gateway_calls=0,
                     report_cycles=0, verified=True)


@pytest.fixture()
def runs():
    """Two synthetic workloads with hand-picked numbers."""
    return {
        "alpha": {
            "baseline": _run("alpha", "baseline", 1000, code_size=100),
            "naive-mtb": _run("alpha", "naive-mtb", 1000,
                              cflog_bytes=4000, cflog_records=500),
            "rap-track": _run("alpha", "rap-track", 1200, cflog_bytes=40,
                              cflog_records=10, code_size=120),
            "traces": _run("alpha", "traces", 3000, cflog_bytes=400,
                           cflog_records=100, code_size=150, partials=2),
        },
        "beta": {
            "baseline": _run("beta", "baseline", 500, code_size=80),
            "naive-mtb": _run("beta", "naive-mtb", 500, cflog_bytes=800,
                              cflog_records=100, partials=3),
            "rap-track": _run("beta", "rap-track", 510, cflog_bytes=0,
                              cflog_records=0, code_size=90),
            "traces": _run("beta", "traces", 550, cflog_bytes=80,
                           cflog_records=20, code_size=95),
        },
    }


class TestFigureRows:
    def test_fig1_ratios(self, runs):
        rows = {r["workload"]: r for r in fig1_motivation(runs)}
        assert rows["alpha"]["cflog_ratio"] == pytest.approx(10.0)
        assert rows["alpha"]["runtime_factor"] == pytest.approx(3.0)
        assert rows["beta"]["cflog_ratio"] == pytest.approx(10.0)

    def test_fig1_zero_instrumented_log_is_inf(self, runs):
        runs["beta"]["traces"] = _run("beta", "traces", 550, cflog_bytes=0)
        rows = {r["workload"]: r for r in fig1_motivation(runs)}
        assert rows["beta"]["cflog_ratio"] == float("inf")

    def test_fig8_overhead_percentages(self, runs):
        rows = {r["workload"]: r for r in fig8_runtime(runs)}
        assert rows["alpha"]["rap_over_naive_pct"] == pytest.approx(20.0)
        assert rows["alpha"]["traces_over_base_pct"] == pytest.approx(200.0)
        assert rows["beta"]["rap_over_naive_pct"] == pytest.approx(2.0)

    def test_fig9_sizes_and_records(self, runs):
        rows = {r["workload"]: r for r in fig9_cflog(runs)}
        assert rows["alpha"]["naive_mtb_B"] == 4000
        assert rows["alpha"]["rap_track_B"] == 40
        assert rows["alpha"]["rap_records"] == 10
        assert rows["alpha"]["traces_records"] == 100

    def test_fig10_overheads(self, runs):
        rows = {r["workload"]: r for r in fig10_code_size(runs)}
        assert rows["alpha"]["rap_overhead_B"] == 20
        assert rows["alpha"]["traces_overhead_B"] == 50
        assert rows["beta"]["rap_overhead_B"] == 10

    def test_partial_report_flags(self, runs):
        rows = {r["workload"]: r for r in partial_report_table(runs)}
        assert rows["alpha"]["rap_single_report"] is True
        assert rows["beta"]["naive_partials"] == 3
        assert rows["alpha"]["traces_partials"] == 2

    def test_row_order_follows_input_order(self, runs):
        assert [r["workload"] for r in fig8_runtime(runs)] == \
            ["alpha", "beta"]


class TestFormatTable:
    def test_empty_rows_render_just_the_title(self):
        assert format_table([], "Only title") == "Only title"
        assert format_table([]) == ""

    def test_header_separator_and_row_count(self):
        text = format_table([{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}], "T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[1].split() == ["a", "b"]
        assert set(lines[2]) <= {"-", " "}
        assert len(lines) == 5

    def test_numbers_right_justified_text_left_justified(self):
        text = format_table([{"name": "abc", "n": 5},
                             {"name": "d", "n": 12345}])
        body = text.splitlines()[-1]
        assert body.startswith("d ")  # text: left
        assert body.endswith("12345")  # numbers: right

    def test_column_width_fits_widest_cell_or_header(self):
        text = format_table([{"wide_header": 1}])
        header, sep, row = text.splitlines()
        assert len(sep) == len("wide_header")
        assert row.endswith("1")

    def test_generator_input_accepted(self):
        rows = ({"v": i} for i in range(3))
        text = format_table(rows, "gen")
        assert len(text.splitlines()) == 6

    def test_float_bool_and_inf_rendering(self):
        text = format_table([{"f": 1.25, "yes": True, "no": False,
                              "inf": float("inf")}])
        assert "1.2" in text and "yes" in text and "no" in text
        assert "inf" in text


class TestScalarFormatting:
    @pytest.mark.parametrize("value,expected", [
        (True, "yes"),
        (False, "no"),
        (3.14159, "3.1"),
        (float("inf"), "inf"),
        (42, "42"),
        (-7, "-7"),
        ("text", "text"),
    ])
    def test_fmt(self, value, expected):
        assert _fmt(value) == expected

    @pytest.mark.parametrize("text,numeric", [
        ("42", True),
        ("-7", True),
        ("3.1", True),
        ("inf", True),
        ("abc", False),
        ("x1", False),
    ])
    def test_numeric(self, text, numeric):
        assert _numeric(text) is numeric
