"""NVIC tests: exception entry/return, and the section-III guarantee
that Non-Secure interrupts never fire during attested execution."""

import pytest

from repro.asm.assembler import assemble_and_link
from repro.machine.faults import MachineFault
from repro.machine.mcu import MCU
from repro.machine.nvic import FRAME_BYTES
from conftest import rap_setup

# main polls a RAM flag the ISR sets; the ISR also counts invocations
ISR_PROGRAM = """
.entry main
main:
    mov r0, #0
    mov r1, #0
poll:
    ldr r2, =flag
    ldr r3, [r2]
    cmp r3, #0
    beq poll
    bkpt

isr:
    push {r4, lr}
    ldr r4, =flag
    mov r0, #1
    str r0, [r4]
    ldr r4, =isr_count
    ldr r0, [r4]
    add r0, r0, #1
    str r0, [r4]
    pop {r4, lr}
    bx lr

.data
flag:       .word 0
isr_count:  .word 0
"""


def _machine():
    image = assemble_and_link(ISR_PROGRAM)
    mcu = MCU(image, max_instructions=100_000)
    mcu.nvic.register_vector(5, image.addr_of("isr"))
    return image, mcu


class TestExceptionEntry:
    def test_isr_runs_and_main_resumes(self):
        image, mcu = _machine()
        fired = []

        def raiser(pc):
            if mcu.cpu.retired == 20 and not fired:
                fired.append(True)
                mcu.nvic.raise_irq(5)

        mcu.cpu.pre_hooks.append(raiser)
        result = mcu.run()
        assert result.exit_reason == "bkpt"
        assert mcu.memory.peek(image.addr_of("isr_count")) == 1
        assert mcu.nvic.serviced == [5]

    def test_registers_preserved_across_isr(self):
        image, mcu = _machine()

        def raiser(pc):
            if mcu.cpu.retired == 10 and not mcu.nvic.serviced:
                mcu.nvic.raise_irq(5)

        mcu.cpu.pre_hooks.append(raiser)
        mcu.run()
        # r1 was 0 before the ISR and the ISR clobbers r0/r2/r3/r4;
        # the hardware frame must restore the caller-saved set
        assert mcu.cpu.regs[1] == 0

    def test_stack_balanced_after_isr(self):
        image, mcu = _machine()
        sp_samples = []

        def raiser(pc):
            if mcu.cpu.retired == 10 and not mcu.nvic.serviced:
                sp_samples.append(mcu.cpu.regs[13])
                mcu.nvic.raise_irq(5)

        mcu.cpu.pre_hooks.append(raiser)
        mcu.run()
        assert mcu.cpu.regs[13] == sp_samples[0]

    def test_unvectored_irq_rejected(self):
        _, mcu = _machine()
        with pytest.raises(MachineFault):
            mcu.nvic.raise_irq(99)

    def test_lowest_irq_serviced_first(self):
        image, mcu = _machine()
        mcu.nvic.register_vector(3, image.addr_of("isr"))

        def raiser(pc):
            if mcu.cpu.retired == 10 and not mcu.nvic.serviced:
                mcu.nvic.raise_irq(5)
                mcu.nvic.raise_irq(3)

        mcu.cpu.pre_hooks.append(raiser)
        mcu.run()
        assert mcu.nvic.serviced[0] == 3

    def test_disabled_nvic_defers(self):
        image, mcu = _machine()
        mcu.nvic.ns_enabled = False
        mcu.nvic.raise_irq(5)

        # without the ISR the poll loop spins forever: cap and check
        from repro.machine.faults import ExecutionLimitExceeded

        with pytest.raises(ExecutionLimitExceeded):
            mcu.run(max_instructions=500)
        assert mcu.nvic.serviced == []
        assert mcu.nvic.pending == [5]

    def test_frame_size_constant(self):
        assert FRAME_BYTES == 32  # 6 regs + return address + xpsr


ATTESTED_PROGRAM = """
.entry main
main:
    mov r4, #0
    mov r0, #0
busy:
    add r0, r0, #1
    cmp r0, #30
    blt busy
    bkpt

isr:
    mov r4, #99
    bx lr

.data
marker: .word 0
"""


class TestInterruptsDuringAttestation:
    def test_pending_irq_never_fires_while_attesting(self, keystore):
        """Paper section III: the CFA engine disables NS interrupts for
        the attested execution; a pended IRQ stays pending."""
        image, _, mcu, engine, verifier, _ = rap_setup(
            ATTESTED_PROGRAM, keystore=keystore)
        mcu.nvic.register_vector(7, image.addr_of("isr"))

        def raiser(pc):
            if mcu.cpu.retired == 5 and 7 not in mcu.nvic.pending:
                mcu.nvic.raise_irq(7)

        mcu.cpu.pre_hooks.append(raiser)
        result = engine.attest(b"c")
        assert mcu.nvic.serviced == []  # the ISR never ran
        assert mcu.cpu.regs[4] == 0  # r4 untouched by the ISR
        assert 7 in mcu.nvic.pending  # still pending for later
        assert verifier.verify(result, b"c").ok

    def test_interrupts_reenabled_after_attestation(self, keystore):
        image, _, mcu, engine, _, _ = rap_setup(
            ATTESTED_PROGRAM, keystore=keystore)
        engine.attest(b"c")
        assert mcu.nvic.ns_enabled
