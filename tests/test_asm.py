"""Unit tests: parser, assembler, program model, linker."""

import pytest

from repro.asm import assemble, link
from repro.asm.linker import DEFAULT_LAYOUT, LinkError
from repro.asm.parser import (
    AsmSyntaxError,
    parse_int,
    parse_operand,
    parse_source,
    parse_statement,
    split_mnemonic,
)
from repro.asm.program import DataBytes, DataWord, Space
from repro.isa.instructions import InstrKind
from repro.isa.operands import Imm, Label, Mem, Reg, RegList


class TestParseInt:
    def test_bases(self):
        assert parse_int("10") == 10
        assert parse_int("0x1f") == 31
        assert parse_int("0b101") == 5
        assert parse_int("-3") == -3

    def test_char_literal(self):
        assert parse_int("'A'") == 65


class TestOperandParsing:
    def test_registers(self):
        assert parse_operand("r3") == Reg(3)
        assert parse_operand("lr") == Reg(14)

    def test_immediate(self):
        assert parse_operand("#42") == Imm(42)
        assert parse_operand("#0x10") == Imm(16)
        assert parse_operand("#'$'") == Imm(36)

    def test_label(self):
        assert parse_operand("main_loop") == Label("main_loop")

    def test_mem_plain(self):
        assert parse_operand("[r1]") == Mem(Reg(1))

    def test_mem_offset(self):
        assert parse_operand("[r1, #8]") == Mem(Reg(1), offset=8)
        assert parse_operand("[sp, #-4]") == Mem(Reg(13), offset=-4)

    def test_mem_index(self):
        assert parse_operand("[r1, r2]") == Mem(Reg(1), index=Reg(2))

    def test_mem_scaled(self):
        op = parse_operand("[r1, r2, lsl #2]")
        assert op == Mem(Reg(1), index=Reg(2), shift=2)

    def test_reglist(self):
        assert parse_operand("{r4, r5, lr}") == RegList((4, 5, 14))

    def test_reglist_range(self):
        assert parse_operand("{r4-r7, lr}") == RegList((4, 5, 6, 7, 14))

    def test_reglist_empty(self):
        assert parse_operand("{}") == RegList(())

    def test_reglist_bad_range(self):
        with pytest.raises(ValueError):
            parse_operand("{r7-r4}")

    def test_equals_pseudo(self):
        assert parse_operand("=foo") == ("=label", "foo")
        assert parse_operand("=0x100") == ("=imm", 256)

    def test_garbage(self):
        with pytest.raises(ValueError):
            parse_operand("!!!")


class TestMnemonics:
    def test_plain(self):
        assert split_mnemonic("mov") == ("mov", None)
        assert split_mnemonic("bl") == ("bl", None)
        assert split_mnemonic("bx") == ("bx", None)

    def test_conditional_branches(self):
        assert split_mnemonic("beq") == ("b", "eq")
        assert split_mnemonic("blt") == ("b", "lt")
        assert split_mnemonic("bhs") == ("b", "cs")  # alias
        assert split_mnemonic("blo") == ("b", "cc")

    def test_ble_is_condition_not_bl(self):
        # 'ble' must parse as b+le, not bl+e
        assert split_mnemonic("ble") == ("b", "le")

    def test_unknown(self):
        with pytest.raises(ValueError):
            split_mnemonic("xyz")

    def test_statement(self):
        mnemonic, cond, ops = parse_statement("add r0, r1, #2")
        assert (mnemonic, cond) == ("add", None)
        assert ops == [Reg(0), Reg(1), Imm(2)]


class TestParseSource:
    def test_labels_bind_to_next_instruction(self):
        module = parse_source("a:\nb:\n    nop\n")
        items = module.text.items
        assert items[0].labels == ("a", "b")

    def test_label_and_statement_same_line(self):
        module = parse_source("go: nop")
        assert module.text.items[0].labels == ("go",)

    def test_comments_stripped(self):
        module = parse_source("nop ; c1\nnop // c2\nnop @ c3\n")
        assert len(module.text.items) == 3

    def test_sections(self):
        module = parse_source(".data\nx: .word 5\n.text\n    nop\n")
        assert len(module.section("data").items) == 1
        assert len(module.text.items) == 1

    def test_word_label_and_int(self):
        module = parse_source(".rodata\nt: .word foo, 0x10\n")
        items = module.section("rodata").items
        assert items[0].payload == DataWord(Label("foo"))
        assert items[1].payload == DataWord(16)

    def test_byte_and_ascii(self):
        module = parse_source('.data\n.byte 1, 2, 255\n.ascii "hi"\n')
        items = module.section("data").items
        assert items[0].payload == DataBytes(bytes([1, 2, 255]))
        assert items[1].payload == DataBytes(b"hi")

    def test_space(self):
        module = parse_source(".data\nbuf: .space 32\n")
        assert module.section("data").items[0].payload == Space(32)

    def test_entry_and_equ(self):
        module = parse_source(".entry start\n.equ UART, 0x40000300\nstart: nop\n")
        assert module.entry == "start"
        assert module.equates["UART"] == 0x40000300

    def test_ldr_equals_label_becomes_adr(self):
        module = parse_source("ldr r0, =target\ntarget: nop\n")
        instr = module.text.items[0].payload
        assert instr.mnemonic == "adr"
        assert instr.operands == (Reg(0), Label("target"))

    def test_ldr_equals_imm_becomes_mov32(self):
        module = parse_source("ldr r0, =0x40000000\n")
        instr = module.text.items[0].payload
        assert instr.mnemonic == "mov32"
        assert instr.operands == (Reg(0), Imm(0x40000000))

    def test_syntax_error_carries_line(self):
        with pytest.raises(AsmSyntaxError) as err:
            parse_source("nop\nbadinstr r0\n")
        assert err.value.line_no == 2

    def test_unknown_directive(self):
        with pytest.raises(AsmSyntaxError):
            parse_source(".frobnicate 1\n")

    def test_trailing_label(self):
        module = parse_source("    nop\nend_marker:\n")
        last = module.text.items[-1]
        assert last.labels == ("end_marker",)
        assert isinstance(last.payload, Space)

    def test_duplicate_labels_rejected_at_module(self):
        module = parse_source("x: nop\nx: nop\n")
        with pytest.raises(ValueError):
            module.defined_labels()


class TestLinker:
    def test_addresses_sequential(self):
        image = link(assemble(".entry main\nmain:\n    nop\n    bl f\nf:  nop\n"))
        addrs = sorted(image.instr_at)
        base = DEFAULT_LAYOUT["text"]
        assert addrs == [base, base + 2, base + 6]

    def test_entry_resolution(self):
        image = link(assemble(".entry go\nx: nop\ngo: nop\n"))
        assert image.entry == image.addr_of("go")

    def test_missing_entry(self):
        with pytest.raises(LinkError):
            link(assemble(".entry nowhere\nnop\n"))

    def test_undefined_reference(self):
        with pytest.raises(LinkError):
            link(assemble(".entry main\nmain: b nowhere\n"))

    def test_duplicate_symbol(self):
        module = assemble(".entry main\nmain: nop\n")
        module.text.add(module.text.items[0].payload, ("main",))
        with pytest.raises(LinkError):
            link(module)

    def test_data_words_little_endian(self):
        image = link(assemble(
            ".entry main\nmain: nop\n.data\nv: .word 0x04030201\n"))
        base = image.addr_of("v")
        assert [image.data_bytes[base + i] for i in range(4)] == [1, 2, 3, 4]

    def test_word_of_label_resolves(self):
        image = link(assemble(
            ".entry main\nmain: nop\n.rodata\nt: .word main\n"))
        assert image.rodata_word(image.addr_of("t")) == image.addr_of("main")

    def test_space_zero_filled(self):
        image = link(assemble(".entry m\nm: nop\n.data\nb: .space 8\n"))
        base = image.addr_of("b")
        assert all(image.data_bytes[base + i] == 0 for i in range(8))

    def test_section_of(self):
        image = link(assemble(".entry m\nm: nop\n.data\nd: .word 1\n"))
        assert image.section_of(image.addr_of("m")) == "text"
        assert image.section_of(image.addr_of("d")) == "data"
        assert image.section_of(0xDEAD0000) is None

    def test_code_size_counts_text_and_mtbar(self):
        module = assemble(".entry m\nm: nop\n.mtbar\ns: nop\n    nop\n")
        image = link(module)
        assert image.code_size() == 6

    def test_code_bytes_change_with_code(self):
        one = link(assemble(".entry m\nm: mov r0, #1\n"))
        two = link(assemble(".entry m\nm: mov r0, #2\n"))
        assert one.code_bytes() != two.code_bytes()

    def test_equate_resolution(self):
        image = link(assemble(
            ".entry m\n.equ MAGIC, 0x1234\nm: nop\n"))
        assert image.addr_of("MAGIC") == 0x1234

    def test_overlapping_layout_rejected(self):
        module = assemble(".entry m\nm: nop\n.mtbar\ns: nop\n")
        with pytest.raises(LinkError):
            link(module, layout={"mtbar": DEFAULT_LAYOUT["text"]})

    def test_disassemble_mentions_labels(self):
        image = link(assemble(".entry m\nm: nop\nloop: b loop\n"))
        text = image.disassemble("text")
        assert "loop:" in text and "b loop" in text

    def test_module_copy_is_independent(self):
        module = assemble(".entry m\nm: nop\n")
        dup = module.copy()
        dup.text.add(Space(4), ())
        assert len(module.text.items) == 1
        assert len(dup.text.items) == 2


class TestReservedLabels:
    def test_register_named_label_rejected(self):
        with pytest.raises(AsmSyntaxError, match="shadows a register"):
            parse_source("r0: nop\n")

    def test_alias_named_label_rejected(self):
        with pytest.raises(AsmSyntaxError, match="shadows a register"):
            parse_source("lr: nop\n")
