"""Compromise-then-heal campaigns against the policy control plane.

The SLA the ``repro policy`` CLI and the CI smoke gate enforce, pinned
as tests: every compromised device (genuine ROP execution, report
equivocation, persistent tamper) is quarantined, healed through the
MAC'd HEAL protocol, and rejoined — or revoked when healing is
exhausted — while **zero** honest devices are ever quarantined. The
zero is structural (honest devices never produce rejected verdicts,
and their pinned firmware always evaluates clean), so it is asserted
over every evaluation workload, not sampled.
"""

import json

import pytest

from repro.cfa.fleet import (
    CampaignSimulator,
    ChainFactory,
    DeviceSpec,
    FleetService,
    ShardedFleetService,
    build_campaign_specs,
    device_key,
)
from repro.cfa.fleet.verify import DeviceProfile
from repro.cfa.policy import (
    PolicyDeniedError,
    PolicyEngine,
    PolicyRegistry,
    QUARANTINED,
    REVOKED,
    policy_key,
    verify_heal_frame,
)
from repro.cli import main
from repro.eval.figures import EVAL_WORKLOADS

SEED = b"fleet-vrf"
IDLE = 5.0


@pytest.fixture(scope="module")
def factory():
    return ChainFactory(watermark=256)


def policy_service(max_heal_attempts: int = 2) -> FleetService:
    engine = PolicyEngine(
        registry=PolicyRegistry(policy_key(SEED)),
        suspect_threshold=2, max_heal_attempts=max_heal_attempts)
    return FleetService(seed=SEED, idle_timeout=IDLE, policy=engine,
                        key_lookup=device_key)


class TestCampaignSLA:
    def test_every_compromised_device_is_caught_and_healed(
            self, factory):
        specs = build_campaign_specs(
            24, compromised_fraction=0.125, workloads=("fibcall",),
            seed=1)
        simulator = CampaignSimulator(specs, seed=2, factory=factory)
        service = policy_service()
        assert simulator.pin_profiles(service) >= 2
        report = simulator.run(service, rounds=3)
        assert report.ok, report.summary()
        assert len(report.compromised) == 3
        assert sorted(report.quarantined_round) == report.compromised
        assert report.rejoined == report.compromised
        assert report.revoked == []
        assert report.wrongful_quarantines == []
        assert 1.0 <= report.mean_time_to_quarantine <= 3.0
        assert report.healing_success_rate == 1.0
        # every compromised device received a verified notice
        assert report.notices_verified >= len(report.compromised)
        # quarantine + heal + rejoin per compromised device, plus at
        # most one SUSPECT when the tamper device's first flip reads
        # as a soft failure rather than a rogue measurement
        assert 9 <= service.policy.decisions_made <= 10
        service.close()

    def test_campaign_is_deterministic(self, factory):
        specs = build_campaign_specs(
            16, compromised_fraction=0.2, workloads=("fibcall",),
            seed=4)
        runs = []
        for _ in range(2):
            simulator = CampaignSimulator(specs, seed=5,
                                          factory=factory)
            service = policy_service()
            simulator.pin_profiles(service)
            report = simulator.run(service, rounds=2)
            service.close()
            runs.append((report.end_states, report.quarantined_round,
                         report.healed_round, report.denials))
        assert runs[0] == runs[1]

    def test_sharded_campaign_matches_unsharded(self, factory,
                                                tmp_path):
        specs = build_campaign_specs(
            20, compromised_fraction=0.15, workloads=("fibcall",),
            seed=6)
        reports = {}
        for name in ("plain", "sharded"):
            simulator = CampaignSimulator(specs, seed=7,
                                          factory=factory)
            if name == "plain":
                service = policy_service()
            else:
                service = ShardedFleetService(
                    shards=2, store_dir=tmp_path / "store", seed=SEED,
                    idle_timeout=IDLE, policy=True,
                    key_lookup=device_key)
            simulator.pin_profiles(service)
            reports[name] = simulator.run(service, rounds=3)
            service.close()
        plain, sharded = reports["plain"], reports["sharded"]
        assert sharded.ok and plain.ok
        assert sharded.end_states == plain.end_states
        assert sharded.quarantined_round == plain.quarantined_round
        assert sharded.healed_round == plain.healed_round


class TestHonestFleetsAreNeverTouched:
    def test_zero_wrongful_quarantines_across_all_workloads(
            self, factory):
        """One honest device per evaluation workload (cycling every
        honest transport behavior), pinned firmware, two full rounds:
        the policy engine must make zero decisions of any kind."""
        honest = ("honest", "duplicate", "reorder", "stall")
        specs = [
            DeviceSpec(f"prv-{index:04d}", DeviceProfile(workload),
                       honest[index % len(honest)])
            for index, workload in enumerate(EVAL_WORKLOADS)
        ]
        simulator = CampaignSimulator(specs, seed=8, factory=factory)
        service = policy_service()
        assert simulator.pin_profiles(service) == len(EVAL_WORKLOADS)
        report = simulator.run(service, rounds=2)
        service.close()
        assert report.wrongful_quarantines == []
        assert report.quarantined_round == {}
        assert report.denials == 0
        assert service.policy.decisions_made == 0
        assert set(report.end_states.values()) <= {"HEALTHY"}


class TestRevocation:
    def test_exhausted_healing_revokes_and_bars_readmission(
            self, factory):
        """A device that stays compromised through healing: every HEAL
        order is answered with a stale chain, attempts exhaust, and the
        device is permanently revoked (admission refused, no further
        heal orders minted)."""
        spec = DeviceSpec("prv-0000", DeviceProfile("vulnerable"),
                          "attack")
        simulator = CampaignSimulator([spec], seed=9, factory=factory)
        service = policy_service(max_heal_attempts=1)
        simulator.pin_profiles(service)
        simulator.run_round(service, 0)
        assert service.policy.state_of("prv-0000") == QUARANTINED

        pushes = service.heal_pushes(500.0)
        assert [device for device, _ in pushes] == ["prv-0000"]
        device_id, frame = pushes[0]
        order = verify_heal_frame(device_key(device_id), device_id,
                                  frame)
        assert order is not None  # the order itself is authentic
        # the device ignores the re-provision and replays a stale chain
        for chunk in factory.chain(spec, b"\x00" * 32):
            service.submit(device_id, chunk, 500.0)
        service.drain()
        assert service.policy.state_of(device_id) == REVOKED
        with pytest.raises(PolicyDeniedError, match="REVOKED"):
            service.open_session(device_id, spec.profile,
                                 device_key(device_id), 1000.0)
        assert service.heal_pushes(1000.0) == []
        service.close()


class TestPolicyCli:
    def test_policy_command_meets_the_sla(self, capsys):
        rc = main(["policy", "--devices", "12",
                   "--compromised-fraction", "0.1", "--rounds", "2"])
        out = capsys.readouterr().out
        assert rc == 0, out
        assert "campaign SLA met" in out
        assert "0 wrongful quarantine(s)" in out

    def test_policy_flag_validation(self, capsys):
        assert main(["policy", "--devices", "4", "--store",
                     "/tmp/nope"]) == 2
        assert main(["policy", "--devices", "4",
                     "--smoke-restart"]) == 2

    def test_audit_json_clean_and_failing(self, tmp_path, capsys):
        store = tmp_path / "store"
        rc = main(["policy", "--devices", "12",
                   "--compromised-fraction", "0.1", "--rounds", "2",
                   "--shards", "2", "--store", str(store)])
        assert rc == 0, capsys.readouterr().out
        capsys.readouterr()

        rc = main(["audit", str(store), "--json"])
        result = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert result["ok"] is True
        assert result["error"] is None
        assert result["policy_records"] > 0
        assert result["records"] == (result["session_records"]
                                     + result["policy_records"])
        assert sum(result["policy_states"].values()) >= 1

        # flip one byte mid-log: the auditor must fail with exit 1
        log = store / "evidence-00.log"
        blob = bytearray(log.read_bytes())
        blob[len(blob) // 2] ^= 0x01
        log.write_bytes(bytes(blob))
        rc = main(["audit", str(store), "--json"])
        result = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert result["ok"] is False
        assert result["error"]
