"""Property-based tests (hypothesis).

The headline property: for *arbitrary* structured programs — random
nests of if/else, fixed loops, variable loops, while loops, and calls —
the RAP-Track and TRACES transformations preserve program semantics,
and the Verifier's replay reconstructs the exact executed path from the
CFLog alone.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.isa import alu
from repro.isa.conditions import CONDITIONS, cond_passed, invert_cond
from repro.isa.registers import Flags
from conftest import (
    assert_lossless,
    naive_setup,
    rap_setup,
    text_path,
    traces_setup,
)

u32 = st.integers(min_value=0, max_value=0xFFFFFFFF)
small = st.integers(min_value=0, max_value=255)


class TestAluProperties:
    @given(u32, u32)
    def test_add_matches_python(self, a, b):
        result, n, z, c, v = alu.add_with_flags(a, b)
        assert result == (a + b) & 0xFFFFFFFF
        assert z == (result == 0)
        assert n == bool(result >> 31)
        assert c == (a + b > 0xFFFFFFFF)
        assert v == (alu.s32(a) + alu.s32(b) != alu.s32(result))

    @given(u32, u32)
    def test_sub_matches_python(self, a, b):
        result, _, z, c, _ = alu.sub_with_flags(a, b)
        assert result == (a - b) & 0xFFFFFFFF
        assert c == (a >= b)  # no borrow
        assert z == (a == b)

    @given(u32, u32)
    def test_cmp_orders_unsigned(self, a, b):
        _, n, z, c, v = alu.sub_with_flags(a, b)
        flags = Flags(n, z, c, v)
        assert cond_passed("hi", flags) == (a > b)
        assert cond_passed("cs", flags) == (a >= b)
        assert cond_passed("cc", flags) == (a < b)
        assert cond_passed("ls", flags) == (a <= b)

    @given(u32, u32)
    def test_cmp_orders_signed(self, a, b):
        _, n, z, c, v = alu.sub_with_flags(a, b)
        flags = Flags(n, z, c, v)
        sa, sb = alu.s32(a), alu.s32(b)
        assert cond_passed("gt", flags) == (sa > sb)
        assert cond_passed("ge", flags) == (sa >= sb)
        assert cond_passed("lt", flags) == (sa < sb)
        assert cond_passed("le", flags) == (sa <= sb)

    @given(u32, st.integers(min_value=0, max_value=40))
    def test_shifts_match_python(self, value, amount):
        lsl, _ = alu.lsl(value, amount, False)
        lsr, _ = alu.lsr(value, amount, False)
        assert lsl == (value << amount) & 0xFFFFFFFF
        assert lsr == (value >> amount if amount < 64 else 0)

    @given(u32, u32)
    def test_udiv_matches_python(self, a, b):
        expected = 0 if b == 0 else a // b
        assert alu.udiv(a, b) == expected

    @given(st.sampled_from(CONDITIONS),
           st.booleans(), st.booleans(), st.booleans(), st.booleans())
    def test_inverse_condition_complements(self, cond, n, z, c, v):
        flags = Flags(n, z, c, v)
        assert cond_passed(cond, flags) != cond_passed(invert_cond(cond),
                                                       flags)


class TestTripCountProperty:
    @given(st.integers(min_value=1, max_value=30),
           st.integers(min_value=1, max_value=4))
    @settings(deadline=None, max_examples=25)
    def test_down_count_trip_matches_execution(self, init, step):
        from repro.asm import assemble
        from repro.core.cfg import build_cfg
        from repro.core.flat import FlatProgram
        from repro.core.loops import (analyse_simple_loop,
                                      find_natural_loops, trip_count)
        from conftest import run_source

        source = f"""
.entry main
main:
    mov r4, #{init}
top:
    add r5, r5, #1
    sub r4, r4, #{step}
    cmp r4, #0
    bgt top
    bkpt
"""
        flat = FlatProgram(assemble(source))
        cfg = build_cfg(flat)
        (loop,) = find_natural_loops(cfg, 0)
        shape = analyse_simple_loop(cfg, loop)
        assert shape is not None
        mcu = run_source(source)
        assert trip_count(shape, init) == mcu.cpu.regs[5]


# --------------------------------------------------------------------------
# Random structured program generation
# --------------------------------------------------------------------------


class _ProgramBuilder:
    """Emit a random but well-formed, terminating program.

    Computation registers are r0-r2; r3 is reserved for function-pointer
    scratch (its value is a code address, which legitimately differs
    between original and rewritten layouts); loop counters use r4-r6 by
    nesting depth, so generated loops are never clobbered by their own
    bodies.
    """

    COMPUTE_REGS = ("r0", "r1", "r2")

    def __init__(self, draw):
        self.draw = draw
        self.lines = []
        self.label_counter = 0
        self.functions = []  # (name, is_leaf)

    def fresh(self, tag):
        self.label_counter += 1
        return f"L{tag}_{self.label_counter}"

    def reg(self):
        return self.draw(st.sampled_from(self.COMPUTE_REGS))

    def imm(self, hi=50):
        return self.draw(st.integers(min_value=0, max_value=hi))

    def statement(self, depth, loop_depth):
        kind = self.draw(st.sampled_from(
            ["assign", "assign", "op", "op", "if", "fixed", "var",
             "while", "call"] if depth > 0 else ["assign", "op"]))
        if kind == "assign":
            self.lines.append(f"    mov {self.reg()}, #{self.imm()}")
        elif kind == "op":
            op = self.draw(st.sampled_from(["add", "sub", "eor", "orr"]))
            self.lines.append(
                f"    {op} {self.reg()}, {self.reg()}, #{self.imm(15)}")
        elif kind == "if":
            self.emit_if(depth, loop_depth)
        elif kind == "fixed" and loop_depth < 3:
            self.emit_fixed_loop(depth, loop_depth)
        elif kind == "var" and loop_depth < 3:
            self.emit_var_loop(depth, loop_depth)
        elif kind == "while" and loop_depth < 3:
            self.emit_while_loop(depth, loop_depth)
        elif kind == "call" and self.functions:
            name, _ = self.draw(st.sampled_from(self.functions))
            if self.draw(st.booleans()):
                self.lines.append(f"    bl {name}")
            else:
                self.lines.append(f"    adr r3, {name}")
                self.lines.append("    blx r3")
        else:
            self.lines.append(f"    mov {self.reg()}, #{self.imm()}")

    def block(self, depth, loop_depth):
        for _ in range(self.draw(st.integers(min_value=1, max_value=3))):
            self.statement(depth - 1, loop_depth)

    def emit_if(self, depth, loop_depth):
        other = self.fresh("else")
        end = self.fresh("endif")
        cond = self.draw(st.sampled_from(["eq", "ne", "lt", "ge", "gt"]))
        self.lines.append(f"    cmp {self.reg()}, #{self.imm(20)}")
        self.lines.append(f"    b{cond} {other}")
        self.block(depth, loop_depth)
        self.lines.append(f"    b {end}")
        self.lines.append(f"{other}:")
        self.block(depth, loop_depth)
        self.lines.append(f"{end}:")

    def emit_fixed_loop(self, depth, loop_depth):
        counter = f"r{4 + loop_depth}"
        top = self.fresh("floop")
        bound = self.draw(st.integers(min_value=1, max_value=6))
        self.lines.append(f"    mov {counter}, #0")
        self.lines.append(f"{top}:")
        self.block(depth, loop_depth + 1)
        self.lines.append(f"    add {counter}, {counter}, #1")
        self.lines.append(f"    cmp {counter}, #{bound}")
        self.lines.append(f"    blt {top}")

    def emit_var_loop(self, depth, loop_depth):
        counter = f"r{4 + loop_depth}"
        top = self.fresh("vloop")
        self.lines.append(f"    and {counter}, {self.reg()}, #7")
        self.lines.append(f"    add {counter}, {counter}, #1")
        self.lines.append(f"{top}:")
        self.block(depth, loop_depth + 1)
        self.lines.append(f"    sub {counter}, {counter}, #1")
        self.lines.append(f"    cmp {counter}, #0")
        self.lines.append(f"    bgt {top}")

    def emit_while_loop(self, depth, loop_depth):
        counter = f"r{4 + loop_depth}"
        top = self.fresh("wloop")
        out = self.fresh("wdone")
        bound = self.draw(st.integers(min_value=1, max_value=6))
        self.lines.append(f"    mov {counter}, #{bound}")
        self.lines.append(f"{top}:")
        self.lines.append(f"    cmp {counter}, #0")
        self.lines.append(f"    beq {out}")
        self.lines.append(f"    sub {counter}, {counter}, #1")
        self.block(depth, loop_depth + 1)
        self.lines.append(f"    b {top}")
        self.lines.append(f"{out}:")

    def emit_function(self, index):
        name = f"func{index}"
        leaf = self.draw(st.booleans())
        self.lines.append(f"{name}:")
        if leaf:
            op = self.draw(st.sampled_from(["add", "eor"]))
            self.lines.append(f"    {op} r0, r0, #{self.imm(9)}")
            self.lines.append("    bx lr")
        else:
            self.lines.append("    push {r4, lr}")
            self.block(2, 3)  # loop_depth 3: no further loops
            self.lines.append("    pop {r4, pc}")
        self.functions.append((name, leaf))

    def build(self):
        # functions first so call statements have targets
        prologue = [".entry main"]
        for i in range(self.draw(st.integers(min_value=0, max_value=2))):
            self.emit_function(i)
        body_start = len(self.lines)
        self.lines.append("main:")
        self.lines.append("    push {r4, r5, r6, r7, lr}")
        self.block(3, 0)
        self.lines.append("    bkpt")
        # order: main first is not required; keep functions before main
        return "\n".join(prologue + self.lines)


@st.composite
def structured_programs(draw):
    return _ProgramBuilder(draw).build()


def _compute_state(mcu):
    # r3 may hold a code pointer (layout-dependent); compare data regs
    return mcu.cpu.regs[:3]


class TestRandomProgramProperties:
    @given(structured_programs())
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.data_too_large])
    def test_rap_rewrite_preserves_semantics_and_is_lossless(self, source):
        from repro.asm.assembler import assemble_and_link
        from repro.machine.mcu import MCU

        baseline = MCU(assemble_and_link(source), max_instructions=300_000)
        baseline.run()

        image, _, mcu, engine, verifier, tracer = rap_setup(source)
        mcu.max_instructions = 300_000
        result, outcome = assert_lossless(image, engine, verifier, tracer)
        assert _compute_state(mcu) == _compute_state(baseline)

    @given(structured_programs())
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.data_too_large])
    def test_traces_rewrite_preserves_semantics_and_is_lossless(self, source):
        from repro.asm.assembler import assemble_and_link
        from repro.machine.mcu import MCU

        baseline = MCU(assemble_and_link(source), max_instructions=300_000)
        baseline.run()

        image, _, mcu, engine, verifier, tracer = traces_setup(source)
        mcu.max_instructions = 300_000
        assert_lossless(image, engine, verifier, tracer)
        assert _compute_state(mcu) == _compute_state(baseline)

    @given(structured_programs())
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.data_too_large])
    def test_naive_replay_is_lossless(self, source):
        image, _, mcu, engine, verifier, tracer = naive_setup(source)
        mcu.max_instructions = 300_000
        result = engine.attest(b"p")
        outcome = verifier.verify(result, b"p")
        assert outcome.ok, outcome.error
        assert outcome.path == text_path(image, tracer)


class TestMtbProperties:
    @given(st.lists(st.tuples(u32, u32), min_size=1, max_size=64),
           st.integers(min_value=2, max_value=16))
    @settings(deadline=None)
    def test_buffer_holds_most_recent_packets(self, transfers, slots):
        from repro.machine.cpu import RetireEvent
        from repro.machine.memory import Memory
        from repro.isa.instructions import make_instr
        from repro.trace.mtb import MTB, PACKET_BYTES

        mtb = MTB(Memory(), buffer_size=slots * PACKET_BYTES,
                  activation_latency=0)
        mtb.start()
        for src, dst in transfers:
            mtb.on_retire(RetireEvent(src, dst, False, make_instr("nop")))
        assert mtb.total_packets == len(transfers)
        kept = [(p.src, p.dst) for p in mtb.drain()]
        # after a wrap the buffer holds a suffix of the stream
        assert kept == transfers[len(transfers) - len(kept):]

    @given(st.binary(min_size=1, max_size=64))
    def test_lcg_chance_is_deterministic(self, seed_bytes):
        from repro.workloads.peripherals import LCG

        seed = int.from_bytes(seed_bytes[:4].ljust(4, b"\0"), "little")
        a = [LCG(seed).randint(0, 9) for _ in range(5)]
        b = [LCG(seed).randint(0, 9) for _ in range(5)]
        assert a == b
