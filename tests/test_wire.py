"""Wire-format tests: roundtrip, tamper handling, fuzz robustness."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.cfa.cflog import AddressRecord, BranchRecord, CFLog, LoopRecord
from repro.cfa.report import Report
from repro.cfa.speccfa import SpecRecord
from repro.cfa.verifier import Verifier
from repro.cfa.wire import (
    WireError,
    decode_report,
    decode_result,
    encode_report,
    encode_result,
)
from conftest import rap_setup


def sample_report(key, records=None, seq=0, final=True):
    return Report(
        device_id=b"prv-0", method="rap-track", challenge=b"chal-123",
        h_mem=b"h" * 32, seq=seq, final=final,
        cflog=CFLog(records if records is not None
                    else [BranchRecord(0x200010, 0x200020)]),
    ).sign(key)


class TestRoundtrip:
    def test_single_report(self, keystore):
        key = keystore.attestation_key
        report = sample_report(key)
        decoded, consumed = decode_report(encode_report(report))
        assert consumed == len(encode_report(report))
        assert decoded.device_id == report.device_id
        assert decoded.challenge == report.challenge
        assert decoded.cflog.records == report.cflog.records
        assert decoded.verify(key)

    def test_all_record_types(self, keystore):
        key = keystore.attestation_key
        records = [BranchRecord(1, 2), AddressRecord(3, 4),
                   LoopRecord(5, 6), SpecRecord(0, 9)]
        decoded, _ = decode_report(encode_report(sample_report(key, records)))
        assert decoded.cflog.records == records

    def test_chain_roundtrip(self, keystore):
        key = keystore.attestation_key
        from repro.cfa.report import AttestationResult

        chain = AttestationResult(reports=[
            sample_report(key, seq=0, final=False),
            sample_report(key, seq=1, final=True),
        ])
        decoded = decode_result(encode_result(chain))
        assert len(decoded.reports) == 2
        assert decoded.verify_chain(key)

    def test_end_to_end_over_the_wire(self, keystore):
        image, bound, _, engine, verifier, _ = rap_setup("""
.entry main
main:
    mov r0, #0
    cmp r0, #0
    beq over
    nop
over:
    bkpt
""", keystore=keystore)
        result = engine.attest(b"wire-chal")
        transmitted = encode_result(result)
        received = decode_result(transmitted)
        outcome = verifier.verify(received, b"wire-chal")
        assert outcome.ok


class TestTampering:
    def test_bad_magic(self, keystore):
        data = encode_report(sample_report(keystore.attestation_key))
        with pytest.raises(WireError):
            decode_report(b"XXXX" + data[4:])

    def test_bad_version(self, keystore):
        data = bytearray(encode_report(sample_report(keystore.attestation_key)))
        data[4] = 0xFF
        with pytest.raises(WireError):
            decode_report(bytes(data))

    def test_truncation(self, keystore):
        data = encode_report(sample_report(keystore.attestation_key))
        with pytest.raises(WireError):
            decode_report(data[: len(data) // 2])

    def test_payload_bitflip_breaks_mac(self, keystore):
        key = keystore.attestation_key
        data = bytearray(encode_report(sample_report(key)))
        data[30] ^= 0x40  # somewhere inside the body
        try:
            decoded, _ = decode_report(bytes(data))
        except WireError:
            return  # structural damage is also a fine outcome
        assert not decoded.verify(key)

    def test_empty_chain(self):
        with pytest.raises(WireError):
            decode_result(b"")


class TestFuzz:
    @given(st.binary(min_size=0, max_size=200))
    @settings(deadline=None, max_examples=200)
    def test_decoder_never_crashes_unexpectedly(self, blob):
        try:
            decode_result(blob)
        except WireError:
            pass  # the only acceptable failure mode

    @given(st.binary(min_size=1, max_size=64))
    @settings(deadline=None)
    def test_valid_prefix_plus_noise(self, noise):
        from repro.tz.keystore import KeyStore

        key = KeyStore.provision().attestation_key
        data = encode_report(sample_report(key))
        try:
            decode_result(data + noise)
        except WireError:
            pass


class TestDictionaryFrames:
    """The epoch handshake's two frames: DICT (Vrf -> Prv) and DACK
    (Prv -> Vrf). Both must round-trip exactly and refuse damage with
    a WireError, never a partial parse."""

    DIGEST = bytes(range(32))

    def test_dict_frame_roundtrip(self):
        from repro.cfa.speccfa import pack_dictionary
        from repro.cfa.wire import decode_dict_frame, encode_dict_frame

        payload = pack_dictionary(
            {0: (BranchRecord(4, 8), BranchRecord(8, 4))})
        frame = encode_dict_frame(
            "fibcall", "rap-track", 3, self.DIGEST, payload)
        assert decode_dict_frame(frame) == (
            "fibcall", "rap-track", 3, self.DIGEST, payload)

    def test_dict_frame_rejects_damage(self):
        from repro.cfa.wire import decode_dict_frame, encode_dict_frame

        frame = encode_dict_frame("fibcall", "rap-track", 3,
                                  self.DIGEST, b"payload")
        for blob in (b"", b"XXXX" + frame[4:],       # bad magic
                     frame[:4] + b"\xff" + frame[5:],  # bad version
                     frame[:-1], frame + b"\x00"):   # truncated/trailing
            with pytest.raises(WireError):
                decode_dict_frame(blob)
        with pytest.raises(WireError):
            encode_dict_frame("w", "m", 1, b"short", b"")
        with pytest.raises(WireError):
            encode_dict_frame("w", "m", 1 << 32, self.DIGEST, b"")

    def test_dack_frame_roundtrip(self):
        from repro.cfa.wire import decode_dack_frame, encode_dack_frame

        frame = encode_dack_frame("prv-07", 9, self.DIGEST, b"m" * 32)
        assert decode_dack_frame(frame) == (
            "prv-07", 9, self.DIGEST, b"m" * 32)

    def test_dack_frame_rejects_damage(self):
        from repro.cfa.wire import decode_dack_frame, encode_dack_frame

        frame = encode_dack_frame("prv-07", 9, self.DIGEST, b"m" * 32)
        for blob in (b"", b"XXXX" + frame[4:],
                     frame[:4] + b"\xff" + frame[5:],
                     frame[:-1], frame + b"\x00"):
            with pytest.raises(WireError):
                decode_dack_frame(blob)
        with pytest.raises(WireError):
            encode_dack_frame("prv-07", -1, self.DIGEST, b"m" * 32)

    @given(st.binary(min_size=0, max_size=120))
    @settings(deadline=None, max_examples=120)
    def test_frame_decoders_never_crash_unexpectedly(self, blob):
        from repro.cfa.wire import decode_dack_frame, decode_dict_frame

        for decode in (decode_dict_frame, decode_dack_frame):
            try:
                decode(blob)
            except WireError:
                pass  # the only acceptable failure mode

    def test_compressed_report_expands_after_the_wire(self, keystore):
        """A chain compressed under a dictionary survives the report
        codec and expands back to the exact original stream — the wire
        never needs to know what the SpecRecords mean."""
        from repro.cfa.speccfa import compress, expand, mine_subpaths

        key = keystore.attestation_key
        records = [BranchRecord(4, 8), BranchRecord(8, 4)] * 6
        dictionary = mine_subpaths(records)
        compressed = compress(records, dictionary)
        assert any(isinstance(r, SpecRecord) for r in compressed)
        decoded, _ = decode_report(
            encode_report(sample_report(key, compressed)))
        assert decoded.verify(key)
        assert decoded.cflog.records == compressed
        assert expand(decoded.cflog.records, dictionary) == records
