"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.asm import assemble, link
from repro.asm.assembler import assemble_and_link
from repro.baselines.naive_mtb import NaiveMtbEngine
from repro.baselines.traces import TracesEngine, rewrite_for_traces
from repro.cfa.engine import EngineConfig, RapTrackEngine
from repro.cfa.verifier import NaiveVerifier, Verifier
from repro.core.classify import classify_module
from repro.core.pipeline import RapTrackConfig, transform
from repro.machine.mcu import MCU
from repro.trace.groundtruth import GroundTruthTracer
from repro.tz.keystore import KeyStore
from repro.workloads import load_workload
from repro.workloads.base import make_mcu


@pytest.fixture
def keystore():
    return KeyStore.provision()


def run_source(source: str, max_instructions: int = 1_000_000) -> MCU:
    """Assemble, link, and run a bare program; returns the MCU."""
    image = assemble_and_link(source)
    mcu = MCU(image, max_instructions=max_instructions)
    mcu.run()
    return mcu


def rap_setup(source_or_workload, rap_config: RapTrackConfig = None,
              engine_config: EngineConfig = None, keystore=None):
    """Full RAP-Track pipeline over source text or a Workload.

    Returns (image, bound_map, mcu, engine, verifier, ground_truth).
    """
    keystore = keystore or KeyStore.provision()
    if isinstance(source_or_workload, str):
        module = assemble(source_or_workload)
        workload = None
    else:
        workload = source_or_workload
        module = workload.module()
    result = transform(module, rap_config)
    image = link(result.module)
    bound = result.rmap.bind(image)
    mcu = make_mcu(image, workload) if workload else MCU(image)
    tracer = GroundTruthTracer(record_all=True)
    mcu.cpu.retire_hooks.append(tracer.on_retire)
    engine = RapTrackEngine(mcu, keystore, bound, engine_config)
    verifier = Verifier(image, bound, keystore.attestation_key)
    return image, bound, mcu, engine, verifier, tracer


def traces_setup(source_or_workload, engine_config: EngineConfig = None,
                 keystore=None):
    """Full TRACES pipeline; same return shape as rap_setup."""
    keystore = keystore or KeyStore.provision()
    if isinstance(source_or_workload, str):
        module = assemble(source_or_workload)
        workload = None
    else:
        workload = source_or_workload
        module = workload.module()
    classification = classify_module(module)
    rewritten, rmap = rewrite_for_traces(module, classification)
    image = link(rewritten)
    bound = rmap.bind(image)
    mcu = make_mcu(image, workload) if workload else MCU(image)
    tracer = GroundTruthTracer(record_all=True)
    mcu.cpu.retire_hooks.append(tracer.on_retire)
    engine = TracesEngine(mcu, keystore, bound, engine_config)
    verifier = Verifier(image, bound, keystore.attestation_key)
    return image, bound, mcu, engine, verifier, tracer


def naive_setup(source_or_workload, engine_config: EngineConfig = None,
                keystore=None):
    """Naive-MTB pipeline over the unmodified binary."""
    keystore = keystore or KeyStore.provision()
    if isinstance(source_or_workload, str):
        module = assemble(source_or_workload)
        workload = None
    else:
        workload = source_or_workload
        module = workload.module()
    image = link(module)
    mcu = make_mcu(image, workload) if workload else MCU(image)
    tracer = GroundTruthTracer(record_all=True)
    mcu.cpu.retire_hooks.append(tracer.on_retire)
    engine = NaiveMtbEngine(mcu, keystore, engine_config)
    verifier = NaiveVerifier(image, keystore.attestation_key)
    return image, None, mcu, engine, verifier, tracer


def text_path(image, tracer):
    """Ground-truth executed addresses restricted to the text section."""
    lo, hi = image.section_ranges["text"]
    return [pc for pc in tracer.pcs if lo <= pc < hi]


def assert_lossless(image, engine, verifier, tracer, challenge=b"test-ch"):
    """Attest + verify + compare the reconstructed path to ground truth."""
    result = engine.attest(challenge)
    outcome = verifier.verify(result, challenge)
    assert outcome.authenticated, "report chain failed authentication"
    assert outcome.lossless, f"replay failed: {outcome.error}"
    assert not outcome.violations, outcome.violations[:3]
    assert outcome.path == text_path(image, tracer), "path != ground truth"
    return result, outcome
