"""Tests for the extended ALU/memory operations (adc/sbc/bic/ror, halfwords)."""

import hypothesis.strategies as st
import pytest
from hypothesis import given

from repro.isa import alu
from conftest import run_source

u32 = st.integers(min_value=0, max_value=0xFFFFFFFF)


def run(body, extra=""):
    return run_source(".entry main\nmain:\n" + body + "\n    bkpt\n" + extra)


class TestCarryChain:
    def test_adc_propagates_carry(self):
        # 64-bit add: 0xFFFFFFFF_00000001 + 0x00000000_FFFFFFFF
        mcu = run("""
    mov32 r0, #0x00000001
    mov32 r1, #0xFFFFFFFF
    mov32 r2, #0xFFFFFFFF
    mov r3, #0
    add r4, r0, r2            ; low word (sets carry)
    adc r5, r1, r3            ; high word + carry
""")
        assert mcu.cpu.regs[4] == 0x00000000
        assert mcu.cpu.regs[5] == 0x00000000  # 0xFFFFFFFF + 0 + 1 wraps

    def test_adc_without_carry(self):
        mcu = run("""
    mov r0, #1
    add r1, r0, r0            ; no carry out
    adc r2, r0, r0            ; 1 + 1 + 0
""")
        assert mcu.cpu.regs[2] == 2

    def test_sbc_borrows(self):
        # 64-bit subtract: (0x1_00000000) - 1 = 0x0_FFFFFFFF
        mcu = run("""
    mov r0, #0                ; low(a)
    mov r1, #1                ; high(a)
    mov r2, #1                ; low(b)
    mov r3, #0                ; high(b)
    sub r4, r0, r2            ; low diff (borrows: carry clear)
    sbc r5, r1, r3            ; high diff - borrow
""")
        assert mcu.cpu.regs[4] == 0xFFFFFFFF
        assert mcu.cpu.regs[5] == 0


class TestBitOps:
    def test_bic(self):
        mcu = run("""
    mov r0, #0b1111
    mov r1, #0b0101
    bic r2, r0, r1
""")
        assert mcu.cpu.regs[2] == 0b1010

    def test_ror(self):
        mcu = run("""
    mov r0, #1
    ror r1, r0, #1
    mov32 r2, #0x80000001
    ror r3, r2, #4
""")
        assert mcu.cpu.regs[1] == 0x80000000
        assert mcu.cpu.regs[3] == 0x18000000

    @given(u32, st.integers(min_value=0, max_value=64))
    def test_ror_property(self, value, amount):
        result, _ = alu.ror(value, amount, False)
        k = amount % 32
        expected = ((value >> k) | (value << (32 - k))) & 0xFFFFFFFF \
            if k else value
        assert result == expected


class TestHalfwords:
    def test_strh_ldrh_roundtrip(self):
        mcu = run("""
    ldr r0, =buf
    mov32 r1, #0x12345678
    strh r1, [r0]
    ldrh r2, [r0]
    ldr r3, [r0]
""", extra="\n.data\nbuf: .word 0\n")
        assert mcu.cpu.regs[2] == 0x5678  # truncated to 16 bits
        assert mcu.cpu.regs[3] == 0x5678  # upper half untouched (was 0)

    def test_ldrh_with_index(self):
        mcu = run("""
    ldr r0, =buf
    mov r1, #2
    ldrh r2, [r0, r1]
""", extra="\n.data\nbuf: .word 0x9ABC1234\n")
        assert mcu.cpu.regs[2] == 0x9ABC
