"""Differential tests: streaming verification ≡ one-shot verification.

The fleet service leans on :class:`StreamingVerifier` consuming a
chain chunk-at-a-time being *semantically identical* to handing the
whole :class:`AttestationResult` to ``Verifier.verify`` — same
authentication outcome, same replay, same violations, same path. These
tests pin that equivalence across workloads, methods, honest and
attacked executions, and damaged chains.
"""

import pytest

from repro.cfa.engine import EngineConfig
from repro.cfa.streaming import StreamError, StreamingVerifier
from repro.cfa.wire import encode_report
from repro.workloads import load_workload, vulnerable
from conftest import naive_setup, rap_setup, traces_setup

CHALLENGE = b"diff-chal"
SETUPS = {"rap-track": rap_setup, "traces": traces_setup,
          "naive-mtb": naive_setup}


def attest(workload_name, method="rap-track", attacked=False,
           watermark=512):
    """Attest one execution; returns (result, verifier)."""
    workload = load_workload(workload_name)
    image, _, mcu, engine, verifier, _ = SETUPS[method](
        workload, engine_config=EngineConfig(watermark=watermark))
    if attacked:
        mcu.mmio.device("uart").set_feed(vulnerable.attack_feed(image))
    return engine.attest(CHALLENGE), verifier


def one_shot(verifier, result, challenge=CHALLENGE):
    return verifier.verify(result, challenge)


def streamed(verifier, result, challenge=CHALLENGE):
    """Chunk-at-a-time: each report crosses the wire codec."""
    stream = StreamingVerifier(verifier, challenge)
    for report in result.reports:
        stream.feed_bytes(encode_report(report))
    return stream.finish()


def assert_equivalent(a, b):
    assert a.authenticated == b.authenticated
    assert a.lossless == b.lossless
    assert a.error == b.error
    assert ([(v.kind, v.address, v.detail) for v in a.violations]
            == [(v.kind, v.address, v.detail) for v in b.violations])
    assert a.consumed == b.consumed
    assert a.path == b.path


class TestHonestEquivalence:
    @pytest.mark.parametrize(
        "workload", ["fibcall", "prime", "crc32", "bitcount", "vulnerable"])
    def test_rap_track(self, workload):
        result, verifier = attest(workload)
        assert result.reports  # some workloads compress to one report
        a, b = one_shot(verifier, result), streamed(verifier, result)
        assert a.lossless and not a.violations
        assert_equivalent(a, b)

    @pytest.mark.parametrize("workload", ["fibcall", "prime"])
    def test_traces(self, workload):
        result, verifier = attest(workload, method="traces")
        a, b = one_shot(verifier, result), streamed(verifier, result)
        assert a.lossless
        assert_equivalent(a, b)

    def test_naive_mtb(self):
        result, verifier = attest("fibcall", method="naive-mtb")
        a, b = one_shot(verifier, result), streamed(verifier, result)
        assert_equivalent(a, b)


class TestAttackEquivalence:
    def test_rop_attack_detected_identically(self):
        result, verifier = attest("vulnerable", attacked=True)
        a, b = one_shot(verifier, result), streamed(verifier, result)
        assert a.authenticated  # genuine device, genuine MACs
        assert a.violations or not a.lossless  # ...but the path is bad
        assert_equivalent(a, b)


class TestDamagedChains:
    def test_tampered_mac_rejected_by_both(self):
        result, verifier = attest("fibcall")
        result.reports[1].mac = bytes(32)
        assert not one_shot(verifier, result).authenticated
        with pytest.raises(StreamError, match="bad MAC"):
            streamed(verifier, result)

    def test_wrong_challenge_rejected_by_both(self):
        result, verifier = attest("fibcall")
        assert not one_shot(verifier, result, b"other-chal").authenticated
        with pytest.raises(StreamError, match="challenge"):
            streamed(verifier, result, b"other-chal")

    def test_dropped_report_rejected_by_both(self):
        result, verifier = attest("fibcall")
        del result.reports[1]
        assert not one_shot(verifier, result).authenticated
        with pytest.raises(StreamError, match="out-of-order"):
            streamed(verifier, result)
