"""Superblock JIT: discovery, differential exactness, invalidation.

The contract under test is *bit-identical execution*: for any program,
running with the JIT enabled must produce exactly the same architectural
state (registers, flags, cycle count, retired count), the same
ground-truth retire stream, and the same faults at the same points as
the pure interpreter.  A hypothesis generator drives that over random
straight-line loop bodies (which is precisely the shape the compiler
specializes); fixed cases pin memory ops, stack ops, faults mid-block,
and the fallback/invalidation machinery.
"""

from __future__ import annotations

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.asm.assembler import assemble_and_link
from repro.machine.faults import MemFault
from repro.machine.jit import NOJIT, discover_superblock
from repro.machine.jit.runtime import HOT_THRESHOLD
from repro.machine.mcu import MCU
from repro.machine.memmap import NS_RAM_BASE, RODATA_BASE
from repro.trace.groundtruth import GroundTruthTracer


def run_one(image, enable_jit, max_instructions=1_000_000):
    """Run a fresh MCU over ``image``; captures result or fault."""
    mcu = MCU(image, max_instructions=max_instructions,
              enable_jit=enable_jit)
    tracer = GroundTruthTracer(record_all=True)
    mcu.cpu.retire_hooks.append(tracer.on_retire)
    try:
        result = mcu.run()
        error = None
    except Exception as exc:  # noqa: BLE001 — compared across tiers
        result = None
        error = exc
    return mcu, tracer, result, error


def assert_identical(source, require_compiles=True,
                     max_instructions=1_000_000):
    """Run ``source`` under both tiers; assert bit-identical outcomes."""
    image = assemble_and_link(source)
    m0, t0, r0, e0 = run_one(image, False, max_instructions)
    m1, t1, r1, e1 = run_one(image, True, max_instructions)
    assert type(e0) is type(e1), (e0, e1)
    assert str(e0) == str(e1)
    if r0 is not None:
        assert (r0.cycles, r0.instructions, r0.exit_reason) == \
               (r1.cycles, r1.instructions, r1.exit_reason)
    assert m0.cpu.regs == m1.cpu.regs
    assert m0.cpu.flags.as_tuple() == m1.cpu.flags.as_tuple()
    assert m0.cpu.cycles == m1.cpu.cycles
    assert m0.cpu.retired == m1.cpu.retired
    assert t0.pcs == t1.pcs
    assert t0.transfers == t1.transfers
    if require_compiles:
        assert m1.jit.compiles > 0, "JIT never engaged — test is vacuous"
    return m0, m1


LOOP = """.entry main
main:
    mov r7, #6
loop:
{body}
    sub r7, r7, #1
    cmp r7, #0
    bne loop
    bkpt
"""


class TestDiscovery:
    def test_straight_line_block_shape(self):
        image = assemble_and_link(
            ".entry main\nmain:\n    mov r0, #1\n    add r1, r0, r0\n"
            "    mul r2, r1, r1\n    b main\n")
        block = discover_superblock(image, image.entry)
        assert block is not None
        assert block.entry == image.entry
        assert len(block.body) == 3
        assert block.terminator is not None
        assert block.pcs == tuple(sorted(block.pcs))

    def test_block_ends_before_bkpt(self):
        image = assemble_and_link(
            ".entry main\nmain:\n    mov r0, #1\n    mov r1, #2\n"
            "    bkpt\n")
        block = discover_superblock(image, image.entry)
        assert block is not None
        assert block.terminator is None
        assert len(block.body) == 2  # bkpt itself is interpreted

    def test_too_small_without_terminator_declined(self):
        image = assemble_and_link(
            ".entry main\nmain:\n    mov r0, #1\n    bkpt\n")
        assert discover_superblock(image, image.entry) is None


class TestDifferentialFixed:
    def test_alu_and_flags(self):
        assert_identical(LOOP.format(body="""
    mov r0, #200
    add r1, r0, r0
    adc r2, r1, r0
    sub r3, r1, r0
    sbc r4, r3, r0
    rsb r5, r0, #1
    and r6, r1, r3
    orr r6, r6, r5
    eor r6, r6, r1
    bic r6, r6, r5
    mvn r6, r6
    cmp r6, r1
"""))

    def test_shifts_and_mul(self):
        assert_identical(LOOP.format(body="""
    mov r0, #29
    mov r1, #3
    lsl r2, r0, r1
    lsr r3, r2, r1
    asr r4, r2, r1
    ror r5, r0, r1
    mul r6, r1, r1
"""))

    def test_memory_roundtrip(self):
        assert_identical(LOOP.format(body=f"""
    mov32 r0, #{NS_RAM_BASE:#x}
    mov r1, #170
    str r1, [r0]
    ldr r2, [r0, #0]
    strb r1, [r0, #8]
    ldrb r3, [r0, #8]
    strh r1, [r0, #12]
    ldrh r4, [r0, #12]
"""))

    def test_push_pop(self):
        assert_identical(LOOP.format(body="""
    mov r0, #11
    mov r1, #22
    mov r2, #33
    push {r0, r1, r2}
    mov r0, #0
    mov r1, #0
    pop {r0, r1, r2}
"""))

    def test_calls_and_returns(self):
        assert_identical(""".entry main
main:
    mov r7, #6
loop:
    bl helper
    sub r7, r7, #1
    cmp r7, #0
    bne loop
    bkpt
helper:
    add r0, r0, #1
    mul r1, r0, r0
    bx lr
""")

    def test_pop_into_pc(self):
        assert_identical(""".entry main
main:
    mov r7, #6
loop:
    bl helper
    sub r7, r7, #1
    cmp r7, #0
    bne loop
    bkpt
helper:
    push {lr}
    add r0, r0, #3
    eor r1, r0, r7
    pop {pc}
""")

    def test_fault_mid_block_is_exact(self):
        """A store walks off the end of RAM and faults inside a compiled
        block; every architectural effect up to the faulting instruction
        must match the interpreter exactly."""
        top = NS_RAM_BASE + 0x8_0000
        source = f""".entry main
main:
    mov32 r1, #{top - 0x1000:#x}
    mov r2, #1
    mov r0, #0
loop:
    str r2, [r1]
    add r0, r0, r2
    lsl r1, r1, #0
    add r1, r1, #255
    add r1, r1, #1
    b loop
"""
        m0, m1 = assert_identical(source)
        assert isinstance(run_one(assemble_and_link(source), True)[3],
                          MemFault)
        assert m0.cpu.regs[15] == m1.cpu.regs[15]

    def test_write_to_rodata_faults_identically(self):
        assert_identical(f""".entry main
main:
    mov r7, #6
    mov32 r1, #{NS_RAM_BASE:#x}
loop:
    str r7, [r1]
    add r1, r1, #4
    sub r7, r7, #1
    cmp r7, #0
    bne loop
    mov32 r1, #{RODATA_BASE:#x}
    str r7, [r1]
    bkpt
""")


class TestFallback:
    def test_unknown_hook_disables_dispatch(self):
        """A bare-closure retire hook (no batch protocol) must force the
        interpreter tier — and the run must still be correct."""
        source = LOOP.format(body="    add r0, r0, #1\n    mul r1, r0, r0")
        image = assemble_and_link(source)

        seen = []
        mcu = MCU(image, enable_jit=True)
        mcu.cpu.retire_hooks.append(lambda ev: seen.append(ev.src))
        mcu.run()
        assert mcu.jit.compiles == 0  # never even considered an entry
        assert not mcu.jit.blocks

        m0, _, r0, _ = run_one(assemble_and_link(source), False)
        assert len(seen) == r0.instructions
        assert m0.cpu.regs[:8] == mcu.cpu.regs[:8]

    def test_hook_added_mid_run_respected(self):
        """Hooks registered by an earlier hook-free run don't leak: a
        fresh MCU on the same image reuses the shared code cache."""
        source = LOOP.format(body="    add r0, r0, #1\n    mul r1, r0, r0")
        image = assemble_and_link(source)
        mcu1 = MCU(image, enable_jit=True)
        mcu1.run()
        assert mcu1.jit.compiles > 0
        mcu2 = MCU(image, enable_jit=True)
        mcu2.run()
        # every block mcu1 compiled is reused by identity, not recompiled
        shared = {e: b for e, b in mcu1.jit.blocks.items() if b is not NOJIT}
        assert shared
        for entry, block in shared.items():
            assert mcu2.jit.blocks.get(entry) is block
        assert mcu1.cpu.regs == mcu2.cpu.regs


class TestInvalidation:
    SOURCE = LOOP.format(body="    add r0, r0, #1\n    eor r1, r0, r7")

    def test_invalidate_all_drops_blocks_and_recompiles(self):
        image = assemble_and_link(self.SOURCE)
        mcu = MCU(image, enable_jit=True)
        mcu.run()
        first = mcu.jit.compiles
        assert first > 0 and mcu.jit.blocks
        dropped = mcu.invalidate_jit()
        assert dropped == first
        assert not mcu.jit.blocks
        assert mcu.jit.invalidations == 1
        mcu.reset()
        mcu.run()
        assert mcu.jit.compiles == 2 * first  # recompiled from scratch

    def test_invalidate_by_address_is_selective(self):
        image = assemble_and_link(""".entry main
main:
    mov r7, #6
loop:
    bl helper
    sub r7, r7, #1
    cmp r7, #0
    bne loop
    bkpt
helper:
    add r0, r0, #1
    mul r1, r0, r0
    bx lr
""")
        mcu = MCU(image, enable_jit=True)
        mcu.run()
        blocks = [b for b in mcu.jit.blocks.values() if b is not NOJIT]
        assert len(blocks) >= 2
        victim = blocks[0]
        survivors = [b for b in blocks if b is not victim
                     and not (b.entry <= victim.entry < b.end)]
        assert survivors, "need a block not covering the victim address"
        dropped = mcu.invalidate_jit(victim.entry)
        assert dropped >= 1
        assert dropped < len(blocks)

    def test_code_write_triggers_invalidation(self):
        from repro.machine.memmap import World

        image = assemble_and_link(self.SOURCE)
        mcu = MCU(image, enable_jit=True)
        mcu.run()
        assert mcu.jit.compiles > 0
        entry = next(b.entry for b in mcu.jit.blocks.values()
                     if b is not NOJIT)
        mcu.memory.write(entry, 0, 2, World.NONSECURE)
        assert mcu.jit.invalidations == 1
        assert entry not in mcu.jit.blocks

    def test_invalidation_clears_sibling_runtimes(self):
        image = assemble_and_link(self.SOURCE)
        a = MCU(image, enable_jit=True)
        b = MCU(image, enable_jit=True)
        a.run()
        b.run()
        assert a.jit.blocks and b.jit.blocks
        a.invalidate_jit()
        assert not b.jit.blocks  # shared image: stale code is stale for all

    def test_nojit_entries_warm_back_up(self):
        image = assemble_and_link(self.SOURCE)
        mcu = MCU(image, enable_jit=True)
        mcu.run()
        # the halting bkpt is never worth compiling: once hot, the
        # NOJIT verdict is cached so the warmth counter stops churning
        bkpt_pc = mcu.cpu.regs[15]
        for _ in range(HOT_THRESHOLD):
            verdict = mcu.jit.consider(bkpt_pc)
        assert verdict is NOJIT
        assert mcu.jit.blocks[bkpt_pc] is NOJIT
        # address-selective invalidation drops NOJIT verdicts too — a
        # rewrite can make a previously unprofitable address compilable
        mcu.invalidate_jit(bkpt_pc)
        assert bkpt_pc not in mcu.jit.blocks
        mcu.reset()
        mcu.run()
        assert mcu.jit.blocks  # warms up and recompiles after the flush


# -- hypothesis: cycle pre-summing == per-instruction accounting ---------

_REG = st.integers(min_value=0, max_value=5).map("r{}".format)
_IMM = st.integers(min_value=0, max_value=255)

_OPS = [
    ("mov {d}, #{imm}", True),
    ("mov {d}, {a}", False),
    ("mvn {d}, {a}", False),
    ("add {d}, {a}, {b}", False),
    ("add {d}, {a}, #{imm}", True),
    ("sub {d}, {a}, {b}", False),
    ("sub {d}, {a}, #{imm}", True),
    ("adc {d}, {a}, {b}", False),
    ("sbc {d}, {a}, {b}", False),
    ("rsb {d}, {a}, #{imm}", True),
    ("and {d}, {a}, {b}", False),
    ("orr {d}, {a}, {b}", False),
    ("eor {d}, {a}, {b}", False),
    ("bic {d}, {a}, {b}", False),
    ("lsl {d}, {a}, {b}", False),
    ("lsr {d}, {a}, {b}", False),
    ("asr {d}, {a}, {b}", False),
    ("ror {d}, {a}, {b}", False),
    ("mul {d}, {a}, {b}", False),
    ("cmp {a}, {b}", False),
    ("cmp {a}, #{imm}", True),
]


@st.composite
def _random_instr(draw):
    template, has_imm = draw(st.sampled_from(_OPS))
    return "    " + template.format(
        d=draw(_REG), a=draw(_REG), b=draw(_REG),
        imm=draw(_IMM) if has_imm else 0)


@given(st.lists(_random_instr(), min_size=2, max_size=12))
@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_random_block_bodies_are_bit_identical(instrs):
    """Compiled pre-summed cycles/retires and flag/register effects must
    equal per-instruction interpretation for arbitrary ALU bodies."""
    assert_identical(LOOP.format(body="\n".join(instrs)))


@given(st.integers(min_value=2, max_value=40))
@settings(max_examples=15, deadline=None)
def test_block_length_never_overcounts(n):
    """A compiled block of n adds retires exactly n+loop-overhead
    instructions per iteration — cycle totals scale linearly."""
    body = "\n".join("    add r0, r0, #1" for _ in range(n))
    m0, m1 = assert_identical(LOOP.format(body=body))
    assert m0.cpu.retired == m1.cpu.retired


def test_hot_threshold_is_lazy():
    """An entry is interpreted HOT_THRESHOLD-1 times before compiling."""
    image = assemble_and_link(LOOP.format(
        body="    add r0, r0, #1\n    eor r1, r0, r7"))
    mcu = MCU(image, enable_jit=True)
    # consider() warms without compiling until the threshold
    for _ in range(HOT_THRESHOLD - 1):
        assert mcu.jit.consider(image.entry) is NOJIT
        assert mcu.jit.compiles == 0
    blk = mcu.jit.consider(image.entry)
    assert blk is not NOJIT
    assert mcu.jit.compiles == 1
