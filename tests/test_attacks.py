"""Security tests: the adversary model of paper section III/IV-F."""

import pytest

from repro.asm import link
from repro.cfa.engine import RapTrackEngine
from repro.cfa.verifier import Verifier
from repro.core.pipeline import transform
from repro.machine.faults import MemFault
from repro.tz.keystore import KeyStore
from repro.workloads import vulnerable
from repro.workloads.base import make_mcu
from conftest import rap_setup, traces_setup


def _vulnerable_setup(keystore, attack: bool, setup=rap_setup):
    workload = vulnerable.make()
    image, bound, mcu, engine, verifier, tracer = setup(
        workload, keystore=keystore)
    uart = mcu.mmio.device("uart")
    feed = (vulnerable.attack_feed(image) if attack
            else vulnerable.benign_feed())
    uart.set_feed(feed)
    return image, mcu, engine, verifier


class TestRopDetection:
    def test_benign_run_is_clean(self, keystore):
        image, mcu, engine, verifier = _vulnerable_setup(keystore, False)
        result = engine.attest(b"c")
        gpio = mcu.mmio.device("gpio")
        assert gpio.latches[0] == vulnerable.STATUS_NORMAL
        outcome = verifier.verify(result, b"c")
        assert outcome.ok

    def test_rop_attack_detected_rap_track(self, keystore):
        image, mcu, engine, verifier = _vulnerable_setup(keystore, True)
        result = engine.attest(b"c")
        gpio = mcu.mmio.device("gpio")
        # the exploit actually fires on the device...
        assert gpio.latches[0] == vulnerable.STATUS_UNLOCKED
        outcome = verifier.verify(result, b"c")
        # ...and the report is authentic, losslessly replayable, and
        # carries the evidence: CFA reports attacks, it can't hide them
        assert outcome.authenticated
        assert outcome.lossless
        assert any(v.kind == "rop-return" for v in outcome.violations)
        assert not outcome.ok

    def test_rop_attack_detected_traces(self, keystore):
        image, mcu, engine, verifier = _vulnerable_setup(
            keystore, True, setup=traces_setup)
        result = engine.attest(b"c")
        outcome = verifier.verify(result, b"c")
        assert outcome.authenticated and outcome.lossless
        assert any(v.kind == "rop-return" for v in outcome.violations)

    def test_violation_names_the_gadget(self, keystore):
        image, mcu, engine, verifier = _vulnerable_setup(keystore, True)
        result = engine.attest(b"c")
        outcome = verifier.verify(result, b"c")
        gadget = image.addr_of("maintenance_unlock")
        assert any(f"{gadget:#010x}" in v.detail
                   for v in outcome.violations)

    def test_hijacked_return_is_in_the_log(self, keystore):
        from repro.cfa.cflog import BranchRecord

        image, mcu, engine, verifier = _vulnerable_setup(keystore, True)
        result = engine.attest(b"c")
        gadget = image.addr_of("maintenance_unlock")
        assert any(isinstance(r, BranchRecord) and r.dst == gadget
                   for r in result.cflog)


class TestCodeModification:
    SELF_PATCH = """
.entry main
main:
    adr r0, target
    mov32 r1, #0xBAD
    str r1, [r0]
target:
    bkpt
"""

    def test_write_to_locked_code_faults(self, keystore):
        _, _, _, engine, _, _ = rap_setup(self.SELF_PATCH,
                                          keystore=keystore)
        with pytest.raises(MemFault):
            engine.attest(b"c")

    def test_premodified_binary_fails_hmem(self, keystore):
        # the device runs a modified binary; the verifier expects the
        # reference one -> H_MEM mismatch
        good = rap_setup("""
.entry main
main:
    mov r0, #1
    bkpt
""", keystore=keystore)
        evil = rap_setup("""
.entry main
main:
    mov r0, #2
    bkpt
""", keystore=keystore)
        result = evil[3].attest(b"c")  # evil engine
        outcome = good[4].verify(result, b"c")  # good verifier
        assert not outcome.authenticated


class TestTraceInfrastructureProtection:
    def test_ns_cannot_write_trace_buffer(self, keystore):
        from repro.machine.memmap import MTB_SRAM_BASE

        source = f"""
.entry main
main:
    mov32 r0, #{MTB_SRAM_BASE}
    mov r1, #0
    str r1, [r0]
    bkpt
"""
        _, _, _, engine, _, _ = rap_setup(source, keystore=keystore)
        with pytest.raises(MemFault):
            engine.attest(b"c")

    def test_ns_cannot_read_trace_buffer(self, keystore):
        from repro.machine.memmap import MTB_SRAM_BASE

        source = f"""
.entry main
main:
    mov32 r0, #{MTB_SRAM_BASE}
    ldr r1, [r0]
    bkpt
"""
        _, _, _, engine, _, _ = rap_setup(source, keystore=keystore)
        with pytest.raises(MemFault):
            engine.attest(b"c")


class TestJopDetection:
    def test_corrupted_function_pointer_flagged(self, keystore):
        # the app loads a function pointer from RAM; the "attacker"
        # (simulated via a pre-poisoned data word read path) redirects
        # it to mid-function code
        source = """
.entry main
main:
    push {r4, lr}
    ldr r2, =fptr
    ldr r3, [r2]
    blx r3
    pop {r4, pc}
normal:
    mov r4, #1
    bx lr
unused:
    mov r4, #2
gadget:
    add r4, r4, #40
    bx lr
.data
fptr: .word normal
"""
        image, bound, mcu, engine, verifier, _ = rap_setup(
            source, keystore=keystore)
        # corrupt the pointer before attestation (data is attacker-held)
        mcu.memory.poke(image.addr_of("fptr"), image.addr_of("gadget"), 4)
        result = engine.attest(b"c")
        outcome = verifier.verify(result, b"c")
        assert outcome.authenticated
        assert any(v.kind in ("jop-call", "rop-return")
                   for v in outcome.violations)
