"""Tests: `BNDS1` certificates — codec, signing, store, admission screen."""

import pytest

from repro.cfa.cflog import BranchRecord
from repro.core.analysis import (
    BoundsCertificate,
    BoundsRegistry,
    bounds_key,
    certificate_path,
    certify_workload,
    decode_certificate,
    load_certificate,
    screen_records,
    sign_certificate,
    store_certificate,
    verify_certificate,
)

KEY = bounds_key(b"test-seed")


def make_cert(**overrides):
    base = dict(
        workload="demo", method="rap-track",
        image_digest=bytes(range(32)),
        max_stack_depth=3, max_log_records=100, max_log_bytes=800,
        recursion_cycles=(("even", "odd"), ("fib",)),
        depth_exact=False,
        call_keys=(0x200010, 0x200020), return_keys=(0x200030,),
    )
    base.update(overrides)
    return BoundsCertificate(**base)


class TestCodec:
    def test_round_trip(self):
        cert = make_cert()
        blob = sign_certificate(cert, KEY)
        assert verify_certificate(blob, KEY) == cert

    def test_unbounded_sentinel_round_trips(self):
        cert = make_cert(max_stack_depth=None, max_log_records=None,
                         max_log_bytes=None)
        back = verify_certificate(sign_certificate(cert, KEY), KEY)
        assert back.max_stack_depth is None
        assert back.max_log_records is None
        assert not back.bounded

    def test_tampering_anywhere_fails_verification(self):
        blob = bytearray(sign_certificate(make_cert(), KEY))
        for pos in range(len(blob)):
            mutated = bytearray(blob)
            mutated[pos] ^= 0x41
            with pytest.raises(ValueError):
                verify_certificate(bytes(mutated), KEY)

    def test_wrong_key_rejected(self):
        blob = sign_certificate(make_cert(), KEY)
        with pytest.raises(ValueError, match="MAC"):
            verify_certificate(blob, bounds_key(b"other-seed"))

    def test_truncation_rejected(self):
        blob = sign_certificate(make_cert(), KEY)
        for cut in (4, len(blob) // 2, len(blob) - 1):
            with pytest.raises(ValueError):
                decode_certificate(blob[:cut])

    def test_trailing_bytes_rejected(self):
        blob = sign_certificate(make_cert(), KEY)
        with pytest.raises(ValueError, match="trailing"):
            decode_certificate(blob + b"\x00")

    def test_encoder_canonicalizes_key_order(self):
        # the in-memory tuple order does not leak into the wire: one
        # certificate has exactly one byte representation
        a = sign_certificate(make_cert(call_keys=(0x200020, 0x200010)), KEY)
        b = sign_certificate(make_cert(call_keys=(0x200010, 0x200020)), KEY)
        assert a == b

    def test_unsorted_frame_keys_rejected_on_the_wire(self):
        # swap the two (adjacent, little-endian u32) call keys inside
        # the signed blob: the decoder must refuse the non-canonical
        # byte order before any MAC work
        blob = sign_certificate(make_cert(), KEY)
        lo = (0x200010).to_bytes(4, "little")
        hi = (0x200020).to_bytes(4, "little")
        swapped = blob.replace(lo + hi, hi + lo)
        assert swapped != blob
        with pytest.raises(ValueError, match="sorted"):
            decode_certificate(swapped)


class TestStore:
    def test_content_addressed_round_trip(self, tmp_path):
        cert = make_cert()
        path = store_certificate(str(tmp_path), cert, KEY)
        assert path == certificate_path(str(tmp_path), cert.image_digest,
                                        cert.method)
        assert load_certificate(str(tmp_path), cert.image_digest,
                                cert.method, KEY) == cert

    def test_certify_workload_pins_image_digest(self, tmp_path):
        from repro.crypto.hashing import measure_image
        from repro.eval.runner import prepare
        from repro.workloads import load_workload

        cert = certify_workload("crc32", "rap-track",
                                store_root=str(tmp_path))
        image, _ = prepare(load_workload("crc32"), "rap-track")
        assert cert.image_digest == measure_image(image)
        from repro.core.analysis import DEFAULT_BOUNDS_SEED
        assert load_certificate(str(tmp_path), cert.image_digest,
                                "rap-track",
                                bounds_key(DEFAULT_BOUNDS_SEED)) == cert


class TestRegistry:
    def test_admit_blob_verifies(self):
        registry = BoundsRegistry(key=KEY)
        cert = make_cert()
        registry.admit_blob(sign_certificate(cert, KEY))
        assert registry.get("demo", "rap-track") == cert
        assert registry.get("demo", "traces") is None
        assert len(registry) == 1

    def test_admit_blob_rejects_forgery(self):
        registry = BoundsRegistry(key=KEY)
        blob = sign_certificate(make_cert(), bounds_key(b"attacker"))
        with pytest.raises(ValueError):
            registry.admit_blob(blob)
        assert len(registry) == 0


class TestScreen:
    def records(self, n, key=0x100):
        return [BranchRecord(key, 0x200000 + 4 * i) for i in range(n)]

    def test_within_bounds_passes(self):
        cert = make_cert(max_log_records=10, max_log_bytes=80)
        assert screen_records(cert, self.records(10)) is None

    def test_record_flood_rejected(self):
        cert = make_cert(max_log_records=10, max_log_bytes=10_000)
        reason = screen_records(cert, self.records(11))
        assert reason is not None and reason.startswith("bounds:")
        assert "11 records" in reason

    def test_byte_flood_rejected(self):
        cert = make_cert(max_log_records=None, max_log_bytes=80)
        reason = screen_records(cert, self.records(11))
        assert reason is not None and "log bytes" in reason

    def test_unbounded_certificate_screens_nothing(self):
        cert = make_cert(max_stack_depth=None, max_log_records=None,
                         max_log_bytes=None)
        assert screen_records(cert, self.records(10_000)) is None

    def test_depth_inference_only_when_exact(self):
        call, ret = 0x200010, 0x200030
        flood = [BranchRecord(ret, 0x200000)] * 5  # 5 pops, depth >= 5
        exact = make_cert(depth_exact=True, max_stack_depth=2,
                          max_log_records=None, max_log_bytes=None)
        inexact = make_cert(depth_exact=False, max_stack_depth=2,
                            max_log_records=None, max_log_bytes=None)
        reason = screen_records(exact, flood)
        assert reason is not None and "stack depth 5" in reason
        assert screen_records(inexact, flood) is None

    def test_balanced_call_return_stream_passes(self):
        call, ret = 0x200010, 0x200030
        cert = make_cert(depth_exact=True, max_stack_depth=1,
                         max_log_records=None, max_log_bytes=None)
        balanced = [BranchRecord(call, 0x1), BranchRecord(ret, 0x2)] * 5
        assert screen_records(cert, balanced) is None

    def test_call_flood_also_rejected(self):
        call = 0x200010
        cert = make_cert(depth_exact=True, max_stack_depth=2,
                         max_log_records=None, max_log_bytes=None)
        flood = [BranchRecord(call, 0x1)] * 6
        reason = screen_records(cert, flood)
        assert reason is not None and "stack depth 6" in reason
