"""Unit tests: registers, ALU flag semantics, conditions, encoding."""

import pytest

from repro.isa import alu
from repro.isa.conditions import cond_passed, invert_cond, normalise_cond
from repro.isa.encoding import encode_instr, encode_program_bytes
from repro.isa.instructions import (
    MNEMONICS,
    Instr,
    InstrKind,
    make_instr,
)
from repro.isa.operands import Imm, Label, Mem, Reg, RegList
from repro.isa.registers import LR, PC, SP, Flags, parse_reg, reg_name


class TestRegisters:
    def test_parse_named_aliases(self):
        assert parse_reg("sp") == SP == 13
        assert parse_reg("lr") == LR == 14
        assert parse_reg("pc") == PC == 15
        assert parse_reg("fp") == 11
        assert parse_reg("ip") == 12

    def test_parse_numeric(self):
        for n in range(16):
            assert parse_reg(f"r{n}") == n

    def test_parse_case_insensitive(self):
        assert parse_reg("R7") == 7
        assert parse_reg("LR") == 14

    @pytest.mark.parametrize("bad", ["r16", "x0", "", "r-1", "reg"])
    def test_parse_rejects(self, bad):
        with pytest.raises(ValueError):
            parse_reg(bad)

    def test_reg_name_roundtrip(self):
        for n in range(16):
            assert parse_reg(reg_name(n)) == n

    def test_flags_str(self):
        assert str(Flags(True, False, True, False)) == "NzCv"

    def test_flags_copy_independent(self):
        f = Flags(z=True)
        g = f.copy()
        g.z = False
        assert f.z


class TestAlu:
    def test_add_no_flags_set(self):
        result, n, z, c, v = alu.add_with_flags(1, 2)
        assert (result, n, z, c, v) == (3, False, False, False, False)

    def test_add_carry_out(self):
        result, n, z, c, v = alu.add_with_flags(0xFFFFFFFF, 1)
        assert result == 0 and z and c and not v

    def test_add_signed_overflow(self):
        result, n, z, c, v = alu.add_with_flags(0x7FFFFFFF, 1)
        assert result == 0x80000000 and n and v and not c

    def test_sub_borrow_semantics(self):
        # ARM carry means "no borrow"
        _, _, _, c, _ = alu.sub_with_flags(5, 3)
        assert c
        _, _, _, c, _ = alu.sub_with_flags(3, 5)
        assert not c

    def test_sub_equal_sets_zero_and_carry(self):
        result, n, z, c, v = alu.sub_with_flags(42, 42)
        assert result == 0 and z and c and not n and not v

    def test_sub_signed_overflow(self):
        _, _, _, _, v = alu.sub_with_flags(0x80000000, 1)
        assert v

    def test_s32_u32(self):
        assert alu.s32(0xFFFFFFFF) == -1
        assert alu.s32(0x7FFFFFFF) == 0x7FFFFFFF
        assert alu.u32(-1) == 0xFFFFFFFF

    def test_lsl_carry(self):
        result, carry = alu.lsl(0x80000001, 1, False)
        assert result == 2 and carry

    def test_lsl_zero_amount_keeps_carry(self):
        result, carry = alu.lsl(5, 0, True)
        assert result == 5 and carry

    def test_lsl_over_32(self):
        assert alu.lsl(0xFFFFFFFF, 33, True) == (0, False)

    def test_lsr_carry(self):
        result, carry = alu.lsr(0b11, 1, False)
        assert result == 1 and carry

    def test_asr_sign_extends(self):
        result, _ = alu.asr(0x80000000, 4, False)
        assert result == 0xF8000000

    def test_asr_saturates_at_32(self):
        result, _ = alu.asr(0x80000000, 40, False)
        assert result == 0xFFFFFFFF

    def test_udiv_basic_and_by_zero(self):
        assert alu.udiv(10, 3) == 3
        assert alu.udiv(10, 0) == 0  # ARM semantics

    def test_sdiv_truncates_toward_zero(self):
        assert alu.s32(alu.sdiv(alu.u32(-7), 2)) == -3
        assert alu.s32(alu.sdiv(7, alu.u32(-2))) == -3
        assert alu.sdiv(5, 0) == 0


class TestConditions:
    def test_eq_ne(self):
        assert cond_passed("eq", Flags(z=True))
        assert not cond_passed("eq", Flags(z=False))
        assert cond_passed("ne", Flags(z=False))

    def test_unsigned_comparisons(self):
        # 5 - 3: c=1 -> hs/cs passes, lo/cc fails
        _, n, z, c, v = alu.sub_with_flags(5, 3)
        flags = Flags(n, z, c, v)
        assert cond_passed("cs", flags)
        assert cond_passed("hi", flags)
        assert not cond_passed("cc", flags)
        assert not cond_passed("ls", flags)

    def test_signed_comparisons(self):
        _, n, z, c, v = alu.sub_with_flags(alu.u32(-1), 1)  # -1 < 1
        flags = Flags(n, z, c, v)
        assert cond_passed("lt", flags)
        assert cond_passed("le", flags)
        assert not cond_passed("ge", flags)
        assert not cond_passed("gt", flags)

    def test_mi_pl_vs_vc(self):
        assert cond_passed("mi", Flags(n=True))
        assert cond_passed("pl", Flags(n=False))
        assert cond_passed("vs", Flags(v=True))
        assert cond_passed("vc", Flags(v=False))

    def test_aliases(self):
        assert normalise_cond("hs") == "cs"
        assert normalise_cond("lo") == "cc"

    def test_invert_involution(self):
        for cond in ("eq", "ne", "lt", "ge", "hi", "ls", "mi", "pl"):
            assert invert_cond(invert_cond(cond)) == cond

    def test_invert_is_complement(self):
        import itertools

        for cond in ("eq", "cs", "mi", "vs", "hi", "ge", "gt"):
            inverse = invert_cond(cond)
            for bits in itertools.product([False, True], repeat=4):
                flags = Flags(*bits)
                assert cond_passed(cond, flags) != cond_passed(inverse, flags)

    def test_unknown_condition(self):
        with pytest.raises(ValueError):
            normalise_cond("xx")


class TestInstr:
    def test_make_instr_validates_mnemonic(self):
        with pytest.raises(ValueError):
            make_instr("frobnicate")

    def test_make_instr_validates_arity(self):
        with pytest.raises(ValueError):
            make_instr("mov", Reg(0))

    def test_writes_pc_pop(self):
        assert make_instr("pop", RegList((4, PC))).writes_pc()
        assert not make_instr("pop", RegList((4, 5))).writes_pc()

    def test_writes_pc_ldr(self):
        mem = Mem(Reg(1))
        assert make_instr("ldr", Reg(PC), mem).writes_pc()
        assert not make_instr("ldr", Reg(0), mem).writes_pc()

    def test_writes_pc_branches(self):
        assert make_instr("b", Label("x")).writes_pc()
        assert make_instr("bl", Label("x")).writes_pc()
        assert make_instr("blx", Reg(3)).writes_pc()
        assert make_instr("bx", Reg(LR)).writes_pc()
        assert make_instr("cbz", Reg(0), Label("x")).writes_pc()
        assert not make_instr("add", Reg(0), Reg(0), Imm(1)).writes_pc()

    def test_direct_target(self):
        assert make_instr("b", Label("t")).direct_target() == Label("t")
        assert make_instr("bl", Label("t")).direct_target() == Label("t")
        assert make_instr("cbnz", Reg(0), Label("t")).direct_target() == Label("t")
        assert make_instr("bx", Reg(0)).direct_target() is None

    def test_is_conditional(self):
        assert make_instr("b", Label("t"), cond="eq").is_conditional()
        assert make_instr("cbz", Reg(0), Label("t")).is_conditional()
        assert not make_instr("b", Label("t")).is_conditional()

    def test_meta_does_not_affect_equality(self):
        a = make_instr("nop")
        b = make_instr("nop").with_meta(origin="x")
        assert a == b
        assert b.get_meta("origin") == "x"
        assert b.get_meta("missing", 7) == 7

    def test_sizes_are_thumb_proportioned(self):
        assert make_instr("nop").size == 2
        assert make_instr("bl", Label("x")).size == 4
        for spec in MNEMONICS.values():
            assert spec.size in (2, 4)

    def test_str_form(self):
        instr = make_instr("add", Reg(0), Reg(1), Imm(2))
        assert str(instr) == "add r0, r1, #2"
        assert str(make_instr("b", Label("loop"), cond="ne")) == "bne loop"


class TestEncoding:
    def test_deterministic(self):
        instr = make_instr("add", Reg(0), Reg(1), Imm(2))
        assert encode_instr(instr) == encode_instr(instr)

    def test_length_matches_size(self):
        for mnemonic, ops in [("nop", ()), ("bl", (Label("x"),)),
                              ("mov", (Reg(0), Imm(1)))]:
            instr = make_instr(mnemonic, *ops)
            assert len(encode_instr(instr)) == instr.size

    def test_operand_sensitivity(self):
        a = make_instr("mov", Reg(0), Imm(5))
        b = make_instr("mov", Reg(0), Imm(6))
        assert encode_instr(a) != encode_instr(b)

    def test_condition_sensitivity(self):
        a = make_instr("b", Label("x"), cond="eq")
        b = make_instr("b", Label("x"), cond="ne")
        assert encode_instr(a) != encode_instr(b)

    def test_label_resolution_sensitivity(self):
        instr = make_instr("b", Label("x"))
        one = encode_instr(instr, resolve=lambda name: 0x1000)
        two = encode_instr(instr, resolve=lambda name: 0x2000)
        assert one != two

    def test_program_bytes_concatenates(self):
        instrs = [make_instr("nop"), make_instr("bl", Label("x"))]
        blob = encode_program_bytes(instrs, resolve=lambda n: 0)
        assert len(blob) == 6


class TestOperands:
    def test_reglist_sorted_dedup(self):
        assert RegList((5, 4, 5)).regs == (4, 5)

    def test_reglist_without(self):
        assert RegList((4, 15)).without(15).regs == (4,)

    def test_reglist_contains(self):
        assert 4 in RegList((4, 5))
        assert 6 not in RegList((4, 5))

    def test_mem_str_forms(self):
        assert str(Mem(Reg(1))) == "[r1]"
        assert str(Mem(Reg(1), offset=8)) == "[r1, #8]"
        assert str(Mem(Reg(1), index=Reg(2))) == "[r1, r2]"
        assert str(Mem(Reg(1), index=Reg(2), shift=2)) == "[r1, r2, lsl #2]"

    def test_reglist_str(self):
        assert str(RegList((4, 14))) == "{r4, lr}"
