"""Backward compatibility for legacy evidence-log formats.

``tests/data/evidence-v1.log`` is a **committed** v1-format log (6
devices, 4 accepted / 2 rejected sessions, written by the PR-9-era
store: no dictionary epochs, no measurements, no policy records). The
current tree must keep that file fully alive: strict audit, service
restore, continued appends in the file's *native* format, and offline
control-plane reconstruction — all next to v3 logs in the same store.

Regenerate (only if the fixture must ever change) with::

    path.write_bytes(b"EVD1\\x01")
    store = EvidenceStore(path, audit_key(b"fleet-vrf"))
    service = FleetService(seed=b"fleet-vrf", idle_timeout=5.0,
                           store=store, nonce_scope="device")
    FleetSimulator(build_fleet_specs(6, workloads=("fibcall",), seed=3),
                   seed=7, factory=ChainFactory(watermark=256)).run(service)
"""

import shutil
from pathlib import Path

import pytest

from repro.cfa.fleet import (
    ChainFactory,
    ShardedFleetService,
    audit_key,
    build_fleet_specs,
    device_key,
    verify_evidence_trail,
)
from repro.cfa.fleet.store import EvidenceError, EvidenceStore
from repro.cfa.fleet.verify import DeviceProfile, SessionVerdict
from repro.cfa.policy import PolicyEngine, reconstruct_control_plane

FIXTURE = Path(__file__).parent / "data" / "evidence-v1.log"
SEED = b"fleet-vrf"
KEY = audit_key(SEED)


def test_fixture_is_the_committed_v1_bytes():
    data = FIXTURE.read_bytes()
    assert data[:5] == b"EVD1\x01"
    assert len(data) == 1519  # any drift means the fixture was touched


def test_v1_fixture_audits_clean():
    records = verify_evidence_trail(FIXTURE, KEY)
    assert len(records) == 6
    assert sum(r.accepted for r in records) == 4
    # v1 predates epochs, measurements, healing, and policy records
    for record in records:
        assert not record.is_policy
        assert record.epoch == 0
        assert record.measurement == b""
        assert not record.healing


def test_v1_fixture_rejects_any_bit_flip(tmp_path):
    # the MAC/chain discipline applies to legacy bytes unchanged
    data = bytearray(FIXTURE.read_bytes())
    data[len(data) // 2] ^= 0x01
    damaged = tmp_path / "evidence.log"
    damaged.write_bytes(bytes(data))
    with pytest.raises(EvidenceError):
        verify_evidence_trail(damaged, KEY)


def test_service_restores_v1_and_appends_in_native_format(tmp_path):
    store_dir = tmp_path / "store"
    store_dir.mkdir()
    shutil.copy(FIXTURE, store_dir / "evidence-00.log")
    service = ShardedFleetService(shards=1, store_dir=store_dir,
                                  seed=SEED, idle_timeout=5.0,
                                  resume=True)
    assert len(service.verdicts) == 6
    assert service.recovered_verdicts == 6
    # the restored rounds continue the device-scoped nonce sequence:
    # a fixture device attests again and the session settles normally
    spec = build_fleet_specs(6, workloads=("fibcall",), seed=3)[2]
    factory = ChainFactory(watermark=256)
    challenge = service.open_session(spec.device_id, spec.profile,
                                     device_key(spec.device_id), 0.0)
    for chunk in factory.chain(spec, challenge.nonce):
        service.submit(spec.device_id, chunk, 0.0)
    service.drain()
    assert service.verdicts[spec.device_id].accepted
    service.close()
    # the log stayed in its native v1 format and still audits clean
    log = store_dir / "evidence-00.log"
    assert log.read_bytes()[:5] == b"EVD1\x01"
    records = verify_evidence_trail(log, KEY)
    assert len(records) == 7
    assert records[-1].device_id == spec.device_id


def test_v1_log_reconstructs_next_to_a_v3_log(tmp_path):
    store_dir = tmp_path / "store"
    store_dir.mkdir()
    shutil.copy(FIXTURE, store_dir / "evidence-00.log")
    # a current-format sibling log with a session + policy decision
    v3 = EvidenceStore(store_dir / "evidence-01.log", KEY)
    verdict = SessionVerdict(
        device_id="aux-0", profile=DeviceProfile("fibcall"),
        accepted=False, authenticated=False, lossless=False,
        violations=(), reason="bad MAC", reports=1, records=4,
        path_len=4, path_digest="ab" * 16, records_digest="cd" * 16)
    session = v3.append(verdict, b"\x5c" * 32)
    engine = PolicyEngine()
    v3.append_decision(engine.observe(session)[0])
    v3.close()

    snapshot = reconstruct_control_plane(store_dir, SEED)
    assert snapshot.logs_verified == 2
    assert snapshot.session_records == 7
    assert snapshot.policy_records == 1
    assert len(snapshot.heads) == 7
    # the v1 half folds too: its rejected sessions are judged
    # retroactively (the fold is format-agnostic), the v3 half's
    # persisted decision replays exactly
    assert snapshot.states()["aux-0"] == "SUSPECT"


def test_policy_control_plane_refuses_to_write_into_v1_logs(tmp_path):
    """Enabling the policy engine over a legacy store is an explicit
    refusal (the repair append would corrupt v1 auditors), not silent
    corruption."""
    store_dir = tmp_path / "store"
    store_dir.mkdir()
    shutil.copy(FIXTURE, store_dir / "evidence-00.log")
    with pytest.raises(EvidenceError, match="version 3"):
        ShardedFleetService(shards=1, store_dir=store_dir, seed=SEED,
                            idle_timeout=5.0, resume=True, policy=True,
                            key_lookup=device_key)
