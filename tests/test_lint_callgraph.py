"""Tests: call-graph-aware lint checks and the notes channel."""

from repro.asm import assemble
from repro.core.lint import LintReport, lint_callgraph, lint_workload


def callgraph(source):
    report = lint_callgraph(assemble(".entry main\n" + source), "t")
    return {f.check for f in report.findings}, report


class TestUnreachableFunction:
    def test_clean_program(self):
        checks, report = callgraph("""
main:
    push {lr}
    bl helper
    pop {pc}
helper:
    bx lr
""")
        assert checks == set() and report.ok

    def test_uncalled_address_taken_function_flagged(self):
        # address-taken (so it partitions as a function) but no call
        # path reaches it: the vulnerable-image landing-pad shape
        checks, report = callgraph("""
main:
    adr r0, orphan
    bkpt
orphan:
    bx lr
""")
        assert "unreachable-function" in checks
        assert any("orphan" in f.detail for f in report.findings)
        assert not report.ok

    def test_indirectly_reached_function_not_flagged(self):
        # conservative indirect targets count as reachability: a
        # jump-table handler is live even though nothing calls it by name
        checks, _ = callgraph("""
main:
    push {lr}
    ldr r3, =handler
    blx r3
    pop {pc}
handler:
    bx lr
""")
        assert "unreachable-function" not in checks


class TestRecursionNotes:
    def test_recursion_is_a_note_not_a_finding(self):
        _, report = callgraph("""
main:
    push {lr}
    bl spin
    pop {pc}
spin:
    push {lr}
    bl spin
    pop {pc}
""")
        assert report.ok  # notes never gate
        assert [f.check for f in report.notes] == ["recursion-cycle"]
        assert "spin -> spin" in report.notes[0].detail

    def test_fibcall_notes_its_cycle_but_stays_clean(self):
        report = lint_workload("fibcall")
        assert report.ok
        notes = [f for f in report.notes if f.check == "recursion-cycle"]
        assert len(notes) == 1
        assert "fib -> fib" in notes[0].detail
        assert "uncertifiable" in notes[0].detail

    def test_notes_serialized_separately(self):
        report = LintReport()
        report.note("t", "recursion-cycle", "call cycle a -> a")
        payload = report.to_json()
        assert payload["ok"] is True
        assert payload["findings"] == []
        assert payload["notes"][0]["check"] == "recursion-cycle"
