"""Property tests for the offline-artifact cache.

The contract under test: keys are pure functions of (source, method,
RapTrackConfig) — stable across processes and hash seeds — and a cache
hit hands back an artifact indistinguishable from a fresh offline run.
"""

from __future__ import annotations

import dataclasses
import pickle
import subprocess
import sys

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core.pipeline import RapTrackConfig
from repro.eval.cache import (
    ArtifactCache,
    config_fingerprint,
    offline_key,
    source_fingerprint,
)
from repro.eval.runner import offline_artifact, prepare, run_method
from repro.workloads import load_workload

rap_configs = st.builds(
    RapTrackConfig,
    nop_padding=st.booleans(),
    loop_opt=st.booleans(),
    fixed_loops=st.booleans(),
    share_pop_stub=st.booleans(),
)

sources = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126),
    min_size=0, max_size=200)


def image_state(image):
    """Everything observable about a linked image, as comparable data."""
    return {
        "entry": image.entry_symbol,
        "symbols": image.symbols,
        "sections": image.section_ranges,
        "equates": image.equates,
        "data": image.data_bytes,
        "code": image.code_bytes(),
    }


def bound_state(bound):
    """Comparable projection of a BoundRewriteMap."""
    if bound is None:
        return None
    return {
        "method": bound.method,
        "cond_at": bound.cond_at,
        "indirect_at": bound.indirect_at,
        "loop_at": bound.loop_at,
        "loop_latches": bound.loop_latches,
        "fixed_trip_at": bound.fixed_trip_at,
        "address_taken": bound.address_taken_addrs,
        "function_entries": bound.function_entry_addrs,
    }


class TestKeyProperties:
    @given(rap_configs, sources)
    @settings(deadline=None, max_examples=100)
    def test_key_is_deterministic(self, config, source):
        assert offline_key(source, "rap-track", config) == \
            offline_key(source, "rap-track", config)

    @given(rap_configs, rap_configs, sources)
    @settings(deadline=None, max_examples=100)
    def test_any_config_change_invalidates_key(self, a, b, source):
        keys_equal = (offline_key(source, "rap-track", a) ==
                      offline_key(source, "rap-track", b))
        assert keys_equal == (a == b)

    @given(sources, sources)
    @settings(deadline=None, max_examples=100)
    def test_any_source_change_invalidates_key(self, a, b):
        keys_equal = (offline_key(a, "rap-track") ==
                      offline_key(b, "rap-track"))
        assert keys_equal == (a == b)

    @given(sources)
    @settings(deadline=None, max_examples=50)
    def test_methods_never_collide_except_plain_pair(self, source):
        keys = {method: offline_key(source, method)
                for method in ("baseline", "naive-mtb", "rap-track",
                               "traces")}
        # baseline and naive-mtb run the unmodified binary: shared entry
        assert keys["baseline"] == keys["naive-mtb"]
        assert len({keys["baseline"], keys["rap-track"],
                    keys["traces"]}) == 3

    def test_default_config_and_none_share_a_key(self):
        assert offline_key("src", "rap-track", None) == \
            offline_key("src", "rap-track", RapTrackConfig())

    def test_engine_config_is_not_an_offline_input(self):
        # rap-config only: traces/plain keys ignore it entirely
        assert offline_key("src", "traces", RapTrackConfig(loop_opt=False)) \
            == offline_key("src", "traces", None)

    def test_key_stable_across_processes_and_hash_seeds(self):
        """The content address must survive PYTHONHASHSEED changes."""
        program = (
            "import sys; sys.path.insert(0, 'src')\n"
            "from repro.core.pipeline import RapTrackConfig\n"
            "from repro.eval.cache import offline_key, config_fingerprint\n"
            "cfg = RapTrackConfig(loop_opt=False)\n"
            "print(offline_key('mov r0, #1', 'rap-track', cfg))\n"
            "print(config_fingerprint(cfg))\n"
        )
        outputs = set()
        for seed in ("0", "42", "random"):
            proc = subprocess.run(
                [sys.executable, "-c", program],
                capture_output=True, text=True, check=True,
                env={"PYTHONHASHSEED": seed, "PATH": "/usr/bin:/bin"},
                cwd="/root/repo")
            outputs.add(proc.stdout)
        assert len(outputs) == 1
        assert offline_key("mov r0, #1", "rap-track",
                           RapTrackConfig(loop_opt=False)) in \
            next(iter(outputs))

    @given(rap_configs)
    @settings(deadline=None, max_examples=50)
    def test_config_fingerprint_reflects_equality(self, config):
        assert config_fingerprint(config) == \
            config_fingerprint(RapTrackConfig(**dataclasses.asdict(config)))

    def test_source_fingerprint_is_sha256(self):
        assert len(source_fingerprint("x")) == 64
        assert source_fingerprint("x") != source_fingerprint("y")


class TestCacheHitFidelity:
    @pytest.mark.parametrize("method", ["baseline", "rap-track", "traces"])
    def test_hit_returns_equal_image_and_bound_map(self, tmp_path, method):
        cache = ArtifactCache(tmp_path)
        workload = load_workload("fibcall")
        cold_image, cold_bound = prepare(workload, method, cache=cache)
        warm_image, warm_bound = prepare(workload, method, cache=cache)
        fresh_image, fresh_bound = prepare(workload, method)
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        assert image_state(warm_image) == image_state(cold_image) \
            == image_state(fresh_image)
        assert bound_state(warm_bound) == bound_state(cold_bound) \
            == bound_state(fresh_bound)

    def test_hit_survives_a_new_cache_instance(self, tmp_path):
        workload = load_workload("crc32")
        writer = ArtifactCache(tmp_path)
        prepare(workload, "rap-track", cache=writer)
        reader = ArtifactCache(tmp_path)  # fresh process stand-in
        image, bound = prepare(workload, "rap-track", cache=reader)
        assert reader.stats.hits == 1 and reader.stats.misses == 0
        fresh_image, fresh_bound = prepare(workload, "rap-track")
        assert image_state(image) == image_state(fresh_image)
        assert bound_state(bound) == bound_state(fresh_bound)

    def test_cached_run_method_equals_uncached(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cached = run_method("strsearch", "rap-track", cache=cache)
        recached = run_method("strsearch", "rap-track", cache=cache)
        plain = run_method("strsearch", "rap-track")
        assert dataclasses.asdict(cached) == dataclasses.asdict(plain)
        assert dataclasses.asdict(recached) == dataclasses.asdict(plain)

    @given(rap_configs)
    @settings(deadline=None, max_examples=10)
    def test_config_sweep_artifacts_do_not_cross_pollute(self, config):
        cache = ArtifactCache()  # memory-only
        workload = load_workload("fibcall")
        cached_image, _ = prepare(workload, "rap-track", config, cache)
        fresh_image, _ = prepare(workload, "rap-track", config)
        assert image_state(cached_image) == image_state(fresh_image)


class TestCacheMechanics:
    def test_memory_only_cache_needs_no_disk(self):
        cache = ArtifactCache()
        assert cache.root is None
        cache.put("k", (1, 2))
        assert cache.get("k") == (1, 2)
        assert cache.stats.hits == 1

    def test_miss_then_build_then_hit(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        calls = []
        build = lambda: calls.append(1) or "artifact"  # noqa: E731
        assert cache.get_or_build("k", build) == "artifact"
        assert cache.get_or_build("k", build) == "artifact"
        assert calls == [1]
        assert (cache.stats.hits, cache.stats.misses) == (1, 1)

    def test_corrupt_entry_is_rebuilt(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = offline_key("src", "rap-track")
        (tmp_path / f"{key}.pkl").write_bytes(b"\x80not a pickle")
        assert cache.get_or_build(key, lambda: "rebuilt") == "rebuilt"
        # and the overwrite repaired the entry on disk
        reader = ArtifactCache(tmp_path)
        assert reader.get(key) == "rebuilt"

    def test_put_is_atomic_no_tmp_left_behind(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put("k", list(range(1000)))
        leftovers = list(tmp_path.glob("*.tmp"))
        assert leftovers == []
        assert pickle.loads((tmp_path / "k.pkl").read_bytes()) == \
            list(range(1000))

    def test_stats_hit_rate(self):
        cache = ArtifactCache()
        assert cache.stats.hit_rate == 0.0
        cache.put("k", 1)
        cache.get("k")
        cache.get("missing")
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_offline_artifact_matches_prepare_uncached(self):
        workload = load_workload("fibcall")
        image, rmap = offline_artifact(workload, "rap-track")
        via_prepare, bound = prepare(workload, "rap-track")
        assert image_state(image) == image_state(via_prepare)
        assert bound_state(rmap.bind(image)) == bound_state(bound)
