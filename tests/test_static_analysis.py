"""Unit tests: CFG construction, dominators, natural loops, shapes."""

import networkx as nx
import pytest

from repro.asm import assemble
from repro.core.cfg import build_cfg
from repro.core.dominators import compute_dominators, dominates
from repro.core.flat import FlatProgram
from repro.core.loops import (
    analyse_simple_loop,
    find_natural_loops,
    trip_count,
)


def flat_cfg(source):
    flat = FlatProgram(assemble(".entry main\n" + source))
    return flat, build_cfg(flat)


class TestFlatProgram:
    def test_indexing_and_labels(self):
        flat, _ = flat_cfg("main:\n    nop\nx:  nop\n    bkpt\n")
        assert len(flat) == 3
        assert flat.index_of("main") == 0
        assert flat.index_of("x") == 1

    def test_address_taken_from_adr_and_words(self):
        flat, _ = flat_cfg("""
main:
    adr r0, f
    bkpt
f:  bx lr
.rodata
t:  .word g
.text
g:  bx lr
""")
        assert flat.address_taken_labels() == {"f", "g"}

    def test_function_starts(self):
        flat, _ = flat_cfg("""
main:
    bl f
    bkpt
f:  bx lr
""")
        starts = flat.function_starts()
        assert flat.index_of("main") in starts
        assert flat.index_of("f") in starts

    def test_function_extent(self):
        flat, _ = flat_cfg("""
main:
    bl f
    bkpt
f:  nop
    bx lr
""")
        start, end = flat.function_extent(flat.index_of("f"))
        assert start == flat.index_of("f")
        assert end == len(flat)

    def test_writes_lr_detection(self):
        flat, _ = flat_cfg("""
main:
    bl leaf
    bl nonleaf
    bkpt
leaf:
    add r0, r0, #1
    bx lr
nonleaf:
    push {lr}
    bl leaf
    pop {pc}
""")
        assert not flat.function_writes_lr(flat.index_of("leaf"))
        assert flat.function_writes_lr(flat.index_of("nonleaf"))


class TestCFG:
    def test_straightline_single_block(self):
        _, cfg = flat_cfg("main:\n    nop\n    nop\n    bkpt\n")
        assert len(cfg.blocks) == 1
        assert cfg.blocks[0].succs == []

    def test_diamond(self):
        flat, cfg = flat_cfg("""
main:
    cmp r0, #0
    beq right
    mov r1, #1
    b join
right:
    mov r1, #2
join:
    bkpt
""")
        entry = cfg.block_at(0)
        assert len(entry.succs) == 2
        join = cfg.block_at(flat.index_of("join"))
        assert sorted(join.preds) == sorted(
            {cfg.block_of_index[flat.index_of("right")],
             cfg.block_of_index[flat.index_of("right")] - 1})

    def test_call_falls_through(self):
        flat, cfg = flat_cfg("""
main:
    bl f
    bkpt
f:  bx lr
""")
        entry = cfg.block_at(0)
        # call continues to the next block, not into the callee
        assert cfg.block_of_index[flat.index_of("f")] not in entry.succs
        assert cfg.call_edges == [(0, flat.index_of("f"))]

    def test_exit_indices(self):
        flat, cfg = flat_cfg("""
main:
    bl f
    bkpt
f:  pop {pc}
""")
        assert flat.index_of("f") in cfg.exit_indices

    def test_reachability(self):
        flat, cfg = flat_cfg("""
main:
    b end
dead:
    nop
end:
    bkpt
""")
        reachable = cfg.reachable_from(cfg.block_of_index[0])
        assert cfg.block_of_index[flat.index_of("dead")] not in reachable


class TestDominators:
    def _check_against_networkx(self, cfg, entry_bid):
        idom = compute_dominators(cfg, entry_bid)
        graph = nx.DiGraph()
        graph.add_node(entry_bid)
        for block in cfg.blocks:
            if block.bid in idom:
                for succ in block.succs:
                    if succ in idom:
                        graph.add_edge(block.bid, succ)
        expected = dict(nx.immediate_dominators(graph, entry_bid))
        expected[entry_bid] = entry_bid  # this nx version omits the root
        assert idom == expected

    def test_diamond_idoms(self):
        flat, cfg = flat_cfg("""
main:
    cmp r0, #0
    beq r_
    nop
    b j_
r_: nop
j_: bkpt
""")
        self._check_against_networkx(cfg, 0)
        join = cfg.block_of_index[flat.index_of("j_")]
        assert dominates(compute_dominators(cfg, 0), 0, join)

    def test_loop_idoms(self):
        _, cfg = flat_cfg("""
main:
    mov r0, #0
top:
    add r0, r0, #1
    cmp r0, #5
    blt top
    bkpt
""")
        self._check_against_networkx(cfg, 0)

    def test_nested_loops_idoms(self):
        _, cfg = flat_cfg("""
main:
    mov r0, #0
outer:
    mov r1, #0
inner:
    add r1, r1, #1
    cmp r1, #3
    blt inner
    add r0, r0, #1
    cmp r0, #3
    blt outer
    bkpt
""")
        self._check_against_networkx(cfg, 0)

    def test_dominates_self(self):
        _, cfg = flat_cfg("main:\n    bkpt\n")
        idom = compute_dominators(cfg, 0)
        assert dominates(idom, 0, 0)


class TestNaturalLoops:
    def test_single_loop(self):
        flat, cfg = flat_cfg("""
main:
    mov r0, #0
top:
    add r0, r0, #1
    cmp r0, #5
    blt top
    bkpt
""")
        loops = find_natural_loops(cfg, 0)
        assert len(loops) == 1
        loop = loops[0]
        assert loop.header == cfg.block_of_index[flat.index_of("top")]
        assert len(loop.latches) == 1

    def test_nested_loops_found(self):
        _, cfg = flat_cfg("""
main:
    mov r0, #0
outer:
    mov r1, #0
inner:
    add r1, r1, #1
    cmp r1, #3
    blt inner
    add r0, r0, #1
    cmp r0, #3
    blt outer
    bkpt
""")
        loops = find_natural_loops(cfg, 0)
        assert len(loops) == 2
        inner = min(loops, key=lambda l: len(l.body))
        outer = max(loops, key=lambda l: len(l.body))
        assert inner.body < outer.body

    def test_while_loop_uncond_latch(self):
        flat, cfg = flat_cfg("""
main:
    mov r0, #5
top:
    cmp r0, #0
    beq out
    sub r0, r0, #1
    b top
out:
    bkpt
""")
        loops = find_natural_loops(cfg, 0)
        assert len(loops) == 1
        latch = cfg.blocks[loops[0].latches[0]]
        assert str(cfg.flat.instrs[latch.terminator_index]) == "b top"

    def test_no_loops(self):
        _, cfg = flat_cfg("main:\n    nop\n    bkpt\n")
        assert find_natural_loops(cfg, 0) == []


class TestSimpleLoopShapes:
    def _loop(self, source):
        flat, cfg = flat_cfg(source)
        loops = find_natural_loops(cfg, 0)
        assert len(loops) == 1
        return cfg, loops[0]

    def test_cmp_idiom_up_count(self):
        cfg, loop = self._loop("""
main:
    mov r4, #0
top:
    nop
    add r4, r4, #1
    cmp r4, #10
    blt top
    bkpt
""")
        shape = analyse_simple_loop(cfg, loop)
        assert shape is not None
        assert (shape.counter_reg, shape.bound, shape.step) == (4, 10, 1)
        assert shape.cond == "lt"
        assert shape.init_const == 0
        assert trip_count(shape, 0) == 10

    def test_self_flag_down_count(self):
        cfg, loop = self._loop("""
main:
    mov r4, #7
top:
    nop
    sub r4, r4, #1
    bne top
    bkpt
""")
        shape = analyse_simple_loop(cfg, loop)
        assert shape is not None
        assert shape.init_const == 7
        assert trip_count(shape, 7) == 7

    def test_self_flag_rejects_carry_conditions(self):
        cfg, loop = self._loop("""
main:
    mov r4, #7
top:
    nop
    sub r4, r4, #1
    bcs top
    bkpt
""")
        assert analyse_simple_loop(cfg, loop) is None

    def test_cbnz_latch(self):
        cfg, loop = self._loop("""
main:
    mov r4, #3
top:
    nop
    sub r4, r4, #1
    cbnz r4, top
    bkpt
""")
        shape = analyse_simple_loop(cfg, loop)
        assert shape is not None
        assert trip_count(shape, 3) == 3

    def test_register_bound_not_simple(self):
        cfg, loop = self._loop("""
main:
    mov r4, #0
    mov r5, #10
top:
    add r4, r4, #1
    cmp r4, r5
    blt top
    bkpt
""")
        assert analyse_simple_loop(cfg, loop) is None

    def test_memory_counter_not_simple(self):
        cfg, loop = self._loop("""
main:
    mov r4, #0
top:
    ldr r4, [r5]
    add r4, r4, #1
    cmp r4, #10
    blt top
    bkpt
""")
        assert analyse_simple_loop(cfg, loop) is None

    def test_call_in_body_not_simple(self):
        cfg, loop = self._loop("""
main:
    mov r4, #0
top:
    bl helper
    add r4, r4, #1
    cmp r4, #10
    blt top
    bkpt
helper:
    bx lr
""")
        assert analyse_simple_loop(cfg, loop) is None

    def test_two_counter_updates_not_simple(self):
        cfg, loop = self._loop("""
main:
    mov r4, #0
top:
    add r4, r4, #1
    add r4, r4, #1
    cmp r4, #10
    blt top
    bkpt
""")
        assert analyse_simple_loop(cfg, loop) is None

    def test_variable_init_shape_without_const(self):
        cfg, loop = self._loop("""
main:
    lsr r4, r0, #2
top:
    nop
    sub r4, r4, #1
    cmp r4, #0
    bgt top
    bkpt
""")
        shape = analyse_simple_loop(cfg, loop)
        assert shape is not None
        assert shape.init_const is None
        assert trip_count(shape, 5) == 5
        assert trip_count(shape, 1) == 1

    def test_trip_count_matches_execution(self):
        from conftest import run_source

        for init, bound, step, cond in [(0, 10, 1, "lt"), (3, 9, 2, "lt"),
                                        (0, 7, 1, "ne")]:
            cfg, loop = self._loop(f"""
main:
    mov r4, #{init}
top:
    add r5, r5, #1
    add r4, r4, #{step}
    cmp r4, #{bound}
    b{cond} top
    bkpt
""")
            shape = analyse_simple_loop(cfg, loop)
            assert shape is not None
            mcu = run_source(f"""
.entry main
main:
    mov r4, #{init}
top:
    add r5, r5, #1
    add r4, r4, #{step}
    cmp r4, #{bound}
    b{cond} top
    bkpt
""")
            assert trip_count(shape, init) == mcu.cpu.regs[5]

    def test_non_terminating_shape_raises(self):
        cfg, loop = self._loop("""
main:
    mov r4, #0
top:
    nop
    add r4, r4, #0x10000
    cmp r4, #3
    bne top
    bkpt
""")
        shape = analyse_simple_loop(cfg, loop)
        if shape is not None:
            with pytest.raises(ValueError):
                trip_count(shape, 0)
