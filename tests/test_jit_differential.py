"""Differential battery: superblock JIT ≡ interpreter, end to end.

The JIT's whole claim is that it is an *invisible* performance tier:
for every workload, method, and honest/attacked execution, attesting
with the JIT enabled must produce byte-identical report chains (the
KeyStore provisioning is deterministic, so even the MACs must match),
identical cycle/instruction counts, identical ground-truth retire
streams, and identical verifier verdicts — violations included.

Tier selection goes through the ``REPRO_JIT`` process default so the
conftest pipelines are exercised unmodified, exactly as a user flipping
the environment variable would run them.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

import pytest

from repro.cfa.engine import EngineConfig
from repro.cfa.wire import encode_report
from repro.eval.runner import run_method
from repro.workloads import load_workload, vulnerable
from conftest import naive_setup, rap_setup, traces_setup

CHALLENGE = b"jit-diff-chal"
SETUPS = {"rap-track": rap_setup, "traces": traces_setup,
          "naive-mtb": naive_setup}
WORKLOADS = ["fibcall", "prime", "crc32", "gps", "temperature"]


@contextmanager
def jit_env(enabled: bool):
    """Select the execution tier via the process-wide default."""
    old = os.environ.get("REPRO_JIT")
    os.environ["REPRO_JIT"] = "1" if enabled else "0"
    try:
        yield
    finally:
        if old is None:
            os.environ.pop("REPRO_JIT", None)
        else:
            os.environ["REPRO_JIT"] = old


def attest_once(workload_name, method, enabled, attacked=False,
                watermark=512):
    """One full pipeline run under the chosen tier.

    Returns (mcu, tracer, result, outcome) — everything the
    equivalence assertions need.
    """
    with jit_env(enabled):
        workload = (vulnerable.make() if workload_name == "vulnerable"
                    else load_workload(workload_name))
        image, _, mcu, engine, verifier, tracer = SETUPS[method](
            workload, engine_config=EngineConfig(watermark=watermark))
        if attacked:
            mcu.mmio.device("uart").set_feed(vulnerable.attack_feed(image))
        result = engine.attest(CHALLENGE)
    outcome = verifier.verify(result, CHALLENGE)
    return mcu, tracer, result, outcome


def assert_identical_attestations(workload, method, attacked=False):
    m0, t0, r0, o0 = attest_once(workload, method, False, attacked)
    m1, t1, r1, o1 = attest_once(workload, method, True, attacked)

    assert m0.jit is None and m1.jit is not None

    # device-side: execution and evidence
    assert r0.cycles == r1.cycles
    assert r0.instructions == r1.instructions
    assert r0.cflog_bytes == r1.cflog_bytes
    assert list(r0.cflog) == list(r1.cflog)
    assert len(r0.reports) == len(r1.reports)
    for a, b in zip(r0.reports, r1.reports):
        assert encode_report(a) == encode_report(b)  # MACs included

    # oracle-side: the complete retire stream
    assert t0.pcs == t1.pcs
    assert t0.transfers == t1.transfers

    # verifier-side: verdict, violations, reconstructed path
    assert o0.authenticated == o1.authenticated
    assert o0.lossless == o1.lossless
    assert o0.error == o1.error
    assert ([(v.kind, v.address, v.detail) for v in o0.violations]
            == [(v.kind, v.address, v.detail) for v in o1.violations])
    assert o0.path == o1.path
    return m1, o1


class TestHonestEquivalence:
    @pytest.mark.parametrize("workload", WORKLOADS)
    @pytest.mark.parametrize("method", sorted(SETUPS))
    def test_grid(self, workload, method):
        mcu, outcome = assert_identical_attestations(workload, method)
        assert outcome.authenticated
        assert not outcome.violations


class TestAttackEquivalence:
    @pytest.mark.parametrize("method", ["rap-track", "traces"])
    def test_rop_attack_detected_identically(self, method):
        mcu, outcome = assert_identical_attestations(
            "vulnerable", method, attacked=True)
        assert outcome.authenticated  # genuine device, genuine MACs
        assert outcome.violations or not outcome.lossless


class TestTierEngagement:
    def test_jit_actually_compiles_on_the_grid(self):
        """Guards the battery against vacuity: the JIT tier must have
        compiled and dispatched blocks on a representative run."""
        mcu, _, result, _ = attest_once("prime", "rap-track", True)
        assert mcu.jit is not None
        assert mcu.jit.compiles > 0 or mcu.jit.blocks
        assert result.instructions > 0

    def test_interpreter_tier_has_no_runtime(self):
        mcu, _, _, _ = attest_once("prime", "rap-track", False)
        assert mcu.jit is None


class TestEvalRunnerEquivalence:
    @pytest.mark.parametrize("method",
                             ["baseline", "naive-mtb", "rap-track", "traces"])
    def test_method_runs_match(self, method):
        """The eval runner's metrics — the paper's figures — must be
        tier-independent (explicit kwarg path, no env var)."""
        off = run_method("prime", method, enable_jit=False)
        on = run_method("prime", method, enable_jit=True)
        assert off == on
