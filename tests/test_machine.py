"""Unit tests: memory map, MPU locking, MMIO bus, MCU lifecycle."""

import pytest

from repro.asm.assembler import assemble_and_link
from repro.machine.faults import MemFault
from repro.machine.mcu import MCU
from repro.machine.memmap import (
    MMIO_BASE,
    MTB_SRAM_BASE,
    NS_RAM_BASE,
    NS_TEXT_BASE,
    S_RAM_BASE,
    MemoryMap,
    World,
)
from repro.machine.memory import Memory
from repro.machine.mmio import MMIOBus, MMIODevice


class TestMemoryMap:
    def setup_method(self):
        self.mm = MemoryMap()

    def test_region_lookup(self):
        assert self.mm.region_at(NS_TEXT_BASE).name == "ns_text"
        assert self.mm.region_at(NS_RAM_BASE).name == "ns_ram"
        assert self.mm.region_at(0xDEAD0000) is None

    def test_by_name(self):
        assert self.mm.by_name("mtb_sram").base == MTB_SRAM_BASE
        with pytest.raises(KeyError):
            self.mm.by_name("nope")

    def test_ns_read_of_secure_denied(self):
        with pytest.raises(MemFault):
            self.mm.check_access(S_RAM_BASE, world=World.NONSECURE,
                                 is_write=False)

    def test_secure_can_read_ns(self):
        region = self.mm.check_access(NS_RAM_BASE, world=World.SECURE,
                                      is_write=False)
        assert region.name == "ns_ram"

    def test_write_lock_round_trip(self):
        self.mm.check_access(NS_TEXT_BASE, world=World.NONSECURE,
                             is_write=True)  # unlocked flash is writable
        self.mm.lock_region_writes("ns_text")
        with pytest.raises(MemFault):
            self.mm.check_access(NS_TEXT_BASE, world=World.NONSECURE,
                                 is_write=True)
        self.mm.unlock_region_writes("ns_text")
        self.mm.check_access(NS_TEXT_BASE, world=World.NONSECURE,
                             is_write=True)

    def test_lock_blocks_secure_writes_too(self):
        # the MPU lock protects the attested binary against everything
        self.mm.lock_region_writes("ns_text")
        with pytest.raises(MemFault):
            self.mm.check_access(NS_TEXT_BASE, world=World.SECURE,
                                 is_write=True)

    def test_fetch_from_ram_denied(self):
        with pytest.raises(MemFault):
            self.mm.check_access(NS_RAM_BASE, world=World.NONSECURE,
                                 is_write=False, is_fetch=True)

    def test_rodata_never_writable(self):
        from repro.machine.memmap import RODATA_BASE

        with pytest.raises(MemFault):
            self.mm.check_access(RODATA_BASE, world=World.SECURE,
                                 is_write=True)


class _Latch(MMIODevice):
    WINDOW = 0x10

    def __init__(self):
        self.value = 0
        self.reads = 0
        self.ticks = 0

    def read(self, offset, size):
        self.reads += 1
        return self.value

    def write(self, offset, value, size):
        self.value = value

    def tick(self, cycles):
        self.ticks += cycles


class TestMMIOBus:
    def setup_method(self):
        self.bus = MMIOBus()
        self.dev = self.bus.register(MMIO_BASE, _Latch(), "latch")

    def test_read_write_dispatch(self):
        self.bus.write(MMIO_BASE, 0x1234, 4)
        assert self.bus.read(MMIO_BASE, 4) == 0x1234

    def test_read_masks_to_size(self):
        self.bus.write(MMIO_BASE, 0x1FF, 4)
        assert self.bus.read(MMIO_BASE, 1) == 0xFF

    def test_named_lookup(self):
        assert self.bus.device("latch") is self.dev

    def test_unmapped_address(self):
        with pytest.raises(MemFault):
            self.bus.read(MMIO_BASE + 0x1000, 4)

    def test_overlap_rejected(self):
        with pytest.raises(ValueError):
            self.bus.register(MMIO_BASE + 8, _Latch())

    def test_tick_propagates(self):
        self.bus.tick(7)
        assert self.dev.ticks == 7


class TestMemoryFrontend:
    def setup_method(self):
        self.memory = Memory()

    def test_peek_poke_little_endian(self):
        self.memory.poke(NS_RAM_BASE, 0x04030201, 4)
        assert self.memory.peek(NS_RAM_BASE, 1) == 1
        assert self.memory.peek(NS_RAM_BASE + 3, 1) == 4
        assert self.memory.peek(NS_RAM_BASE, 4) == 0x04030201

    def test_load_blob_dict_and_bytes(self):
        self.memory.load_blob(0, {NS_RAM_BASE: 7})
        assert self.memory.peek(NS_RAM_BASE, 1) == 7
        self.memory.load_blob(NS_RAM_BASE + 8, b"\x01\x02")
        assert self.memory.peek(NS_RAM_BASE + 8, 2) == 0x0201

    def test_checked_read_routes_mmio(self):
        dev = self.memory.mmio.register(MMIO_BASE, _Latch())
        dev.value = 42
        assert self.memory.read(MMIO_BASE, 4, World.NONSECURE) == 42

    def test_checked_write_routes_mmio(self):
        dev = self.memory.mmio.register(MMIO_BASE, _Latch())
        self.memory.write(MMIO_BASE, 9, 4, World.NONSECURE)
        assert dev.value == 9

    def test_unaligned_word_faults(self):
        with pytest.raises(MemFault):
            self.memory.read(NS_RAM_BASE + 2, 4, World.NONSECURE)
        with pytest.raises(MemFault):
            self.memory.write(NS_RAM_BASE + 2, 1, 4, World.NONSECURE)

    def test_byte_access_any_alignment(self):
        self.memory.write(NS_RAM_BASE + 3, 5, 1, World.NONSECURE)
        assert self.memory.read(NS_RAM_BASE + 3, 1, World.NONSECURE) == 5


class TestMCU:
    def test_reset_restores_cpu_and_devices(self):
        image = assemble_and_link(
            ".entry m\nm: mov r0, #1\n    mov32 r1, #0x40000000\n"
            "    str r0, [r1]\n    bkpt\n")
        mcu = MCU(image)
        dev = mcu.attach_device(MMIO_BASE, _Latch(), "latch")
        mcu.run()
        assert dev.value == 1
        mcu.reset()
        assert mcu.cpu.regs[0] == 0
        assert mcu.cpu.cycles == 0
        result = mcu.run()
        assert result.exit_reason == "bkpt"

    def test_data_image_loaded(self):
        image = assemble_and_link(
            ".entry m\nm: bkpt\n.data\nv: .word 0xABCD\n")
        mcu = MCU(image)
        assert mcu.memory.peek(image.addr_of("v"), 4) == 0xABCD

    def test_devices_tick_with_cycles(self):
        image = assemble_and_link(".entry m\nm: nop\n    nop\n    bkpt\n")
        mcu = MCU(image)
        dev = mcu.attach_device(MMIO_BASE, _Latch())
        mcu.run()
        assert dev.ticks == mcu.cpu.cycles

    def test_run_result_counts(self):
        image = assemble_and_link(".entry m\nm: nop\n    bkpt\n")
        result = MCU(image).run()
        assert result.instructions == 2
        assert result.cycles == 2
