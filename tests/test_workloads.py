"""Workload correctness and cross-method consistency.

Every workload must compute the right answer (against its Python
reference model) on the bare simulator and under every CFA method, and
peripherals must behave identically regardless of method runtime — the
property the figures depend on.
"""

import pytest

from repro.asm import link
from repro.workloads import WORKLOADS, load_workload
from repro.workloads.base import make_mcu
from repro.workloads.peripherals import (
    ADCDevice,
    GeigerTube,
    LCG,
    StepperMotor,
    UartRx,
    UltrasonicRanger,
)
from conftest import naive_setup, rap_setup, traces_setup

ALL = sorted(WORKLOADS)


class TestBaselineCorrectness:
    @pytest.mark.parametrize("name", ALL)
    def test_reference_model_matches(self, name):
        workload = load_workload(name)
        image = link(workload.module())
        mcu = make_mcu(image, workload)
        result = mcu.run()
        assert result.exit_reason == "bkpt"
        workload.check(mcu)

    @pytest.mark.parametrize("name", ALL)
    def test_deterministic_across_runs(self, name):
        def one_run():
            workload = load_workload(name)
            mcu = make_mcu(link(workload.module()), workload)
            result = mcu.run()
            return result.cycles, result.instructions

        assert one_run() == one_run()

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            load_workload("nonexistent")


class TestCrossMethodConsistency:
    @pytest.mark.parametrize("name", ALL)
    def test_gpio_results_identical_across_methods(self, name):
        outputs = []
        for setup in (naive_setup, rap_setup, traces_setup):
            workload = load_workload(name)
            image, _, mcu, engine, _, _ = setup(workload)
            engine.attest(b"c")
            try:
                gpio = mcu.mmio.device("gpio")
            except KeyError:
                pytest.skip("workload has no GPIO")
            outputs.append(list(gpio.latches))
        assert outputs[0] == outputs[1] == outputs[2]


class TestPeripherals:
    def test_lcg_deterministic(self):
        a, b = LCG(42), LCG(42)
        assert [a.next() for _ in range(10)] == [b.next() for _ in range(10)]

    def test_lcg_randint_bounds(self):
        rng = LCG(1)
        values = [rng.randint(3, 7) for _ in range(200)]
        assert set(values) <= set(range(3, 8))
        assert len(set(values)) > 1

    def test_adc_expected_samples_match_reads(self):
        adc = ADCDevice(seed=5)
        read = [adc.read(ADCDevice.DATA, 4) for _ in range(8)]
        assert read == ADCDevice(seed=5).expected_samples(8)

    def test_adc_last_register(self):
        adc = ADCDevice(seed=5)
        value = adc.read(ADCDevice.DATA, 4)
        assert adc.read(ADCDevice.LAST, 4) == value

    def test_geiger_counts_monotonic(self):
        tube = GeigerTube(seed=3)
        counts = [tube.read(GeigerTube.COUNT, 4) for _ in range(20)]
        assert counts == sorted(counts)
        assert counts == GeigerTube(seed=3).expected_counts(20)

    def test_geiger_reset_register(self):
        tube = GeigerTube(seed=3, rate_per_1024=1024)  # always fires
        assert tube.read(GeigerTube.COUNT, 4) > 0
        tube.write(GeigerTube.RESET, 1, 4)
        assert tube.count == 0

    def test_ultrasonic_echo_constant(self):
        ranger = UltrasonicRanger(seed=9)
        ranger.write(UltrasonicRanger.TRIGGER, 1, 4)
        echo = ranger.read(UltrasonicRanger.ECHO_US, 4)
        distance = ranger.expected_distances(1)[0]
        assert echo == distance * 58

    def test_uart_feed_and_status(self):
        uart = UartRx(b"\x01\x02")
        assert uart.read(UartRx.STATUS, 4) == 1
        assert uart.read(UartRx.DATA, 4) == 1
        assert uart.read(UartRx.DATA, 4) == 2
        assert uart.read(UartRx.STATUS, 4) == 0
        assert uart.read(UartRx.DATA, 4) == 0  # empty: zero

    def test_uart_set_feed_resets_cursor(self):
        uart = UartRx(b"\x01")
        uart.read(UartRx.DATA, 4)
        uart.set_feed(b"\x09")
        assert uart.read(UartRx.DATA, 4) == 9

    def test_stepper_direction_and_position(self):
        motor = StepperMotor()
        motor.write(StepperMotor.STEP, 1, 4)
        motor.write(StepperMotor.STEP, 1, 4)
        motor.write(StepperMotor.DIR, 1, 4)
        motor.write(StepperMotor.STEP, 1, 4)
        assert motor.position == 1
        assert motor.total_steps == 3
        assert motor.read(StepperMotor.POS, 4) == 1


class TestWorkloadShapes:
    """Structural expectations the figures rely on."""

    def test_matmult_fully_deterministic(self):
        workload = load_workload("matmult")
        _, _, _, engine, _, _ = rap_setup(workload)
        result = engine.attest(b"c")
        assert len(result.cflog) == 0

    def test_crc32_fully_deterministic(self):
        workload = load_workload("crc32")
        _, _, _, engine, _, _ = rap_setup(workload)
        result = engine.attest(b"c")
        assert len(result.cflog) == 0

    def test_geiger_huge_naive_ratio(self):
        naive = naive_setup(load_workload("geiger"))
        rap = rap_setup(load_workload("geiger"))
        naive_log = naive[3].attest(b"c").cflog_bytes
        rap_log = rap[3].attest(b"c").cflog_bytes
        assert naive_log / rap_log > 50  # the paper's 217x end

    def test_ultrasonic_loop_opt_matters(self):
        from repro.core.pipeline import RapTrackConfig

        with_opt = rap_setup(load_workload("ultrasonic"))
        without = rap_setup(load_workload("ultrasonic"),
                            rap_config=RapTrackConfig(loop_opt=False))
        log_with = with_opt[3].attest(b"c").cflog_bytes
        log_without = without[3].attest(b"c").cflog_bytes
        assert log_without > 3 * log_with  # section V-B showcase

    def test_fibcall_return_heavy(self):
        from repro.cfa.cflog import BranchRecord

        workload = load_workload("fibcall")
        _, bound, _, engine, _, _ = rap_setup(workload)
        result = engine.attest(b"c")
        pops = [r for r in result.cflog
                if isinstance(r, BranchRecord)
                and r.key == engine.image.addr_of("__rt_pop_rec")]
        assert len(pops) > 100  # deep recursion

    def test_gps_branch_dense(self):
        workload = load_workload("gps")
        _, _, _, engine, _, _ = rap_setup(workload)
        result = engine.attest(b"c")
        assert len(result.cflog) > 50
