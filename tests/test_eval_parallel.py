"""The parallel evaluation subsystem, differentially tested.

The safety net for ``repro.eval.parallel``: whatever the grid executor
does — fan out across processes, hit the artifact cache, retry a dead
worker — every ``MethodRun`` it produces must be field-for-field
identical to the serial ``run_method`` primitive.
"""

from __future__ import annotations

import dataclasses
import os
import time

import pytest

from repro.eval.cache import ArtifactCache
from repro.eval.parallel import (
    CellSpec,
    EvalMetrics,
    ProgressEvent,
    evaluate_grid,
    run_cell,
    run_cells,
)
from repro.eval.runner import METHODS, run_method

BEEBS = ("prime", "crc32", "bubblesort", "fibcall", "matmult",
         "bitcount", "insertsort", "strsearch", "dijkstra", "fir")


class TestDifferentialSerialVsParallel:
    """All BEEBS workloads × all four methods, both execution paths."""

    @pytest.fixture(scope="class")
    def serial_runs(self):
        return {name: {method: run_method(name, method)
                       for method in METHODS}
                for name in BEEBS}

    @pytest.fixture(scope="class")
    def parallel_runs(self, tmp_path_factory):
        cache = ArtifactCache(tmp_path_factory.mktemp("offline-cache"))
        runs, metrics = evaluate_grid(BEEBS, jobs=4, cache=cache)
        assert metrics.cells_ok == len(BEEBS) * len(METHODS)
        return runs

    def test_every_cell_field_for_field_identical(self, serial_runs,
                                                  parallel_runs):
        for name in BEEBS:
            for method in METHODS:
                serial = serial_runs[name][method]
                parallel = parallel_runs[name][method]
                assert dataclasses.asdict(parallel) == \
                    dataclasses.asdict(serial), (name, method)

    def test_grid_is_complete(self, parallel_runs):
        assert set(parallel_runs) == set(BEEBS)
        for name in BEEBS:
            assert set(parallel_runs[name]) == set(METHODS)


class TestRunCell:
    def test_ok_cell_carries_run_and_timing(self):
        result = run_cell(CellSpec("fibcall", "rap-track"))
        assert result.ok
        assert result.run.verified
        assert result.error is None
        assert result.wall_s > 0
        assert result.cache_hits == result.cache_misses == 0  # no cache

    def test_cell_counts_cache_traffic(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cold = run_cell(CellSpec("fibcall", "rap-track"), cache=cache)
        warm = run_cell(CellSpec("fibcall", "rap-track"), cache=cache)
        assert cold.cache_misses == 1 and cold.cache_hits == 0
        assert warm.cache_hits == 1 and warm.cache_misses == 0
        assert dataclasses.asdict(cold.run) == dataclasses.asdict(warm.run)

    def test_failing_cell_is_captured_not_raised(self):
        result = run_cell(CellSpec("fibcall", "no-such-method"))
        assert not result.ok
        assert "ValueError" in result.error

    @pytest.mark.skipif(not hasattr(os, "fork"),
                        reason="needs SIGALRM timeouts")
    def test_timeout_is_enforced(self, monkeypatch):
        def wedge(name, method, **kwargs):
            time.sleep(10)

        monkeypatch.setattr("repro.eval.parallel.run_method", wedge)
        t0 = time.perf_counter()
        result = run_cell(CellSpec("fibcall", "rap-track"), timeout_s=0.2)
        assert time.perf_counter() - t0 < 5
        assert not result.ok
        assert "timeout" in result.error


class TestRunCellsSerial:
    def test_progress_stream_and_metrics(self):
        events = []
        specs = [CellSpec("fibcall", m) for m in ("baseline", "rap-track")]
        results, metrics = run_cells(specs, jobs=1, progress=events.append)
        assert [r.ok for r in results] == [True, True]
        kinds = [e.kind for e in events]
        assert kinds == ["cell", "cell", "done"]
        assert events[0].done == 1 and events[1].done == 2
        assert metrics.cells_total == 2 and metrics.cells_ok == 2
        assert metrics.jobs == 1
        assert metrics.wall_s > 0 and metrics.cpu_s > 0
        assert "cells ok" in metrics.summary()

    def test_failed_cell_does_not_stop_the_grid(self):
        specs = [CellSpec("fibcall", "no-such-method"),
                 CellSpec("fibcall", "baseline")]
        results, metrics = run_cells(specs, jobs=1)
        assert not results[0].ok and results[1].ok
        assert metrics.cells_failed == 1 and metrics.cells_ok == 1


@pytest.mark.skipif(not hasattr(os, "fork"),
                    reason="crash injection relies on fork semantics")
class TestWorkerCrashRetry:
    def test_crashed_worker_is_retried_once(self, tmp_path, monkeypatch):
        marker = tmp_path / "crashed-once"
        real = run_method

        def crash_once(name, method, **kwargs):
            if name == "crc32" and not marker.exists():
                marker.touch()
                os._exit(13)  # simulate a segfaulted worker
            return real(name, method, **kwargs)

        monkeypatch.setattr("repro.eval.parallel.run_method", crash_once)
        specs = [CellSpec("crc32", "baseline"),
                 CellSpec("fibcall", "baseline")]
        events = []
        results, metrics = run_cells(specs, jobs=2, progress=events.append)
        assert all(r.ok for r in results)
        assert metrics.retries >= 1
        retried = {r.spec: r.attempts for r in results}
        assert retried[CellSpec("crc32", "baseline")] >= 2
        # the retried cell's result still matches a clean serial run
        crc = next(r for r in results if r.spec.workload == "crc32")
        assert dataclasses.asdict(crc.run) == \
            dataclasses.asdict(real("crc32", "baseline"))

    def test_persistent_crash_is_reported_not_hung(self, monkeypatch):
        def always_crash(name, method, **kwargs):
            os._exit(13)

        monkeypatch.setattr("repro.eval.parallel.run_method", always_crash)
        specs = [CellSpec("fibcall", "baseline")]
        results, metrics = run_cells(specs, jobs=2, retries=1)
        assert not results[0].ok
        assert "worker process died" in results[0].error
        assert results[0].attempts == 2
        assert metrics.cells_failed == 1


class TestEvaluateGrid:
    def test_strict_raises_on_failure(self):
        with pytest.raises(RuntimeError, match="no-such-method"):
            evaluate_grid(["fibcall"], methods=("no-such-method",))

    def test_non_strict_omits_failures(self):
        runs, metrics = evaluate_grid(
            ["fibcall"], methods=("baseline", "no-such-method"),
            strict=False)
        assert set(runs["fibcall"]) == {"baseline"}
        assert metrics.cells_failed == 1

    def test_metrics_hit_rate(self):
        metrics = EvalMetrics(cache_hits=3, cache_misses=1)
        assert metrics.cache_hit_rate == pytest.approx(0.75)
        assert EvalMetrics().cache_hit_rate == 0.0

    def test_progress_event_shape(self):
        event = ProgressEvent("cell", 1, 2, CellSpec("a", "b"), "ok")
        assert event.done == 1 and str(event.spec) == "a×b"
