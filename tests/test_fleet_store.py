"""Evidence-store battery: unforgeability, auditability, durability.

The chain property under test: record *i* of a device's evidence log
commits ``H(record_{i-1} || body_i || MAC_i)`` where the body carries
the verdict and a digest of the exact wire bytes the device sent — so
an honestly-produced log always verifies end-to-end from disk, and
*any* single-byte mutation of the persisted bytes (header, framing,
links, MACs, bodies) breaks verification. Cache-served verdicts are a
regression focus: a replay-cache hit must still append a (cache-hit
annotated) evidence record, never skip one.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfa.fleet import (
    ChainFactory,
    DeviceProfile,
    DeviceSpec,
    DurableReplayCache,
    EvidenceError,
    EvidenceStore,
    FleetService,
    ReplayCache,
    SessionVerdict,
    chain_digest,
    device_key,
    verify_evidence_trail,
)
from repro.cfa.fleet.verify import _ReplaySummary

AUDIT_KEY = b"\x17" * 32
FIBCALL = DeviceProfile("fibcall")


@pytest.fixture(scope="module")
def factory():
    return ChainFactory(watermark=256)


def drive_session(service, factory, device_id, profile=FIBCALL,
                  behavior="honest", tamper=None):
    """Open one session and deliver its chain (optionally damaged)."""
    challenge = service.open_session(
        device_id, profile, device_key(device_id))
    chunks = factory.chain(
        DeviceSpec(device_id, profile, behavior), challenge.nonce)
    if tamper is not None:
        chunks = tamper(list(chunks))
    for chunk in chunks:
        service.submit(device_id, chunk)
    return chunks


def make_store(path):
    return EvidenceStore(path, AUDIT_KEY)


class TestHonestTrailsVerify:
    """Every honestly-produced log verifies, across workloads and
    honest/attack devices (the accept half of the property)."""

    @pytest.mark.parametrize("workload,behavior", [
        ("fibcall", "honest"),
        ("prime", "honest"),
        ("vulnerable", "attack"),
        ("fibcall", "tamper"),
    ])
    def test_trail_verifies_and_reconstructs(self, factory, tmp_path,
                                             workload, behavior):
        store = make_store(tmp_path / "evidence.log")
        service = FleetService(workers=0, store=store)
        profile = DeviceProfile(workload)
        tamper = None
        if behavior == "tamper":
            def tamper(chunks):
                body = bytearray(chunks[-1])
                body[-1] ^= 0xFF  # break the MAC
                chunks[-1] = bytes(body)
                return chunks
        chunks = drive_session(service, factory, "prv-0", profile,
                               behavior, tamper)
        service.close()
        records = verify_evidence_trail(store.path, AUDIT_KEY)
        assert len(records) == 1
        record = records[0]
        # the record reconstructs the released verdict exactly
        assert record.to_verdict() == service.verdicts["prv-0"]
        assert record.accepted == (behavior in ("honest",))
        # ... and commits to the exact bytes received
        assert record.chain_digest == chain_digest(chunks)
        assert store.head("prv-0") == record.digest

    def test_chain_links_across_device_rounds(self, factory, tmp_path):
        """Multiple sessions of one device form one linked chain."""
        store = make_store(tmp_path / "evidence.log")
        service = FleetService(workers=0, store=store,
                               nonce_scope="device")
        drive_session(service, factory, "prv-0")
        drive_session(service, factory, "prv-1")
        drive_session(service, factory, "prv-0")  # second round
        service.close()
        records = verify_evidence_trail(store.path, AUDIT_KEY)
        mine = [r for r in records if r.device_id == "prv-0"]
        assert [r.seq for r in mine] == [0, 1]
        assert mine[0].prev_digest == b"\x00" * 32
        assert mine[1].prev_digest == mine[0].digest
        # interleaved devices don't cross-link
        other = [r for r in records if r.device_id == "prv-1"]
        assert other[0].prev_digest == b"\x00" * 32

    def test_chain_continues_across_reopen(self, factory, tmp_path):
        path = tmp_path / "evidence.log"
        store = make_store(path)
        service = FleetService(workers=0, store=store,
                               nonce_scope="device")
        drive_session(service, factory, "prv-0")
        service.close()
        head_before = store.head("prv-0")
        # a fresh process opens the same log and appends
        store2 = make_store(path)
        assert store2.head("prv-0") == head_before
        service2 = FleetService(workers=0, store=store2,
                                nonce_scope="device")
        service2.restore(store2.recovered)
        drive_session(service2, factory, "prv-0")
        service2.close()
        records = verify_evidence_trail(path, AUDIT_KEY)
        assert [r.seq for r in records if r.device_id == "prv-0"] == [0, 1]


@pytest.fixture(scope="module")
def trail_bytes(factory, tmp_path_factory):
    """One honest multi-record log, as raw bytes, for mutation tests."""
    path = tmp_path_factory.mktemp("trail") / "evidence.log"
    store = make_store(path)
    service = FleetService(workers=0, store=store, nonce_scope="device")
    drive_session(service, factory, "prv-0")
    drive_session(service, factory, "prv-1")
    drive_session(service, factory, "prv-0")
    service.close()
    data = path.read_bytes()
    assert len(verify_evidence_trail(path, AUDIT_KEY)) == 3
    return data


class TestUnforgeability:
    @settings(deadline=None, max_examples=150)
    @given(st.data())
    def test_any_single_byte_mutation_breaks_verification(
            self, tmp_path_factory, trail_bytes, data):
        offset = data.draw(
            st.integers(min_value=0, max_value=len(trail_bytes) - 1))
        bit = data.draw(st.integers(min_value=0, max_value=7))
        mutated = bytearray(trail_bytes)
        mutated[offset] ^= 1 << bit
        path = tmp_path_factory.mktemp("mut") / "evidence.log"
        path.write_bytes(bytes(mutated))
        with pytest.raises(EvidenceError):
            verify_evidence_trail(path, AUDIT_KEY)

    def test_truncation_detected(self, tmp_path, trail_bytes):
        path = tmp_path / "evidence.log"
        path.write_bytes(trail_bytes[:-7])
        with pytest.raises(EvidenceError):
            verify_evidence_trail(path, AUDIT_KEY)

    def test_record_deletion_detected(self, tmp_path, trail_bytes):
        """Splicing a whole frame out breaks the per-device links."""
        import struct

        header, pos, frames = trail_bytes[:5], 5, []
        while pos < len(trail_bytes):
            (n,) = struct.unpack("<I", trail_bytes[pos:pos + 4])
            frames.append(trail_bytes[pos:pos + 4 + n])
            pos += 4 + n
        assert len(frames) == 3
        path = tmp_path / "evidence.log"
        # drop prv-0's first record; its second no longer links
        path.write_bytes(header + frames[1] + frames[2])
        with pytest.raises(EvidenceError):
            verify_evidence_trail(path, AUDIT_KEY)

    def test_wrong_audit_key_rejected(self, tmp_path, trail_bytes):
        path = tmp_path / "evidence.log"
        path.write_bytes(trail_bytes)
        with pytest.raises(EvidenceError):
            verify_evidence_trail(path, b"\x18" * 32)


class TestCacheHitCoherence:
    """Regression: a replay-cache hit must still append evidence."""

    def test_cache_hit_still_appends_record(self, factory, tmp_path):
        store = make_store(tmp_path / "evidence.log")
        service = FleetService(workers=0, store=store,
                               replay_cache=True)
        drive_session(service, factory, "prv-0")
        drive_session(service, factory, "prv-1")  # identical firmware
        metrics = service.close()
        assert metrics.replay_cache_hits == 1
        records = verify_evidence_trail(store.path, AUDIT_KEY)
        # one record per verdict — the cache hit did not skip one
        assert len(records) == 2
        assert metrics.evidence_records == 2
        by_device = {r.device_id: r for r in records}
        assert not by_device["prv-0"].cache_hit
        assert by_device["prv-1"].cache_hit
        # annotation only: the verdicts themselves are identical
        assert (by_device["prv-0"].to_verdict()
                == service.verdicts["prv-0"])
        v0, v1 = service.verdicts["prv-0"], service.verdicts["prv-1"]
        assert (v0.path_digest, v0.accepted) == (v1.path_digest, True)

    def test_cached_and_uncached_verdicts_equal(self, factory, tmp_path):
        verdicts = []
        for cache in (True, False):
            store = make_store(tmp_path / f"evidence-{cache}.log")
            service = FleetService(workers=0, store=store,
                                   replay_cache=cache,
                                   nonce_scope="device")
            drive_session(service, factory, "prv-0")
            drive_session(service, factory, "prv-1")
            service.close()
            verdicts.append(dict(service.verdicts))
        assert verdicts[0] == verdicts[1]


class TestCrashTolerance:
    def test_torn_tail_truncated_on_reopen(self, tmp_path, trail_bytes):
        path = tmp_path / "evidence.log"
        path.write_bytes(trail_bytes[:-9])  # mid-frame crash image
        with pytest.raises(EvidenceError):
            verify_evidence_trail(path, AUDIT_KEY)  # strict audit: no
        store = make_store(path)                    # recovery: truncate
        assert store.truncated_tail
        assert len(store.recovered) == 2
        store.close()
        # the truncated file now audits cleanly
        assert len(verify_evidence_trail(path, AUDIT_KEY)) == 2

    def test_pre_tail_damage_is_tamper_not_crash(self, tmp_path,
                                                 trail_bytes):
        mutated = bytearray(trail_bytes)
        mutated[20] ^= 0x01  # inside the first frame, not the tail
        path = tmp_path / "evidence.log"
        path.write_bytes(bytes(mutated))
        with pytest.raises(EvidenceError):
            make_store(path)

    def test_failed_append_withholds_verdict(self, factory, tmp_path):
        """fsync failure => no release; the store stays appendable."""
        calls = []

        def flaky_fsync(fd):
            calls.append(fd)
            if len(calls) == 2:  # header sync is call #1
                raise OSError("injected fsync fault")

        store = EvidenceStore(tmp_path / "evidence.log", AUDIT_KEY,
                              fsync_fn=flaky_fsync)
        service = FleetService(workers=0, store=store)
        with pytest.raises(OSError):
            drive_session(service, factory, "prv-0")
        assert "prv-0" not in service.verdicts  # withheld, not lost
        # the rewound store keeps working for the next session
        drive_session(service, factory, "prv-1")
        service.close()
        records = verify_evidence_trail(store.path, AUDIT_KEY)
        assert [r.device_id for r in records] == ["prv-1"]


class TestDurableReplayCache:
    PROFILE = FIBCALL
    KEY = b"\xabcd-records-digest\xab" + b"\x00" * 12
    ENTRY = _ReplaySummary(lossless=True, violations=(), error="",
                           consumed=7, path_len=9, path_digest="ff" * 32)

    def test_rewarming_from_disk(self, tmp_path):
        first = DurableReplayCache(tmp_path)
        assert first.lookup(self.PROFILE, self.KEY) is None
        first.store(self.PROFILE, self.KEY, self.ENTRY)
        # a restarted service's cache re-warms from the CAS files
        second = DurableReplayCache(tmp_path)
        assert second.lookup(self.PROFILE, self.KEY) == self.ENTRY
        assert second.disk_hits == 1 and second.hits == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = DurableReplayCache(tmp_path)
        cache.store(self.PROFILE, self.KEY, self.ENTRY)
        cas_file = tmp_path / (
            DurableReplayCache.cas_key(self.PROFILE, self.KEY) + ".pkl")
        cas_file.write_bytes(b"not a pickle")
        fresh = DurableReplayCache(tmp_path)
        assert fresh.lookup(self.PROFILE, self.KEY) is None

    def test_memory_only_without_root(self):
        cache = DurableReplayCache(None)
        cache.store(self.PROFILE, self.KEY, self.ENTRY)
        assert cache.lookup(self.PROFILE, self.KEY) == self.ENTRY
        assert DurableReplayCache(None).lookup(
            self.PROFILE, self.KEY) is None

    def test_verdict_preserving_inside_service(self, tmp_path):
        """The durable cache slots into the service like the plain one."""
        factory = ChainFactory(watermark=256)
        runs = []
        for cache in (DurableReplayCache(tmp_path / "cas"),
                      ReplayCache(), False):
            service = FleetService(workers=0, replay_cache=cache,
                                   nonce_scope="device")
            drive_session(service, factory, "prv-0")
            drive_session(service, factory, "prv-1")
            service.close()
            runs.append(dict(service.verdicts))
        assert runs[0] == runs[1] == runs[2]


class TestEncodingTotality:
    def test_violations_and_reasons_roundtrip(self, tmp_path):
        verdict = SessionVerdict(
            device_id="prv-9", profile=DeviceProfile("gps", "traces"),
            accepted=False, authenticated=True, lossless=False,
            violations=(("cfi", 0x1234, "ret to 0x5678"),
                        ("loop", 0xFFFFFFFF, "ünïcode détail")),
            reason="replay diverged", reports=3, records=41,
            path_len=120, path_digest="ab" * 32)
        store = make_store(tmp_path / "evidence.log")
        store.append(verdict, chain=b"\x05" * 32, challenge=b"\x01" * 16,
                     cache_hit=True, expired=True)
        store.close()
        (record,) = verify_evidence_trail(store.path, AUDIT_KEY)
        assert record.to_verdict() == verdict
        assert record.cache_hit and record.expired
        assert record.challenge == b"\x01" * 16
