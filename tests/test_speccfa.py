"""SpecCFA-style sub-path speculation tests."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.cfa.cflog import BranchRecord, LoopRecord
from repro.cfa.speccfa import (
    SpecRecord,
    SpeculativeVerifier,
    compress,
    expand,
    mine_subpaths,
    speculate_result,
)
from repro.workloads import load_workload
from conftest import rap_setup


def B(n):
    return BranchRecord(n, n + 1)


class TestCompressExpand:
    def test_roundtrip_simple(self):
        dictionary = {0: (B(1), B(2))}
        records = [B(0), B(1), B(2), B(1), B(2), B(3)]
        compressed = compress(records, dictionary)
        assert compressed == [B(0), SpecRecord(0, 2), B(3)]
        assert expand(compressed, dictionary) == records

    def test_no_match_passthrough(self):
        dictionary = {0: (B(7), B(8))}
        records = [B(0), B(1)]
        assert compress(records, dictionary) == records

    def test_longer_patterns_preferred(self):
        dictionary = {0: (B(1),), 1: (B(1), B(2))}
        records = [B(1), B(2)]
        compressed = compress(records, dictionary)
        assert compressed == [SpecRecord(1, 1)]

    def test_wire_savings(self):
        dictionary = {0: (B(1), B(2))}
        records = [B(1), B(2)] * 50
        compressed = compress(records, dictionary)
        original = sum(r.size_bytes for r in records)
        packed = sum(r.size_bytes for r in compressed)
        assert packed == 4  # one token
        assert original == 800

    def test_expand_unknown_id_raises(self):
        with pytest.raises(ValueError):
            expand([SpecRecord(99, 1)], {})

    def test_spec_record_pack(self):
        assert SpecRecord(1, 2).pack() != SpecRecord(1, 3).pack()
        assert SpecRecord(1, 2).size_bytes == 4

    @given(st.lists(st.integers(min_value=0, max_value=5), min_size=0,
                    max_size=60))
    @settings(deadline=None)
    def test_roundtrip_property(self, keys):
        records = [B(k) for k in keys]
        dictionary = mine_subpaths(records)
        compressed = compress(records, dictionary)
        assert expand(compressed, dictionary) == records


class TestMining:
    def test_tandem_repeat_found(self):
        records = [B(9)] + [B(1), B(2)] * 20 + [B(8)]
        dictionary = mine_subpaths(records)
        assert any(set(p) == {B(1), B(2)} and len(p) == 2
                   for p in dictionary.values())

    def test_unique_stream_yields_nothing(self):
        records = [B(i) for i in range(20)]
        assert mine_subpaths(records) == {}

    def test_min_gain_threshold(self):
        records = [B(1), B(1)]  # saving 2*8-4 = 12 < 16
        assert mine_subpaths(records, min_gain_bytes=16) == {}


class TestEndToEndSpeculation:
    @pytest.mark.parametrize("name", ["bubblesort", "prime", "geiger"])
    def test_speculated_attestation_verifies(self, name, keystore):
        # profiling run mines the dictionary (Vrf side, offline)
        workload = load_workload(name)
        image, bound, mcu, engine, verifier, tracer = rap_setup(
            workload, keystore=keystore)
        profile = engine.attest(b"profiling")
        dictionary = mine_subpaths(profile.cflog.records)

        # attested run, transmitted compressed
        attested = engine.attest(b"real-chal")
        compressed = speculate_result(attested, dictionary,
                                      keystore.attestation_key)
        spec_verifier = SpeculativeVerifier(verifier, dictionary)
        outcome = spec_verifier.verify(compressed, b"real-chal")
        assert outcome.authenticated
        assert outcome.lossless
        assert not outcome.violations

    def test_compression_shrinks_loopy_logs(self, keystore):
        workload = load_workload("bubblesort")
        _, _, _, engine, _, _ = rap_setup(workload, keystore=keystore)
        profile = engine.attest(b"profiling")
        dictionary = mine_subpaths(profile.cflog.records)
        attested = engine.attest(b"real")
        compressed = speculate_result(attested, dictionary,
                                      keystore.attestation_key)
        assert compressed.cflog_bytes < attested.cflog_bytes / 2

    def test_tampered_compressed_chain_rejected(self, keystore):
        workload = load_workload("prime")
        _, _, _, engine, verifier, _ = rap_setup(workload,
                                                 keystore=keystore)
        profile = engine.attest(b"profiling")
        dictionary = mine_subpaths(profile.cflog.records)
        attested = engine.attest(b"real")
        compressed = speculate_result(attested, dictionary,
                                      keystore.attestation_key)
        compressed.final_report.mac = b"\x00" * 32
        outcome = SpeculativeVerifier(verifier, dictionary).verify(
            compressed, b"real")
        assert not outcome.authenticated

    def test_wrong_dictionary_detected(self, keystore):
        # expansion with a mismatched dictionary desyncs the replay
        workload = load_workload("bubblesort")
        _, _, _, engine, verifier, _ = rap_setup(workload,
                                                 keystore=keystore)
        profile = engine.attest(b"profiling")
        dictionary = mine_subpaths(profile.cflog.records)
        if not dictionary:
            pytest.skip("nothing mined")
        attested = engine.attest(b"real")
        compressed = speculate_result(attested, dictionary,
                                      keystore.attestation_key)
        wrong = {k: v + (B(0xDEAD),) for k, v in dictionary.items()}
        outcome = SpeculativeVerifier(verifier, wrong).verify(
            compressed, b"real")
        assert not outcome.lossless
