"""Verifier tests: lossless reconstruction, tamper detection, policy."""

import dataclasses

import pytest

from repro.cfa.cflog import AddressRecord, BranchRecord, CFLog, LoopRecord
from repro.cfa.report import AttestationResult
from repro.core.pipeline import RapTrackConfig
from conftest import (
    assert_lossless,
    naive_setup,
    rap_setup,
    text_path,
    traces_setup,
)

BRANCHY = """
.entry main
main:
    push {r4, r5, lr}
    mov r4, #0
    mov r5, #0
    lsr r0, r0, #1
    add r0, r0, #4
varloop:
    add r5, r5, #1
    sub r0, r0, #1
    cmp r0, #0
    bgt varloop
    cmp r5, #2
    blt low
    bl bump
    b join
low:
    mov r4, #1
join:
    adr r2, bump
    blx r2
    pop {r4, r5, pc}
bump:
    push {lr}
    add r4, r4, #10
    pop {pc}
"""


class TestLosslessReconstruction:
    def test_rap_track_exact_path(self, keystore):
        image, _, _, engine, verifier, tracer = rap_setup(
            BRANCHY, keystore=keystore)
        assert_lossless(image, engine, verifier, tracer)

    def test_traces_exact_path(self, keystore):
        image, _, _, engine, verifier, tracer = traces_setup(
            BRANCHY, keystore=keystore)
        assert_lossless(image, engine, verifier, tracer)

    def test_naive_exact_path(self, keystore):
        image, _, _, engine, verifier, tracer = naive_setup(
            BRANCHY, keystore=keystore)
        result = engine.attest(b"t")
        outcome = verifier.verify(result, b"t")
        assert outcome.ok, outcome.error
        assert outcome.path == text_path(image, tracer)


class TestAuthenticationChecks:
    def _attested(self, keystore):
        image, _, _, engine, verifier, _ = rap_setup(
            BRANCHY, keystore=keystore)
        return image, engine.attest(b"good-chal"), verifier

    def test_wrong_challenge_rejected(self, keystore):
        _, result, verifier = self._attested(keystore)
        outcome = verifier.verify(result, b"other-chal")
        assert not outcome.authenticated
        assert not outcome.ok

    def test_mac_tamper_rejected(self, keystore):
        _, result, verifier = self._attested(keystore)
        report = result.final_report
        report.mac = bytes(report.mac[:-1]) + bytes([report.mac[-1] ^ 1])
        assert not verifier.verify(result, b"good-chal").authenticated

    def test_cflog_tamper_breaks_mac(self, keystore):
        _, result, verifier = self._attested(keystore)
        records = result.final_report.cflog.records
        first = records[0]
        if isinstance(first, LoopRecord):
            records[0] = dataclasses.replace(first, value=first.value + 1)
        else:
            records[0] = dataclasses.replace(first, dst=first.dst ^ 4)
        assert not verifier.verify(result, b"good-chal").authenticated

    def test_hmem_of_different_binary_rejected(self, keystore):
        _, result, _ = self._attested(keystore)
        # verifier expecting a different reference binary
        image2, _, _, _, verifier2, _ = rap_setup(
            BRANCHY.replace("#10", "#11"), keystore=keystore)
        outcome = verifier2.verify(result, b"good-chal")
        assert not outcome.authenticated

    def test_report_reordering_rejected(self, keystore):
        image, _, mcu, engine, verifier, _ = rap_setup(
            BRANCHY, keystore=keystore,
            engine_config=_tiny_watermark())
        result = engine.attest(b"good-chal")
        assert len(result.reports) >= 2
        result.reports[0], result.reports[1] = (result.reports[1],
                                                result.reports[0])
        assert not verifier.verify(result, b"good-chal").authenticated

    def test_dropped_partial_rejected(self, keystore):
        _, _, _, engine, verifier, _ = rap_setup(
            BRANCHY, keystore=keystore, engine_config=_tiny_watermark())
        result = engine.attest(b"good-chal")
        del result.reports[0]
        assert not verifier.verify(result, b"good-chal").authenticated


def _tiny_watermark():
    from repro.cfa.engine import EngineConfig

    return EngineConfig(watermark=16)


class TestReplayDesync:
    """Replay-level failures operate on raw records (pre-MAC checks)."""

    def _records(self, keystore):
        _, _, _, engine, verifier, _ = rap_setup(BRANCHY, keystore=keystore)
        result = engine.attest(b"t")
        return list(result.cflog.records), verifier

    def test_clean_replay(self, keystore):
        records, verifier = self._records(keystore)
        assert verifier.replay(records).lossless

    def test_missing_record_detected(self, keystore):
        records, verifier = self._records(keystore)
        outcome = verifier.replay(records[:-1])
        assert not outcome.lossless

    def test_extra_record_detected(self, keystore):
        records, verifier = self._records(keystore)
        outcome = verifier.replay(records + [records[-1]])
        assert not outcome.lossless

    def test_missing_loop_record_detected(self, keystore):
        records, verifier = self._records(keystore)
        without_loop = [r for r in records if not isinstance(r, LoopRecord)]
        outcome = verifier.replay(without_loop)
        assert not outcome.lossless
        assert "loop" in outcome.error

    def test_garbage_dst_detected(self, keystore):
        records, verifier = self._records(keystore)
        for i, record in enumerate(records):
            if isinstance(record, BranchRecord):
                records[i] = dataclasses.replace(record, dst=0xDEAD0000)
                break
        outcome = verifier.replay(records)
        assert not outcome.lossless or outcome.violations

    def test_empty_log_fails_on_branchy_program(self, keystore):
        _, verifier = self._records(keystore)
        assert not verifier.replay([]).lossless


class TestNaiveReplayDesync:
    def test_truncated_log(self, keystore):
        _, _, _, engine, verifier, _ = naive_setup(BRANCHY,
                                                   keystore=keystore)
        result = engine.attest(b"t")
        records = list(result.cflog.records)
        outcome = verifier.replay(records[: len(records) // 2])
        assert not outcome.lossless

    def test_swapped_records(self, keystore):
        _, _, _, engine, verifier, _ = naive_setup(BRANCHY,
                                                   keystore=keystore)
        result = engine.attest(b"t")
        records = list(result.cflog.records)
        original = verifier.replay(records)
        # swap the first *differing* adjacent pair (loop iterations
        # produce identical packets, whose swap is a no-op)
        idx = next(i for i in range(len(records) - 1)
                   if records[i] != records[i + 1])
        records[idx], records[idx + 1] = records[idx + 1], records[idx]
        outcome = verifier.replay(records)
        assert not outcome.lossless or outcome.path != original.path


class TestViolationEvidence:
    def test_forged_indirect_target_flagged(self, keystore):
        # dataflow off: keep the blx an *indirect* (logged) call so a
        # forged destination record exists to tamper with
        image, bound, _, engine, verifier, _ = rap_setup(
            BRANCHY, RapTrackConfig(enable_dataflow=False),
            keystore=keystore)
        result = engine.attest(b"t")
        records = list(result.cflog.records)
        # redirect the logged blx destination to mid-function code
        for i, record in enumerate(records):
            if isinstance(record, BranchRecord):
                info = [v for v in bound.indirect_at.values()
                        if v.kind == "call"]
                if record.key in {v.rec_addr for v in info}:
                    target = image.addr_of("join")
                    records[i] = dataclasses.replace(record, dst=target)
                    break
        outcome = verifier.replay(records)
        assert (any(v.kind == "jop-call" for v in outcome.violations)
                or not outcome.lossless)
