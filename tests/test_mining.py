"""Property battery for the fleet sub-path miner.

Three properties make a mined dictionary safe to push to a fleet, all
hypothesis-checked over arbitrary weighted record streams:

1. **Lossless** — ``expand(compress(s, d), d) == s`` for every stream
   in the traffic sample a dictionary was mined from (and any other
   stream: compression is greedy matching, expansion is substitution).
2. **Non-negative profit** — ``mining_gain`` never reports a negative
   saving; a 4-byte token only ever replaces patterns of >= 4 bytes.
3. **Deterministic** — the mined dictionary is a pure function of the
   traffic *multiset*: stream order, sampler insertion order, and dict
   iteration order cannot change a single byte of it (this is what
   makes epochs content-addressable across Vrf replicas).

Plus unit coverage for the serialization the epochs are named by and
the bounded deduplicating :class:`TrafficSampler`.
"""

import random

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.cfa.cflog import AddressRecord, BranchRecord, LoopRecord
from repro.cfa.fleet import (
    DeviceProfile,
    TrafficSampler,
    mine_fleet_dictionary,
    mining_gain,
)
from repro.cfa.fleet.mining import _stream_digest
from repro.cfa.speccfa import (
    EMPTY_DICTIONARY_DIGEST,
    SpecRecord,
    compress,
    dictionary_digest,
    expand,
    pack_dictionary,
    unpack_dictionary,
)

u32 = st.integers(min_value=0, max_value=0xFFFFFFFF)

#: expanded (plain) record streams — what the sampler feeds the miner
base_records = st.lists(
    st.one_of(
        st.builds(BranchRecord, u32, u32),
        st.builds(AddressRecord, u32, u32),
        st.builds(LoopRecord, u32, u32),
    ),
    max_size=40,
)

weighted_streams = st.lists(
    st.tuples(base_records, st.integers(min_value=1, max_value=9)),
    min_size=1, max_size=4,
)

#: streams with actual repetition, so mining usually finds something
looped_streams = st.tuples(base_records, st.integers(2, 6)).map(
    lambda body_n: [(body_n[0] * body_n[1], 3)])


def _mine(streams):
    return mine_fleet_dictionary(
        [(tuple(records), weight) for records, weight in streams])


@given(weighted_streams)
@settings(max_examples=60, deadline=None)
def test_mined_dictionary_roundtrips(streams):
    dictionary = _mine(streams)
    for records, _weight in streams:
        compressed = compress(list(records), dictionary)
        assert expand(compressed, dictionary) == list(records)


@given(looped_streams)
@settings(max_examples=60, deadline=None)
def test_mined_dictionary_roundtrips_on_loops(streams):
    dictionary = _mine(streams)
    for records, _weight in streams:
        assert expand(compress(list(records), dictionary),
                      dictionary) == list(records)


@given(weighted_streams)
@settings(max_examples=60, deadline=None)
def test_mined_profit_non_negative(streams):
    tupled = [(tuple(r), w) for r, w in streams]
    dictionary = mine_fleet_dictionary(tupled)
    assert mining_gain(tupled, dictionary) >= 0
    # and compression never expands any individual stream
    for records, _weight in streams:
        compressed = compress(list(records), dictionary)
        assert (sum(r.size_bytes for r in compressed)
                <= sum(r.size_bytes for r in records))


@given(weighted_streams, st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=60, deadline=None)
def test_mining_deterministic_under_stream_order(streams, seed):
    tupled = [(tuple(r), w) for r, w in streams]
    shuffled = list(tupled)
    random.Random(seed).shuffle(shuffled)
    assert mine_fleet_dictionary(shuffled) == mine_fleet_dictionary(tupled)


@given(weighted_streams)
@settings(max_examples=40, deadline=None)
def test_mining_deterministic_through_sampler(streams):
    """Observation order cannot change the miner's input: the sampler
    deduplicates by digest and emits in sorted-digest order."""
    profile = DeviceProfile("fibcall")
    forward, backward = TrafficSampler(), TrafficSampler()
    for records, weight in streams:
        for _ in range(weight):
            forward.observe(profile, list(records))
    for records, weight in reversed(streams):
        for _ in range(weight):
            backward.observe(profile, list(records))
    assert forward.sample(profile) == backward.sample(profile)
    assert (mine_fleet_dictionary(forward.sample(profile))
            == mine_fleet_dictionary(backward.sample(profile)))


# -- serialization (what epochs are named by) -------------------------------


@given(weighted_streams)
@settings(max_examples=60, deadline=None)
def test_pack_unpack_dictionary_roundtrip(streams):
    dictionary = _mine(streams)
    payload = pack_dictionary(dictionary)
    assert unpack_dictionary(payload) == {
        path_id: tuple(pattern) for path_id, pattern in dictionary.items()}
    # canonical: identical content -> identical bytes -> identical digest
    assert pack_dictionary(dict(reversed(list(dictionary.items())))) \
        == payload
    assert dictionary_digest(dictionary) == dictionary_digest(
        unpack_dictionary(payload))


def test_empty_dictionary_digest_is_stable():
    assert dictionary_digest({}) == EMPTY_DICTIONARY_DIGEST
    assert unpack_dictionary(pack_dictionary({})) == {}


def test_unpack_rejects_damage():
    payload = pack_dictionary({0: (BranchRecord(4, 8), BranchRecord(8, 4))})
    with pytest.raises(ValueError):
        unpack_dictionary(payload[:-1])  # truncated
    with pytest.raises(ValueError):
        unpack_dictionary(payload + b"\x00")  # trailing bytes
    with pytest.raises(ValueError):
        unpack_dictionary(b"XXXX" + payload[4:])  # bad magic
    with pytest.raises(ValueError):
        unpack_dictionary(pack_dictionary({0: ()}))  # empty sub-path


def test_pack_rejects_nested_speculation():
    with pytest.raises(ValueError):
        pack_dictionary({0: (SpecRecord(1, 2),)})


# -- the sampler's bound and merge ------------------------------------------


def test_sampler_dedupes_and_bounds():
    profile = DeviceProfile("prime")
    sampler = TrafficSampler(max_streams=2)
    hot = [BranchRecord(4, 8), BranchRecord(8, 4)]
    for _ in range(5):
        sampler.observe(profile, hot)
    for i in range(4):  # distinct cold streams past the bound
        sampler.observe(profile, [AddressRecord(1, i)])
    sample = sampler.sample(profile)
    assert len(sample) == 2  # bound held: 2 exemplars kept
    weights = {tuple(records): weight for records, weight in sample}
    assert weights[tuple(hot)] == 5  # every observation still counted
    assert sampler.sessions_observed(profile) == 9


def test_sampler_merge_sums_counts():
    profile = DeviceProfile("prime")
    a, b = TrafficSampler(), TrafficSampler()
    hot = [BranchRecord(4, 8)]
    a.observe(profile, hot)
    a.observe(profile, hot)
    b.observe(profile, hot)
    b.observe(profile, [AddressRecord(1, 2)])
    merged = TrafficSampler.merge([a, b])
    weights = {tuple(records): weight
               for records, weight in merged.sample(profile)}
    assert weights[tuple(hot)] == 3
    assert weights[(AddressRecord(1, 2),)] == 1
    assert merged.sessions_observed(profile) == 4


# -- the dedup-map bound and deterministic eviction -------------------------


def test_sampler_bound_floors_and_defaults():
    assert TrafficSampler(max_streams=10).max_digests == 40
    # the dedup map can never be smaller than the exemplar map
    assert TrafficSampler(max_streams=8, max_digests=2).max_digests == 8
    with pytest.raises(ValueError):
        TrafficSampler(max_streams=0)


def test_sampler_eviction_is_deterministic_coldest_first():
    """Overflowing the dedup map evicts the minimum-(count, digest)
    entry — never the digest being observed — and drops its exemplar."""
    profile = DeviceProfile("prime")
    sampler = TrafficSampler(max_streams=4, max_digests=4)
    streams = [[AddressRecord(1, i)] for i in range(4)]
    for records, heat in zip(streams, (3, 2, 1, 1)):
        for _ in range(heat):
            sampler.observe(profile, records)
    assert sampler.evictions == 0

    newcomer = [BranchRecord(4, 8)]
    sampler.observe(profile, newcomer)
    assert sampler.evictions == 1
    # the two count-1 entries tied; lexicographically smaller digest lost
    victim = min(_stream_digest(streams[2]), _stream_digest(streams[3]))
    kept = {_stream_digest(records)
            for records, _ in sampler.sample(profile)}
    assert victim not in kept
    assert _stream_digest(newcomer) in kept  # the newcomer survives
    assert {_stream_digest(streams[0]),
            _stream_digest(streams[1])} <= kept


def test_sampler_evicted_digest_reenters_with_fresh_count():
    profile = DeviceProfile("prime")
    sampler = TrafficSampler(max_streams=2, max_digests=2)
    hot, cold, other = ([BranchRecord(4, 8)], [AddressRecord(1, 0)],
                        [AddressRecord(1, 1)])
    for _ in range(5):
        sampler.observe(profile, hot)
    sampler.observe(profile, cold)
    sampler.observe(profile, other)  # evicts cold (count 1)
    assert sampler.evictions == 1
    assert _stream_digest(cold) not in {
        _stream_digest(records) for records, _ in sampler.sample(profile)}
    for _ in range(3):  # cold comes back hot: first observe evicts other
        sampler.observe(profile, cold)
    assert sampler.evictions == 2
    weights = {_stream_digest(records): weight
               for records, weight in sampler.sample(profile)}
    # history before the eviction is gone: 3, not 4
    assert weights == {_stream_digest(hot): 5, _stream_digest(cold): 3}


@given(st.lists(st.integers(0, 1000), min_size=1, max_size=40,
                unique=True))
@settings(max_examples=60, deadline=None)
def test_sampler_bounds_hold_under_any_traffic(values):
    """All-distinct traffic (the adversarial worst case): both maps
    stay hard-bounded at every step, the observed digest is never the
    eviction victim, and the eviction count is exact."""
    profile = DeviceProfile("prime")
    sampler = TrafficSampler(max_streams=3, max_digests=6)
    for value in values:
        records = [AddressRecord(1, value)]
        sampler.observe(profile, records)
        sample = sampler._profiles[profile]
        assert len(sample.counts) <= 6
        assert len(sample.streams) <= 3
        assert set(sample.streams) <= set(sample.counts)
        assert sample.counts[_stream_digest(records)] == 1
    assert sampler.evictions == max(0, len(values) - 6)
    assert sampler.sessions_observed(profile) == len(values)


def test_sampler_merge_trims_to_bound_and_counts_evictions():
    profile = DeviceProfile("prime")
    a = TrafficSampler(max_streams=2, max_digests=3)
    b = TrafficSampler(max_streams=2, max_digests=3)
    for i in range(3):  # each sampler within bound on its own
        a.observe(profile, [AddressRecord(1, i)])
    hot = [BranchRecord(4, 8)]
    for _ in range(4):
        b.observe(profile, hot)
    b.observe(profile, [AddressRecord(2, 0)])
    b.observe(profile, [AddressRecord(2, 1)])

    merged = TrafficSampler.merge([a, b])
    assert merged.max_digests == 3  # bounds carry through the fold
    assert merged.evictions == 3  # 6 distinct digests trimmed to 3
    sample = merged._profiles[profile]
    assert len(sample.counts) == 3
    assert sample.counts[_stream_digest(hot)] == 4  # hottest survives
    assert set(sample.streams) <= set(sample.counts)
    assert merged.sessions_observed(profile) == 9  # no sessions lost
