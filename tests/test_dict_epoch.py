"""The dictionary-epoch handshake, end to end.

The security property under test: a session attests under **exactly
one** pinned dictionary epoch, cryptographically — the epoch and
content digest are folded into the challenge the report MACs cover —
so a chain compressed under any other epoch is rejected at ingest,
*before* any expansion is attempted. Around that core:

* the registry's monotone, content-addressed, persistent epoch chain;
* DACK authentication (a network adversary cannot re-pin a device);
* a push landing mid-session changes nothing until the next session;
* a device that never ACKs keeps attesting under epoch 0 forever.
"""

import pytest

from repro.cfa.cflog import BranchRecord
from repro.cfa.fleet import (
    ChainFactory,
    DeviceProfile,
    DeviceSpec,
    DictEpoch,
    DictionaryRegistry,
    FleetService,
    dack_mac,
    device_key,
    spec_challenge,
    verify_dack,
)
from repro.cfa.speccfa import EMPTY_DICTIONARY_DIGEST, mine_subpaths
from repro.cfa.wire import encode_dack_frame

FIBCALL = DeviceProfile("fibcall")


@pytest.fixture(scope="module")
def factory():
    return ChainFactory(watermark=256)


@pytest.fixture(scope="module")
def fibcall_dictionary(factory):
    """A real dictionary mined from fibcall's own execution."""
    chunks = factory.chain(DeviceSpec("miner", FIBCALL), b"\x00" * 16)
    template = factory._templates[(FIBCALL, False)]
    records = [r for log in template.cflogs for r in log.records]
    dictionary = mine_subpaths(records)
    assert dictionary  # fibcall loops: the tandem miner finds paths
    return dictionary


def ack(service, device_id, epoch):
    """Sign and ingest the DACK a real device would send."""
    entry = service.registry.get(FIBCALL, epoch)
    return service.ingest_dack(device_id, encode_dack_frame(
        device_id, entry.epoch, entry.digest,
        dack_mac(device_key(device_id), device_id, entry.epoch,
                 entry.digest)))


def run_session(service, factory, device_id, chain_epoch=None, now=0.0):
    """Open a session; transmit a chain compressed under
    ``chain_epoch`` (None = whatever the device last ACKed is *not*
    simulated here — the chain matches the given epoch exactly)."""
    challenge = service.open_session(
        device_id, FIBCALL, device_key(device_id), now)
    dict_epoch = (service.registry.get(FIBCALL, chain_epoch)
                  if chain_epoch else None)
    spec = DeviceSpec(device_id, FIBCALL)
    for chunk in factory.chain(spec, challenge.nonce, dict_epoch):
        service.submit(device_id, chunk, now)
    service.drain()
    return service.verdicts[device_id]


# -- registry ---------------------------------------------------------------


class TestRegistry:
    def test_epochs_are_monotone_and_content_addressed(self):
        registry = DictionaryRegistry()
        d1 = {0: (BranchRecord(4, 8), BranchRecord(8, 4))}
        d2 = {0: (BranchRecord(4, 8), BranchRecord(8, 12))}
        e1 = registry.publish(FIBCALL, d1)
        e2 = registry.publish(FIBCALL, d2)
        assert (e1.epoch, e2.epoch) == (1, 2)
        assert e1.digest != e2.digest
        # republishing identical content is idempotent, not a new epoch
        assert registry.publish(FIBCALL, d2) is e2
        assert registry.latest_epoch(FIBCALL) == 2
        # old epochs stay resolvable forever (evidence re-expansion)
        assert registry.get(FIBCALL, 1).dictionary == d1

    def test_epoch_zero_always_resolves(self):
        registry = DictionaryRegistry()
        entry = registry.get(FIBCALL, 0)
        assert entry.is_empty and entry.dictionary == {}
        assert entry.digest == EMPTY_DICTIONARY_DIGEST
        with pytest.raises(KeyError):
            registry.get(FIBCALL, 1)  # nothing published yet

    def test_registry_persists_across_restart(self, tmp_path):
        d1 = {0: (BranchRecord(4, 8), BranchRecord(8, 4))}
        registry = DictionaryRegistry(tmp_path / "dicts")
        e1 = registry.publish(FIBCALL, d1)
        reloaded = DictionaryRegistry(tmp_path / "dicts")
        assert reloaded.latest(FIBCALL).digest == e1.digest
        assert reloaded.get(FIBCALL, 1).dictionary == d1

    def test_registry_refuses_gapped_store(self, tmp_path):
        store = tmp_path / "dicts"
        registry = DictionaryRegistry(store)
        registry.publish(FIBCALL, {0: (BranchRecord(4, 8),
                                       BranchRecord(8, 4))})
        registry.publish(FIBCALL, {0: (BranchRecord(4, 8),
                                       BranchRecord(8, 12))})
        next(store.glob("*__000001.dict")).unlink()  # punch a hole
        with pytest.raises(ValueError, match="gap"):
            DictionaryRegistry(store)


# -- the cryptographic pin --------------------------------------------------


class TestSpecChallenge:
    def test_epoch_zero_is_the_bare_nonce(self):
        nonce = b"n" * 16
        assert spec_challenge(nonce, 0, b"") == nonce
        assert spec_challenge(nonce, 0, EMPTY_DICTIONARY_DIGEST) == nonce

    def test_epoch_and_digest_both_bind(self):
        nonce, digest = b"n" * 16, b"d" * 32
        bound = spec_challenge(nonce, 1, digest)
        assert bound != nonce
        assert bound != spec_challenge(nonce, 2, digest)
        assert bound != spec_challenge(nonce, 1, b"e" * 32)
        assert bound != spec_challenge(b"m" * 16, 1, digest)

    def test_dack_requires_the_device_key(self):
        registry = DictionaryRegistry()
        entry = registry.publish(
            FIBCALL, {0: (BranchRecord(4, 8), BranchRecord(8, 4))})
        key = device_key("prv-0")
        good = dack_mac(key, "prv-0", entry.epoch, entry.digest)
        assert verify_dack(registry, FIBCALL, key, "prv-0",
                           entry.epoch, entry.digest, good) is entry
        # forged MAC, wrong epoch, wrong profile: all refused
        assert verify_dack(registry, FIBCALL, key, "prv-0",
                           entry.epoch, entry.digest,
                           b"\x00" * 32) is None
        assert verify_dack(registry, FIBCALL, key, "prv-0",
                           entry.epoch + 1, entry.digest, good) is None
        assert verify_dack(registry, DeviceProfile("prime"), key,
                           "prv-0", entry.epoch, entry.digest,
                           good) is None


# -- the session state machine ----------------------------------------------


class TestEpochStateMachine:
    def test_never_acked_device_stays_on_epoch_zero(
            self, factory, fibcall_dictionary):
        service = FleetService(workers=0)
        service.publish_dictionary(FIBCALL, fibcall_dictionary)
        # the push is *offered* but the device never answers it
        verdict = run_session(service, factory, "prv-0")
        assert verdict.accepted
        assert service.acked_epoch("prv-0", FIBCALL) == 0
        assert service.dictionary_pushes()  # still being offered
        verdict = run_session(service, factory, "prv-0")
        assert verdict.accepted  # plain logs keep verifying forever
        service.close()

    def test_acked_device_attests_compressed(
            self, factory, fibcall_dictionary):
        service = FleetService(workers=0)
        entry = service.publish_dictionary(FIBCALL, fibcall_dictionary)
        plain = run_session(service, factory, "prv-0")
        assert ack(service, "prv-0", entry.epoch)
        assert service.acked_epoch("prv-0", FIBCALL) == entry.epoch
        compressed = run_session(service, factory, "prv-0",
                                 chain_epoch=entry.epoch)
        assert compressed.accepted
        # same execution: expansion reconstructed the identical stream
        assert compressed.records_digest == plain.records_digest
        assert compressed.path_digest == plain.path_digest
        service.close()

    def test_stale_epoch_chain_is_rejected_by_name(
            self, factory, fibcall_dictionary):
        """A device pinned to epoch 1 transmitting an epoch-0 (plain)
        chain fails the bound challenge — and the reject reason names
        the stale epoch instead of guessing at a replay."""
        service = FleetService(workers=0)
        entry = service.publish_dictionary(FIBCALL, fibcall_dictionary)
        run_session(service, factory, "prv-0")
        assert ack(service, "prv-0", entry.epoch)
        verdict = run_session(service, factory, "prv-0", chain_epoch=0)
        assert not verdict.accepted
        assert "stale-epoch" in verdict.reason
        assert f"pinned to epoch {entry.epoch}" in verdict.reason
        service.close()

    def test_unpinned_compressed_chain_is_rejected(
            self, factory, fibcall_dictionary):
        """The reverse direction: a device that never ACKed (pinned to
        0) transmitting a compressed epoch-1 chain is refused before
        any expansion is attempted."""
        service = FleetService(workers=0)
        entry = service.publish_dictionary(FIBCALL, fibcall_dictionary)
        verdict = run_session(service, factory, "prv-0",
                              chain_epoch=entry.epoch)
        assert not verdict.accepted
        assert "stale-epoch" in verdict.reason
        assert "pinned to epoch 0" in verdict.reason
        service.close()

    def test_mid_session_push_pins_the_open_session(
            self, factory, fibcall_dictionary):
        """A push+ACK landing *mid-session* must not change the open
        session's epoch: the in-flight plain chain still verifies, and
        only the next session opens compressed."""
        service = FleetService(workers=0)
        challenge = service.open_session("prv-0", FIBCALL,
                                         device_key("prv-0"))
        chunks = factory.chain(DeviceSpec("prv-0", FIBCALL),
                               challenge.nonce)
        service.submit("prv-0", chunks[0])
        # dictionary published + ACKed while the chain is in flight
        entry = service.publish_dictionary(FIBCALL, fibcall_dictionary)
        assert ack(service, "prv-0", entry.epoch)
        for chunk in chunks[1:]:
            service.submit("prv-0", chunk)
        service.drain()
        assert service.verdicts["prv-0"].accepted  # pinned at epoch 0
        # the *next* session opens under the acknowledged epoch
        verdict = run_session(service, factory, "prv-0",
                              chain_epoch=entry.epoch)
        assert verdict.accepted
        service.close()

    def test_replayed_older_ack_cannot_roll_back(
            self, factory, fibcall_dictionary):
        service = FleetService(workers=0)
        e1 = service.publish_dictionary(FIBCALL, fibcall_dictionary)
        bigger = dict(fibcall_dictionary)
        bigger[max(bigger) + 1] = (BranchRecord(4, 8), BranchRecord(8, 4))
        e2 = service.publish_dictionary(FIBCALL, bigger)
        run_session(service, factory, "prv-0")
        assert ack(service, "prv-0", e2.epoch)
        assert ack(service, "prv-0", e1.epoch)  # replay: absorbed...
        assert service.acked_epoch("prv-0", FIBCALL) == e2.epoch  # ...inert
        service.close()

    def test_forged_dack_is_counted_and_dropped(
            self, factory, fibcall_dictionary):
        service = FleetService(workers=0)
        entry = service.publish_dictionary(FIBCALL, fibcall_dictionary)
        run_session(service, factory, "prv-0")
        forged = encode_dack_frame(
            "prv-0", entry.epoch, entry.digest,
            dack_mac(b"not-the-device-key", "prv-0", entry.epoch,
                     entry.digest))
        assert not service.ingest_dack("prv-0", forged)
        assert service.acked_epoch("prv-0", FIBCALL) == 0
        assert service.metrics.dict_acks_rejected == 1
        assert not service.ingest_dack("prv-0", b"garbage")
        service.close()
