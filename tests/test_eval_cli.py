"""Tests for the eval harness and the command-line interface."""

import pytest

from repro.cfa.engine import EngineConfig
from repro.cli import main
from repro.eval.figures import (
    fig1_motivation,
    fig8_runtime,
    fig9_cflog,
    fig10_code_size,
    format_table,
    partial_report_table,
)
from repro.eval.runner import METHODS, MethodRun, prepare, run_all_methods, run_method
from repro.workloads import load_workload


class TestRunner:
    def test_prepare_baseline_has_no_map(self):
        workload = load_workload("temperature")
        image, bound = prepare(workload, "baseline")
        assert bound is None
        assert image.code_size() > 0

    def test_prepare_rap_has_bound_map(self):
        workload = load_workload("temperature")
        image, bound = prepare(workload, "rap-track")
        assert bound is not None
        assert image.section_size("mtbar") > 0

    def test_prepare_unknown_method(self):
        workload = load_workload("temperature")
        with pytest.raises(ValueError):
            prepare(workload, "quantum")

    def test_run_method_baseline(self):
        run = run_method("temperature", "baseline")
        assert run.method == "baseline"
        assert run.cflog_bytes == 0
        assert run.verified

    @pytest.mark.parametrize("method", METHODS)
    def test_run_method_each(self, method):
        run = run_method("crc32", method)
        assert run.verified
        assert run.cycles > 0

    def test_run_all_methods_keys(self):
        runs = run_all_methods("crc32")
        assert set(runs) == set(METHODS)

    def test_overhead_vs(self):
        a = MethodRun("w", "m", 100, 0, 0, 0, 0, 0, 0, 0, True)
        b = MethodRun("w", "m", 150, 0, 0, 0, 0, 0, 0, 0, True)
        assert b.overhead_vs(a) == pytest.approx(0.5)
        zero = MethodRun("w", "m", 0, 0, 0, 0, 0, 0, 0, 0, True)
        assert a.overhead_vs(zero) == 0.0

    def test_verification_failure_raises(self, monkeypatch):
        # sabotage: make the verifier reject everything
        from repro.cfa import verifier as verifier_mod

        original = verifier_mod.Verifier.verify

        def reject(self, result, challenge):
            out = original(self, result, challenge)
            out.authenticated = False
            return out

        monkeypatch.setattr(verifier_mod.Verifier, "verify", reject)
        with pytest.raises(RuntimeError):
            run_method("crc32", "rap-track")


class TestFigures:
    @pytest.fixture(scope="class")
    def runs(self):
        from repro.eval.figures import collect_all

        return collect_all(workloads=("crc32", "temperature"))

    def test_fig1_fields(self, runs):
        rows = fig1_motivation(runs)
        assert {r["workload"] for r in rows} == {"crc32", "temperature"}
        for row in rows:
            assert row["runtime_factor"] >= 1.0

    def test_fig8_fields(self, runs):
        for row in fig8_runtime(runs):
            assert row["naive_mtb"] == row["baseline"]
            assert row["rap_track"] >= row["baseline"]

    def test_fig9_fields(self, runs):
        for row in fig9_cflog(runs):
            assert row["rap_track_B"] <= row["naive_mtb_B"]

    def test_fig10_fields(self, runs):
        for row in fig10_code_size(runs):
            assert row["rap_overhead_B"] >= 0

    def test_partials_fields(self, runs):
        for row in partial_report_table(runs):
            assert row["naive_partials"] >= 0

    def test_format_table_alignment(self):
        rows = [{"name": "x", "value": 1.25, "flag": True},
                {"name": "longer", "value": float("inf"), "flag": False}]
        text = format_table(rows, "Title")
        lines = text.splitlines()
        assert lines[0] == "Title"
        assert "name" in lines[1] and "value" in lines[1]
        assert "inf" in text and "yes" in text and "no" in text

    def test_format_table_empty(self):
        assert format_table([], "T") == "T"


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "geiger" in out and "matmult" in out

    def test_run_default_method(self, capsys):
        assert main(["run", "crc32"]) == 0
        out = capsys.readouterr().out
        assert "rap-track" in out and "verified:        OK" in out

    def test_run_explicit_method(self, capsys):
        assert main(["run", "crc32", "--method", "traces"]) == 0
        assert "traces" in capsys.readouterr().out

    def test_offline(self, capsys):
        assert main(["offline", "fibcall"]) == 0
        out = capsys.readouterr().out
        assert "MTBAR" in out and "__rt_pop_stub" in out

    def test_figures_subset(self, capsys):
        assert main(["figures", "--workloads", "crc32"]) == 0
        out = capsys.readouterr().out
        assert "Figure 8" in out and "crc32" in out

    def test_figures_unknown_workload(self, capsys):
        assert main(["figures", "--workloads", "nope"]) == 2

    def test_attack(self, capsys):
        assert main(["attack"]) == 0
        out = capsys.readouterr().out
        assert "REJECTED" in out and "rop-return" in out

    def test_bad_workload_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            main(["run", "not-a-workload"])
