"""Adaptive-vs-static-vs-off differential for fleet speculation.

Dictionaries are only allowed to move *bytes*: for the same executions
the settled :class:`SessionVerdict` must be ``==`` whether the chains
crossed the wire plain, compressed under the static tandem dictionary,
or compressed under the fleet-mined adaptive dictionary — including a
genuine ROP attack, whose compressed chain must expand back to the
exact violating stream. The evidence log pins the same invariance: the
persisted verdicts (and the expanded-stream ``records_digest`` they
carry) are identical across all three configurations.

The second half pins shard-invariance for the new protocol traffic: a
1-shard and a 2-shard fleet — with a dictionary push landing
*mid-stream* between the halves of every open session — settle
byte-identical verdicts and byte-identical per-device evidence chain
heads, because DICT/DACK frames cross the shard handoff exactly like
reports do.
"""

import pytest

from repro.cfa.fleet import (
    ChainFactory,
    DeviceProfile,
    DeviceSpec,
    FleetService,
    FleetSimulator,
    ShardedFleetService,
    device_key,
    learn_dictionaries,
    mine_fleet_dictionary,
)
from repro.cfa.fleet.store import EvidenceStore
from repro.cfa.speccfa import mine_subpaths

SEED = 5

SPECS = [
    DeviceSpec("prv-00", DeviceProfile("fibcall")),
    DeviceSpec("prv-01", DeviceProfile("fibcall")),
    DeviceSpec("prv-02", DeviceProfile("prime")),
    DeviceSpec("prv-03", DeviceProfile("prime")),
    DeviceSpec("prv-04", DeviceProfile("vulnerable")),
    DeviceSpec("prv-05", DeviceProfile("vulnerable"), "attack"),
]


@pytest.fixture(scope="module")
def factory():
    return ChainFactory(watermark=512)


@pytest.fixture(scope="module")
def traffic(factory):
    """One probe round with the sampler on: the expanded streams every
    dictionary in this battery is mined from."""
    with FleetService(sampler=True) as service:
        report = FleetSimulator(SPECS, seed=SEED,
                                factory=factory).run(service)
        assert report.ok, report.mismatches
        return service.traffic_samples()


@pytest.fixture(scope="module")
def dictionaries(traffic):
    static = {}
    adaptive = {}
    for profile, streams in traffic.items():
        static[profile] = mine_subpaths(list(streams[0][0]))
        adaptive[profile] = mine_fleet_dictionary(streams)
    return {"off": {}, "static": static, "adaptive": adaptive}


def settle(factory, dicts, store_path=None):
    """Two rounds under one configuration: plain round, push/ACK, then
    the compressed round. Returns (round-2 verdicts, evidence records)."""
    store = (EvidenceStore(store_path, b"audit-key")
             if store_path else None)
    with FleetService(store=store) as service:
        for profile, dictionary in sorted(
                dicts.items(), key=lambda kv: str(kv[0])):
            if dictionary:
                service.publish_dictionary(profile, dictionary)
        simulator = FleetSimulator(SPECS, seed=SEED, factory=factory)
        report = simulator.run(service)
        assert report.ok, report.mismatches
        round1 = dict(service.verdicts)
        simulator.handshake(service)
        report = simulator.run(service)
        assert report.ok, report.mismatches
        round2 = dict(service.verdicts)
        evidence = (list(service.store.records())
                    if service.store else [])
    return round1, round2, evidence


def test_dictionaries_differ(dictionaries):
    """The differential is only meaningful if the configs actually
    compress differently — pin that adaptive found more than static."""
    fib = DeviceProfile("fibcall")
    assert dictionaries["adaptive"][fib] != dictionaries["static"][fib]
    assert dictionaries["adaptive"][fib]


def test_verdicts_invariant_under_dictionaries(
        factory, dictionaries, tmp_path):
    results = {
        name: settle(factory, dicts, tmp_path / f"{name}.log")
        for name, dicts in dictionaries.items()}
    _, off_verdicts, off_evidence = results["off"]
    assert off_verdicts["prv-05"].violations  # the attack is caught
    assert all(off_verdicts[s.device_id].accepted is s.expected_accepted
               for s in SPECS)
    for name in ("static", "adaptive"):
        round1, round2, evidence = results[name]
        # byte-identical verdicts: compression moved bytes, not outcomes
        assert round2 == off_verdicts, name
        # and within a config, the compressed round reconstructed the
        # exact expanded stream the plain round verified
        for device_id, verdict in round2.items():
            assert (verdict.records_digest
                    == round1[device_id].records_digest), device_id
        # evidence-digest invariance: the persisted verdicts (with
        # their expanded-stream digests) match the plain config's
        assert ([r.to_verdict() for r in evidence]
                == [r.to_verdict() for r in off_evidence]), name
        # round 2 was really pinned to a non-zero epoch where mined
        seen, acked = set(), {}
        for record in evidence:
            if (record.device_id in seen
                    and dictionaries[name].get(record.profile)):
                acked[record.device_id] = record.epoch
            seen.add(record.device_id)
        assert acked and all(e > 0 for e in acked.values()), name


def test_compression_actually_happened(factory, dictionaries):
    """Guard against the differential passing vacuously: the adaptive
    round must transmit strictly fewer bytes than the off round."""
    totals = {}
    for name in ("off", "adaptive"):
        with FleetService() as service:
            for profile, dictionary in dictionaries[name].items():
                if dictionary:
                    service.publish_dictionary(profile, dictionary)
            simulator = FleetSimulator(SPECS, seed=SEED, factory=factory)
            simulator.run(service)
            before = service.metrics.bytes_ingested
            simulator.handshake(service)
            simulator.run(service)
            totals[name] = service.metrics.bytes_ingested - before
    assert totals["adaptive"] < totals["off"]


# -- shard invariance with a mid-stream push --------------------------------


def mid_stream_rounds(factory, shards, store_dir):
    """Round 1 plain; learn; round 2 with the push/ACK landing in the
    middle of every open session; round 3 compressed."""
    service = ShardedFleetService(
        shards=shards, store_dir=store_dir, sampler=True)
    simulator = FleetSimulator(SPECS, seed=SEED, factory=factory)
    report = simulator.run(service)
    assert report.ok, report.mismatches
    published = learn_dictionaries(service)
    assert published
    # round 2: open every session first (pinned to epoch 0 — nothing
    # is ACKed yet), transmit half of each chain ...
    chains = {}
    for spec in SPECS:
        challenge = service.open_session(
            spec.device_id, spec.profile, device_key(spec.device_id))
        chains[spec.device_id] = factory.chain(spec, challenge.nonce)
    for spec in SPECS:
        chain = chains[spec.device_id]
        for chunk in chain[:len(chain) // 2]:
            service.submit(spec.device_id, chunk)
    # ... the push lands mid-stream, every eligible device ACKs ...
    expected_acks = sum(1 for s in SPECS if s.profile in published)
    acked = simulator.handshake(service)
    assert acked == expected_acks and acked >= 4
    # ... and the in-flight plain chains still verify: pinned epochs
    for spec in SPECS:
        chain = chains[spec.device_id]
        for chunk in chain[len(chain) // 2:]:
            service.submit(spec.device_id, chunk)
    service.drain()
    assert all(service.verdicts[s.device_id].accepted
               is s.expected_accepted for s in SPECS)
    # round 3: the next sessions attest compressed under the new epoch
    report = simulator.run(service)
    assert report.ok, report.mismatches
    verdicts = dict(service.verdicts)
    heads = service.evidence_heads()
    metrics = service.close()
    assert metrics.dict_acks == expected_acks
    return verdicts, heads


def test_shard_count_invariant_with_mid_stream_push(factory, tmp_path):
    one = mid_stream_rounds(factory, 1, tmp_path / "one")
    two = mid_stream_rounds(factory, 2, tmp_path / "two")
    assert one[0] == two[0]  # byte-identical verdicts
    assert one[1] == two[1]  # byte-identical evidence chain heads
