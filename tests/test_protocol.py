"""Protocol tests: challenge freshness, tampering, replay."""

import pytest

from repro.cfa.protocol import (
    Challenge,
    ProtocolError,
    ProverDevice,
    VerifierEndpoint,
    run_attestation,
)
from conftest import rap_setup

PROGRAM = """
.entry main
main:
    push {r4, lr}
    mov r4, #0
    cmp r4, #0
    beq fine
    mov r4, #9
fine:
    pop {r4, pc}
"""


def make_pair(keystore):
    _, _, _, engine, verifier, _ = rap_setup(PROGRAM, keystore=keystore)
    return ProverDevice(engine), VerifierEndpoint(verifier)


class TestChallenge:
    def test_derivation_deterministic(self):
        a = Challenge.derive(b"seed", 0)
        b = Challenge.derive(b"seed", 0)
        assert a == b

    def test_counter_changes_nonce(self):
        assert Challenge.derive(b"s", 0) != Challenge.derive(b"s", 1)

    def test_nonce_length(self):
        assert len(Challenge.derive(b"s", 0).nonce) == 16


class TestProtocolRounds:
    def test_honest_round_succeeds(self, keystore):
        prover, endpoint = make_pair(keystore)
        outcome = run_attestation(prover, endpoint)
        assert outcome.ok

    def test_multiple_rounds_fresh_nonces(self, keystore):
        prover, endpoint = make_pair(keystore)
        for _ in range(3):
            assert run_attestation(prover, endpoint).ok

    def test_assess_without_challenge_raises(self, keystore):
        prover, endpoint = make_pair(keystore)
        outcome = run_attestation(prover, endpoint)
        assert outcome.ok
        with pytest.raises(ProtocolError):
            endpoint.assess(prover.handle_request(Challenge.derive(b"x", 0)))

    def test_replayed_response_rejected(self, keystore):
        prover, endpoint = make_pair(keystore)
        challenge = endpoint.new_challenge()
        stale = prover.handle_request(challenge)
        assert endpoint.assess(stale).ok
        # adversary replays the old response against a new challenge
        endpoint.new_challenge()
        assert not endpoint.assess(stale).ok

    def test_tampered_response_rejected(self, keystore):
        prover, endpoint = make_pair(keystore)

        def tamper(response):
            report = response.final_report
            report.mac = b"\x00" * len(report.mac)
            return response

        outcome = run_attestation(prover, endpoint, tamper=tamper)
        assert not outcome.authenticated

    def test_response_from_wrong_device_rejected(self, keystore):
        from repro.tz.keystore import KeyStore

        # prover provisioned with a different key
        rogue = KeyStore(b"prv-0", b"wrong-secret")
        _, _, _, engine, _, _ = rap_setup(PROGRAM, keystore=rogue)
        _, endpoint = make_pair(keystore)
        outcome = run_attestation(ProverDevice(engine), endpoint)
        assert not outcome.authenticated
