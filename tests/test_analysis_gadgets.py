"""Tests: gadget mining, hostile-chain rejection, and fleet admission.

The miner runs against the three attested builds of
``workloads/vulnerable.py``. Every synthesized chain must be a
*working* attack transcript: the replay verifier consumes it
losslessly and rejects it with the predicted violation. The fleet
half exercises both rejection layers — the `BNDS1` admission screen
(a return-flood dies before replay, with an evidence record) and the
authoritative replay (a ROP chain dies identically with or without
the analyzer attached).
"""

import pytest

from repro.cfa.fleet import (
    ChainFactory,
    DeviceProfile,
    DeviceSpec,
    FleetService,
    device_key,
)
from repro.cfa.fleet.store import EvidenceStore, EvidenceRecord
from repro.cfa.verifier import NaiveVerifier, Verifier
from repro.core.analysis import (
    BoundsRegistry,
    certify_workload,
    chain_reports,
    mine_gadgets,
    synthesize_chains,
    synthesize_return_flood,
)
from repro.crypto.hashing import measure_image
from repro.eval.runner import prepare
from repro.tz.keystore import KeyStore
from repro.workloads import load_workload

METHODS = ("rap-track", "traces", "naive-mtb")


def violation_kinds(violations):
    """Violation kinds, whether Violation objects or verdict tuples."""
    return {getattr(v, "kind", None) or v[0] for v in violations}


@pytest.fixture(scope="module")
def builds():
    """method -> (image, bound_map, chains) for the vulnerable image."""
    out = {}
    workload = load_workload("vulnerable")
    for method in METHODS:
        image, bound = prepare(workload, method)
        out[method] = (image, bound, synthesize_chains(image, bound, method))
    return out


@pytest.fixture(scope="module")
def factory():
    return ChainFactory(watermark=256)


def verifier_for(method, image, bound):
    key = KeyStore.provision().attestation_key
    if method == "naive-mtb":
        return NaiveVerifier(image, key)
    return Verifier(image, bound, key)


class TestMining:
    @pytest.mark.parametrize("method", METHODS)
    def test_landing_pads_mined(self, builds, method):
        image, bound, _ = builds[method]
        gadgets = mine_gadgets(image, bound, method)
        pads = [g for g in gadgets if g.is_pad]
        assert pads, "no terminal landing pads mined"
        assert any(g.label == "maintenance_unlock" for g in pads), (
            "the planted dead-code pad must be discoverable")

    @pytest.mark.parametrize("method", METHODS)
    def test_chains_synthesized_per_method(self, builds, method):
        _, _, chains = builds[method]
        assert chains
        # the planted pad yields the flagship chain, listed first
        assert chains[0].name == "rop:maintenance_unlock"
        assert chains[0].expected_violation == "rop-return"
        assert all(c.records for c in chains)


class TestReplayRejection:
    @pytest.mark.parametrize("method", METHODS)
    def test_every_chain_rejected_with_predicted_violation(
            self, builds, method):
        image, bound, chains = builds[method]
        verifier = verifier_for(method, image, bound)
        for chain in chains:
            outcome = verifier.replay(list(chain.records))
            assert outcome.lossless, (
                f"{chain.name}: chain must replay losslessly — the "
                f"attack is in the control flow, not in framing")
            assert not outcome.ok
            assert chain.expected_violation \
                in violation_kinds(outcome.violations), chain.name

    @pytest.mark.parametrize("method", METHODS)
    def test_return_flood_raises_inferred_depth(self, builds, method):
        image, bound, _ = builds[method]
        flood = synthesize_return_flood(image, bound, method, hops=8)
        assert flood is not None
        outcome = verifier_for(method, image, bound).replay(
            list(flood.records))
        assert not outcome.ok and outcome.violations


class TestFleetRejection:
    def submit_chain(self, service, chain, image, device_id="prv-evil",
                     method="naive-mtb"):
        profile = DeviceProfile("vulnerable", method)
        challenge = service.open_session(
            device_id, profile, device_key(device_id), 0.0)
        reports = chain_reports(chain, device_id, challenge.nonce,
                                measure_image(image), device_key(device_id))
        for report in reports:
            service.submit(device_id, report)
        return service.verdicts.get(device_id)

    def test_flood_rejected_at_admission_with_evidence(self, tmp_path):
        registry = BoundsRegistry()
        registry.add(certify_workload("vulnerable", "naive-mtb"))
        store = EvidenceStore(tmp_path / "evidence.log",
                              device_key("vrf-store"))
        service = FleetService(workers=0, bounds=registry, store=store)
        image, bound = prepare(load_workload("vulnerable"), "naive-mtb")
        flood = synthesize_return_flood(image, bound, "naive-mtb", hops=8)
        assert flood is not None
        verdict = self.submit_chain(service, flood, image)
        metrics = service.close()

        assert verdict is not None and not verdict.accepted
        assert verdict.reason.startswith("bounds:")
        assert "stack depth" in verdict.reason
        assert metrics.sessions_bounds_rejected == 1
        # the fast-path rejection still leaves a durable evidence record
        recovered = EvidenceStore(tmp_path / "evidence.log",
                                  device_key("vrf-store")).recovered
        settled = [r for r in recovered if isinstance(r, EvidenceRecord)]
        assert len(settled) == 1
        assert not settled[0].accepted
        assert settled[0].reason.startswith("bounds:")
        assert settled[0].device_id == "prv-evil"

    @pytest.mark.parametrize("with_bounds", [False, True],
                             ids=["analyzer-off", "analyzer-on"])
    def test_rop_chain_rejected_either_way(self, builds, with_bounds):
        # replay stays authoritative: the ROP chain is within the
        # (unbounded-records) certificate, so the screen passes it and
        # replay rejects it — identically with the analyzer disabled
        image, bound, chains = builds["rap-track"]
        registry = None
        if with_bounds:
            registry = BoundsRegistry()
            registry.add(certify_workload("vulnerable", "rap-track"))
        service = FleetService(workers=0, bounds=registry)
        verdict = self.submit_chain(service, chains[0], image,
                                    method="rap-track")
        service.close()
        assert verdict is not None and not verdict.accepted
        assert "rop-return" in violation_kinds(verdict.violations)

    def test_honest_session_verdict_identical_with_analyzer(self, factory):
        verdicts = []
        for bounds in (None, self._fibcall_registry()):
            service = FleetService(workers=0, bounds=bounds)
            challenge = service.open_session(
                "prv-0", DeviceProfile("fibcall"), device_key("prv-0"), 0.0)
            chain = factory.chain(
                DeviceSpec("prv-0", DeviceProfile("fibcall"), "honest"),
                challenge.nonce)
            for chunk in chain:
                service.submit("prv-0", chunk)
            service.close()
            verdicts.append(service.verdicts["prv-0"])
        assert verdicts[0] == verdicts[1]
        assert verdicts[0].accepted

    @staticmethod
    def _fibcall_registry():
        registry = BoundsRegistry()
        registry.add(certify_workload("fibcall", "rap-track"))
        return registry
