"""Unit tests: branch classification (paper sections IV-C/IV-D)."""

import pytest

from repro.asm import assemble
from repro.core.classify import BranchClass, classify_module


def classify(source, **kw):
    return classify_module(assemble(".entry main\n" + source), **kw)


def classes_of(classification):
    """mnemonic-text -> class name, for readable assertions."""
    return {
        str(classification.flat.instrs[idx]): site.cls
        for idx, site in classification.sites.items()
    }


class TestIndirectTransfers:
    def test_indirect_call(self):
        src = """
main:
    adr r3, f
    blx r3
    bkpt
f:  bx lr
"""
        c = classify(src, enable_dataflow=False)
        assert classes_of(c)["blx r3"] is BranchClass.INDIRECT_CALL
        d = classify(src)
        assert classes_of(d)["blx r3"] is BranchClass.DEVIRT_CALL

    def test_return_pop(self):
        c = classify("""
main:
    bl f
    bkpt
f:  push {r4, lr}
    pop {r4, pc}
""")
        assert classes_of(c)["pop {r4, pc}"] is BranchClass.RETURN_POP

    def test_ldr_pc(self):
        src = """
main:
    ldr r2, =t
    ldr pc, [r2]
a:  bkpt
.rodata
t:  .word a
"""
        c = classify(src, enable_dataflow=False)
        assert classes_of(c)["ldr pc, [r2]"] is BranchClass.INDIRECT_LDR
        # dataflow folds the rodata load: single provable target
        d = classify(src)
        assert classes_of(d)["ldr pc, [r2]"] is BranchClass.DEVIRT_JUMP

    def test_leaf_return_untracked(self):
        c = classify("""
main:
    bl f
    bkpt
f:  add r0, r0, #1
    bx lr
""")
        assert classes_of(c)["bx lr"] is BranchClass.LEAF_RETURN

    def test_bx_lr_in_caller_function_is_tracked(self):
        # the function calls out, so LR is clobbered: not predictable
        c = classify("""
main:
    bl f
    bkpt
f:  push {lr}
    bl g
    pop {lr}
    bx lr
g:  bx lr
""")
        f_bx = c.flat.index_of("g") - 1  # the bx lr inside f
        g_bx = c.flat.index_of("g")  # the leaf return in g
        assert c.sites[f_bx].cls is BranchClass.INDIRECT_BX
        assert c.sites[g_bx].cls is BranchClass.LEAF_RETURN

    def test_bx_non_lr_register_tracked(self):
        src = """
main:
    adr r3, x
    bx r3
x:  bkpt
"""
        c = classify(src, enable_dataflow=False)
        assert classes_of(c)["bx r3"] is BranchClass.INDIRECT_BX
        d = classify(src)
        assert classes_of(d)["bx r3"] is BranchClass.DEVIRT_JUMP


class TestLoops:
    FIXED = """
main:
    mov r4, #0
top:
    nop
    add r4, r4, #1
    cmp r4, #8
    blt top
    bkpt
"""

    def test_fixed_loop_untracked(self):
        c = classify(self.FIXED)
        site = classes_of(c)["blt top"]
        assert site is BranchClass.FIXED_LOOP_LATCH

    def test_fixed_loop_trip_count(self):
        c = classify(self.FIXED)
        (latch,) = [s for s in c.sites.values()
                    if s.cls is BranchClass.FIXED_LOOP_LATCH]
        assert latch.trip_count == 8

    def test_fixed_loops_disabled(self):
        c = classify(self.FIXED, enable_fixed_loops=False)
        site = classes_of(c)["blt top"]
        assert site is BranchClass.LOOP_OPT_LATCH

    def test_variable_simple_loop_gets_loop_opt(self):
        c = classify("""
main:
    lsr r4, r0, #3
top:
    nop
    sub r4, r4, #1
    cmp r4, #0
    bgt top
    bkpt
""")
        assert classes_of(c)["bgt top"] is BranchClass.LOOP_OPT_LATCH

    def test_loop_opt_disabled_falls_back_to_trampoline(self):
        c = classify("""
main:
    lsr r4, r0, #3
top:
    nop
    sub r4, r4, #1
    cmp r4, #0
    bgt top
    bkpt
""", enable_loop_opt=False)
        assert classes_of(c)["bgt top"] is BranchClass.COND_BACKWARD_LATCH

    def test_loop_opt_demoted_when_header_is_branch_target(self):
        # a direct jump into the loop header bypasses the would-be svc
        c = classify("""
main:
    lsr r4, r0, #3
    b top
dead:
    nop
top:
    nop
    sub r4, r4, #1
    cmp r4, #0
    bgt top
    bkpt
""")
        assert classes_of(c)["bgt top"] is BranchClass.COND_BACKWARD_LATCH

    def test_non_simple_latch_trampolined(self):
        c = classify("""
main:
    mov r4, #0
    mov r5, #9
top:
    add r4, r4, #1
    cmp r4, r5
    blt top
    bkpt
""")
        assert classes_of(c)["blt top"] is BranchClass.COND_BACKWARD_LATCH

    def test_forward_exit_in_while_loop(self):
        c = classify("""
main:
    mov r0, #5
top:
    cmp r0, #0
    beq out
    sub r0, r0, #1
    b top
out:
    bkpt
""")
        kinds = classes_of(c)
        assert kinds["beq out"] is BranchClass.COND_FORWARD_EXIT

    def test_conditional_inside_loop_is_nonloop(self):
        c = classify("""
main:
    mov r4, #0
    mov r6, #9
top:
    cmp r5, #3
    beq skip
    add r5, r5, #1
skip:
    add r4, r4, #1
    cmp r4, r6
    blt top
    bkpt
""")
        assert classes_of(c)["beq skip"] is BranchClass.COND_NONLOOP

    def test_nonloop_if_else(self):
        c = classify("""
main:
    cmp r0, #0
    beq alt
    mov r1, #1
    b done
alt:
    mov r1, #2
done:
    bkpt
""")
        assert classes_of(c)["beq alt"] is BranchClass.COND_NONLOOP

    def test_fixed_inner_allows_fixed_outer(self):
        # innermost-out analysis: a fixed inner loop does not stop the
        # outer loop from being statically deterministic
        c = classify("""
main:
    mov r4, #0
outer:
    mov r5, #0
inner:
    nop
    add r5, r5, #1
    cmp r5, #3
    blt inner
    add r4, r4, #1
    cmp r4, #4
    blt outer
    bkpt
""")
        kinds = classes_of(c)
        assert kinds["blt inner"] is BranchClass.FIXED_LOOP_LATCH
        assert kinds["blt outer"] is BranchClass.FIXED_LOOP_LATCH

    def test_direct_branches_deterministic(self):
        c = classify("""
main:
    b skip
dead:
    nop
skip:
    bl f
    bkpt
f:  bx lr
""")
        kinds = classes_of(c)
        assert kinds["b skip"] is BranchClass.DETERMINISTIC
        assert kinds["bl f"] is BranchClass.DETERMINISTIC


class TestSilentCycles:
    def test_uncond_latch_in_mixed_loop(self):
        # iterations through the digit path would be invisible without
        # the UNCOND_LATCH trampoline
        c = classify("""
main:
    mov r5, #0
top:
    ldr r0, [r6]
    cmp r0, #0
    beq out
    cmp r0, #10
    blt top
    add r5, r5, #1
    b top
out:
    bkpt
""")
        kinds = classes_of(c)
        assert kinds["b top"] is BranchClass.UNCOND_LATCH

    def test_recursion_logs_the_call(self):
        c = classify("""
main:
    mov r0, #5
    bl fib
    bkpt
fib:
    push {r4, lr}
    cmp r0, #2
    blt base
    sub r0, r0, #1
    bl fib
base:
    pop {r4, pc}
""")
        kinds = classes_of(c)
        # the recursive call is logged; the outer call from main is not
        sites = [(idx, s) for idx, s in c.sites.items()
                 if s.cls is BranchClass.LOGGED_CALL]
        assert len(sites) == 1
        assert kinds["bl fib"] is not None  # both exist; check index below
        (logged_idx, _), = sites
        assert logged_idx > c.flat.index_of("fib")

    def test_mutual_recursion_broken(self):
        c = classify("""
main:
    mov r0, #6
    bl even
    bkpt
even:
    push {r4, lr}
    cmp r0, #0
    beq even_yes
    sub r0, r0, #1
    bl odd
even_yes:
    pop {r4, pc}
odd:
    push {r4, lr}
    cmp r0, #0
    beq odd_no
    sub r0, r0, #1
    bl even
odd_no:
    pop {r4, pc}
""")
        logged = [s for s in c.sites.values()
                  if s.cls is BranchClass.LOGGED_CALL]
        assert len(logged) >= 1  # at least one edge of the cycle is cut

    def test_logged_loop_needs_no_extra_trampoline(self):
        # the conditional latch logs each iteration already
        c = classify("""
main:
    mov r4, #0
    mov r5, #9
top:
    add r4, r4, #1
    cmp r4, r5
    blt top
    bkpt
""")
        assert not [s for s in c.sites.values()
                    if s.cls is BranchClass.UNCOND_LATCH]

    def test_forward_exit_loop_needs_no_extra_trampoline(self):
        c = classify("""
main:
    mov r0, #5
top:
    cmp r0, #0
    beq out
    sub r0, r0, #1
    b top
out:
    bkpt
""")
        assert not [s for s in c.sites.values()
                    if s.cls is BranchClass.UNCOND_LATCH]

    def test_call_to_tracked_returner_breaks_silence(self):
        # f returns via pop{pc} (logged), so the loop around the call
        # is evidenced per iteration and needs no extra trampoline
        c = classify("""
main:
    mov r5, #0
top:
    bl f
    cmp r0, #0
    beq top
    bkpt
f:  push {r4, lr}
    pop {r4, pc}
""")
        assert not [s for s in c.sites.values()
                    if s.cls is BranchClass.UNCOND_LATCH]

    def test_loop_around_leaf_call_is_silent(self):
        # f is a leaf (bx lr, untracked): the loop must be broken
        c = classify("""
main:
    mov r5, #0
top:
    bl f
    b top
f:  bx lr
""")
        kinds = classes_of(c)
        assert kinds["b top"] is BranchClass.UNCOND_LATCH


class TestClassificationSets:
    def test_tracked_sites_listing(self):
        src = """
main:
    adr r3, f
    blx r3
    bkpt
f:  bx lr
"""
        c = classify(src, enable_dataflow=False)
        tracked = c.tracked_sites()
        assert len(tracked) == 1
        assert tracked[0].cls is BranchClass.INDIRECT_CALL
        # with dataflow, the provably single-target call is untracked
        d = classify(src)
        assert d.tracked_sites() == []
        (site,) = d.devirtualized_sites()
        assert site.cls is BranchClass.DEVIRT_CALL
        assert site.devirt_target == "f"

    def test_function_entries_include_entry_and_targets(self):
        c = classify("""
main:
    bl f
    bkpt
f:  bx lr
""")
        assert {"main", "f"} <= c.function_entry_labels

    def test_address_taken_propagates(self):
        c = classify("""
main:
    adr r0, h
    bkpt
h:  bx lr
""")
        assert "h" in c.address_taken
