"""Streaming-verification tests (incremental partial-report handling)."""

import pytest

from repro.cfa.engine import EngineConfig
from repro.cfa.streaming import StreamError, StreamingVerifier, stream_attestation
from repro.cfa.wire import encode_report
from repro.trace.mtb import PACKET_BYTES
from conftest import rap_setup, text_path

LOOPY = """
.entry main
main:
    mov r4, #0
    mov r5, #25
top:
    add r4, r4, #1
    cmp r4, r5
    blt top
    bkpt
"""


def attested(keystore, watermark=6 * PACKET_BYTES):
    config = EngineConfig(watermark=watermark)
    image, _, _, engine, verifier, tracer = rap_setup(
        LOOPY, engine_config=config, keystore=keystore)
    result = engine.attest(b"stream-chal")
    return image, result, verifier, tracer


class TestStreaming:
    def test_full_stream_verifies(self, keystore):
        image, result, verifier, tracer = attested(keystore)
        assert result.partial_report_count >= 2
        outcome = stream_attestation(result, verifier, b"stream-chal")
        assert outcome.authenticated and outcome.lossless
        assert outcome.path == text_path(image, tracer)

    def test_wire_encoded_stream(self, keystore):
        image, result, verifier, _ = attested(keystore)
        stream = StreamingVerifier(verifier, b"stream-chal")
        for report in result.reports:
            stream.feed_bytes(encode_report(report))
        assert stream.finish().lossless

    def test_out_of_order_rejected_immediately(self, keystore):
        _, result, verifier, _ = attested(keystore)
        stream = StreamingVerifier(verifier, b"stream-chal")
        with pytest.raises(StreamError, match="out-of-order"):
            stream.feed(result.reports[1])

    def test_tampered_partial_rejected_early(self, keystore):
        _, result, verifier, _ = attested(keystore)
        stream = StreamingVerifier(verifier, b"stream-chal")
        result.reports[0].mac = b"\x00" * 32
        with pytest.raises(StreamError, match="bad MAC"):
            stream.feed(result.reports[0])
        # once rejected, the stream stays rejected
        with pytest.raises(StreamError):
            stream.feed(result.reports[1])

    def test_wrong_challenge_rejected(self, keystore):
        _, result, verifier, _ = attested(keystore)
        stream = StreamingVerifier(verifier, b"another-chal")
        with pytest.raises(StreamError, match="challenge"):
            stream.feed(result.reports[0])

    def test_finish_before_final_raises(self, keystore):
        _, result, verifier, _ = attested(keystore)
        stream = StreamingVerifier(verifier, b"stream-chal")
        stream.feed(result.reports[0])
        with pytest.raises(StreamError, match="final report"):
            stream.finish()

    def test_feeding_after_final_raises(self, keystore):
        _, result, verifier, _ = attested(keystore)
        stream = StreamingVerifier(verifier, b"stream-chal")
        for report in result.reports:
            stream.feed(report)
        with pytest.raises(StreamError, match="finished"):
            stream.feed(result.reports[-1])

    def test_dropped_middle_partial_detected(self, keystore):
        _, result, verifier, _ = attested(keystore)
        stream = StreamingVerifier(verifier, b"stream-chal")
        stream.feed(result.reports[0])
        with pytest.raises(StreamError, match="out-of-order"):
            stream.feed(result.reports[2])

    def test_partials_accepted_counter(self, keystore):
        _, result, verifier, _ = attested(keystore)
        stream = StreamingVerifier(verifier, b"stream-chal")
        for i, report in enumerate(result.reports, start=1):
            stream.feed(report)
            assert stream.partials_accepted == i
