"""Wire-codec property battery (hypothesis).

Three properties pin the codec for the fleet service that trusts it:

1. **Round trip** — ``decode_report(encode_report(r))`` is
   field-identical for arbitrary record mixes and field contents.
2. **Canonical form** — whenever a (possibly mutated) buffer decodes
   at all, re-encoding the result reproduces exactly the consumed
   bytes. A mutation therefore either raises ``WireError`` or yields a
   report that honestly reflects the mutated bytes — there is no
   "silently wrong" parse that re-encodes differently.
3. **Total error discipline** — arbitrary byte mutations and
   truncations of valid encodings never surface ``struct.error``,
   ``IndexError``, ``KeyError``, or ``UnicodeDecodeError``; the only
   failure mode is ``WireError``.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.cfa.cflog import AddressRecord, BranchRecord, CFLog, LoopRecord
from repro.cfa.report import AttestationResult, Report
from repro.cfa.speccfa import SpecRecord
from repro.cfa.wire import (
    WireError,
    decode_report,
    decode_result,
    encode_report,
    encode_result,
)

u32 = st.integers(min_value=0, max_value=0xFFFFFFFF)

records = st.lists(
    st.one_of(
        st.builds(BranchRecord, u32, u32),
        st.builds(AddressRecord, u32, u32),
        st.builds(LoopRecord, u32, u32),
        st.builds(SpecRecord, u32, u32),
    ),
    max_size=24,
)

reports = st.builds(
    Report,
    device_id=st.binary(max_size=16),
    method=st.text(max_size=12),
    challenge=st.binary(max_size=24),
    h_mem=st.binary(max_size=32),
    seq=u32,
    final=st.booleans(),
    cflog=st.builds(CFLog, records),
    mac=st.binary(max_size=32),
)


def fields(report):
    return (
        report.device_id,
        report.method,
        report.challenge,
        report.h_mem,
        report.seq,
        report.final,
        report.cflog.records,
        report.mac,
    )


class TestRoundtripProperties:
    @given(reports)
    @settings(deadline=None, max_examples=200)
    def test_report_roundtrip_is_field_identical(self, report):
        encoded = encode_report(report)
        decoded, consumed = decode_report(encoded)
        assert consumed == len(encoded)
        assert fields(decoded) == fields(report)

    @given(st.lists(reports, min_size=1, max_size=5))
    @settings(deadline=None, max_examples=60)
    def test_chain_roundtrip_is_field_identical(self, chain):
        decoded = decode_result(encode_result(AttestationResult(chain)))
        assert len(decoded.reports) == len(chain)
        for got, want in zip(decoded.reports, chain):
            assert fields(got) == fields(want)

    @given(reports)
    @settings(deadline=None, max_examples=100)
    def test_encoding_is_canonical(self, report):
        encoded = encode_report(report)
        decoded, _ = decode_report(encoded)
        assert encode_report(decoded) == encoded


class TestMutationProperties:
    @given(reports, st.data())
    @settings(deadline=None, max_examples=300)
    def test_mutation_raises_wire_error_or_decodes_canonically(
            self, report, data):
        encoded = bytearray(encode_report(report))
        index = data.draw(st.integers(0, len(encoded) - 1))
        flip = data.draw(st.integers(1, 255))
        encoded[index] ^= flip
        mutated = bytes(encoded)
        try:
            decoded, consumed = decode_report(mutated)
        except WireError:
            return  # the only acceptable failure mode
        # a successful parse must honestly reflect the mutated bytes
        assert encode_report(decoded) == mutated[:consumed]

    @given(reports, st.data())
    @settings(deadline=None, max_examples=200)
    def test_truncation_always_raises_wire_error(self, report, data):
        encoded = encode_report(report)
        cut = data.draw(st.integers(0, len(encoded) - 1))
        with pytest.raises(WireError):
            decode_report(encoded[:cut])

    @given(reports, st.data())
    @settings(deadline=None, max_examples=150)
    def test_chain_mutation_never_escapes_wire_error(self, report, data):
        encoded = bytearray(encode_result(AttestationResult([report])))
        index = data.draw(st.integers(0, len(encoded) - 1))
        encoded[index] ^= data.draw(st.integers(1, 255))
        try:
            decode_result(bytes(encoded))
        except WireError:
            pass


class TestRegressionShapes:
    """Directed cases the property battery originally surfaced."""

    def base_report(self):
        return Report(device_id=b"d", method="rap-track", challenge=b"c",
                      h_mem=b"h", seq=0, final=True,
                      cflog=CFLog([BranchRecord(1, 2)]), mac=b"m")

    def test_invalid_utf8_method_is_wire_error(self):
        encoded = bytearray(encode_report(self.base_report()))
        # the method field starts after magic+version+body_len+device_id
        offset = 4 + 1 + 4 + 4 + 1 + 4
        assert encoded[offset:offset + 3] == b"rap"
        encoded[offset] = 0xFF  # lone 0xFF is never valid UTF-8
        with pytest.raises(WireError, match="UTF-8"):
            decode_report(bytes(encoded))

    def test_nonboolean_final_flag_is_wire_error(self):
        report = self.base_report()
        encoded = bytearray(encode_report(report))
        final_offset = encoded.index(b"\x00\x00\x00\x00\x01", 20) + 4
        assert encoded[final_offset] == 1
        encoded[final_offset] = 7
        with pytest.raises(WireError, match="final flag"):
            decode_report(bytes(encoded))

    def test_absurd_record_count_is_rejected_quickly(self):
        encoded = bytearray(encode_report(self.base_report()))
        # the record-count word sits right before the packed records
        count_offset = bytes(encoded).index(BranchRecord(1, 2).pack()) - 4
        encoded[count_offset:count_offset + 4] = (0xFFFFFFF0).to_bytes(
            4, "little")
        with pytest.raises(WireError, match="record count"):
            decode_report(bytes(encoded))
