"""Differential battery: every honest trace respects its certificate.

For every registry workload under every bounded method, one attested
execution is verified and its observables — record count, log bytes,
and the replay shadow stack's high-water mark — are checked against
the statically certified `BNDS1` bounds. Any violation here means the
static analysis under-approximated a real execution: the admission
screen would start rejecting honest devices, so this battery is the
analyzer's soundness gate.
"""

import pytest

from repro.baselines.naive_mtb import NaiveMtbEngine
from repro.baselines.traces import TracesEngine
from repro.cfa.engine import EngineConfig, RapTrackEngine
from repro.cfa.verifier import NaiveVerifier, Verifier
from repro.core.analysis import certify_workload, screen_records
from repro.core.analysis.bounds import BOUNDED_METHODS
from repro.tz.keystore import KeyStore
from repro.workloads import WORKLOADS, load_workload
from repro.workloads.base import make_mcu

CELLS = [(name, method)
         for name in sorted(WORKLOADS)
         for method in BOUNDED_METHODS]


def attest_and_verify(name, method):
    """One honest attested run; returns (attestation, verification)."""
    from repro.eval.runner import prepare

    workload = load_workload(name)
    image, bound = prepare(workload, method)
    mcu = make_mcu(image, workload)
    keystore = KeyStore.provision()
    config = EngineConfig()
    if method == "naive-mtb":
        engine = NaiveMtbEngine(mcu, keystore, config)
        verifier = NaiveVerifier(image, keystore.attestation_key)
    elif method == "rap-track":
        engine = RapTrackEngine(mcu, keystore, bound, config)
        verifier = Verifier(image, bound, keystore.attestation_key)
    else:
        engine = TracesEngine(mcu, keystore, bound, config)
        verifier = Verifier(image, bound, keystore.attestation_key)
    result = engine.attest(b"bounds-battery")
    outcome = verifier.verify(result, b"bounds-battery")
    assert outcome.ok, f"{name}/{method} honest run failed verification"
    return result, outcome


@pytest.mark.parametrize("name,method", CELLS,
                         ids=[f"{n}-{m}" for n, m in CELLS])
def test_honest_run_respects_certificate(name, method):
    cert = certify_workload(name, method)
    result, outcome = attest_and_verify(name, method)
    records = [r for report in result.reports for r in report.cflog.records]

    # the admission screen must wave the honest chain through
    assert screen_records(cert, records) is None

    observed_bytes = sum(r.size_bytes for r in records)
    if cert.max_log_records is not None:
        assert len(records) <= cert.max_log_records, (
            f"{name}/{method}: {len(records)} records > certified "
            f"{cert.max_log_records}")
    if cert.max_log_bytes is not None:
        assert observed_bytes <= cert.max_log_bytes
    if cert.max_stack_depth is not None:
        assert outcome.max_shadow_depth <= cert.max_stack_depth, (
            f"{name}/{method}: shadow depth {outcome.max_shadow_depth} "
            f"> certified {cert.max_stack_depth}")


def test_depth_tracking_observes_real_calls():
    # fibcall recurses: the shadow stack demonstrably grows past one
    # frame, so the new high-water tracking is not vacuous
    _, outcome = attest_and_verify("fibcall", "naive-mtb")
    assert outcome.max_shadow_depth >= 2


def test_certificates_are_deterministic():
    a = certify_workload("temperature", "rap-track")
    b = certify_workload("temperature", "rap-track")
    assert a == b
