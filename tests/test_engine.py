"""Unit tests: the CFA engines (RAP-Track, naive MTB, TRACES)."""

import pytest

from repro.cfa.cflog import BranchRecord, LoopRecord
from repro.cfa.engine import EngineConfig
from repro.machine.faults import MemFault
from conftest import naive_setup, rap_setup, traces_setup

SIMPLE = """
.entry main
main:
    mov r0, #0
    cmp r0, #0
    beq over
    nop
over:
    bkpt
"""

LOOPY = """
.entry main
main:
    lsr r4, r0, #1
    add r4, r4, #6
top:
    nop
    sub r4, r4, #1
    cmp r4, #0
    bgt top
    bkpt
"""


class TestRapEngineLifecycle:
    def test_report_structure(self, keystore):
        _, _, _, engine, _, _ = rap_setup(SIMPLE, keystore=keystore)
        result = engine.attest(b"ch-1")
        assert len(result.reports) == 1
        report = result.final_report
        assert report.final and report.seq == 0
        assert report.method == "rap-track"
        assert report.challenge == b"ch-1"
        assert report.verify(keystore.attestation_key)

    def test_h_mem_matches_image_measurement(self, keystore):
        from repro.crypto.hashing import measure_image

        image, _, _, engine, _, _ = rap_setup(SIMPLE, keystore=keystore)
        result = engine.attest(b"x")
        assert result.final_report.h_mem == measure_image(image)

    def test_code_locked_during_run_and_unlocked_after(self):
        image, _, mcu, engine, _, _ = rap_setup(SIMPLE)
        locked_states = []
        original_hook = mcu.cpu.pre_hooks
        mcu.cpu.pre_hooks = original_hook + [
            lambda pc: locked_states.append(
                mcu.memmap.is_write_locked("ns_text"))
        ]
        engine.attest(b"x")
        assert locked_states and all(locked_states)
        assert not mcu.memmap.is_write_locked("ns_text")

    def test_attack_write_to_code_faults_while_attesting(self):
        source = """
.entry main
main:
    adr r0, main
    mov r1, #0
    str r1, [r0]
    bkpt
"""
        _, _, _, engine, _, _ = rap_setup(source)
        with pytest.raises(MemFault):
            engine.attest(b"x")

    def test_interrupts_disabled_during_attestation(self):
        _, _, mcu, engine, _, _ = rap_setup(SIMPLE)
        states = []
        mcu.cpu.pre_hooks.append(
            lambda pc: states.append(engine.ns_interrupts_enabled))
        engine.attest(b"x")
        assert states and not any(states)
        assert engine.ns_interrupts_enabled

    def test_re_attestation_is_clean(self, keystore):
        _, _, _, engine, verifier, _ = rap_setup(LOOPY, keystore=keystore)
        first = engine.attest(b"c1")
        second = engine.attest(b"c2")
        assert len(first.cflog) == len(second.cflog)
        assert verifier.verify(second, b"c2").ok

    def test_loop_records_merged_in_order(self):
        _, _, _, engine, _, _ = rap_setup(LOOPY)
        result = engine.attest(b"x")
        kinds = [type(r).__name__ for r in result.cflog.records]
        # loop condition must come before any of that loop's packets
        assert kinds[0] == "LoopRecord"

    def test_loop_record_value_is_counter(self):
        _, _, _, engine, _, _ = rap_setup(LOOPY)
        result = engine.attest(b"x")
        loop = [r for r in result.cflog if isinstance(r, LoopRecord)]
        assert len(loop) == 1
        assert loop[0].value == 6  # lsr(0)>>1 + 6

    def test_gateway_accounting(self):
        _, _, _, engine, _, _ = rap_setup(LOOPY)
        result = engine.attest(b"x")
        assert result.gateway_calls == 1  # just the loop condition
        assert result.gateway_cycles > 0

    def test_mtb_runs_in_parallel_zero_cycles(self):
        # the MTB itself charges nothing: total cycles are exactly the
        # executed instructions plus the two taken-branch refills
        # (beq -> stub, stub -> over); no logging cost appears
        _, _, _, engine, _, _ = rap_setup(SIMPLE)
        result = engine.attest(b"x")
        assert result.mtb_packets == 1
        assert result.gateway_calls == 0
        assert result.cycles == result.instructions + 2


class TestNaiveEngine:
    def test_no_gateway_calls(self):
        _, _, _, engine, _, _ = naive_setup(LOOPY)
        result = engine.attest(b"x")
        assert result.gateway_calls == 0

    def test_runtime_equals_unmodified(self):
        from repro.asm.assembler import assemble_and_link
        from repro.machine.mcu import MCU

        plain = MCU(assemble_and_link(LOOPY))
        baseline = plain.run()
        _, _, _, engine, _, _ = naive_setup(LOOPY)
        result = engine.attest(b"x")
        assert result.cycles == baseline.cycles

    def test_logs_every_nonsequential_transfer(self):
        _, _, _, engine, _, _ = naive_setup(LOOPY)
        result = engine.attest(b"x")
        # 6 loop iterations -> 5 taken latches
        assert len(result.cflog) == 5
        assert all(isinstance(r, BranchRecord) for r in result.cflog)

    def test_method_tag(self):
        _, _, _, engine, _, _ = naive_setup(SIMPLE)
        assert engine.attest(b"x").final_report.method == "naive-mtb"


class TestTracesEngine:
    def test_every_event_pays_world_switch(self):
        _, _, _, engine, _, _ = traces_setup(LOOPY)
        result = engine.attest(b"x")
        assert result.gateway_calls == len(result.cflog) == 1

    def test_entries_are_wire_small(self):
        _, _, _, engine, _, _ = traces_setup(LOOPY)
        result = engine.attest(b"x")
        assert all(r.size_bytes == 4 for r in result.cflog)

    def test_runtime_exceeds_rap(self, keystore):
        source = """
.entry main
main:
    mov r4, #0
    mov r5, #9
top:
    add r4, r4, #1
    cmp r4, r5
    blt top
    bkpt
"""
        _, _, _, rap_engine, _, _ = rap_setup(source, keystore=keystore)
        _, _, _, tr_engine, _, _ = traces_setup(source, keystore=keystore)
        rap = rap_engine.attest(b"x")
        traces = tr_engine.attest(b"x")
        assert traces.cycles > rap.cycles
        assert len(traces.cflog) == len(rap.cflog)


class TestEngineConfigKnobs:
    def test_gateway_cost_scales_traces_runtime(self):
        from repro.tz.gateway import GatewayCosts

        cheap = EngineConfig(gateway=GatewayCosts(entry=1, exit=1))
        costly = EngineConfig(gateway=GatewayCosts(entry=500, exit=500))
        _, _, _, engine_cheap, _, _ = traces_setup(LOOPY, cheap)
        _, _, _, engine_costly, _, _ = traces_setup(LOOPY, costly)
        assert (engine_costly.attest(b"x").cycles
                > engine_cheap.attest(b"x").cycles)

    def test_setup_cycles_tracks_code_size(self):
        _, _, _, engine, _, _ = rap_setup(SIMPLE)
        engine.attest(b"x")
        assert engine.setup_cycles == len(engine.image.code_bytes()) * 4
