"""Partial reports under the MTB_FLOW watermark (paper section IV-E)."""

import pytest

from repro.cfa.engine import EngineConfig
from repro.trace.mtb import PACKET_BYTES
from conftest import (
    assert_lossless,
    naive_setup,
    rap_setup,
    text_path,
    traces_setup,
)

MANY_EVENTS = """
.entry main
main:
    mov r4, #0
    mov r5, #40
top:
    add r4, r4, #1
    cmp r4, r5
    blt top
    bkpt
"""


class TestWatermarkPartials:
    def test_partials_emitted_at_watermark(self, keystore):
        config = EngineConfig(watermark=8 * PACKET_BYTES)
        _, _, _, engine, _, _ = rap_setup(MANY_EVENTS, engine_config=config,
                                          keystore=keystore)
        result = engine.attest(b"x")
        # 39 latch-taken records at 8 per partial
        assert result.partial_report_count == 4
        assert len(result.reports) == 5
        assert result.final_report.final

    def test_sequence_numbers_monotonic(self, keystore):
        config = EngineConfig(watermark=8 * PACKET_BYTES)
        _, _, _, engine, _, _ = rap_setup(MANY_EVENTS, engine_config=config,
                                          keystore=keystore)
        result = engine.attest(b"x")
        assert [r.seq for r in result.reports] == list(range(5))
        assert [r.final for r in result.reports] == [False] * 4 + [True]

    def test_chain_verifies(self, keystore):
        config = EngineConfig(watermark=8 * PACKET_BYTES)
        _, _, _, engine, _, _ = rap_setup(MANY_EVENTS, engine_config=config,
                                          keystore=keystore)
        result = engine.attest(b"x")
        assert result.verify_chain(keystore.attestation_key)

    def test_lossless_across_partials(self, keystore):
        config = EngineConfig(watermark=8 * PACKET_BYTES)
        image, _, _, engine, verifier, tracer = rap_setup(
            MANY_EVENTS, engine_config=config, keystore=keystore)
        assert_lossless(image, engine, verifier, tracer)

    def test_no_packets_lost_to_wraparound(self, keystore):
        # watermark == buffer size: drains exactly at the wrap point
        config = EngineConfig(mtb_buffer_size=4 * PACKET_BYTES)
        image, _, _, engine, verifier, tracer = rap_setup(
            MANY_EVENTS, engine_config=config, keystore=keystore)
        result, _ = assert_lossless(image, engine, verifier, tracer)
        assert len(result.cflog) == 39

    def test_total_records_independent_of_watermark(self, keystore):
        logs = []
        for watermark in (8 * PACKET_BYTES, 16 * PACKET_BYTES, None):
            config = EngineConfig(watermark=watermark)
            _, _, _, engine, _, _ = rap_setup(
                MANY_EVENTS, engine_config=config, keystore=keystore)
            logs.append(len(engine.attest(b"x").cflog))
        assert len(set(logs)) == 1

    def test_smaller_watermark_more_partials(self, keystore):
        counts = []
        for watermark in (4 * PACKET_BYTES, 16 * PACKET_BYTES):
            config = EngineConfig(watermark=watermark)
            _, _, _, engine, _, _ = rap_setup(
                MANY_EVENTS, engine_config=config, keystore=keystore)
            counts.append(engine.attest(b"x").partial_report_count)
        assert counts[0] > counts[1]

    def test_report_pause_cycles_scale_with_partials(self, keystore):
        config = EngineConfig(watermark=4 * PACKET_BYTES)
        _, _, _, engine, _, _ = rap_setup(MANY_EVENTS, engine_config=config,
                                          keystore=keystore)
        result = engine.attest(b"x")
        assert result.report_cycles == (
            (result.partial_report_count + 1) * config.sign_cycles)


class TestNaivePartials:
    def test_naive_needs_many_more_partials(self, keystore):
        """Section V-B: under the 4 KB MTB the naive approach pauses
        frequently; RAP-Track fits in a single report."""
        config = EngineConfig(watermark=16 * PACKET_BYTES)
        _, _, _, rap_engine, _, _ = rap_setup(
            MANY_EVENTS, engine_config=config, keystore=keystore)
        _, _, _, naive_engine, _, _ = naive_setup(
            MANY_EVENTS, engine_config=config, keystore=keystore)
        rap = rap_engine.attest(b"x")
        naive = naive_engine.attest(b"x")
        assert naive.partial_report_count >= rap.partial_report_count

    def test_naive_lossless_across_partials(self, keystore):
        config = EngineConfig(watermark=8 * PACKET_BYTES)
        image, _, _, engine, verifier, tracer = naive_setup(
            MANY_EVENTS, engine_config=config, keystore=keystore)
        result = engine.attest(b"x")
        outcome = verifier.verify(result, b"x")
        assert outcome.ok
        assert outcome.path == text_path(image, tracer)
        assert result.partial_report_count > 0


class TestTracesPartials:
    def test_traces_partials_and_losslessness(self, keystore):
        config = EngineConfig(watermark=32)
        image, _, _, engine, verifier, tracer = traces_setup(
            MANY_EVENTS, engine_config=config, keystore=keystore)
        result = engine.attest(b"x")
        assert result.partial_report_count > 0
        outcome = verifier.verify(result, b"x")
        assert outcome.ok
        assert outcome.path == text_path(image, tracer)
