"""Auditing tests: data-only attack visibility through lossless paths."""

import pytest

from repro.cfa.audit import audit_paths, conditional_outcome_profile
from conftest import rap_setup

# classification firmware: branches on a sensor value held in RAM
BENDABLE = """
.entry main
main:
    push {lr}
    ldr r0, =reading
    ldr r0, [r0]
    cmp r0, #100
    bgt high_path
    mov r4, #1              ; normal handling
    b done
high_path:
    mov r4, #2              ; alarm handling
    bl alarm
done:
    bkpt
alarm:
    push {lr}
    mov r0, #0xAA
    pop {pc}
.data
reading: .word 40
"""


class TestAuditPaths:
    def test_identical_paths(self):
        report = audit_paths([1, 2, 3], [1, 2, 3])
        assert report.identical
        assert "identical" in report.summary()

    def test_divergence_position(self):
        report = audit_paths([1, 2, 3, 4], [1, 2, 9, 4])
        assert not report.identical
        assert report.first_divergence == 2

    def test_length_divergence(self):
        report = audit_paths([1, 2], [1, 2, 3])
        assert not report.identical
        assert report.first_divergence == 2

    def test_count_deltas_ranked(self):
        report = audit_paths([1, 1, 1, 2], [1, 2, 2, 2])
        assert report.deltas[0].address in (1, 2)
        assert abs(report.deltas[0].delta) == 2

    def test_summary_mentions_labels(self, keystore):
        image, _, _, engine, verifier, _ = rap_setup(BENDABLE,
                                                     keystore=keystore)
        result = engine.attest(b"c")
        outcome = verifier.verify(result, b"c")
        report = audit_paths(outcome.path + [image.entry], outcome.path,
                             image=image)
        assert "main" in report.summary() or "0x" in report.summary()


class TestDataOnlyAttackVisibility:
    """The SoK [12] scenario: the attacker corrupts *data* (the sensor
    reading), steering execution down a legal-but-wrong path. No CFI
    violation exists; the lossless path still exposes the bend."""

    def _run(self, keystore, poke_reading=None):
        image, bound, mcu, engine, verifier, _ = rap_setup(
            BENDABLE, keystore=keystore)
        if poke_reading is not None:
            mcu.memory.poke(image.addr_of("reading"), poke_reading, 4)
        result = engine.attest(b"c")
        outcome = verifier.verify(result, b"c")
        return image, bound, mcu, outcome

    def test_bent_run_passes_cfi_but_differs_in_path(self, keystore):
        image, _, mcu_a, golden = self._run(keystore)
        assert golden.ok and mcu_a.cpu.regs[4] == 1

        image_b, bound, mcu_b, bent = self._run(keystore,
                                                poke_reading=500)
        # every CFI-style check passes: authentic, lossless, no
        # violations — the path is legal
        assert bent.ok and mcu_b.cpu.regs[4] == 2

        # ...but the audit sees the bend
        report = audit_paths(golden.path, bent.path, image=image_b)
        assert not report.identical
        alarm = image_b.addr_of("alarm")
        assert any(d.address == alarm and d.delta > 0
                   for d in report.deltas)

    def test_conditional_profile_shift(self, keystore):
        image, bound, _, golden = self._run(keystore)
        _, bound_b, _, bent = self._run(keystore, poke_reading=500)
        golden_profile = conditional_outcome_profile(golden.path, bound)
        bent_profile = conditional_outcome_profile(bent.path, bound_b)
        # the classification conditional flipped from not-taken to taken
        assert golden_profile != bent_profile
        changed = [site for site in golden_profile
                   if golden_profile[site] != bent_profile.get(site)]
        assert changed

    def test_identical_inputs_identical_paths(self, keystore):
        _, _, _, one = self._run(keystore)
        _, _, _, two = self._run(keystore)
        assert audit_paths(one.path, two.path).identical
