"""Unit tests: CPU execution semantics and cycle accounting."""

import pytest

from repro.asm.assembler import assemble_and_link
from repro.machine.faults import (
    ExecutionLimitExceeded,
    MemFault,
    UndefinedInstruction,
)
from repro.machine.mcu import MCU
from repro.machine.memmap import NS_RAM_BASE, STACK_TOP
from conftest import run_source


def run(source, **kw):
    return run_source(".entry main\nmain:\n" + source + "\n    bkpt\n", **kw)


class TestDataProcessing:
    def test_mov_imm_and_reg(self):
        mcu = run("    mov r0, #42\n    mov r1, r0")
        assert mcu.cpu.regs[0] == 42 and mcu.cpu.regs[1] == 42

    def test_mvn(self):
        mcu = run("    mov r0, #0\n    mvn r1, r0")
        assert mcu.cpu.regs[1] == 0xFFFFFFFF

    def test_mov32_large(self):
        mcu = run("    mov32 r0, #0xDEADBEEF")
        assert mcu.cpu.regs[0] == 0xDEADBEEF

    def test_arith(self):
        mcu = run("""
    mov r0, #7
    mov r1, #3
    add r2, r0, r1
    sub r3, r0, r1
    mul r4, r0, r1
    udiv r5, r0, r1
    rsb r6, r1, #10
""")
        regs = mcu.cpu.regs
        assert regs[2:7] == [10, 4, 21, 2, 7]

    def test_sdiv_negative(self):
        mcu = run("""
    mov r0, #0
    sub r0, r0, #7
    mov r1, #2
    sdiv r2, r0, r1
""")
        assert mcu.cpu.regs[2] == 0xFFFFFFFD  # -3

    def test_logic_and_shifts(self):
        mcu = run("""
    mov r0, #0b1100
    mov r1, #0b1010
    and r2, r0, r1
    orr r3, r0, r1
    eor r4, r0, r1
    lsl r5, r0, #2
    lsr r6, r0, #2
    mov r7, #0
    sub r7, r7, #8
    asr r7, r7, #1
""")
        regs = mcu.cpu.regs
        assert regs[2:7] == [0b1000, 0b1110, 0b0110, 0b110000, 0b11]
        assert regs[7] == 0xFFFFFFFC  # -4

    def test_flags_drive_conditions(self):
        mcu = run("""
    mov r0, #5
    cmp r0, #5
    beq was_eq
    mov r1, #0
    b done
was_eq:
    mov r1, #1
done:
""")
        assert mcu.cpu.regs[1] == 1

    def test_cmn_and_tst(self):
        mcu = run("""
    mov r0, #0
    sub r0, r0, #5
    cmn r0, #5
    beq zero_sum
    mov r1, #0
    b next
zero_sum:
    mov r1, #1
next:
    mov r2, #0b100
    tst r2, #0b100
    bne bit_set
    mov r3, #0
    b done
bit_set:
    mov r3, #1
done:
""")
        assert mcu.cpu.regs[1] == 1 and mcu.cpu.regs[3] == 1


class TestMemoryOps:
    def test_str_ldr_roundtrip(self):
        mcu = run("""
    ldr r0, =scratch
    mov r1, #99
    str r1, [r0]
    ldr r2, [r0]
""" + "\n.data\nscratch: .space 4\n.text")
        assert mcu.cpu.regs[2] == 99

    def test_byte_ops(self):
        mcu = run("""
    ldr r0, =scratch
    mov32 r1, #0x1FF
    strb r1, [r0]
    ldrb r2, [r0]
""" + "\n.data\nscratch: .space 4\n.text")
        assert mcu.cpu.regs[2] == 0xFF  # truncated to a byte

    def test_scaled_index_addressing(self):
        mcu = run("""
    ldr r0, =table
    mov r1, #2
    ldr r2, [r0, r1, lsl #2]
""" + "\n.rodata\ntable: .word 10, 20, 30, 40\n.text")
        assert mcu.cpu.regs[2] == 30

    def test_offset_addressing(self):
        mcu = run("""
    ldr r0, =table
    ldr r1, [r0, #4]
""" + "\n.rodata\ntable: .word 7, 8\n.text")
        assert mcu.cpu.regs[1] == 8

    def test_push_pop_order(self):
        mcu = run("""
    mov r4, #44
    mov r5, #55
    push {r4, r5}
    mov r4, #0
    mov r5, #0
    pop {r4, r5}
""")
        assert mcu.cpu.regs[4] == 44 and mcu.cpu.regs[5] == 55

    def test_push_lowest_reg_at_lowest_address(self):
        mcu = run("""
    mov r4, #1
    mov r5, #2
    push {r4, r5}
""")
        sp = mcu.cpu.regs[13]
        assert mcu.memory.peek(sp) == 1
        assert mcu.memory.peek(sp + 4) == 2

    def test_sp_starts_at_stack_top(self):
        image = assemble_and_link(".entry m\nm: bkpt\n")
        mcu = MCU(image)
        assert mcu.cpu.regs[13] == STACK_TOP

    def test_unaligned_word_access_faults(self):
        with pytest.raises(MemFault):
            run(f"""
    mov32 r0, #{NS_RAM_BASE + 1}
    ldr r1, [r0]
""")


class TestControlFlow:
    def test_call_and_leaf_return(self):
        mcu = run("""
    mov r0, #5
    bl double
    b end
double:
    add r0, r0, r0
    bx lr
end:
""")
        assert mcu.cpu.regs[0] == 10

    def test_nested_calls_pop_pc(self):
        mcu = run("""
    bl outer
    b end
outer:
    push {lr}
    bl inner
    add r0, r0, #1
    pop {pc}
inner:
    mov r0, #10
    bx lr
end:
""")
        assert mcu.cpu.regs[0] == 11

    def test_indirect_call_blx(self):
        mcu = run("""
    adr r3, target
    blx r3
    b end
target:
    mov r0, #77
    bx lr
end:
""")
        assert mcu.cpu.regs[0] == 77

    def test_ldr_pc_switch(self):
        mcu = run("""
    ldr r2, =table
    mov r0, #1
    ldr pc, [r2, r0, lsl #2]
case0:
    mov r1, #100
    b end
case1:
    mov r1, #200
    b end
end:
""" + "\n.rodata\ntable: .word case0, case1\n.text")
        assert mcu.cpu.regs[1] == 200

    def test_cbz_cbnz(self):
        mcu = run("""
    mov r0, #0
    cbz r0, taken
    mov r1, #0
    b next
taken:
    mov r1, #1
next:
    mov r0, #5
    cbnz r0, taken2
    mov r2, #0
    b end
taken2:
    mov r2, #1
end:
""")
        assert mcu.cpu.regs[1] == 1 and mcu.cpu.regs[2] == 1

    def test_backward_loop(self):
        mcu = run("""
    mov r0, #0
    mov r1, #5
loop:
    add r0, r0, #1
    sub r1, r1, #1
    cmp r1, #0
    bgt loop
""")
        assert mcu.cpu.regs[0] == 5

    def test_return_to_reset_lr_exits(self):
        image = assemble_and_link(".entry m\nm: mov r0, #9\n    bx lr\n")
        mcu = MCU(image)
        result = mcu.run()
        assert result.exit_reason == "return"
        assert mcu.cpu.regs[0] == 9

    def test_bkpt_halts(self):
        image = assemble_and_link(".entry m\nm: bkpt\n    mov r0, #1\n")
        mcu = MCU(image)
        result = mcu.run()
        assert result.exit_reason == "bkpt"
        assert mcu.cpu.regs[0] == 0  # never executed

    def test_pc_read_ahead(self):
        # reading pc as an operand yields instruction address + 4
        image = assemble_and_link(".entry m\nm: mov r0, pc\n    bkpt\n")
        mcu = MCU(image)
        mcu.run()
        assert mcu.cpu.regs[0] == image.entry + 4


class TestCycleModel:
    def test_taken_branch_costs_more(self):
        taken = run_source(
            ".entry m\nm: mov r0, #0\n    cmp r0, #0\n    beq t\n"
            "    nop\nt:  bkpt\n")
        not_taken = run_source(
            ".entry m\nm: mov r0, #0\n    cmp r0, #1\n    beq t\n"
            "    nop\nt:  bkpt\n")
        # same instruction count modulo the skipped nop; taken pays refill
        assert taken.cpu.cycles == not_taken.cpu.cycles  # nop(1) vs penalty(1)

    def test_cycles_accumulate(self):
        mcu = run("    mov r0, #1\n    mov r1, #2")
        # 2 movs (1+1) + bkpt (1)
        assert mcu.cpu.cycles == 3

    def test_push_pop_cost_scales_with_registers(self):
        one = run("    push {r4}\n    pop {r4}")
        three = run("    push {r4, r5, r6}\n    pop {r4, r5, r6}")
        assert three.cpu.cycles > one.cpu.cycles


class TestFaults:
    def test_fetch_from_data_region_faults(self):
        with pytest.raises(MemFault):
            run_source(".entry m\nm: mov32 r0, #0x20000000\n    bx r0\n")

    def test_fetch_from_non_instruction_address(self):
        # jump into the middle of a 4-byte instruction
        with pytest.raises(UndefinedInstruction):
            run_source(".entry m\nm: bl f\nf: adr r0, f\n    add r0, r0, #2\n    bx r0\n")

    def test_svc_without_handler_faults(self):
        with pytest.raises(UndefinedInstruction):
            run_source(".entry m\nm: svc #1\n    bkpt\n")

    def test_execution_limit(self):
        with pytest.raises(ExecutionLimitExceeded):
            run_source(".entry m\nm: b m\n", max_instructions=100)

    def test_read_unmapped_faults(self):
        with pytest.raises(MemFault):
            run("    mov32 r0, #0x90000000\n    ldr r1, [r0]")

    def test_ns_cannot_touch_secure_ram(self):
        from repro.machine.memmap import S_RAM_BASE

        with pytest.raises(MemFault):
            run(f"    mov32 r0, #{S_RAM_BASE}\n    ldr r1, [r0]")

    def test_mtb_sram_protected_from_ns(self):
        from repro.machine.memmap import MTB_SRAM_BASE

        with pytest.raises(MemFault):
            run(f"    mov32 r0, #{MTB_SRAM_BASE}\n    mov r1, #1\n"
                f"    str r1, [r0]")

    def test_rodata_not_writable(self):
        with pytest.raises(MemFault):
            run("""
    ldr r0, =t
    mov r1, #1
    str r1, [r0]
""" + "\n.rodata\nt: .word 0\n.text")
