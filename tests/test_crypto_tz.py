"""Unit tests: measurement hashing, report MACs, keystore, gateway."""

import pytest

from repro.asm.assembler import assemble_and_link
from repro.crypto.hashing import hash_bytes, measure_image
from repro.crypto.mac import mac_report, verify_mac
from repro.machine.faults import UndefinedInstruction
from repro.machine.mcu import MCU
from repro.tz.gateway import GatewayCosts, SecureGateway
from repro.tz.keystore import KeyStore


class TestMeasurement:
    def test_same_code_same_measurement(self):
        a = assemble_and_link(".entry m\nm: mov r0, #1\n    bkpt\n")
        b = assemble_and_link(".entry m\nm: mov r0, #1\n    bkpt\n")
        assert measure_image(a) == measure_image(b)

    def test_instruction_change_changes_measurement(self):
        a = assemble_and_link(".entry m\nm: mov r0, #1\n    bkpt\n")
        b = assemble_and_link(".entry m\nm: mov r0, #2\n    bkpt\n")
        assert measure_image(a) != measure_image(b)

    def test_reordering_changes_measurement(self):
        a = assemble_and_link(".entry m\nm: nop\n    mov r0, #1\n    bkpt\n")
        b = assemble_and_link(".entry m\nm: mov r0, #1\n    nop\n    bkpt\n")
        assert measure_image(a) != measure_image(b)

    def test_mtbar_included_in_measurement(self):
        a = assemble_and_link(".entry m\nm: bkpt\n.mtbar\ns: nop\n")
        b = assemble_and_link(".entry m\nm: bkpt\n.mtbar\ns: b m\n")
        assert measure_image(a) != measure_image(b)

    def test_hash_bytes_is_sha256(self):
        import hashlib

        assert hash_bytes(b"x") == hashlib.sha256(b"x").digest()


class TestMac:
    def test_roundtrip(self):
        tag = mac_report(b"k" * 32, b"a", b"b")
        assert verify_mac(b"k" * 32, tag, b"a", b"b")

    def test_field_splicing_rejected(self):
        # ("ab", "c") must not collide with ("a", "bc")
        tag = mac_report(b"k" * 32, b"ab", b"c")
        assert not verify_mac(b"k" * 32, tag, b"a", b"bc")

    def test_wrong_key_rejected(self):
        tag = mac_report(b"k" * 32, b"data")
        assert not verify_mac(b"j" * 32, tag, b"data")

    def test_tampered_tag_rejected(self):
        tag = bytearray(mac_report(b"k" * 32, b"data"))
        tag[0] ^= 1
        assert not verify_mac(b"k" * 32, bytes(tag), b"data")


class TestKeyStore:
    def test_deterministic_provisioning(self):
        a = KeyStore.provision("dev-1", b"s")
        b = KeyStore.provision("dev-1", b"s")
        assert a.attestation_key == b.attestation_key

    def test_distinct_devices_distinct_keys(self):
        a = KeyStore.provision("dev-1")
        b = KeyStore.provision("dev-2")
        assert a.attestation_key != b.attestation_key

    def test_key_length(self):
        assert len(KeyStore.provision().attestation_key) == 32


class TestGateway:
    def _mcu(self):
        return MCU(assemble_and_link(".entry m\nm: svc #7\n    bkpt\n"))

    def test_dispatch_and_cycle_tax(self):
        mcu = self._mcu()
        gateway = SecureGateway(GatewayCosts(entry=40, exit=20))
        calls = []
        gateway.register(7, lambda cpu: calls.append(1) or 15)
        gateway.install(mcu.cpu)
        mcu.run()
        assert calls == [1]
        assert gateway.calls == 1
        assert gateway.cycles_charged == 40 + 20 + 15
        # svc(1) + bkpt(1) + gateway tax
        assert mcu.cpu.cycles == 2 + 75

    def test_unregistered_service_faults(self):
        mcu = self._mcu()
        gateway = SecureGateway()
        gateway.install(mcu.cpu)
        with pytest.raises(UndefinedInstruction):
            mcu.run()

    def test_duplicate_registration_rejected(self):
        gateway = SecureGateway()
        gateway.register(1, lambda cpu: 0)
        with pytest.raises(ValueError):
            gateway.register(1, lambda cpu: 0)

    def test_round_trip_cost(self):
        assert GatewayCosts(entry=45, exit=30).round_trip == 75
