"""Property: the assembler parses what the instruction printer emits."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.asm.parser import parse_statement
from repro.isa.conditions import CONDITIONS
from repro.isa.instructions import Instr, make_instr
from repro.isa.operands import Imm, Label, Mem, Reg, RegList

regs = st.integers(min_value=0, max_value=12).map(Reg)
imms = st.integers(min_value=-1024, max_value=0xFFFF).map(Imm)
# register names are reserved words (as in real assemblers): a label
# spelled 'r0' or 'lr' parses as a register, so exclude them here
_RESERVED = {f"r{i}" for i in range(16)} | {"sp", "lr", "pc", "fp", "ip"}
labels = st.from_regex(r"[a-z_][a-z0-9_]{0,10}", fullmatch=True) \
    .filter(lambda name: name not in _RESERVED).map(Label)
shifts = st.integers(min_value=0, max_value=3)


@st.composite
def mems(draw):
    base = draw(regs)
    form = draw(st.integers(min_value=0, max_value=2))
    if form == 0:
        return Mem(base, offset=draw(st.integers(-64, 255)))
    if form == 1:
        return Mem(base, index=draw(regs))
    return Mem(base, index=draw(regs), shift=draw(shifts))


@st.composite
def reglists(draw):
    body = draw(st.sets(st.integers(min_value=0, max_value=12),
                        min_size=1, max_size=5))
    return RegList(tuple(body))


@st.composite
def instructions(draw):
    choice = draw(st.sampled_from([
        "alu3", "mov", "cmp", "mem", "stack", "branch", "cond_branch",
        "compare_branch", "indirect",
    ]))
    if choice == "alu3":
        mnemonic = draw(st.sampled_from(
            ["add", "sub", "and", "orr", "eor", "bic", "lsl", "lsr",
             "asr", "ror", "mul", "udiv", "adc", "sbc"]))
        return make_instr(mnemonic, draw(regs), draw(regs),
                          draw(st.one_of(regs, imms)))
    if choice == "mov":
        return make_instr(draw(st.sampled_from(["mov", "mvn"])),
                          draw(regs), draw(st.one_of(regs, imms)))
    if choice == "cmp":
        return make_instr(draw(st.sampled_from(["cmp", "cmn", "tst"])),
                          draw(regs), draw(st.one_of(regs, imms)))
    if choice == "mem":
        mnemonic = draw(st.sampled_from(
            ["ldr", "ldrb", "ldrh", "str", "strb", "strh"]))
        return make_instr(mnemonic, draw(regs), draw(mems()))
    if choice == "stack":
        return make_instr(draw(st.sampled_from(["push", "pop"])),
                          draw(reglists()))
    if choice == "branch":
        return make_instr(draw(st.sampled_from(["b", "bl"])), draw(labels))
    if choice == "cond_branch":
        return make_instr("b", draw(labels),
                          cond=draw(st.sampled_from(CONDITIONS)))
    if choice == "compare_branch":
        return make_instr(draw(st.sampled_from(["cbz", "cbnz"])),
                          draw(regs), draw(labels))
    return make_instr(draw(st.sampled_from(["bx", "blx"])), draw(regs))


class TestPrinterParserRoundtrip:
    @given(instructions())
    @settings(deadline=None, max_examples=300)
    def test_roundtrip(self, instr: Instr):
        mnemonic, cond, operands = parse_statement(str(instr))
        rebuilt = make_instr(mnemonic, *operands, cond=cond)
        assert rebuilt == instr

    @given(instructions())
    @settings(deadline=None, max_examples=100)
    def test_roundtrip_encoding_stable(self, instr: Instr):
        from repro.isa.encoding import encode_instr

        mnemonic, cond, operands = parse_statement(str(instr))
        rebuilt = make_instr(mnemonic, *operands, cond=cond)
        resolve = lambda name: 0x1000  # noqa: E731
        assert encode_instr(rebuilt, resolve) == encode_instr(instr, resolve)
