"""Kill-and-restart differential for the policy control plane.

The contract under test (the tentpole's acceptance criterion): hard-
stop a policy-enabled sharded service at an arbitrary point in a
compromise-then-heal campaign, restart it over the same evidence
store, finish the campaign — and the result must be **byte-identical**
to an uninterrupted reference run: same policy decision records (same
bytes, same chain positions), same device end states, same per-device
evidence heads. Plus the offline proof: an auditor who never ran the
service reconstructs the same control-plane state from the store
alone (:func:`reconstruct_control_plane`).

Why it holds by construction: decisions are a pure fold over session
evidence, session nonces are device-scoped (a restarted coordinator
re-derives exactly the healing challenge an interrupted device was
answering), and a crash can only lose a log's *last* decision suffix,
which restore re-derives and re-appends into the same chain position.
"""

import struct
from pathlib import Path

import pytest

from repro.cfa.fleet import (
    CampaignSimulator,
    ChainFactory,
    ShardedFleetService,
    audit_key,
    build_campaign_specs,
    device_key,
    verify_evidence_trail,
)
from repro.cfa.policy import reconstruct_control_plane

SEED = b"fleet-vrf"
SHARDS = 2
IDLE = 5.0
ROUNDS = 3
SIM_SEED = 11


@pytest.fixture(scope="module")
def factory():
    return ChainFactory(watermark=256)


@pytest.fixture(scope="module")
def specs():
    # 16 devices, ~3 compromised (one attack, one equivocate, one
    # tamper), the rest cycling the honest transports
    return build_campaign_specs(16, compromised_fraction=0.2,
                                workloads=("fibcall",), seed=10)


def make_service(store_dir, resume=False):
    return ShardedFleetService(
        shards=SHARDS, store_dir=store_dir, seed=SEED,
        idle_timeout=IDLE, resume=resume, policy=True,
        key_lookup=device_key)


def policy_trail(store_dir):
    """Every policy record across the shard logs, field for field
    (digest included, so equality means byte-identical records in
    identical chain positions)."""
    key = audit_key(SEED)
    trail = []
    for path in sorted(Path(store_dir).glob("evidence-*.log")):
        for record in verify_evidence_trail(path, key):
            if record.is_policy:
                trail.append((
                    path.name, record.device_id, record.seq,
                    record.action, record.from_state, record.to_state,
                    record.reason, record.score, record.heal_attempt,
                    record.policy_epoch, record.measurement,
                    record.digest))
    # sorted by (log, device, seq): per-device record bytes and chain
    # positions must match exactly (seq + digest); the cross-device
    # interleave within a log is scheduling, not state
    return sorted(trail)


def full_round(simulator, service, round_index):
    simulator.run_round(service, round_index)
    simulator.heal_round(service, round_index)
    simulator.deliver_notices(service)


@pytest.fixture(scope="module")
def reference(specs, factory, tmp_path_factory):
    store = tmp_path_factory.mktemp("reference")
    simulator = CampaignSimulator(specs, seed=SIM_SEED,
                                  factory=factory)
    service = make_service(store)
    simulator.pin_profiles(service)
    report = simulator.run(service, rounds=ROUNDS)
    heads = service.evidence_heads()
    states = service.policy.state_names()
    service.close()
    assert report.ok, report.summary()
    assert report.compromised and report.rejoined == report.compromised
    return heads, states, policy_trail(store)


def finish_and_compare(simulator, service, store, reference):
    heads_ref, states_ref, trail_ref = reference
    heads = service.evidence_heads()
    states = service.policy.state_names()
    service.close()
    assert states == states_ref
    assert heads == heads_ref
    assert policy_trail(store) == trail_ref
    # the offline auditor reconstructs the same control plane
    snapshot = reconstruct_control_plane(store, SEED)
    assert snapshot.states() == states_ref
    assert snapshot.heads == heads_ref
    assert snapshot.policy_records == len(trail_ref)
    assert (store / "RECOVERY.md").exists()
    # the campaign itself still met its SLA through the crash
    simulator.report.end_states = states
    assert simulator.report.ok, simulator.report.summary()


# where to hard-stop the campaign (no drain, no close, no flush)
CRASH_POINTS = ("after-first-attest-round", "mid-heal",
                "after-first-full-cycle", "mid-campaign")


@pytest.mark.parametrize("crash_point", CRASH_POINTS)
def test_kill_and_restart_matches_reference(specs, factory, tmp_path,
                                            reference, crash_point):
    store = tmp_path / "store"
    simulator = CampaignSimulator(specs, seed=SIM_SEED,
                                  factory=factory)
    service = make_service(store)
    simulator.pin_profiles(service)

    # phase 1: run up to the crash point, then hard-stop
    resume_round_zero_heal = False
    if crash_point == "after-first-attest-round":
        # compromised devices are QUARANTINED, no HEAL minted yet
        simulator.run_round(service, 0)
    elif crash_point == "mid-heal":
        # HEAL decisions persisted and orders built, but the crash
        # eats them before any device hears one
        simulator.run_round(service, 0)
        dropped = service.heal_pushes(500.0)
        assert dropped  # orders existed; none were delivered
        resume_round_zero_heal = True
    elif crash_point == "after-first-full-cycle":
        full_round(simulator, service, 0)
    else:  # mid-campaign: one full cycle plus the next attest round
        full_round(simulator, service, 0)
        simulator.run_round(service, 1)
    del service  # the crash: no drain, no close

    # phase 2: restart over the same store and finish the campaign
    resumed = make_service(store, resume=True)
    if crash_point in ("after-first-attest-round", "mid-heal"):
        # a restarted coordinator re-issues standing HEAL orders
        # (resume path) or mints them now (they were never minted)
        simulator.heal_round(resumed, 0,
                             resume=resume_round_zero_heal)
        simulator.deliver_notices(resumed)
        remaining = range(1, ROUNDS)
    elif crash_point == "after-first-full-cycle":
        remaining = range(1, ROUNDS)
    else:
        simulator.heal_round(resumed, 1)
        simulator.deliver_notices(resumed)
        remaining = range(2, ROUNDS)
    for round_index in remaining:
        full_round(simulator, resumed, round_index)
    finish_and_compare(simulator, resumed, store, reference)


def test_torn_heal_decision_is_reminted_byte_identically(
        specs, factory, tmp_path, reference):
    """Crash during ``begin_heal``'s append: the HEAL decision never
    reached the disk, so the restarted coordinator sees the device
    still QUARANTINED and must mint the same order again — same
    fields, same chain position, byte-identical record."""
    store = tmp_path / "store"
    simulator = CampaignSimulator(specs, seed=SIM_SEED,
                                  factory=factory)
    service = make_service(store)
    simulator.pin_profiles(service)
    simulator.run_round(service, 0)
    # mint the HEAL decisions (none delivered), then hard-stop
    assert service.heal_pushes(500.0)
    del service

    # surgically drop the last frame of a log that ends with a HEAL
    # decision (what a crash mid-append leaves after tail truncation)
    key = audit_key(SEED)
    dropped = dropped_path = None
    for path in sorted(store.glob("evidence-*.log")):
        records = verify_evidence_trail(path, key)
        if records and records[-1].is_policy \
                and records[-1].action == "heal":
            data = path.read_bytes()
            offset, frames = 5, []  # 4-byte magic + 1-byte version
            while offset < len(data):
                (length,) = struct.unpack_from("<I", data, offset)
                frames.append(offset)
                offset += 4 + length
            with open(path, "r+b") as fh:
                fh.truncate(frames[-1])
            dropped, dropped_path = records[-1], path
            break
    assert dropped is not None, "no shard log ended with a HEAL order"

    resumed = make_service(store, resume=True)
    assert resumed.policy.state_of(dropped.device_id) == 2  # QUARANTINED
    # the lost order is minted afresh (heal_pushes), the surviving
    # orders are re-issued as standing orders (resume_heals)
    simulator.heal_round(resumed, 0)
    reminted = verify_evidence_trail(dropped_path, key)
    assert dropped in reminted
    simulator.heal_round(resumed, 0, resume=True)
    simulator.deliver_notices(resumed)
    for round_index in range(1, ROUNDS):
        full_round(simulator, resumed, round_index)
    finish_and_compare(simulator, resumed, store, reference)


def test_double_crash_still_converges(specs, factory, tmp_path,
                                      reference):
    """Two successive kills — one mid-quarantine, one mid-heal —
    compose: recovery is idempotent over already-repaired logs."""
    store = tmp_path / "store"
    simulator = CampaignSimulator(specs, seed=SIM_SEED,
                                  factory=factory)
    service = make_service(store)
    simulator.pin_profiles(service)
    simulator.run_round(service, 0)
    del service

    second = make_service(store, resume=True)
    second.heal_pushes(500.0)  # orders minted, never delivered
    del second

    third = make_service(store, resume=True)
    simulator.heal_round(third, 0, resume=True)
    simulator.deliver_notices(third)
    for round_index in range(1, ROUNDS):
        full_round(simulator, third, round_index)
    finish_and_compare(simulator, third, store, reference)
