"""Edge cases across the stack: guards, degenerate programs, limits."""

import pytest

from repro.asm import assemble, link
from repro.asm.assembler import assemble_and_link
from repro.cfa.engine import EngineConfig
from repro.cfa.verifier import Verifier
from repro.core.pipeline import RapTrackConfig, transform
from repro.machine.faults import MachineFault
from repro.machine.mcu import MCU
from conftest import naive_setup, rap_setup, traces_setup


class TestDegeneratePrograms:
    def test_empty_main(self, keystore):
        image, _, _, engine, verifier, _ = rap_setup(
            ".entry main\nmain: bkpt\n", keystore=keystore)
        result = engine.attest(b"c")
        assert len(result.cflog) == 0
        assert verifier.verify(result, b"c").ok

    def test_branch_to_next_instruction(self, keystore):
        # b to the fall-through address retires sequentially everywhere
        source = """
.entry main
main:
    b next
next:
    bkpt
"""
        for setup in (rap_setup, traces_setup, naive_setup):
            _, _, _, engine, verifier, _ = setup(source, keystore=keystore)
            result = engine.attest(b"c")
            assert verifier.verify(result, b"c").ok

    def test_single_instruction_loop(self, keystore):
        source = """
.entry main
main:
    mov r4, #0
top:
    add r4, r4, #1
    cmp r4, #3
    blt top
    bkpt
"""
        image, _, mcu, engine, verifier, _ = rap_setup(
            source, keystore=keystore)
        result = engine.attest(b"c")
        assert verifier.verify(result, b"c").ok
        assert mcu.cpu.regs[4] == 3

    def test_zero_trip_simple_loop_shape(self, keystore):
        # a loop whose counter starts past the bound still runs once
        # (do-while shape) and must replay exactly
        source = """
.entry main
main:
    mov r4, #9
top:
    add r5, r5, #1
    add r4, r4, #1
    cmp r4, #5
    blt top
    bkpt
"""
        image, _, mcu, engine, verifier, _ = rap_setup(
            source, keystore=keystore)
        result = engine.attest(b"c")
        assert verifier.verify(result, b"c").ok
        assert mcu.cpu.regs[5] == 1

    def test_deep_call_chain(self, keystore):
        parts = [".entry main", "main:", "    push {lr}", "    bl f0",
                 "    pop {pc}"]
        for i in range(12):
            parts += [f"f{i}:", "    push {lr}", f"    bl f{i + 1}",
                      "    pop {pc}"]
        parts += ["f12:", "    mov r0, #42", "    bx lr"]
        image, _, mcu, engine, verifier, _ = rap_setup(
            "\n".join(parts), keystore=keystore)
        result = engine.attest(b"c")
        assert verifier.verify(result, b"c").ok
        assert mcu.cpu.regs[0] == 42


class TestGuards:
    def test_verifier_step_guard(self, keystore):
        image, bound, _, engine, _, _ = rap_setup(
            ".entry main\nmain:\n    mov r4, #0\ntop:\n    add r4, r4, #1\n"
            "    cmp r4, #200\n    blt top\n    bkpt\n", keystore=keystore)
        result = engine.attest(b"c")
        tight = Verifier(image, bound, keystore.attestation_key,
                         max_steps=10)
        outcome = tight.verify(result, b"c")
        assert not outcome.lossless
        assert "step guard" in outcome.error

    def test_naive_wrap_without_watermark_is_detected(self, keystore):
        # force a wrap: buffer smaller than the log, watermark disabled
        source = """
.entry main
main:
    mov r4, #0
    mov r5, #40
top:
    add r4, r4, #1
    cmp r4, r5
    blt top
    bkpt
"""
        from repro.trace.mtb import PACKET_BYTES

        config = EngineConfig(mtb_buffer_size=4 * PACKET_BYTES,
                              watermark=1 << 20)  # watermark never hit
        _, _, _, engine, _, _ = naive_setup(source, engine_config=config,
                                            keystore=keystore)
        with pytest.raises(RuntimeError, match="wrapped"):
            engine.attest(b"c")

    def test_exception_return_without_exception_faults(self):
        image = assemble_and_link(
            ".entry main\nmain:\n    mov32 r0, #0xFFFFFFF1\n    bx r0\n")
        mcu = MCU(image)
        with pytest.raises(MachineFault):
            mcu.run()


class TestConfigSurface:
    def test_rap_config_to_rewriter(self):
        config = RapTrackConfig(nop_padding=False, share_pop_stub=False)
        rewriter = config.rewriter()
        assert not rewriter.nop_padding
        assert not rewriter.share_pop_stub

    def test_all_options_off_still_lossless(self, keystore):
        source = """
.entry main
main:
    push {r4, lr}
    mov r4, #0
top:
    add r4, r4, #1
    cmp r4, #6
    blt top
    pop {r4, pc}
"""
        config = RapTrackConfig(nop_padding=False, loop_opt=False,
                                fixed_loops=False, share_pop_stub=False)
        engine_config = EngineConfig(activation_latency=0)
        image, _, _, engine, verifier, tracer = rap_setup(
            source, rap_config=config, engine_config=engine_config,
            keystore=keystore)
        result = engine.attest(b"c")
        outcome = verifier.verify(result, b"c")
        assert outcome.ok
        # with fixed loops off, every latch iteration is logged
        assert len(result.cflog) >= 5

    def test_watermark_default_is_buffer_size(self, keystore):
        _, _, _, engine, _, _ = rap_setup(
            ".entry main\nmain: bkpt\n", keystore=keystore)
        engine.attest(b"c")
        assert engine.mtb.watermark == engine.config.mtb_buffer_size


class TestVulnerableAcrossMethods:
    @pytest.mark.parametrize("setup", [naive_setup, traces_setup])
    def test_benign_clean_everywhere(self, setup, keystore):
        from repro.workloads import vulnerable

        workload = vulnerable.make()
        image, _, mcu, engine, verifier, _ = setup(workload,
                                                   keystore=keystore)
        mcu.mmio.device("uart").set_feed(vulnerable.benign_feed())
        result = engine.attest(b"c")
        assert verifier.verify(result, b"c").ok
        assert mcu.mmio.device("gpio").latches[0] == vulnerable.STATUS_NORMAL

    def test_attack_visible_to_naive_verifier(self, keystore):
        from repro.workloads import vulnerable

        workload = vulnerable.make()
        image, _, mcu, engine, verifier, _ = naive_setup(
            workload, keystore=keystore)
        mcu.mmio.device("uart").set_feed(vulnerable.attack_feed(image))
        result = engine.attest(b"c")
        outcome = verifier.verify(result, b"c")
        assert outcome.authenticated and outcome.lossless
        assert any(v.kind == "rop-return" for v in outcome.violations)


class TestLinkLayouts:
    def test_custom_layout(self):
        module = assemble(".entry m\nm: bkpt\n")
        image = link(module, layout={"text": 0x0024_0000})
        assert image.entry == 0x0024_0000

    def test_rewritten_image_is_relinkable(self, keystore):
        source = """
.entry main
main:
    cmp r0, #0
    beq out
    nop
out:
    bkpt
"""
        result = transform(assemble(source))
        one = link(result.module)
        two = link(result.module)
        assert one.code_bytes() == two.code_bytes()
