"""Tests: the rewriter translation validator (repro.core.validate).

Positive direction: every workload × every ablation configuration the
benchmarks exercise certifies cleanly. Negative direction: a seeded
break of each invariant — verbatim drift, stub redirection, rewrite-map
corruption, forged devirtualization, stripped activation padding,
truncated/padded text, overlapping regions — is rejected with the
matching check id.
"""

import dataclasses

import pytest

from repro.asm import assemble
from repro.core.lint import LINT_CONFIGS
from repro.core.pipeline import RapTrackConfig, transform
from repro.core.validate import (
    ValidationReport,
    _check_regions,
    validate_rewrite,
)
from repro.isa.instructions import Instr, InstrKind, make_instr
from repro.isa.operands import Label
from repro.workloads import WORKLOADS, load_workload

SAMPLE = """
.entry main
main:
    mov r4, #0
    adr r3, f
    blx r3
top:
    add r4, r4, #1
    cmp r4, #3
    blt top
    bl g
    bkpt
f:  bx lr
g:  push {r4, lr}
    pop {r4, pc}
"""


def build(source=SAMPLE, config=None):
    module = assemble(source)
    result = transform(module, config)
    return assemble(source), result, config or RapTrackConfig()


def checks_of(report):
    return {issue.check for issue in report.issues}


# -- certification ----------------------------------------------------------

@pytest.mark.parametrize("cfg_name,config", LINT_CONFIGS,
                         ids=[name for name, _ in LINT_CONFIGS])
@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_every_workload_certifies(name, cfg_name, config):
    workload = load_workload(name)
    result = transform(workload.module(), config)
    report = validate_rewrite(workload.module(), result, config)
    assert report.ok, [str(i) for i in report.issues]
    assert report.sites_checked > 0


def test_report_json_shape():
    original, result, config = build()
    report = validate_rewrite(original, result, config)
    payload = report.to_json()
    assert payload["ok"] is True
    assert payload["issues"] == []
    assert payload["devirt_checked"] >= 1  # the adr/blx pair


# -- seeded-broken rewrites --------------------------------------------------

class TestTamperRejection:
    def test_verbatim_drift(self):
        original, result, config = build()
        for item in result.module.section("text").items:
            payload = item.payload
            if getattr(payload, "mnemonic", None) == "add":
                item.payload = dataclasses.replace(payload, mnemonic="sub")
                break
        report = validate_rewrite(original, result, config)
        assert "verbatim-drift" in checks_of(report)

    def test_stub_redirected(self):
        original, result, config = build()
        # repoint the first recording instruction somewhere legal-looking
        rec_labels = {site.rec_label
                      for site in result.rmap.indirect_sites}
        for item in result.module.section("mtbar").items:
            if rec_labels & set(item.labels):
                item.payload = make_instr("b", Label("main"))
                break
        report = validate_rewrite(original, result, config)
        assert "stub-equivalence" in checks_of(report)

    def test_dropped_rmap_entry(self):
        original, result, config = build()
        result.rmap.indirect_sites.pop()
        report = validate_rewrite(original, result, config)
        assert "rmap-bijectivity" in checks_of(report)

    def test_duplicated_rmap_entry(self):
        original, result, config = build()
        result.rmap.indirect_sites.append(result.rmap.indirect_sites[0])
        report = validate_rewrite(original, result, config)
        assert "rmap-bijectivity" in checks_of(report)

    def test_forged_devirt_target(self):
        original, result, config = build()
        sites = result.classification.sites
        for idx, site in sites.items():
            if site.devirt_target is not None:
                sites[idx] = dataclasses.replace(site, devirt_target="top")
                break
        report = validate_rewrite(original, result, config)
        assert {"devirt-emission",
                "devirt-certificate"} <= checks_of(report)

    def test_devirt_without_dataflow_flagged(self):
        original, result, _config = build()
        off = RapTrackConfig(enable_dataflow=False)
        report = validate_rewrite(original, result, off)
        assert "devirt-disabled" in checks_of(report)

    def test_stripped_nop_padding(self):
        # drop the activation nops but keep the stub entry labels bound
        # (they sit on the nop items) so the module still links
        original, result, config = build()
        mtbar = result.module.section("mtbar")
        kept, pending = [], ()
        for item in mtbar.items:
            if getattr(item.payload, "mnemonic", None) == "nop":
                pending += tuple(item.labels)
                continue
            if pending:
                item.labels = pending + tuple(item.labels)
                pending = ()
            kept.append(item)
        mtbar.items = kept
        report = validate_rewrite(original, result, config)
        assert "nop-padding" in checks_of(report)

    def test_truncated_text(self):
        original, result, config = build()
        text = result.module.section("text")
        while text.items:
            dropped = text.items.pop()
            if isinstance(dropped.payload, Instr):
                break
        report = validate_rewrite(original, result, config)
        assert "text-truncated" in checks_of(report)

    def test_surplus_text(self):
        original, result, config = build()
        result.module.section("text").add(make_instr("nop"))
        report = validate_rewrite(original, result, config)
        assert "text-surplus" in checks_of(report)

    def test_residual_indirect_call(self):
        # a rewriter that forgets a site entirely leaves the raw blx in
        # text: flagged both as residue and as a shape mismatch
        original, result, config = build()
        blx = next(i for i in original.section("text").instructions()
                   if i.kind is InstrKind.INDIRECT_CALL)
        text = result.module.section("text")
        for item in text.items:
            payload = item.payload
            if getattr(payload, "mnemonic", None) == "b" and \
                    isinstance(payload.operands[0], Label) and \
                    payload.operands[0].name.startswith("__rt_"):
                item.payload = blx
                break
        report = validate_rewrite(original, result, config)
        assert "residual-indirect" in checks_of(report)

    def test_region_overlap_detected(self):
        class _FakeImage:
            section_ranges = {"text": (0, 0x100), "mtbar": (0x80, 0x180)}

        report = ValidationReport()
        _check_regions(report, _FakeImage())
        assert checks_of(report) == {"region-overlap"}

    def test_unbindable_label_is_link_or_orphan(self):
        original, result, config = build()
        result.rmap.indirect_sites[0] = dataclasses.replace(
            result.rmap.indirect_sites[0], rec_label="__rt_nowhere")
        report = validate_rewrite(original, result, config)
        assert checks_of(report) & {"link", "rmap-orphan", "stub-entry"}
