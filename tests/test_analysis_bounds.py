"""Tests: the path-bound analyzer (`core/analysis/bounds`)."""

import pytest

from repro.asm import assemble
from repro.core.analysis import analyse_path_bounds, build_call_graph
from repro.core.analysis.bounds import BOUNDED_METHODS, RECORD_UNIT
from repro.core.classify import classify_module
from repro.workloads import load_workload
from repro.workloads import vulnerable


def bounds_for(name, method):
    if name == "vulnerable":
        module = vulnerable.make().module()
    else:
        module = load_workload(name).module()
    classification = classify_module(module)
    graph = build_call_graph(classification)
    return analyse_path_bounds(classification, graph, method)


class TestKnownBounds:
    def test_loop_optimized_workload_logs_nothing(self):
        # crc32's loops all fold into LoopRecords charged at loop entry
        # or deterministic sites: rap-track's worst case is tiny while
        # the per-branch baseline pays per iteration
        rap = bounds_for("crc32", "rap-track")
        naive = bounds_for("crc32", "naive-mtb")
        assert rap.max_log_records == 0
        assert naive.max_log_records == 128

    def test_record_unit_scales_bytes(self):
        for method in BOUNDED_METHODS:
            b = bounds_for("temperature", method)
            if b.max_log_records is not None:
                assert b.max_log_bytes \
                    == b.max_log_records * RECORD_UNIT[method]

    def test_data_dependent_loops_bound_only_under_rap(self):
        # geiger's sensor loop is data-dependent: rap-track logs one
        # LoopRecord per entry (bounded), the naive baseline logs every
        # iteration (bounded only via the loop's static trip ceiling)
        rap = bounds_for("geiger", "rap-track")
        assert rap.max_log_records == 180

    def test_recursion_is_unbounded_and_reported(self):
        for method in BOUNDED_METHODS:
            b = bounds_for("fibcall", method)
            assert b.max_stack_depth is None
            assert b.max_log_records is None
            assert b.recursion_cycles == (("fib",),)
            assert not b.bounded

    def test_attacker_fed_loop_is_unbounded_but_depth_is_not(self):
        # vulnerable's copy loop runs off attacker input: no record
        # bound exists, but the call tree is still statically 2 deep
        b = bounds_for("vulnerable", "rap-track")
        assert b.max_log_records is None
        assert b.max_stack_depth == 2

    def test_depth_exact_only_for_fully_logged_baseline(self):
        # record-based depth inference is sound only when every call
        # and return is logged — which rap-track precisely avoids
        assert bounds_for("vulnerable", "naive-mtb").depth_exact
        assert not bounds_for("vulnerable", "rap-track").depth_exact
        assert not bounds_for("vulnerable", "traces").depth_exact

    def test_unknown_method_rejected(self):
        with pytest.raises((KeyError, ValueError)):
            bounds_for("crc32", "baseline")


class TestSyntheticBounds:
    def analyse(self, source, method="rap-track"):
        classification = classify_module(assemble(".entry main\n" + source))
        graph = build_call_graph(classification)
        return analyse_path_bounds(classification, graph, method)

    def test_straight_line_code_is_free(self):
        b = self.analyse("""
main:
    mov r0, #1
    add r0, r0, #2
    bkpt
""")
        assert b.max_stack_depth == 0
        assert b.max_log_records == 0
        assert b.bounded

    def test_call_chain_depth_counts_frames(self):
        b = self.analyse("""
main:
    push {lr}
    bl outer
    pop {pc}
outer:
    push {lr}
    bl inner
    pop {pc}
inner:
    bx lr
""")
        assert b.max_stack_depth == 2

    def test_constant_trip_loop_certifies_statically(self):
        # counter with a constant init and a cmp-latch: the tier-2 trip
        # analysis bounds the naive method's per-iteration records
        b = self.analyse("""
main:
    mov r0, #0
    mov r1, #0
loop:
    add r1, r1, r0
    add r0, r0, #1
    cmp r0, #7
    blt loop
    bkpt
""", method="naive-mtb")
        assert b.max_log_records == 7

    def test_register_bounded_loop_is_unbounded(self):
        # the latch compares against a register: no static trip bound
        b = self.analyse("""
main:
    mov r0, #0
    mov r2, #9
loop:
    add r0, r0, #1
    cmp r0, r2
    blt loop
    bkpt
""", method="naive-mtb")
        assert b.max_log_records is None
