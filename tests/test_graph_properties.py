"""Property tests for the dominator and natural-loop analyses.

These two modules underwrite every path-bound certificate: a wrong
idom tree silently mis-certifies loop trip counts, and a wrong loop
body mis-prices whole regions. The properties pinned here:

* **dominator exactness** — on random digraphs, the idom chain of
  every reachable node equals the brute-force dominator set (the
  intersection of all simple entry-to-node paths). Sound (no claimed
  dominator is avoidable) *and* complete (no unavoidable node is
  missed), since a node on every simple path is on every path (cycle
  removal only deletes nodes).
* **loop idempotence / well-formedness** — ``find_natural_loops`` is
  deterministic, headers dominate their latches, and bodies contain
  header and latches.
"""

from typing import List, Set

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cfg import CFG, BasicBlock
from repro.core.dominators import compute_dominators, dominates
from repro.core.loops import find_natural_loops

MAX_NODES = 7


def make_cfg(succs: List[List[int]]) -> CFG:
    """A CFG stub: the graph analyses only touch blocks/succs/preds."""
    cfg = CFG.__new__(CFG)
    cfg.blocks = [BasicBlock(bid=i, start=i, end=i + 1, succs=list(out))
                  for i, out in enumerate(succs)]
    cfg.block_of_index = {i: i for i in range(len(succs))}
    for block in cfg.blocks:
        for succ in block.succs:
            cfg.blocks[succ].preds.append(block.bid)
    return cfg


@st.composite
def digraphs(draw) -> List[List[int]]:
    n = draw(st.integers(min_value=1, max_value=MAX_NODES))
    return [
        draw(st.lists(st.integers(min_value=0, max_value=n - 1),
                      max_size=3, unique=True))
        for _ in range(n)
    ]


def brute_force_dominators(cfg: CFG, entry: int, target: int) -> Set[int]:
    """Nodes on *every* simple path entry -> target (DFS enumeration)."""
    common: Set[int] = set(range(len(cfg.blocks)))
    found = False
    stack = [(entry, {entry})]
    while stack:
        node, on_path = stack.pop()
        if node == target:
            common &= on_path
            found = True
            continue
        for succ in cfg.blocks[node].succs:
            if succ not in on_path:
                stack.append((succ, on_path | {succ}))
    return common if found else set()


def idom_chain(idom, node: int) -> Set[int]:
    chain = {node}
    while idom.get(node) is not None and idom[node] != node:
        node = idom[node]
        chain.add(node)
    return chain


class TestDominators:
    @given(digraphs())
    @settings(max_examples=200, deadline=None)
    def test_idom_chain_is_exact_dominator_set(self, succs):
        cfg = make_cfg(succs)
        idom = compute_dominators(cfg, 0)
        for node in idom:
            assert idom_chain(idom, node) == brute_force_dominators(
                cfg, 0, node)

    @given(digraphs())
    @settings(max_examples=100, deadline=None)
    def test_dominates_agrees_with_brute_force(self, succs):
        cfg = make_cfg(succs)
        idom = compute_dominators(cfg, 0)
        for node in idom:
            truth = brute_force_dominators(cfg, 0, node)
            for candidate in idom:
                assert dominates(idom, candidate, node) \
                    == (candidate in truth)

    @given(digraphs())
    @settings(max_examples=100, deadline=None)
    def test_only_reachable_nodes_analysed(self, succs):
        cfg = make_cfg(succs)
        idom = compute_dominators(cfg, 0)
        assert set(idom) == cfg.reachable_from(0)
        assert idom[0] == 0


class TestNaturalLoops:
    @given(digraphs())
    @settings(max_examples=200, deadline=None)
    def test_loop_discovery_is_idempotent(self, succs):
        cfg = make_cfg(succs)
        first = find_natural_loops(cfg, 0)
        second = find_natural_loops(cfg, 0)
        assert [(l.header, sorted(l.body), sorted(l.latches))
                for l in first] \
            == [(l.header, sorted(l.body), sorted(l.latches))
                for l in second]

    @given(digraphs())
    @settings(max_examples=200, deadline=None)
    def test_headers_dominate_their_latches(self, succs):
        cfg = make_cfg(succs)
        idom = compute_dominators(cfg, 0)
        for loop in find_natural_loops(cfg, 0):
            assert loop.header in loop.body
            for latch in loop.latches:
                assert latch in loop.body
                assert dominates(idom, loop.header, latch)
                assert loop.header in cfg.blocks[latch].succs

    @given(digraphs())
    @settings(max_examples=100, deadline=None)
    def test_bodies_reach_their_header(self, succs):
        # every body node lies on some path latch -> ... -> header that
        # avoids leaving the body (the defining natural-loop property,
        # checked as: body nodes can reach the header within the body)
        cfg = make_cfg(succs)
        for loop in find_natural_loops(cfg, 0):
            for node in loop.body:
                seen = {node}
                stack = [node]
                reached = node == loop.header
                while stack and not reached:
                    current = stack.pop()
                    for succ in cfg.blocks[current].succs:
                        if succ == loop.header:
                            reached = True
                            break
                        if succ in loop.body and succ not in seen:
                            seen.add(succ)
                            stack.append(succ)
                assert reached
