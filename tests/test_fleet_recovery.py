"""Kill-and-restart differential for the sharded fleet service.

The durability contract under test: hard-stop the service at an
arbitrary point in the session stream, restart it over the same
evidence store, and the resumed run must end with verdicts (and
per-device evidence-chain heads) byte-identical to an uninterrupted
reference run — zero verdict loss, zero verdict invention. The crash
is driven at randomized points in the delivery schedule, including
through an injected ``os.fsync`` fault that leaves a torn record on
disk mid-append.

Determinism scaffolding: nonces are device-scoped, so a restarted
service re-derives exactly the challenge an interrupted device was
answering, and every delivery (including each behavior's damage) is
precomputed per ``(device, attempt)`` so both runs replay identical
bytes.
"""

import os
import random
import struct
import zlib

import pytest

from repro.cfa.fleet import (
    ChainFactory,
    DeviceProfile,
    DeviceSpec,
    FleetSimulator,
    ShardedFleetService,
    audit_key,
    device_key,
    verify_evidence_trail,
)

SEED = b"fleet-vrf"
SHARDS = 2
IDLE = 5.0


@pytest.fixture(scope="module")
def factory():
    return ChainFactory(watermark=256)


@pytest.fixture(scope="module")
def specs():
    out = []
    behaviors = ("honest", "duplicate", "reorder", "stall",
                 "tamper", "attack")
    for index in range(12):
        behavior = behaviors[index % len(behaviors)]
        workload = "vulnerable" if behavior == "attack" else "fibcall"
        out.append(DeviceSpec(f"prv-{index:02d}",
                              DeviceProfile(workload), behavior))
    return out


def transform(spec: DeviceSpec, chunks, attempt: int):
    """The spec's transport behavior, deterministic per (device,
    attempt) so reference and crash runs damage identical bytes."""
    if spec.behavior == "stall" and attempt > 1:
        return list(chunks)  # a stalled device answers its retry in full
    helper = FleetSimulator(
        [spec], seed=zlib.crc32(f"{spec.device_id}:{attempt}".encode()))
    return helper._deliveries(spec, list(chunks))


class Driver:
    """Deterministic re-runnable traffic against one (possibly
    restarted) sharded service."""

    def __init__(self, specs, factory, store_dir, resume=False,
                 fsync_fault_at=None):
        self.specs = {s.device_id: s for s in specs}
        self.factory = factory
        self.service = ShardedFleetService(
            shards=SHARDS, store_dir=store_dir, idle_timeout=IDLE,
            resume=resume)
        if fsync_fault_at is not None:
            self._arm_fsync_fault(fsync_fault_at)
        self.attempts = {s.device_id: 1 for s in specs}
        self.now = 0.0

    def _arm_fsync_fault(self, record_index):
        """Fault the fsync of append number ``record_index + 1``
        (fleet-wide, counted across shards). The header fsyncs already
        happened during construction, so the injected function only
        ever sees record appends."""
        state = {"n": 0}

        def flaky(fd):
            state["n"] += 1
            if state["n"] == record_index + 1:
                raise OSError("injected fsync fault")
            os.fsync(fd)

        for store in self.service.stores:
            store._fsync = flaky

    def open_all(self):
        """Open a session for every device not already settled; returns
        the per-device delivery schedule (attempt 1)."""
        deliveries = {}
        for device_id, spec in self.specs.items():
            if device_id in self.service.verdicts:
                continue  # settled pre-crash; recovered, not re-run
            challenge = self.service.open_session(
                device_id, spec.profile, device_key(device_id), self.now)
            chunks = self.factory.chain(spec, challenge.nonce)
            deliveries[device_id] = transform(spec, chunks, attempt=1)
        return deliveries

    def schedule(self, deliveries, rng_seed=11):
        """A fixed random interleave across devices that preserves each
        device's own delivery order (the transport reorders between
        devices, not within a session)."""
        rng = random.Random(rng_seed)
        next_index = {d: 0 for d in deliveries}
        live = sorted(d for d, chunks in deliveries.items() if chunks)
        order = []
        while live:
            device = live[rng.randrange(len(live))]
            order.append((device, next_index[device]))
            next_index[device] += 1
            if next_index[device] == len(deliveries[device]):
                live.remove(device)
        return order

    def submit(self, deliveries, order):
        for device_id, index in order:
            self.service.submit(device_id, deliveries[device_id][index],
                                self.now)
            self.now += 0.001

    def settle(self):
        """Retry rounds then expiry, exactly like the simulator."""
        for _ in range(self.service.manager.max_attempts):
            self.now += IDLE + 1.0
            for device_id, challenge in self.service.tick(self.now):
                spec = self.specs[device_id]
                self.attempts[device_id] += 1
                chunks = transform(
                    spec, self.factory.chain(spec, challenge.nonce),
                    self.attempts[device_id])
                for chunk in chunks:
                    self.service.submit(device_id, chunk, self.now)
                    self.now += 0.001
        self.service.drain()

    def finish(self):
        self.service.close()
        return dict(self.service.verdicts), self.service.evidence_heads()


@pytest.fixture(scope="module")
def reference(specs, factory, tmp_path_factory):
    driver = Driver(specs, factory,
                    tmp_path_factory.mktemp("reference"))
    deliveries = driver.open_all()
    driver.submit(deliveries, driver.schedule(deliveries))
    driver.settle()
    verdicts, heads = driver.finish()
    assert set(verdicts) == {s.device_id for s in specs}
    return verdicts, heads


# crash after the k-th delivery, at points spread over the stream
CRASH_POINTS = (0, 1, 13, 27, -1)


@pytest.mark.parametrize("crash_point", CRASH_POINTS)
def test_kill_and_restart_matches_reference(specs, factory, tmp_path,
                                            reference, crash_point):
    verdicts_ref, heads_ref = reference
    store_dir = tmp_path / "store"
    # phase 1: run until the crash point, then hard-stop (no close)
    driver = Driver(specs, factory, store_dir)
    deliveries = driver.open_all()
    order = driver.schedule(deliveries)
    cut = crash_point if crash_point >= 0 else len(order) + crash_point
    driver.submit(deliveries, order[:cut])
    released = dict(driver.service.verdicts)
    del driver  # the crash: no drain, no close, no flush

    # phase 2: restart over the same store
    resumed = Driver(specs, factory, store_dir, resume=True)
    # zero verdict loss, zero verdict invention
    assert dict(resumed.service.verdicts) == released
    assert resumed.service.recovered_verdicts == len(released)
    # interrupted devices re-derive their pre-crash challenge, so the
    # precomputed deliveries replay verbatim
    redeliveries = resumed.open_all()
    assert set(redeliveries) == set(deliveries) - set(released)
    for device_id, chunks in redeliveries.items():
        assert chunks == deliveries[device_id]
    resumed.submit(redeliveries, resumed.schedule(redeliveries))
    resumed.settle()
    verdicts, heads = resumed.finish()

    assert verdicts == verdicts_ref
    assert heads == heads_ref
    for store in resumed.service.stores:
        verify_evidence_trail(store.path, audit_key(SEED))


def test_mid_fsync_fault_leaves_recoverable_store(specs, factory,
                                                  tmp_path, reference):
    """An fsync fault at a randomized record withholds exactly that
    verdict; with a torn half-frame left on disk (what the interrupted
    write looks like to the next process), restart truncates the tail
    and converges on the reference verdicts anyway."""
    verdicts_ref, heads_ref = reference
    store_dir = tmp_path / "store"
    fault_at = random.Random(5).randrange(4, 9)
    driver = Driver(specs, factory, store_dir, fsync_fault_at=fault_at)
    deliveries = driver.open_all()
    order = driver.schedule(deliveries)
    with pytest.raises(OSError, match="injected fsync fault"):
        driver.submit(deliveries, order)
    released = dict(driver.service.verdicts)
    assert len(released) == fault_at  # the torn verdict was withheld
    del driver

    # the crashed process died mid-write: one partial frame on disk
    # (a frame header promising 500 B with only 37 present)
    with open(store_dir / "evidence-00.log", "ab") as fh:
        fh.write(struct.pack("<I", 500) + b"\x5a" * 37)

    resumed = Driver(specs, factory, store_dir, resume=True)
    assert any(s is not None and s.truncated_tail
               for s in resumed.service.stores)
    assert dict(resumed.service.verdicts) == released
    redeliveries = resumed.open_all()
    resumed.submit(redeliveries, resumed.schedule(redeliveries))
    resumed.settle()
    verdicts, heads = resumed.finish()
    assert verdicts == verdicts_ref
    assert heads == heads_ref


def test_double_crash_still_converges(specs, factory, tmp_path,
                                      reference):
    """Two successive crashes: recovery composes."""
    verdicts_ref, heads_ref = reference
    store_dir = tmp_path / "store"
    driver = Driver(specs, factory, store_dir)
    deliveries = driver.open_all()
    order = driver.schedule(deliveries)
    driver.submit(deliveries, order[:9])
    del driver

    second = Driver(specs, factory, store_dir, resume=True)
    redeliveries = second.open_all()
    second.submit(redeliveries, second.schedule(redeliveries)[:7])
    del second

    third = Driver(specs, factory, store_dir, resume=True)
    final = third.open_all()
    third.submit(final, third.schedule(final))
    third.settle()
    verdicts, heads = third.finish()
    assert verdicts == verdicts_ref
    assert heads == heads_ref


def test_resume_required_over_populated_store(specs, factory, tmp_path):
    driver = Driver(specs, factory, tmp_path / "store")
    deliveries = driver.open_all()
    driver.submit(deliveries, driver.schedule(deliveries))
    driver.service.close()
    with pytest.raises(ValueError, match="resume=True"):
        ShardedFleetService(shards=SHARDS, store_dir=tmp_path / "store")
