"""Unit tests: MTB and DWT models (the paper's tracing substrate)."""

import pytest

from repro.asm.assembler import assemble_and_link
from repro.machine.cpu import RetireEvent
from repro.machine.mcu import MCU
from repro.machine.memmap import MTB_SRAM_BASE
from repro.machine.memory import Memory
from repro.isa.instructions import make_instr
from repro.trace.dwt import COMPARATOR_SLOTS, DWT, RangeComparator
from repro.trace.mtb import PACKET_BYTES, MTB


def _event(src, dst, sequential=False):
    return RetireEvent(src, dst, sequential, make_instr("nop"))


def make_mtb(**kw):
    return MTB(Memory(), **kw)


class TestMTB:
    def test_disabled_records_nothing(self):
        mtb = make_mtb()
        mtb.on_retire(_event(0x100, 0x200))
        assert mtb.total_packets == 0

    def test_records_non_sequential_only(self):
        mtb = make_mtb(activation_latency=0)
        mtb.start()
        mtb.on_retire(_event(0x100, 0x102, sequential=True))
        mtb.on_retire(_event(0x102, 0x200, sequential=False))
        assert mtb.total_packets == 1
        packets = mtb.drain()
        assert (packets[0].src, packets[0].dst) == (0x102, 0x200)

    def test_packets_hit_trace_sram(self):
        mtb = make_mtb(activation_latency=0)
        mtb.start()
        mtb.on_retire(_event(0xAAAA, 0xBBBB))
        assert mtb.memory.peek(MTB_SRAM_BASE, 4) == 0xAAAA
        assert mtb.memory.peek(MTB_SRAM_BASE + 4, 4) == 0xBBBB

    def test_activation_latency_drops_first_retire(self):
        mtb = make_mtb(activation_latency=1)
        mtb.start()
        mtb.on_retire(_event(0x100, 0x200))  # lost in the warmup window
        mtb.on_retire(_event(0x200, 0x300))
        packets = mtb.drain()
        assert len(packets) == 1 and packets[0].src == 0x200

    def test_restart_while_enabled_keeps_warmup_consumed(self):
        mtb = make_mtb(activation_latency=1)
        mtb.start()
        mtb.on_retire(_event(0x0, 0x4, sequential=True))  # consumes warmup
        mtb.start()  # already enabled: no new warmup
        mtb.on_retire(_event(0x4, 0x100))
        assert mtb.total_packets == 1

    def test_stop_then_start_rearms_warmup(self):
        mtb = make_mtb(activation_latency=1)
        mtb.start()
        mtb.on_retire(_event(0x0, 0x4, sequential=True))
        mtb.stop()
        mtb.start()
        mtb.on_retire(_event(0x4, 0x100))  # warmup again: dropped
        assert mtb.total_packets == 0

    def test_wraparound_overwrites_oldest(self):
        mtb = make_mtb(buffer_size=2 * PACKET_BYTES, activation_latency=0)
        mtb.start()
        for i in range(3):
            mtb.on_retire(_event(i, 100 + i))
        assert mtb.wrapped
        assert mtb.total_packets == 3

    def test_watermark_fires_handler(self):
        fired = []
        mtb = make_mtb(buffer_size=64, activation_latency=0)
        mtb.configure(watermark=2 * PACKET_BYTES,
                      watermark_handler=lambda m: fired.append(m.position))
        mtb.start()
        mtb.on_retire(_event(0, 1))
        assert not fired
        mtb.on_retire(_event(2, 3))
        assert fired == [2 * PACKET_BYTES]

    def test_drain_resets_position(self):
        mtb = make_mtb(activation_latency=0)
        mtb.start()
        mtb.on_retire(_event(1, 2))
        assert mtb.bytes_used == PACKET_BYTES
        packets = mtb.drain()
        assert len(packets) == 1
        assert mtb.bytes_used == 0
        assert mtb.drain() == []

    def test_buffer_size_validation(self):
        with pytest.raises(ValueError):
            make_mtb(buffer_size=10)  # not a packet multiple
        with pytest.raises(ValueError):
            make_mtb(buffer_size=1 << 20)  # exceeds trace SRAM


class TestDWT:
    def test_start_stop_ranges(self):
        mtb = make_mtb(activation_latency=0)
        dwt = DWT(mtb)
        dwt.configure_range("start", 0x1000, 0x2000)
        dwt.configure_range("stop", 0x0000, 0x1000)
        dwt.evaluate(0x1500)
        assert mtb.enabled
        dwt.evaluate(0x0500)
        assert not mtb.enabled

    def test_outside_ranges_is_neutral(self):
        mtb = make_mtb(activation_latency=0)
        dwt = DWT(mtb)
        dwt.configure_range("start", 0x1000, 0x2000)
        dwt.evaluate(0x1000)
        dwt.evaluate(0x9000)  # no comparator: state unchanged
        assert mtb.enabled

    def test_range_bounds_inclusive_exclusive(self):
        comp = RangeComparator("start", 0x100, 0x200)
        assert comp.matches(0x100)
        assert comp.matches(0x1FE)
        assert not comp.matches(0x200)

    def test_comparator_budget(self):
        dwt = DWT(make_mtb())
        dwt.configure_range("start", 0, 10)
        dwt.configure_range("stop", 10, 20)  # 4 slots used
        with pytest.raises(ValueError):
            dwt.configure_range("start", 20, 30)
        assert COMPARATOR_SLOTS == 4

    def test_bad_action(self):
        with pytest.raises(ValueError):
            DWT(make_mtb()).configure_range("pause", 0, 1)

    def test_clear(self):
        dwt = DWT(make_mtb())
        dwt.configure_range("start", 0, 10)
        dwt.clear()
        dwt.configure_range("start", 0, 10)
        dwt.configure_range("stop", 10, 20)


class TestActivationDiscipline:
    """Paper section IV-B: MTBDR->MTBAR transitions are not recorded;
    MTBAR->MTBDR transitions are."""

    def _machine(self):
        # text at 0x200000 (MTBDR), mtbar at 0x300000
        source = """
.entry main
main:
    b stub              ; MTBDR -> MTBAR : must NOT be recorded
back:
    bkpt
.mtbar
stub:
    nop
    b back              ; MTBAR -> MTBDR : must be recorded
"""
        image = assemble_and_link(source)
        mcu = MCU(image)
        mtb = MTB(mcu.memory, activation_latency=1)
        dwt = DWT(mtb)
        lo, hi = image.section_ranges["mtbar"]
        dwt.configure_range("start", lo, hi)
        tlo, thi = image.section_ranges["text"]
        dwt.configure_range("stop", tlo, thi)
        mcu.cpu.pre_hooks.append(dwt.evaluate)
        mcu.cpu.retire_hooks.append(mtb.on_retire)
        return image, mcu, mtb

    def test_entry_suppressed_exit_recorded(self):
        image, mcu, mtb = self._machine()
        mcu.run()
        packets = mtb.drain()
        assert len(packets) == 1
        stub_branch = image.addr_of("stub") + 2  # after the nop
        assert packets[0].src == stub_branch
        assert packets[0].dst == image.addr_of("back")

    def test_without_nop_padding_first_branch_is_lost(self):
        source = """
.entry main
main:
    b stub
back:
    bkpt
.mtbar
stub:
    b back              ; no nop: consumed by the activation window
"""
        image = assemble_and_link(source)
        mcu = MCU(image)
        mtb = MTB(mcu.memory, activation_latency=1)
        dwt = DWT(mtb)
        lo, hi = image.section_ranges["mtbar"]
        dwt.configure_range("start", lo, hi)
        tlo, thi = image.section_ranges["text"]
        dwt.configure_range("stop", tlo, thi)
        mcu.cpu.pre_hooks.append(dwt.evaluate)
        mcu.cpu.retire_hooks.append(mtb.on_retire)
        mcu.run()
        assert mtb.total_packets == 0  # the paper's reason for NOPs
