"""Unit tests: CFLog records, wire sizes, reports."""

import pytest

from repro.cfa.cflog import AddressRecord, BranchRecord, CFLog, LoopRecord
from repro.cfa.report import AttestationResult, Report
from repro.tz.keystore import KeyStore


class TestRecords:
    def test_wire_sizes(self):
        assert BranchRecord(1, 2).size_bytes == 8  # MTB packet
        assert AddressRecord(1, 2).size_bytes == 4  # TRACES entry
        assert LoopRecord(1, 2).size_bytes == 8
        assert LoopRecord(1, 2, size_bytes=4).size_bytes == 4

    def test_pack_distinguishes_types(self):
        assert BranchRecord(1, 2).pack() != AddressRecord(1, 2).pack()
        assert AddressRecord(1, 2).pack() != LoopRecord(1, 2).pack()

    def test_pack_sensitive_to_fields(self):
        assert BranchRecord(1, 2).pack() != BranchRecord(1, 3).pack()
        assert BranchRecord(1, 2).pack() != BranchRecord(2, 2).pack()


class TestCFLog:
    def test_size_accumulates(self):
        log = CFLog([BranchRecord(1, 2), AddressRecord(3, 4)])
        assert log.size_bytes == 12
        log.append(LoopRecord(5, 6))
        assert log.size_bytes == 20
        assert len(log) == 3

    def test_iteration_and_indexing(self):
        records = [BranchRecord(i, i + 1) for i in range(3)]
        log = CFLog(records)
        assert list(log) == records
        assert log[1] == records[1]

    def test_pack_order_sensitive(self):
        a = CFLog([BranchRecord(1, 2), BranchRecord(3, 4)])
        b = CFLog([BranchRecord(3, 4), BranchRecord(1, 2)])
        assert a.pack() != b.pack()

    def test_str(self):
        assert "2 records" in str(CFLog([BranchRecord(1, 2),
                                         BranchRecord(3, 4)]))


class TestReport:
    def _report(self, **kw):
        defaults = dict(
            device_id=b"dev", method="rap-track", challenge=b"ch",
            h_mem=b"h" * 32, seq=0, final=True,
            cflog=CFLog([BranchRecord(1, 2)]),
        )
        defaults.update(kw)
        return Report(**defaults)

    def test_sign_verify_roundtrip(self):
        key = KeyStore.provision().attestation_key
        report = self._report().sign(key)
        assert report.verify(key)

    @pytest.mark.parametrize("field,value", [
        ("challenge", b"other"),
        ("h_mem", b"x" * 32),
        ("seq", 1),
        ("final", False),
        ("method", "traces"),
        ("device_id", b"dev2"),
    ])
    def test_any_field_change_breaks_mac(self, field, value):
        key = KeyStore.provision().attestation_key
        report = self._report().sign(key)
        setattr(report, field, value)
        assert not report.verify(key)

    def test_log_change_breaks_mac(self):
        key = KeyStore.provision().attestation_key
        report = self._report().sign(key)
        report.cflog.append(BranchRecord(9, 9))
        assert not report.verify(key)


class TestAttestationResult:
    def _chain(self, key, count=3):
        reports = []
        for seq in range(count):
            reports.append(Report(
                device_id=b"d", method="m", challenge=b"c", h_mem=b"h",
                seq=seq, final=seq == count - 1,
                cflog=CFLog([BranchRecord(seq, seq + 1)]),
            ).sign(key))
        return AttestationResult(reports=reports)

    def test_chain_verifies(self):
        key = KeyStore.provision().attestation_key
        assert self._chain(key).verify_chain(key)

    def test_merged_cflog_order(self):
        key = KeyStore.provision().attestation_key
        result = self._chain(key)
        assert [r.key for r in result.cflog] == [0, 1, 2]
        assert result.partial_report_count == 2

    def test_empty_chain_fails(self):
        key = KeyStore.provision().attestation_key
        assert not AttestationResult(reports=[]).verify_chain(key)

    def test_gap_in_sequence_fails(self):
        key = KeyStore.provision().attestation_key
        result = self._chain(key)
        del result.reports[1]
        assert not result.verify_chain(key)

    def test_nonfinal_tail_fails(self):
        key = KeyStore.provision().attestation_key
        result = self._chain(key)
        result.reports[-1].final = False
        result.reports[-1].sign(key)
        assert not result.verify_chain(key)

    def test_mixed_challenge_fails(self):
        key = KeyStore.provision().attestation_key
        result = self._chain(key)
        result.reports[1].challenge = b"other"
        result.reports[1].sign(key)
        assert not result.verify_chain(key)
