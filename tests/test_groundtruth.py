"""The ground-truth execution tracer (the replay oracle's oracle)."""

from __future__ import annotations

import pytest

from repro.asm.assembler import assemble_and_link
from repro.isa.instructions import make_instr
from repro.machine.cpu import RetireEvent
from repro.machine.mcu import MCU
from repro.trace.groundtruth import GroundTruthTracer


def _event(src, dst, sequential=False):
    return RetireEvent(src, dst, sequential, make_instr("nop"))


class TestTracerUnit:
    def test_records_only_transfers_by_default(self):
        tracer = GroundTruthTracer()
        tracer.on_retire(_event(0x100, 0x102, sequential=True))
        tracer.on_retire(_event(0x102, 0x200, sequential=False))
        assert tracer.transfers == [(0x102, 0x200)]
        assert tracer.pcs == []

    def test_record_all_keeps_every_pc(self):
        tracer = GroundTruthTracer(record_all=True)
        tracer.on_retire(_event(0x100, 0x102, sequential=True))
        tracer.on_retire(_event(0x102, 0x200, sequential=False))
        assert tracer.pcs == [0x100, 0x102]
        assert tracer.executed_addresses() == [0x100, 0x102]

    def test_executed_addresses_requires_record_all(self):
        tracer = GroundTruthTracer()
        with pytest.raises(ValueError):
            tracer.executed_addresses()

    def test_executed_addresses_returns_a_copy(self):
        tracer = GroundTruthTracer(record_all=True)
        tracer.on_retire(_event(0x100, 0x102, sequential=True))
        snapshot = tracer.executed_addresses()
        snapshot.append(0xBAD)
        assert tracer.pcs == [0x100]


class TestTracerOnMachine:
    SOURCE = """
    .entry main
main:
    mov   r0, #3
loop:
    sub   r0, r0, #1
    cmp   r0, #0
    bne   loop
    bkpt
"""

    @pytest.fixture()
    def traced(self):
        image = assemble_and_link(self.SOURCE)
        mcu = MCU(image)
        tracer = GroundTruthTracer(record_all=True)
        mcu.cpu.retire_hooks.append(tracer.on_retire)
        run = mcu.run()
        return image, tracer, run

    def test_one_pc_per_retired_instruction(self, traced):
        image, tracer, run = traced
        assert len(tracer.pcs) == run.instructions
        assert tracer.pcs[0] == image.entry

    def test_loop_latch_transfers_captured(self, traced):
        image, tracer, run = traced
        loop_addr = image.addr_of("loop")
        taken = [t for t in tracer.transfers if t[1] == loop_addr]
        assert len(taken) == 2  # r0: 3 -> 2 -> 1, then falls through
        assert all(src > dst for src, dst in taken)  # backward latch

    def test_transfers_are_a_subsequence_of_pcs(self, traced):
        _, tracer, _ = traced
        sources = [src for src, _ in tracer.transfers]
        assert set(sources) <= set(tracer.pcs)
