"""End-to-end tests: value-set branch devirtualization.

The differential property the optimisation must preserve: with
``enable_dataflow`` on and off, the same workload attests losslessly,
the verifier reaches the same verdict against ground truth, and the
dataflow build trampolines strictly fewer sites on the workloads that
carry compiler-idiom indirect calls.
"""

import pytest

from conftest import assert_lossless, rap_setup, traces_setup
from repro.asm import assemble
from repro.core.classify import BranchClass, classify_module
from repro.core.pipeline import RapTrackConfig
from repro.workloads import WORKLOADS, load_workload

#: workloads whose register-materialized calls the value analysis
#: provably devirtualizes (strict trampoline reduction required)
DEVIRT_WORKLOADS = ["temperature", "gps", "syringe"]


def trampoline_count(bound):
    return len(bound.indirect_at) + len(bound.cond_at)


class TestDifferential:
    @pytest.mark.parametrize("name", DEVIRT_WORKLOADS)
    def test_verdicts_identical_and_sites_reduced(self, name, keystore):
        outcomes = {}
        counts = {}
        for enabled in (True, False):
            setup = rap_setup(load_workload(name),
                              RapTrackConfig(enable_dataflow=enabled),
                              keystore=keystore)
            image, bound, _mcu, engine, verifier, tracer = setup
            _result, outcome = assert_lossless(
                image, engine, verifier, tracer)
            outcomes[enabled] = outcome
            counts[enabled] = trampoline_count(bound)
        # both builds verify clean against their own ground truth and
        # the verdicts agree byte for byte
        assert outcomes[True].ok and outcomes[False].ok
        assert outcomes[True].violations == outcomes[False].violations
        # ... while the dataflow build trampolines strictly fewer sites
        assert counts[True] < counts[False], counts

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_devirt_never_adds_trampolines(self, name):
        module = load_workload(name).module()
        with_df = classify_module(module)
        without = classify_module(load_workload(name).module(),
                                  enable_dataflow=False)
        assert len(with_df.tracked_sites()) <= len(without.tracked_sites())
        # every devirtualized site carries a provable target
        for site in with_df.devirtualized_sites():
            assert site.devirt_target in with_df.flat.label_index


class TestSilentCycleInteraction:
    REVERT_SRC = """
.entry main
main:
    mov r4, #3
loop:
    sub r4, r4, #1
    adr r2, loop
    cmp r4, #0
    beq out
    bx r2
out:
    bkpt
"""

    def test_devirt_jump_closing_silent_cycle_reverts(self):
        # the proven bx target would close a cycle with no logged edge;
        # the classifier must give the devirtualization back
        c = classify_module(assemble(self.REVERT_SRC))
        (bx_idx,) = [idx for idx, s in c.sites.items()
                     if c.flat.instrs[idx].mnemonic == "bx"]
        assert c.sites[bx_idx].cls is BranchClass.INDIRECT_BX
        assert c.devirtualized_sites() == []

    def test_reverted_program_attests_losslessly(self, keystore):
        image, _bound, _mcu, engine, verifier, tracer = rap_setup(
            self.REVERT_SRC, keystore=keystore)
        assert_lossless(image, engine, verifier, tracer)


class TestReturnBxRegression:
    # regression: a bx-lr return inside a non-leaf extent is trampolined
    # as a *return* (shadow-stack checked), not as a computed jump —
    # the jump policy would reject the legal return into main's body
    SRC = """
.entry main
func0:
    add r0, r0, #0
    bx lr
func1:
    push {r4, lr}
    adr r3, func0
    blx r3
    pop {r4, pc}
main:
    push {r4, r5, r6, r7, lr}
    adr r3, func0
    blx r3
    bkpt
"""

    def test_rap_track_accepts_non_leaf_bx_return(self, keystore):
        image, bound, _mcu, engine, verifier, tracer = rap_setup(
            self.SRC, RapTrackConfig(enable_dataflow=False),
            keystore=keystore)
        kinds = {site.kind for site in bound.indirect_at.values()}
        assert "return_bx" in kinds
        assert_lossless(image, engine, verifier, tracer)

    def test_traces_accepts_non_leaf_bx_return(self, keystore):
        image, _bound, _mcu, engine, verifier, tracer = traces_setup(
            self.SRC, keystore=keystore)
        assert_lossless(image, engine, verifier, tracer)
