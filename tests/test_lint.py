"""Tests: ``repro lint`` hygiene checks, report plumbing, and the CLI
gate (exit status + machine-readable JSON)."""

import json

import pytest

from repro.asm import assemble
from repro.cli import main
from repro.core.lint import (
    LINT_CONFIGS,
    LintReport,
    lint_all,
    lint_hygiene,
    lint_workload,
)


def hygiene(source):
    report = lint_hygiene(assemble(".entry main\n" + source), "t")
    return {f.check for f in report.findings}, report


class TestHygieneChecks:
    def test_clean_program(self):
        checks, report = hygiene("""
main:
    mov r0, #1
    add r0, r0, #1
    bkpt
""")
        assert checks == set() and report.ok

    def test_unreachable_block(self):
        checks, report = hygiene("""
main:
    b skip
orphan:
    mov r1, #1
skip:
    bkpt
""")
        assert checks == {"unreachable-block"}
        assert any("orphan" in f.detail for f in report.findings)

    def test_use_before_def(self):
        checks, _ = hygiene("""
main:
    add r0, r4, #1
    bkpt
""")
        assert "use-before-def" in checks

    def test_prologue_push_not_flagged(self):
        # saving callee-saved registers is an idiom, not a data read
        checks, _ = hygiene("""
main:
    push {r4, r5, lr}
    mov r4, #1
    pop {r4, r5, lr}
    bkpt
""")
        assert "use-before-def" not in checks

    def test_dead_def(self):
        checks, _ = hygiene("""
main:
    mov r4, #5
    mov r4, #6
    bkpt
""")
        assert "dead-def" in checks

    def test_live_def_not_flagged(self):
        checks, _ = hygiene("""
main:
    mov r4, #5
    add r0, r4, #1
    bkpt
""")
        assert "dead-def" not in checks

    def test_fall_through_end(self):
        checks, _ = hygiene("""
main:
    mov r0, #1
""")
        assert "fall-through-end" in checks

    def test_trailing_unconditional_branch_ok(self):
        checks, _ = hygiene("""
main:
    mov r0, #1
    b main
""")
        assert "fall-through-end" not in checks


class TestLintSuite:
    def test_all_workloads_clean(self):
        report = lint_all()
        assert report.ok, [str(f) for f in report.findings]
        assert report.workloads == 15
        assert report.configs_validated == 15 * len(LINT_CONFIGS)

    def test_single_workload(self):
        report = lint_workload("gps")
        assert report.ok
        assert report.workloads == 1
        assert report.configs_validated == len(LINT_CONFIGS)

    def test_json_round_trip(self):
        report = LintReport()
        report.flag("w@default", "stub-equivalence", "boom")
        payload = json.loads(json.dumps(report.to_json()))
        assert payload["ok"] is False
        assert payload["findings"] == [{
            "target": "w@default",
            "check": "stub-equivalence",
            "detail": "boom",
        }]


class TestLintCli:
    def test_single_workload_exit_zero(self, capsys):
        assert main(["lint", "temperature"]) == 0
        out = capsys.readouterr().out
        assert "lint: clean" in out

    def test_json_output(self, capsys):
        assert main(["lint", "temperature", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["workloads"] == 1
        assert payload["findings"] == []

    def test_findings_exit_nonzero(self, capsys, monkeypatch):
        import repro.core.lint as lint_mod

        def broken(names=None, configs=None):
            report = LintReport()
            report.workloads = 1
            report.flag("x@default", "verbatim-drift", "seeded")
            return report

        monkeypatch.setattr(lint_mod, "lint_all", broken)
        assert main(["lint", "--all"]) == 1
        out = capsys.readouterr().out
        assert "verbatim-drift" in out
