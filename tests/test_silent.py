"""Direct unit tests for the silent-cycle analysis."""

import pytest

from repro.asm import assemble
from repro.core.classify import BranchClass, classify_module
from repro.core.silent import _cyclic_sccs


def classify(source):
    return classify_module(assemble(".entry main\n" + source))


def classes(classification, cls):
    return [idx for idx, s in classification.sites.items() if s.cls is cls]


class TestTarjan:
    def test_no_cycles(self):
        graph = {0: {1}, 1: {2}, 2: set()}
        assert _cyclic_sccs(graph) == []

    def test_self_loop(self):
        graph = {0: {0}}
        assert _cyclic_sccs(graph) == [{0}]

    def test_two_node_cycle(self):
        graph = {0: {1}, 1: {0}}
        assert _cyclic_sccs(graph) == [{0, 1}]

    def test_mixed(self):
        graph = {0: {1}, 1: {2, 3}, 2: {1}, 3: set(), 4: {4}}
        components = _cyclic_sccs(graph)
        assert {1, 2} in components
        assert {4} in components
        assert len(components) == 2

    def test_nested_cycles_one_scc(self):
        graph = {0: {1}, 1: {2}, 2: {0, 1}}
        assert _cyclic_sccs(graph) == [{0, 1, 2}]

    def test_disjoint_cycles(self):
        graph = {0: {1}, 1: {0}, 2: {3}, 3: {2}, 4: set()}
        components = _cyclic_sccs(graph)
        assert {0, 1} in components and {2, 3} in components


class TestSilentBreaking:
    def test_pure_spin_loop_broken(self):
        c = classify("""
main:
    mov r0, #0
spin:
    add r0, r0, #1
    b spin
""")
        assert classes(c, BranchClass.UNCOND_LATCH)

    def test_logged_latch_loop_untouched(self):
        c = classify("""
main:
    mov r4, #0
    mov r5, #9
top:
    add r4, r4, #1
    cmp r4, r5
    blt top
    bkpt
""")
        assert not classes(c, BranchClass.UNCOND_LATCH)
        assert not classes(c, BranchClass.LOGGED_CALL)

    def test_loop_opt_header_edge_breaks_outer_silence(self):
        # outer loop's only content is a loop-opt inner loop: the svc at
        # the inner header logs every outer iteration -> no extra latch
        c = classify("""
main:
    mov r4, #0
    mov r6, #9
outer:
    lsr r5, r6, #1
inner:
    nop
    sub r5, r5, #1
    cmp r5, #0
    bgt inner
    add r4, r4, #1
    cmp r4, r6
    blt outer
    bkpt
""")
        assert classes(c, BranchClass.LOOP_OPT_LATCH)
        assert not classes(c, BranchClass.UNCOND_LATCH)

    def test_fixed_inner_does_not_break_outer_silence(self):
        # the fixed inner loop logs nothing, so an otherwise-silent
        # outer loop still needs its latch trampolined
        c = classify("""
main:
    mov r4, #0
outer:
    mov r5, #4
inner:
    nop
    sub r5, r5, #1
    cmp r5, #0
    bgt inner
    add r4, r4, #1
    b outer
""")
        assert classes(c, BranchClass.FIXED_LOOP_LATCH)
        assert classes(c, BranchClass.UNCOND_LATCH)

    def test_tracked_callee_return_breaks_silence(self):
        c = classify("""
main:
top:
    bl logger
    b top
logger:
    push {r4, lr}
    pop {r4, pc}
""")
        assert not classes(c, BranchClass.UNCOND_LATCH)
        assert not classes(c, BranchClass.LOGGED_CALL)

    def test_leaf_callee_keeps_cycle_silent(self):
        c = classify("""
main:
top:
    bl leaf
    b top
leaf:
    bx lr
""")
        assert classes(c, BranchClass.UNCOND_LATCH)

    def test_self_recursion_logged(self):
        c = classify("""
main:
    bl f
    bkpt
f:
    push {r4, lr}
    cmp r0, #0
    beq out
    sub r0, r0, #1
    bl f
out:
    pop {r4, pc}
""")
        logged = classes(c, BranchClass.LOGGED_CALL)
        assert len(logged) == 1
        # the logged site is the recursive call, not main's
        assert logged[0] > c.flat.index_of("f")

    def test_indirect_call_in_loop_breaks_silence(self):
        c = classify("""
main:
    adr r3, leaf
top:
    blx r3
    b top
leaf:
    bx lr
""")
        # the blx itself is always logged: no extra latch needed
        assert not classes(c, BranchClass.UNCOND_LATCH)

    def test_forward_exit_loop_not_broken_twice(self):
        c = classify("""
main:
    mov r0, #5
top:
    cmp r0, #0
    beq out
    sub r0, r0, #1
    b top
out:
    bkpt
""")
        assert classes(c, BranchClass.COND_FORWARD_EXIT)
        assert not classes(c, BranchClass.UNCOND_LATCH)

    def test_multi_exit_loop_gets_latch_not_exits(self):
        c = classify("""
main:
    mov r0, #5
    mov r1, #3
top:
    cmp r0, #0
    beq out
    cmp r1, #0
    beq out
    sub r0, r0, #1
    sub r1, r1, #1
    b top
out:
    bkpt
""")
        assert not classes(c, BranchClass.COND_FORWARD_EXIT)
        assert classes(c, BranchClass.UNCOND_LATCH)
        assert len(classes(c, BranchClass.COND_NONLOOP)) == 2
