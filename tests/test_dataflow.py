"""Unit + property tests: the worklist dataflow engine.

Covers the lattice algebra (hypothesis-checked join laws and the width
cap), fixpoint termination of the generic solver over random graphs,
divergence detection for non-monotone transfers, and the concrete
analyses (constant-memory folding, devirtualization certificates,
LR validity, reaching defs, liveness).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asm import assemble
from repro.core.cfg import build_cfg
from repro.core.dataflow import (
    Addr,
    Const,
    ConstMemory,
    FixpointDiverged,
    MAX_WIDTH,
    TOP,
    ValueSet,
    analyse_liveness,
    analyse_module,
    analyse_reaching_defs,
    def_use,
    lift_binary,
    reverse_graph,
    solve,
    state_join,
    vs,
    vs_addr,
    vs_const,
)
from repro.core.dataflow.analyses import ENTRY_DEF
from repro.core.flat import FlatProgram

# -- strategies -------------------------------------------------------------

values = st.one_of(
    st.integers(min_value=0, max_value=2**32 - 1).map(Const),
    st.tuples(st.sampled_from(["a", "b", "c"]),
              st.integers(min_value=-8, max_value=8))
      .map(lambda t: Addr(t[0], t[1])),
)

value_sets = st.one_of(
    st.just(TOP),
    st.frozensets(values, max_size=MAX_WIDTH + 2).map(
        lambda s: vs(*s)),
)


def analyse(source):
    flat = FlatProgram(assemble(".entry main\n" + source))
    return flat, analyse_module(flat, build_cfg(flat))


# -- lattice laws -----------------------------------------------------------

class TestValueSetLattice:
    @given(value_sets, value_sets)
    def test_join_upper_bound(self, a, b):
        j = a.join(b)
        assert a.leq(j) and b.leq(j)

    @given(value_sets, value_sets)
    def test_join_commutative(self, a, b):
        assert a.join(b) == b.join(a)

    @given(value_sets, value_sets, value_sets)
    def test_join_associative(self, a, b, c):
        # the width cap preserves associativity because collapse depends
        # only on the union's size, which is monotone in its inputs
        assert a.join(b).join(c) == a.join(b.join(c))

    @given(value_sets)
    def test_join_idempotent(self, a):
        assert a.join(a) == a

    @given(value_sets)
    def test_top_absorbs(self, a):
        assert a.join(TOP).is_top and TOP.join(a).is_top

    @given(value_sets, value_sets)
    def test_leq_antisymmetric(self, a, b):
        if a.leq(b) and b.leq(a):
            assert a == b

    def test_width_cap_collapses(self):
        wide = vs(*(Const(i) for i in range(MAX_WIDTH + 1)))
        assert wide.is_top
        half = vs(*(Const(i) for i in range(MAX_WIDTH // 2 + 1)))
        other = vs(*(Const(100 + i) for i in range(MAX_WIDTH // 2 + 1)))
        assert half.join(other).is_top

    def test_singleton_label(self):
        assert vs_addr("f").singleton_label() == "f"
        assert vs_addr("f", 4).singleton_label() is None
        assert vs_const(8).singleton_label() is None
        assert vs_addr("f").join(vs_addr("g")).singleton_label() is None

    @given(value_sets, value_sets)
    def test_lift_binary_top_poisons(self, a, b):
        add = lambda x, y: (Const(x.value + y.value)
                            if isinstance(x, Const) and isinstance(y, Const)
                            else None)
        out = lift_binary(add, a, b)
        if a.is_top or b.is_top:
            assert out.is_top

    def test_state_join_drops_disagreements_to_top(self):
        a = {0: vs_const(1), 1: vs_const(2)}
        b = {0: vs_const(1)}
        joined = state_join(a, b)
        assert joined == {0: vs_const(1)}  # r1 TOP on the b path


# -- generic solver ---------------------------------------------------------

graphs = st.integers(min_value=1, max_value=10).flatmap(
    lambda n: st.lists(
        st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
        max_size=3 * n,
    ).map(lambda edges: (n, edges))
)


class TestWorklistSolver:
    @settings(max_examples=60)
    @given(graphs)
    def test_fixpoint_terminates_and_holds(self, graph_spec):
        n, edges = graph_spec
        graph = {i: [] for i in range(n)}
        for u, v in edges:
            graph[u].append(v)
        transfer = lambda node, fact: fact | {node}
        join = lambda a, b: a | b
        sol = solve(graph, {0: frozenset()}, transfer, join)
        # the solution is a post-fixpoint of every reached edge
        for u in sol.in_facts:
            for v in graph.get(u, ()):
                assert transfer(u, sol.in_facts[u]) <= sol.in_facts[v]
        # facts exist exactly at nodes reachable from the root
        assert 0 in sol.in_facts

    def test_unreached_nodes_carry_no_fact(self):
        sol = solve({0: [1], 2: [0]}, {0: 0},
                    lambda n, f: f, max)
        assert 2 not in sol.in_facts

    def test_non_monotone_transfer_diverges(self):
        graph = {0: [1], 1: [0]}
        with pytest.raises(FixpointDiverged):
            solve(graph, {0: 0}, lambda n, f: f + 1, max,
                  max_passes=16)

    def test_reverse_graph(self):
        assert reverse_graph({0: [1, 2], 1: [2]}) == {
            0: [], 1: [0], 2: [0, 1]}


# -- concrete analyses ------------------------------------------------------

class TestConstMemory:
    def test_rodata_word_folding(self):
        module = assemble("""
.entry main
main:
    bkpt
.rodata
table:
    .word handler
    .word 42
""")
        memory = ConstMemory(module)
        assert memory.load_word("table", 0) == Addr("handler")
        assert memory.load_word("table", 4) == Const(42)
        assert memory.load_word("table", 8) is None
        assert memory.load_word("nowhere", 0) is None

    def test_mutable_data_not_folded(self):
        module = assemble("""
.entry main
main:
    bkpt
.data
cell:
    .word 7
""")
        assert ConstMemory(module).load_word("cell", 0) is None


class TestModuleFacts:
    def test_adr_blx_devirt_certificate(self):
        flat, facts = analyse("""
main:
    adr r3, f
    blx r3
    bkpt
f:  bx lr
""")
        blx = flat.index_of("f") - 2  # blx sits right before bkpt
        assert facts.devirt_target(blx) == "f"
        assert facts.target_set(blx) == vs_addr("f")

    def test_rodata_dispatch_devirt(self):
        flat, facts = analyse("""
main:
    ldr r2, =t
    ldr pc, [r2]
a:  bkpt
.rodata
t:  .word a
""")
        ldr_pc = flat.index_of("a") - 1
        assert facts.devirt_target(ldr_pc) == "a"

    def test_two_targets_no_certificate(self):
        flat, facts = analyse("""
main:
    cmp r0, #0
    beq alt
    adr r3, f
    b go
alt:
    adr r3, g
go:
    bx r3
f:  bkpt
g:  bkpt
""")
        bx = flat.index_of("f") - 1
        assert facts.devirt_target(bx) is None
        assert facts.target_set(bx) == vs(Addr("f"), Addr("g"))

    def test_call_clobbers_registers(self):
        # no ABI contract is assumed: a call invalidates every tracked
        # register, so a post-call bx is never devirtualized from a
        # pre-call materialization
        flat, facts = analyse("""
main:
    mov r0, #5
    mov r4, #9
    bl f
    bx r0
f:  bx lr
""")
        bx = flat.index_of("f") - 1
        assert facts.target_set(bx).is_top
        assert facts.state_at(bx) == {}

    def test_alu_folding_matches_cpu(self):
        flat, facts = analyse("""
main:
    mov r1, #6
    add r1, r1, #4
    lsl r1, r1, #2
    bkpt
""")
        bkpt = len(flat) - 1
        assert facts.state_at(bkpt)[1] == vs_const(40)

    def test_lr_validity(self):
        flat, facts = analyse("""
main:
    bl f
    bkpt
f:  add r0, r0, #1
    bx lr
g:  push {lr}
    bl f
    pop {lr}
    bx lr
""")
        leaf_bx = flat.index_of("g") - 1
        assert facts.lr_valid_at(leaf_bx)

    def test_iterations_recorded(self):
        _flat, facts = analyse("main:\n    bkpt\n")
        assert facts.iterations >= 1


class TestLintAnalyses:
    def test_reaching_defs_entry_sentinel(self):
        flat = FlatProgram(assemble("""
.entry main
main:
    add r0, r4, #1
    mov r4, #2
    add r1, r4, #1
    bkpt
"""))
        reach = analyse_reaching_defs(flat, build_cfg(flat))
        # a missing key means "untouched since entry"
        assert reach[0].get(4, frozenset({ENTRY_DEF})) == \
            frozenset({ENTRY_DEF})
        assert reach[2][4] == frozenset({1})  # def at index 1 reaches

    def test_liveness_redefinition_kills(self):
        flat = FlatProgram(assemble("""
.entry main
main:
    mov r4, #5
    mov r4, #6
    bkpt
"""))
        live_after = analyse_liveness(flat, build_cfg(flat))
        assert 4 not in live_after[0]  # first def dead: overwritten
        assert 4 in live_after[1]  # exit keeps every register live

    def test_def_use_shapes(self):
        flat = FlatProgram(assemble("""
.entry main
main:
    add r0, r1, r2
    ldr r3, [r4, #8]
    push {r5, lr}
    bkpt
"""))
        defs, uses = def_use(flat.instrs[0])
        assert defs == frozenset({0}) and uses == frozenset({1, 2})
        defs, uses = def_use(flat.instrs[1])
        assert 3 in defs and 4 in uses
