"""Unit tests for the fleet service's session protocol.

One module-scoped :class:`ChainFactory` attests the fibcall template
once; every test re-signs it against a fresh service's challenges, so
the suite exercises the whole session lifecycle — replay protection,
reorder windows, duplicates, equivocation, expiry/retry, overload —
without re-running the Prv each time.
"""

import pytest

from repro.cfa.fleet import (
    ChainFactory,
    DeviceProfile,
    DeviceSpec,
    FleetOverloadError,
    FleetService,
    device_key,
)
from repro.cfa.wire import decode_report, encode_report

FIBCALL = DeviceProfile("fibcall")


@pytest.fixture(scope="module")
def factory():
    return ChainFactory(watermark=256)


def open_with_chain(service, factory, device_id="prv-0", profile=FIBCALL,
                    behavior="honest", now=0.0):
    """Open a session and build the honest chain answering it."""
    challenge = service.open_session(
        device_id, profile, device_key(device_id), now)
    spec = DeviceSpec(device_id, profile, behavior)
    return factory.chain(spec, challenge.nonce)


class TestHonestLifecycle:
    def test_in_order_chain_accepted(self, factory):
        service = FleetService(workers=0)
        chunks = open_with_chain(service, factory)
        assert len(chunks) >= 3  # watermark=256 forces partials
        for chunk in chunks:
            service.submit("prv-0", chunk)
        metrics = service.close()
        verdict = service.verdicts["prv-0"]
        assert verdict.accepted and verdict.authenticated
        assert verdict.lossless and not verdict.violations
        assert verdict.reports == len(chunks)
        assert verdict.path_len > 0 and verdict.path_digest
        assert metrics.sessions_verified == 1
        assert metrics.reports_ingested == len(chunks)
        assert metrics.bytes_ingested == sum(len(c) for c in chunks)

    def test_byte_identical_duplicate_dropped(self, factory):
        service = FleetService(workers=0)
        chunks = open_with_chain(service, factory)
        service.submit("prv-0", chunks[0])
        service.submit("prv-0", chunks[0])  # retransmission
        for chunk in chunks[1:]:
            service.submit("prv-0", chunk)
        metrics = service.close()
        assert service.verdicts["prv-0"].accepted
        assert metrics.duplicates_dropped == 1

    def test_reorder_within_window_accepted(self, factory):
        service = FleetService(workers=0, reorder_window=4)
        chunks = open_with_chain(service, factory)
        swapped = list(chunks)
        swapped[1], swapped[2] = swapped[2], swapped[1]
        for chunk in swapped:
            service.submit("prv-0", chunk)
        service.close()
        assert service.verdicts["prv-0"].accepted

    def test_verdict_independent_of_arrival_order(self, factory):
        verdicts = []
        for order in ([0, 1, 2], [0, 2, 1]):
            service = FleetService(workers=0, reorder_window=4)
            chunks = open_with_chain(service, factory)
            head = [chunks[i] for i in order]
            for chunk in head + chunks[3:]:
                service.submit("prv-0", chunk)
            service.close()
            verdicts.append(service.verdicts["prv-0"])
        assert verdicts[0] == verdicts[1]


class TestProtocolRejections:
    def test_reorder_outside_window_rejected(self, factory):
        service = FleetService(workers=0, reorder_window=1)
        chunks = open_with_chain(service, factory)
        service.submit("prv-0", chunks[0])
        service.submit("prv-0", chunks[3])  # gap of 3 > window of 1
        service.close()
        verdict = service.verdicts["prv-0"]
        assert not verdict.accepted
        assert "reorder window" in verdict.reason

    def test_truncated_report_rejected(self, factory):
        service = FleetService(workers=0)
        chunks = open_with_chain(service, factory)
        service.submit("prv-0", chunks[0][:-5])
        service.close()
        verdict = service.verdicts["prv-0"]
        assert not verdict.accepted
        assert "malformed" in verdict.reason

    def test_tampered_mac_rejected(self, factory):
        service = FleetService(workers=0)
        chunks = open_with_chain(service, factory)
        report, _ = decode_report(chunks[-1])
        report.mac = bytes(32)
        for chunk in chunks[:-1]:
            service.submit("prv-0", chunk)
        service.submit("prv-0", encode_report(report))
        service.close()
        verdict = service.verdicts["prv-0"]
        assert not verdict.accepted
        assert "bad MAC" in verdict.reason

    def test_equivocating_duplicate_rejected(self, factory):
        service = FleetService(workers=0)
        chunks = open_with_chain(service, factory)
        service.submit("prv-0", chunks[0])
        conflicting = bytearray(chunks[0])
        conflicting[-1] ^= 0xFF
        service.submit("prv-0", bytes(conflicting))
        service.close()
        verdict = service.verdicts["prv-0"]
        assert not verdict.accepted
        assert "conflicting duplicate" in verdict.reason

    def test_report_past_final_rejected(self, factory):
        service = FleetService(workers=0, reorder_window=1000)
        chunks = open_with_chain(service, factory)
        service.submit("prv-0", chunks[0])
        service.submit("prv-0", chunks[-1])  # final, buffered out of order
        stray, _ = decode_report(chunks[1])
        stray.seq = len(chunks)  # claims traffic past the final
        service.submit("prv-0", encode_report(stray))
        service.close()
        verdict = service.verdicts["prv-0"]
        assert not verdict.accepted
        assert "past the final" in verdict.reason

    def test_report_after_settled_ignored(self, factory):
        service = FleetService(workers=0)
        chunks = open_with_chain(service, factory)
        for chunk in chunks:
            service.submit("prv-0", chunk)
        service.submit("prv-0", chunks[-1])  # session already settled
        metrics = service.close()
        assert service.verdicts["prv-0"].accepted
        assert metrics.reports_ignored == 1

    def test_wrong_device_id_rejected(self, factory):
        service = FleetService(workers=0)
        chunks_a = open_with_chain(service, factory, "prv-a")
        service.open_session("prv-b", FIBCALL, device_key("prv-b"))
        service.submit("prv-b", chunks_a[0])  # a's report on b's session
        service.close()
        verdict = service.verdicts["prv-b"]
        assert not verdict.accepted
        assert "device id" in verdict.reason

    def test_replayed_chain_rejected(self, factory):
        """A chain answering an old nonce dies at ingest."""
        service = FleetService(workers=0)
        stale = open_with_chain(service, factory)
        # Vrf re-challenges (e.g. after an outage); old chain arrives late
        now = service.manager.idle_timeout + 1.0
        rechallenged = service.tick(now)
        assert [d for d, _ in rechallenged] == ["prv-0"]
        service.submit("prv-0", stale[0], now)
        service.close()
        verdict = service.verdicts["prv-0"]
        assert not verdict.accepted
        assert "challenge" in verdict.reason

    def test_unknown_device_ignored(self, factory):
        service = FleetService(workers=0)
        chunks = open_with_chain(service, factory)
        service.submit("prv-ghost", chunks[0])
        metrics = service.close()
        assert metrics.reports_ignored == 1
        assert "prv-ghost" not in service.verdicts


class TestExpiryAndRetry:
    def test_stalled_session_rechallenged_then_accepted(self, factory):
        service = FleetService(workers=0, idle_timeout=10.0, max_attempts=2)
        chunks = open_with_chain(service, factory)
        for chunk in chunks[:-1]:  # withhold the final report
            service.submit("prv-0", chunk)
        rechallenged = service.tick(11.0)
        assert len(rechallenged) == 1
        device_id, challenge = rechallenged[0]
        fresh = factory.chain(DeviceSpec(device_id, FIBCALL),
                              challenge.nonce)
        for chunk in fresh:
            service.submit(device_id, chunk, 11.0)
        metrics = service.close()
        assert service.verdicts["prv-0"].accepted
        assert metrics.sessions_retried == 1

    def test_session_expires_after_last_attempt(self, factory):
        service = FleetService(workers=0, idle_timeout=10.0, max_attempts=2)
        open_with_chain(service, factory)
        assert service.tick(11.0)       # attempt 2 issued
        assert not service.tick(22.0)   # out of attempts
        metrics = service.close()
        verdict = service.verdicts["prv-0"]
        assert not verdict.accepted
        assert "idle timeout" in verdict.reason
        assert metrics.sessions_expired == 1
        assert metrics.sessions_retried == 1

    def test_queued_sessions_never_expire(self, factory):
        service = FleetService(workers=0, idle_timeout=10.0)
        chunks = open_with_chain(service, factory)
        for chunk in chunks:
            service.submit("prv-0", chunk)
        assert not service.tick(1e9)
        assert service.verdicts["prv-0"].accepted


class TestAdmissionControl:
    def test_overload_refuses_new_sessions(self, factory):
        service = FleetService(workers=0, max_sessions=2)
        service.open_session("prv-0", FIBCALL, device_key("prv-0"))
        service.open_session("prv-1", FIBCALL, device_key("prv-1"))
        with pytest.raises(FleetOverloadError):
            service.open_session("prv-2", FIBCALL, device_key("prv-2"))
        metrics = service.close()
        assert metrics.sessions_refused == 1
        assert metrics.sessions_opened == 2

    def test_settled_sessions_free_slots(self, factory):
        service = FleetService(workers=0, max_sessions=1)
        chunks = open_with_chain(service, factory)
        for chunk in chunks:
            service.submit("prv-0", chunk)
        # prv-0 settled, so the slot is free again
        service.open_session("prv-1", FIBCALL, device_key("prv-1"))

    def test_duplicate_active_session_refused(self, factory):
        service = FleetService(workers=0)
        service.open_session("prv-0", FIBCALL, device_key("prv-0"))
        with pytest.raises(ValueError, match="active session"):
            service.open_session("prv-0", FIBCALL, device_key("prv-0"))


class TestAttackDetection:
    def test_rop_attack_rejected(self, factory):
        service = FleetService(workers=0)
        profile = DeviceProfile("vulnerable")
        chunks = open_with_chain(
            service, factory, profile=profile, behavior="attack")
        for chunk in chunks:
            service.submit("prv-0", chunk)
        service.close()
        verdict = service.verdicts["prv-0"]
        assert verdict.authenticated  # the compromised device signs fine
        assert not verdict.accepted   # ...but its path betrays it
        assert verdict.violations or not verdict.lossless


class TestReplayCache:
    def test_cache_preserves_verdicts(self, factory):
        verdicts = {}
        for cached in (False, True):
            service = FleetService(workers=0, replay_cache=cached)
            for device_id in ("prv-0", "prv-1", "prv-2"):
                chunks = open_with_chain(service, factory, device_id)
                for chunk in chunks:
                    service.submit(device_id, chunk)
            metrics = service.close()
            if cached:
                assert metrics.replay_cache_hits == 2  # 3 identical chains
            else:
                assert metrics.replay_cache_hits == 0
            verdicts[cached] = dict(service.verdicts)
        assert verdicts[False] == verdicts[True]


class TestMetrics:
    def test_summary_mentions_the_essentials(self, factory):
        service = FleetService(workers=0)
        chunks = open_with_chain(service, factory)
        for chunk in chunks:
            service.submit("prv-0", chunk)
        metrics = service.close()
        assert metrics.wall_s > 0
        assert metrics.reports_per_second > 0
        pct = metrics.latency_percentiles()
        assert 0 < pct["p50"] <= pct["p95"] <= pct["p99"]
        summary = metrics.summary()
        assert "1/1 sessions" in summary
        assert "rps" in summary and "p50" in summary
