"""Naive MTB-based CFA: trace everything, rewrite nothing.

This is the strawman of the paper's figure 1(a): zero instrumentation
(so runtime equals the unmodified baseline) but the MTB records *every*
non-sequential transfer — direct branches, fixed loops, every loop
iteration — yielding CFLogs 1.9-217x larger than optimized methods and
frequent partial-report pauses under the 4 KB MTB limit.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cfa.cflog import BranchRecord, Record
from repro.cfa.engine import AttestationEngineBase, EngineConfig
from repro.cfa.report import AttestationResult
from repro.machine.mcu import MCU
from repro.trace.mtb import MTB
from repro.tz.keystore import KeyStore


class NaiveMtbEngine(AttestationEngineBase):
    """CFA engine that simply master-enables the MTB for the whole run."""

    method = "naive-mtb"

    def __init__(self, mcu: MCU, keystore: KeyStore,
                 config: Optional[EngineConfig] = None):
        super().__init__(mcu, keystore, config)
        self.mtb = MTB(
            mcu.memory,
            buffer_size=self.config.mtb_buffer_size,
            activation_latency=self.config.activation_latency,
        )
        self._drained_packets = 0

    def _records(self) -> List[Record]:
        if self.mtb.wrapped:
            raise RuntimeError("MTB wrapped before drain: packets lost")
        packets = self.mtb.drain()
        self._drained_packets += len(packets)
        return [BranchRecord(p.src, p.dst) for p in packets]

    def _on_watermark(self, _mtb: MTB) -> None:
        self._emit_report(self._records(), final=False)
        self.report_cycles += self.config.sign_cycles

    def attest(self, challenge: bytes) -> AttestationResult:
        self._begin(challenge)
        self._drained_packets = 0
        self.mtb.total_packets = 0
        self.mtb.configure(
            watermark=self.config.watermark or self.config.mtb_buffer_size,
            watermark_handler=self._on_watermark,
        )
        cpu = self.mcu.cpu
        if self.mtb.on_retire not in cpu.retire_hooks:
            cpu.retire_hooks.append(self.mtb.on_retire)
        self.mcu.reset()
        # TSTARTEN: record all non-sequential branches from this point on
        self.mtb.start()
        # consume the activation window before the application starts so
        # no packet is lost (the engine idles inside the Secure World)
        self.mtb._warmup = 0
        try:
            run = self.mcu.run()
            self._emit_report(self._records(), final=True)
        finally:
            self.mtb.stop()
            self._end()
        return AttestationResult(
            reports=list(self.reports),
            cycles=run.cycles,
            instructions=run.instructions,
            gateway_calls=0,
            gateway_cycles=0,
            exit_reason=run.exit_reason,
            mtb_packets=self.mtb.total_packets,
            report_cycles=self.report_cycles + self.config.sign_cycles,
        )
