"""The no-CFA baseline: raw application runtime."""

from __future__ import annotations

from repro.machine.mcu import MCU, RunResult


def run_unmodified(mcu: MCU) -> RunResult:
    """Run the unmodified application once (runtime floor of figure 8)."""
    mcu.reset()
    return mcu.run()
