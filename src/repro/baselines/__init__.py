"""Comparison baselines used throughout the paper's evaluation.

* ``unmodified`` — the application with no CFA at all (runtime floor);
* ``naive_mtb`` — MTB tracing of everything, no rewriting (the paper's
  CFLog-size strawman, figure 1a);
* ``traces`` — a TRACES-style instrumentation-based CFA with
  state-of-the-art CFLog optimizations (the paper's main comparison).
"""

from repro.baselines.unmodified import run_unmodified
from repro.baselines.naive_mtb import NaiveMtbEngine
from repro.baselines.traces import TracesEngine, rewrite_for_traces

__all__ = [
    "run_unmodified",
    "NaiveMtbEngine",
    "TracesEngine",
    "rewrite_for_traces",
]
