"""TRACES-style instrumentation-based CFA baseline.

Implements the comparison system of the paper's evaluation: a TEE-based
CFA that instruments every tracked control transfer with a call into the
Secure World (via a Non-Secure-Callable gateway) and applies the same
state-of-the-art CFLog optimizations RAP-Track does — deterministic
branches untracked, fixed loops elided, simple-loop conditions logged
once — so the comparison isolates the *logging mechanism*: per-event
world switches versus parallel MTB capture.

Entry sizes follow the instrumentation format: one 32-bit destination
word per event (4 bytes), versus the MTB's 8-byte packets.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.asm.program import Module, Space
from repro.cfa.cflog import AddressRecord, LoopRecord, Record
from repro.cfa.engine import AttestationEngineBase, EngineConfig
from repro.cfa.report import AttestationResult
from repro.cfa.services import (
    SVC_LOG_LOOP,
    SVC_TRACES_BX,
    SVC_TRACES_COND_NOT_TAKEN,
    SVC_TRACES_COND_TAKEN,
    SVC_TRACES_IND_CALL,
    SVC_TRACES_LDR,
    SVC_TRACES_RET_POP,
)
from repro.core.classify import BranchClass, Classification
from repro.core.rewrite_map import (
    BoundRewriteMap,
    CondSite,
    FixedLoopInfo,
    IndirectSite,
    LoopOptSite,
    RewriteMap,
)
from repro.core.trampolines import LabelMint
from repro.isa.instructions import Instr, InstrKind, make_instr
from repro.isa.operands import Imm, Label, Mem, Reg
from repro.isa.registers import LR, PC
from repro.machine.cpu import CPU
from repro.machine.mcu import MCU
from repro.tz.gateway import SecureGateway
from repro.tz.keystore import KeyStore

_INDIRECT_SVC = {
    BranchClass.INDIRECT_CALL: (SVC_TRACES_IND_CALL, "call"),
    BranchClass.LOGGED_CALL: (SVC_TRACES_IND_CALL, "call"),
    BranchClass.RETURN_POP: (SVC_TRACES_RET_POP, "return_pop"),
    BranchClass.INDIRECT_LDR: (SVC_TRACES_LDR, "ldr"),
    BranchClass.INDIRECT_BX: (SVC_TRACES_BX, "bx"),
}


def rewrite_for_traces(module: Module, classification: Classification
                       ) -> Tuple[Module, RewriteMap]:
    """Instrument a module the TRACES way."""
    flat = classification.flat
    out = Module(module.entry)
    out.equates = dict(module.equates)
    text = out.section("text")
    for name, section in module.sections.items():
        if name in ("text", "mtbar"):
            continue
        dest = out.section(name)
        for item in section.items:
            dest.add(item.payload, item.labels)

    mint = LabelMint("tr")
    rmap = RewriteMap(
        method="traces",
        address_taken=set(classification.address_taken),
        function_entries=set(classification.function_entry_labels),
    )

    svc_before: Dict[int, List] = {}
    extra_labels: Dict[int, List[str]] = {}
    latch_labels: Dict[int, str] = {}
    pending: List[str] = []

    def emit(payload, labels=()):
        merged = tuple(pending) + tuple(labels)
        pending.clear()
        text.add(payload, merged)

    def label_for_index(index: int, tag: str) -> str:
        if index in latch_labels:
            return latch_labels[index]
        label = mint.fresh(tag)
        latch_labels[index] = label
        extra_labels.setdefault(index, []).append(label)
        return label

    for site in classification.sites.values():
        if site.cls is BranchClass.LOOP_OPT_LATCH:
            svc_before.setdefault(site.header_index, []).append(site)
        elif site.cls is BranchClass.FIXED_LOOP_LATCH:
            rmap.fixed_loops.append(FixedLoopInfo(
                latch_label=label_for_index(site.index, "fixed"),
                trip_count=site.trip_count,
            ))

    thunks: List[Tuple[str, Label]] = []  # (svc label, taken target)

    for idx, instr in enumerate(flat.instrs):
        labels = tuple(flat.labels_at[idx]) + tuple(extra_labels.get(idx, ()))
        for loop_site in svc_before.get(idx, ()):
            svc_label = mint.fresh("loop")
            latch_label = label_for_index(loop_site.index, "latch")
            shape = loop_site.shape
            rmap.loop_sites.append(LoopOptSite(
                site_label=svc_label, latch_label=latch_label,
                counter_reg=shape.counter_reg, step=shape.step,
                bound=shape.bound, cond=shape.cond,
            ))
            emit(make_instr("svc", Imm(SVC_LOG_LOOP)), (svc_label,))

        site = classification.sites.get(idx)
        cls = site.cls if site is not None else None

        if cls in (BranchClass.DEVIRT_CALL, BranchClass.DEVIRT_JUMP):
            # proven single-target transfer: direct equivalent, untracked
            mnemonic = "bl" if cls is BranchClass.DEVIRT_CALL else "b"
            emit(make_instr(mnemonic, Label(site.devirt_target)), labels)
        elif cls in _INDIRECT_SVC:
            svc_id, kind = _INDIRECT_SVC[cls]
            if (cls is BranchClass.INDIRECT_BX
                    and isinstance(instr.operands[0], Reg)
                    and instr.operands[0].num == LR):
                # non-leaf bx lr is a return: shadow-stack checked
                kind = "return_bx"
            site_label = mint.fresh("site")
            emit(make_instr("svc", Imm(svc_id)), labels + (site_label,))
            emit(instr, ())
            rmap.indirect_sites.append(
                IndirectSite(kind, site_label, site_label))
        elif cls in (BranchClass.COND_NONLOOP,
                     BranchClass.COND_BACKWARD_LATCH,
                     BranchClass.UNCOND_LATCH):
            taken = instr.direct_target()
            thunk_label = mint.fresh("thunk")
            site_label = mint.fresh("site")
            emit(_redirect_cond(instr, thunk_label), labels + (site_label,))
            thunks.append((thunk_label, taken))
            flavor = ("always" if cls is BranchClass.UNCOND_LATCH
                      else "taken")
            rmap.cond_sites.append(CondSite(
                site_label=site_label, rec_label=thunk_label,
                taken_label=taken.name, flavor=flavor,
            ))
        elif cls is BranchClass.COND_FORWARD_EXIT:
            taken = instr.direct_target()
            site_label = mint.fresh("site")
            svc_label = mint.fresh("nt")
            cont_label = mint.fresh("cont")
            emit(instr, labels + (site_label,))
            emit(make_instr("svc", Imm(SVC_TRACES_COND_NOT_TAKEN)),
                 (svc_label,))
            pending.append(cont_label)
            rmap.cond_sites.append(CondSite(
                site_label=site_label, rec_label=svc_label,
                taken_label=taken.name, cont_label=cont_label,
            ))
        else:
            emit(instr, labels)

    # out-of-line taken thunks at the end of the text section (reached
    # only by explicit branches; no original code falls through here)
    for thunk_label, taken in thunks:
        emit(make_instr("svc", Imm(SVC_TRACES_COND_TAKEN)), (thunk_label,))
        emit(make_instr("b", taken), ())

    trailing = [
        (lbl, i) for lbl, i in flat.label_index.items()
        if i == len(flat.instrs)
    ]
    if trailing:
        # bind end-of-section labels before the thunks would be wrong;
        # they are data-boundary markers, keep them past everything
        text.add(Space(0), tuple(lbl for lbl, _ in trailing))
    return out, rmap


def _redirect_cond(instr: Instr, thunk_label: str) -> Instr:
    if instr.kind is InstrKind.COMPARE_BRANCH:
        reg, _ = instr.operands
        return make_instr(instr.mnemonic, reg, Label(thunk_label))
    return make_instr("b", Label(thunk_label), cond=instr.cond)


class TracesEngine(AttestationEngineBase):
    """Secure-World logger for the instrumented binary."""

    method = "traces"

    def __init__(self, mcu: MCU, keystore: KeyStore,
                 bound_map: BoundRewriteMap,
                 config: Optional[EngineConfig] = None):
        super().__init__(mcu, keystore, config)
        self.bound_map = bound_map
        self.gateway = SecureGateway(self.config.gateway)
        for svc_id, handler in (
            (SVC_LOG_LOOP, self._log_loop),
            (SVC_TRACES_COND_TAKEN, self._log_cond_taken),
            (SVC_TRACES_COND_NOT_TAKEN, self._log_cond_not_taken),
            (SVC_TRACES_IND_CALL, self._log_indirect_call),
            (SVC_TRACES_RET_POP, self._log_return_pop),
            (SVC_TRACES_LDR, self._log_ldr),
            (SVC_TRACES_BX, self._log_bx),
        ):
            self.gateway.register(svc_id, handler)
        self._records: List[Record] = []
        self._pending_bytes = 0

    # -- secure services ------------------------------------------------------

    def _append(self, record: Record) -> None:
        self._records.append(record)
        self._pending_bytes += record.size_bytes
        limit = self.config.watermark or self.config.mtb_buffer_size
        if self._pending_bytes >= limit:
            self._emit_partial()

    def _emit_partial(self) -> None:
        self._emit_report(self._records, final=False)
        self._records = []
        self._pending_bytes = 0
        self.report_cycles += self.config.sign_cycles

    def _next_instr(self, cpu: CPU):
        svc_addr = cpu.regs[PC]
        branch_addr = svc_addr + self.image.instr_at[svc_addr].size
        return svc_addr, self.image.instr_at[branch_addr]

    def _log_loop(self, cpu: CPU) -> int:
        site = cpu.regs[PC]
        loop = self.bound_map.loop_at.get(site)
        if loop is None:
            raise RuntimeError(f"loop-log svc from unknown site {site:#x}")
        self._append(LoopRecord(site, cpu.regs[loop.counter_reg],
                                size_bytes=4))
        return self.config.loop_log_cycles

    def _log_cond_taken(self, cpu: CPU) -> int:
        svc_addr, branch = self._next_instr(cpu)
        dst = self.image.addr_of(branch.direct_target().name)
        self._append(AddressRecord(svc_addr, dst))
        return self.config.event_log_cycles

    def _log_cond_not_taken(self, cpu: CPU) -> int:
        svc_addr = cpu.regs[PC]
        cont = svc_addr + self.image.instr_at[svc_addr].size
        self._append(AddressRecord(svc_addr, cont))
        return self.config.event_log_cycles

    def _log_indirect_call(self, cpu: CPU) -> int:
        svc_addr, branch = self._next_instr(cpu)
        (target,) = branch.operands
        if isinstance(target, Label):  # logged direct (recursive) call
            dst = self.image.addr_of(target.name)
        else:
            dst = cpu.regs[target.num] & ~1
        self._append(AddressRecord(svc_addr, dst))
        return self.config.event_log_cycles

    def _log_return_pop(self, cpu: CPU) -> int:
        svc_addr, branch = self._next_instr(cpu)
        (reglist,) = branch.operands
        # PC is architecturally the highest register: top stack slot
        slot = cpu.regs[13] + 4 * (len(reglist) - 1)
        dst = self.mcu.memory.peek(slot, 4) & ~1
        self._append(AddressRecord(svc_addr, dst))
        return self.config.event_log_cycles

    def _log_ldr(self, cpu: CPU) -> int:
        svc_addr, branch = self._next_instr(cpu)
        _dest, mem = branch.operands
        assert isinstance(mem, Mem)
        address = cpu._mem_address(mem, cpu.regs[PC])
        dst = self.mcu.memory.peek(address, 4) & ~1
        self._append(AddressRecord(svc_addr, dst))
        return self.config.event_log_cycles

    def _log_bx(self, cpu: CPU) -> int:
        svc_addr, branch = self._next_instr(cpu)
        (target,) = branch.operands
        self._append(AddressRecord(svc_addr, cpu.regs[target.num] & ~1))
        return self.config.event_log_cycles

    # -- main entry ------------------------------------------------------------

    def attest(self, challenge: bytes) -> AttestationResult:
        self._begin(challenge)
        self._records = []
        self._pending_bytes = 0
        self.gateway.install(self.mcu.cpu)
        self.mcu.reset()
        try:
            run = self.mcu.run()
            self._emit_report(self._records, final=True)
            self._records = []
        finally:
            self._end()
        return AttestationResult(
            reports=list(self.reports),
            cycles=run.cycles,
            instructions=run.instructions,
            gateway_calls=self.gateway.calls,
            gateway_cycles=self.gateway.cycles_charged,
            exit_reason=run.exit_reason,
            mtb_packets=0,
            report_cycles=self.report_cycles + self.config.sign_cycles,
        )
