"""Byte-addressable physical memory with MPU-checked access."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.machine.faults import MemFault
from repro.machine.memmap import MemoryMap, World
from repro.machine.mmio import MMIOBus


class Memory:
    """Sparse physical memory front-end.

    Every CPU data access is routed through :meth:`read` / :meth:`write`,
    which consult the :class:`MemoryMap` (and thus the simulated MPU
    locks) before touching backing store or the MMIO bus.

    Hot-path note: both entry points keep a single-entry region cache
    (``[lo, hi)`` bounds of the last plain Non-Secure region the access
    resolved to) so steady-state loads/stores skip the MPU region walk.
    Only regions whose grant can never change underneath us are cached:
    Non-Secure (readable by either world), non-MMIO, and — for writes —
    non-executable and unlocked, revalidated against the memory map's
    lock epoch.  Everything else (MMIO, Secure regions, executable
    code) takes the checked slow path every time.
    """

    def __init__(self, memmap: Optional[MemoryMap] = None,
                 mmio: Optional[MMIOBus] = None):
        self.memmap = memmap or MemoryMap()
        self.mmio = mmio or MMIOBus()
        self._bytes: Dict[int, int] = {}
        #: observers fired (with the address) after a checked write to an
        #: executable region — the JIT uses this to invalidate blocks
        self._code_write_hooks: List[Callable[[int], None]] = []
        self._r_lo = 1  # empty read-region caches (two-entry, MRU first:
        self._r_hi = 0  # loops alternating data and rodata thrash one slot)
        self._r2_lo = 1
        self._r2_hi = 0
        self._w_lo = 1  # empty write-region cache
        self._w_hi = 0
        self._w_epoch = -1

    def add_code_write_hook(self, hook: Callable[[int], None]) -> None:
        """Register an observer for checked writes into executable code."""
        self._code_write_hooks.append(hook)

    # -- raw (unchecked) access for loaders and secure services ----------

    def load_blob(self, base: int, data) -> None:
        """Loader back-door: install bytes without MPU checks."""
        if isinstance(data, dict):
            self._bytes.update(data)
        else:
            for i, byte in enumerate(data):
                self._bytes[base + i] = byte

    def peek(self, address: int, size: int = 4) -> int:
        """Debug/secure-world read without access checks (not MMIO)."""
        value = 0
        for i in range(size):
            value |= self._bytes.get(address + i, 0) << (8 * i)
        return value

    def poke(self, address: int, value: int, size: int = 4) -> None:
        """Debug/secure-world write without access checks (not MMIO)."""
        for i in range(size):
            self._bytes[address + i] = (value >> (8 * i)) & 0xFF

    # -- checked access ----------------------------------------------------

    def read(self, address: int, size: int, world: World) -> int:
        if not self._r_lo <= address < self._r_hi:
            if self._r2_lo <= address < self._r2_hi:  # promote to MRU
                self._r_lo, self._r2_lo = self._r2_lo, self._r_lo
                self._r_hi, self._r2_hi = self._r2_hi, self._r_hi
            else:
                return self._read_slow(address, size, world)
        if size == 4:
            if address & 3:
                raise MemFault("unaligned word read", address)
            b = self._bytes
            return (b.get(address, 0)
                    | b.get(address + 1, 0) << 8
                    | b.get(address + 2, 0) << 16
                    | b.get(address + 3, 0) << 24)
        return self.peek(address, size)

    def _read_slow(self, address: int, size: int, world: World) -> int:
        region = self.memmap.check_access(address, world=world, is_write=False)
        if size == 4 and address % 4 != 0:
            raise MemFault("unaligned word read", address)
        if region.mmio:
            return self.mmio.read(address, size)
        if region.world is World.NONSECURE:
            self._r2_lo = self._r_lo
            self._r2_hi = self._r_hi
            self._r_lo = region.base
            self._r_hi = region.base + region.size
        return self.peek(address, size)

    def write(self, address: int, value: int, size: int, world: World) -> None:
        if (self._w_lo <= address < self._w_hi
                and self._w_epoch == self.memmap.lock_epoch):
            if size == 4:
                if address & 3:
                    raise MemFault("unaligned word write", address)
                b = self._bytes
                b[address] = value & 0xFF
                b[address + 1] = (value >> 8) & 0xFF
                b[address + 2] = (value >> 16) & 0xFF
                b[address + 3] = (value >> 24) & 0xFF
                return
            self.poke(address, value, size)
            return
        region = self.memmap.check_access(address, world=world, is_write=True)
        if size == 4 and address % 4 != 0:
            raise MemFault("unaligned word write", address)
        if region.mmio:
            self.mmio.write(address, value, size)
            return
        self.poke(address, value, size)
        if region.executable:
            for hook in self._code_write_hooks:
                hook(address)
        elif region.world is World.NONSECURE:
            self._w_lo = region.base
            self._w_hi = region.base + region.size
            self._w_epoch = self.memmap.lock_epoch
