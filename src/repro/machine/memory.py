"""Byte-addressable physical memory with MPU-checked access."""

from __future__ import annotations

from typing import Dict, Optional

from repro.machine.faults import MemFault
from repro.machine.memmap import MemoryMap, World
from repro.machine.mmio import MMIOBus


class Memory:
    """Sparse physical memory front-end.

    Every CPU data access is routed through :meth:`read` / :meth:`write`,
    which consult the :class:`MemoryMap` (and thus the simulated MPU
    locks) before touching backing store or the MMIO bus.
    """

    def __init__(self, memmap: Optional[MemoryMap] = None,
                 mmio: Optional[MMIOBus] = None):
        self.memmap = memmap or MemoryMap()
        self.mmio = mmio or MMIOBus()
        self._bytes: Dict[int, int] = {}

    # -- raw (unchecked) access for loaders and secure services ----------

    def load_blob(self, base: int, data) -> None:
        """Loader back-door: install bytes without MPU checks."""
        if isinstance(data, dict):
            self._bytes.update(data)
        else:
            for i, byte in enumerate(data):
                self._bytes[base + i] = byte

    def peek(self, address: int, size: int = 4) -> int:
        """Debug/secure-world read without access checks (not MMIO)."""
        value = 0
        for i in range(size):
            value |= self._bytes.get(address + i, 0) << (8 * i)
        return value

    def poke(self, address: int, value: int, size: int = 4) -> None:
        """Debug/secure-world write without access checks (not MMIO)."""
        for i in range(size):
            self._bytes[address + i] = (value >> (8 * i)) & 0xFF

    # -- checked access ----------------------------------------------------

    def read(self, address: int, size: int, world: World) -> int:
        region = self.memmap.check_access(address, world=world, is_write=False)
        if size == 4 and address % 4 != 0:
            raise MemFault("unaligned word read", address)
        if region.mmio:
            return self.mmio.read(address, size)
        return self.peek(address, size)

    def write(self, address: int, value: int, size: int, world: World) -> None:
        region = self.memmap.check_access(address, world=world, is_write=True)
        if size == 4 and address % 4 != 0:
            raise MemFault("unaligned word write", address)
        if region.mmio:
            self.mmio.write(address, value, size)
            return
        self.poke(address, value, size)
