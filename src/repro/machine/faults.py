"""Machine-level fault hierarchy."""

from __future__ import annotations


class MachineFault(Exception):
    """Base class for all simulated hardware faults."""


class MemFault(MachineFault):
    """An access violated the memory map or MPU configuration."""

    def __init__(self, message: str, address: int):
        super().__init__(f"{message} @ {address:#010x}")
        self.address = address


class UndefinedInstruction(MachineFault):
    """Fetch resolved to no instruction, or an unsupported operation."""

    def __init__(self, message: str, address: int):
        super().__init__(f"{message} @ {address:#010x}")
        self.address = address


class ExecutionLimitExceeded(MachineFault):
    """The configured instruction budget ran out (runaway program guard)."""
