"""Memory-mapped peripheral bus.

Workload peripherals (ultrasonic echo timer, Geiger tube, ADC, UART,
stepper driver — see ``repro.workloads.peripherals``) register here and
are accessed by the application through plain loads/stores.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.machine.faults import MemFault


class MMIODevice:
    """Base class for a peripheral occupying a register window."""

    #: window size in bytes; subclasses override
    WINDOW = 0x100

    def read(self, offset: int, size: int) -> int:
        """Read ``size`` bytes at ``offset`` inside the window."""
        raise MemFault("read from unimplemented MMIO register", offset)

    def write(self, offset: int, value: int, size: int) -> None:
        """Write ``size`` bytes at ``offset`` inside the window."""
        raise MemFault("write to unimplemented MMIO register", offset)

    def tick(self, cycles: int) -> None:
        """Advance device-internal time (called per retired instruction)."""

    def reset(self) -> None:
        """Return the device to its power-on state."""


class MMIOBus:
    """Dispatches accesses in the peripheral aperture to devices."""

    def __init__(self):
        self._devices: List[Tuple[int, int, MMIODevice]] = []
        self._by_name: Dict[str, MMIODevice] = {}

    def register(self, base: int, device: MMIODevice, name: Optional[str] = None):
        """Attach ``device`` at absolute address ``base``."""
        window = device.WINDOW
        for other_base, other_window, _ in self._devices:
            if base < other_base + other_window and other_base < base + window:
                raise ValueError(f"MMIO window overlap at {base:#x}")
        self._devices.append((base, window, device))
        if name:
            self._by_name[name] = device
        return device

    def device(self, name: str) -> MMIODevice:
        return self._by_name[name]

    @property
    def has_devices(self) -> bool:
        """True if any peripheral is registered (the run loop skips
        per-iteration ticking entirely when the bus is empty)."""
        return bool(self._devices)

    def _find(self, address: int) -> Tuple[int, MMIODevice]:
        for base, window, device in self._devices:
            if base <= address < base + window:
                return base, device
        raise MemFault("access to unmapped MMIO address", address)

    def read(self, address: int, size: int) -> int:
        base, device = self._find(address)
        return device.read(address - base, size) & ((1 << (8 * size)) - 1)

    def write(self, address: int, value: int, size: int) -> None:
        base, device = self._find(address)
        device.write(address - base, value & ((1 << (8 * size)) - 1), size)

    def tick(self, cycles: int) -> None:
        for _, _, device in self._devices:
            device.tick(cycles)

    def reset(self) -> None:
        for _, _, device in self._devices:
            device.reset()
