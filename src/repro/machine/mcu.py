"""SoC composition: CPU + memory + MMIO + run loop."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.asm.program import Image
from repro.machine.cpu import CPU
from repro.machine.faults import ExecutionLimitExceeded
from repro.machine.memmap import MemoryMap
from repro.machine.memory import Memory
from repro.machine.mmio import MMIOBus, MMIODevice
from repro.machine.nvic import EXC_RETURN_MASKED, NVIC
from repro.isa.registers import PC

#: Returning to the reset value of LR ends the program (bare-metal exit).
EXIT_PC = 0xFFFF_FFFE

#: Default runaway guard.
DEFAULT_MAX_INSTRUCTIONS = 5_000_000


@dataclass
class RunResult:
    """Outcome of one program execution."""

    cycles: int
    instructions: int
    exit_reason: str  # "bkpt" | "return" | "halted"

    def __str__(self) -> str:
        return (f"RunResult(cycles={self.cycles}, "
                f"instructions={self.instructions}, exit={self.exit_reason})")


class MCU:
    """The simulated device: one core, one bus, the loaded image."""

    def __init__(self, image: Image, memmap: Optional[MemoryMap] = None,
                 max_instructions: int = DEFAULT_MAX_INSTRUCTIONS):
        self.image = image
        self.memmap = memmap or MemoryMap()
        self.mmio = MMIOBus()
        self.memory = Memory(self.memmap, self.mmio)
        self.memory.load_blob(0, image.data_bytes)
        self.cpu = CPU(image, self.memory)
        self.nvic = NVIC()
        self.max_instructions = max_instructions
        self._last_cycles = 0

    def attach_device(self, base: int, device: MMIODevice,
                      name: Optional[str] = None) -> MMIODevice:
        """Register a peripheral in the MMIO aperture."""
        return self.mmio.register(base, device, name)

    def reset(self) -> None:
        """Reset CPU state and peripherals; memory image is preserved."""
        self.cpu.reset()
        self.mmio.reset()
        self._last_cycles = 0

    def run(self, max_instructions: Optional[int] = None) -> RunResult:
        """Run from the current PC until halt, exit-return, or the guard."""
        limit = max_instructions or self.max_instructions
        cpu = self.cpu
        start_cycles = cpu.cycles
        start_retired = cpu.retired
        exit_reason = "halted"
        while True:
            if cpu.retired - start_retired >= limit:
                raise ExecutionLimitExceeded(
                    f"exceeded {limit} instructions (runaway program?)"
                )
            self.nvic.service_if_pending(cpu)
            cpu.step()
            elapsed = cpu.cycles - self._last_cycles
            self._last_cycles = cpu.cycles
            self.mmio.tick(elapsed)
            if cpu.regs[PC] == EXC_RETURN_MASKED:
                self.nvic.exception_return(cpu)
            if cpu.halted:
                exit_reason = "bkpt"
                break
            if cpu.regs[PC] == EXIT_PC:
                exit_reason = "return"
                break
        return RunResult(
            cycles=cpu.cycles - start_cycles,
            instructions=cpu.retired - start_retired,
            exit_reason=exit_reason,
        )
