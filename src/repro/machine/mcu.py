"""SoC composition: CPU + memory + MMIO + run loop."""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

from repro.asm.program import Image
from repro.machine.cpu import CPU
from repro.machine.faults import ExecutionLimitExceeded
from repro.machine.jit.runtime import NOJIT, JITRuntime, hoisted_handlers
from repro.machine.memmap import MemoryMap
from repro.machine.memory import Memory
from repro.machine.mmio import MMIOBus, MMIODevice
from repro.machine.nvic import EXC_RETURN_MASKED, NVIC

#: Returning to the reset value of LR ends the program (bare-metal exit).
EXIT_PC = 0xFFFF_FFFE

#: Default runaway guard.
DEFAULT_MAX_INSTRUCTIONS = 5_000_000


def _jit_default() -> bool:
    """Default for ``enable_jit``: on, unless REPRO_JIT disables it."""
    return os.environ.get("REPRO_JIT", "1").lower() not in (
        "0", "off", "no", "false")


@dataclass
class RunResult:
    """Outcome of one program execution."""

    cycles: int
    instructions: int
    exit_reason: str  # "bkpt" | "return" | "halted"

    def __str__(self) -> str:
        return (f"RunResult(cycles={self.cycles}, "
                f"instructions={self.instructions}, exit={self.exit_reason})")


class MCU:
    """The simulated device: one core, one bus, the loaded image.

    ``enable_jit`` selects the superblock JIT tier
    (:mod:`repro.machine.jit`): hot straight-line regions are compiled
    into specialized Python functions with observation hoisted to block
    boundaries, falling back to ``CPU.step`` everywhere else.  Defaults
    to on (override per-process with ``REPRO_JIT=0``); execution is
    bit-identical either way, which the differential test battery pins.
    """

    def __init__(self, image: Image, memmap: Optional[MemoryMap] = None,
                 max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
                 enable_jit: Optional[bool] = None):
        self.image = image
        self.memmap = memmap or MemoryMap()
        self.mmio = MMIOBus()
        self.memory = Memory(self.memmap, self.mmio)
        self.memory.load_blob(0, image.data_bytes)
        self.cpu = CPU(image, self.memory)
        self.nvic = NVIC()
        self.max_instructions = max_instructions
        self._last_cycles = 0
        if enable_jit is None:
            enable_jit = _jit_default()
        self.jit: Optional[JITRuntime] = None
        if enable_jit:
            self.jit = JITRuntime(image, self.memmap, self.cpu.world)
            self.memory.add_code_write_hook(self.jit.on_code_write)

    def attach_device(self, base: int, device: MMIODevice,
                      name: Optional[str] = None) -> MMIODevice:
        """Register a peripheral in the MMIO aperture."""
        return self.mmio.register(base, device, name)

    def invalidate_jit(self, address: Optional[int] = None) -> int:
        """Drop compiled blocks (all, or those covering ``address``).

        Call after patching the loaded image in place (trampoline
        installation, devirtualization).  Checked writes to executable
        regions invalidate automatically through the memory observer.
        Returns the number of blocks dropped (0 when the JIT is off).
        """
        if self.jit is None:
            return 0
        return self.jit.invalidate(address)

    def reset(self) -> None:
        """Reset CPU state and peripherals; memory image is preserved."""
        self.cpu.reset()
        self.mmio.reset()
        self._last_cycles = 0

    def run(self, max_instructions: Optional[int] = None) -> RunResult:
        """Run from the current PC until halt, exit-return, or the guard.

        One loop serves both tiers.  Per iteration it either dispatches
        one compiled superblock (when the JIT is enabled, the entry is
        compiled, every hook is batch-capable, and the whole block fits
        under the instruction limit) or interprets one instruction.  The
        NVIC poll, MMIO tick, and the EXC_RETURN/EXIT_PC checks then run
        once per iteration — per *block* under the JIT, which is what
        makes the guard loop overhead amortized.
        """
        limit = max_instructions or self.max_instructions
        cpu = self.cpu
        nvic = self.nvic
        regs = cpu.regs
        step = cpu.step_fast
        pending = nvic.pending  # list identity is stable for an NVIC
        tick = self.mmio.tick if self.mmio.has_devices else None
        start_cycles = cpu.cycles
        base = cpu.retired
        exit_reason = "halted"

        jit = self.jit
        blocks = jit.blocks if jit is not None else None
        consider = jit.consider if jit is not None else None
        # hook-hoisting state, revalidated whenever the hook lists change
        hp = hr = None
        hp_len = hr_len = -1
        pre_batch = ret_batch = None
        jit_ok = False

        while True:
            done = cpu.retired - base
            if done >= limit:
                raise ExecutionLimitExceeded(
                    f"exceeded {limit} instructions (runaway program?)"
                )
            if pending:
                nvic.service_if_pending(cpu)
            stepped = True
            if blocks is not None:
                if (cpu.pre_hooks is not hp or len(hp) != hp_len
                        or cpu.retire_hooks is not hr or len(hr) != hr_len):
                    hp = cpu.pre_hooks
                    hp_len = len(hp)
                    hr = cpu.retire_hooks
                    hr_len = len(hr)
                    pre_batch = hoisted_handlers(
                        hp, "JIT_PRE_HOOK", "jit_block_pre")
                    ret_batch = hoisted_handlers(
                        hr, "JIT_RETIRE_HOOK", "jit_block_retire")
                    jit_ok = pre_batch is not None and ret_batch is not None
                if jit_ok:
                    pc = regs[15]
                    blk = blocks.get(pc)
                    if blk is None:
                        blk = consider(pc)
                    if blk is not NOJIT and done + blk.max_extra < limit:
                        ok = True
                        body_pcs = blk.body_pcs
                        if body_pcs:
                            for handler in pre_batch:
                                if not handler(body_pcs):
                                    ok = False  # non-uniform: interpret
                                    break
                        if ok:
                            blk.fn(cpu, ret_batch)
                            stepped = False
            if stepped:
                step()
            if tick is not None:
                cycles = cpu.cycles
                tick(cycles - self._last_cycles)
                self._last_cycles = cycles
            pc = regs[15]
            if pc == EXC_RETURN_MASKED:
                nvic.exception_return(cpu)
            if cpu.halted:
                exit_reason = "bkpt"
                break
            if regs[15] == EXIT_PC:
                exit_reason = "return"
                break
        if tick is None:
            self._last_cycles = cpu.cycles
        return RunResult(
            cycles=cpu.cycles - start_cycles,
            instructions=cpu.retired - base,
            exit_reason=exit_reason,
        )
