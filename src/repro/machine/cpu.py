"""Cycle-counted CPU core executing linked images.

The core exposes two hook points that the trace infrastructure uses:

* ``pre_hooks`` fire with the PC *before* an instruction executes — this
  is where the DWT evaluates its comparators and starts/stops the MTB,
  giving exactly the paper's activation discipline (a transfer is
  recorded iff the MTB was enabled while the *source* instruction ran).
* ``retire_hooks`` fire after execution with a :class:`RetireEvent`
  describing the control transfer; the MTB and the ground-truth tracer
  subscribe here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.asm.program import Image
from repro.isa import alu
from repro.isa.conditions import cond_passed
from repro.isa.instructions import Instr, InstrKind, TAKEN_BRANCH_PENALTY
from repro.isa.operands import Imm, Label, Mem, Reg
from repro.isa.registers import LR, PC, SP, Flags
from repro.machine.faults import UndefinedInstruction
from repro.machine.memmap import STACK_TOP, World
from repro.machine.memory import Memory

# Per-mnemonic tables hoisted to module level: these used to be dict
# literals rebuilt on every load/store/shift.
_LOAD_SIZES = {"ldrb": 1, "ldrh": 2}
_STORE_SIZES = {"strb": 1, "strh": 2}
_SHIFTERS = {"lsl": alu.lsl, "lsr": alu.lsr, "asr": alu.asr, "ror": alu.ror}


@dataclass(frozen=True)
class RetireEvent:
    """One retired instruction and the control transfer it produced."""

    __slots__ = ("src", "dst", "sequential", "instr")

    src: int
    dst: int
    sequential: bool
    instr: Instr

    @property
    def non_sequential(self) -> bool:
        return not self.sequential


class CPU:
    """A single-core, in-order, cycle-counted interpreter."""

    def __init__(self, image: Image, memory: Memory,
                 world: World = World.NONSECURE):
        self.image = image
        self.memory = memory
        self.world = world
        self.regs: List[int] = [0] * 16
        self.flags = Flags()
        self.cycles = 0
        self.retired = 0
        self.halted = False
        self.pre_hooks: List[Callable[[int], None]] = []
        self.retire_hooks: List[Callable[[RetireEvent], None]] = []
        self.svc_handler: Optional[Callable[[int, "CPU"], None]] = None
        # single-entry fetch-region cache: [lo, hi) of the last region a
        # fetch succeeded from (region grants are static, so a hit can
        # skip the MPU walk; starts empty so the first fetch checks)
        self._fetch_lo = 1
        self._fetch_hi = 0
        self.reset()

    def reset(self) -> None:
        self.regs = [0] * 16
        self.regs[SP] = STACK_TOP
        self.regs[PC] = self.image.entry
        self.regs[LR] = 0xFFFF_FFFF  # sentinel: return here = program exit
        self.flags = Flags()
        self.cycles = 0
        self.retired = 0
        self.halted = False

    # -- operand helpers ----------------------------------------------------

    def _reg_read(self, num: int, pc: int) -> int:
        if num == PC:
            return (pc + 4) & alu.MASK32  # architectural PC read-ahead
        return self.regs[num]

    def _value(self, op, pc: int) -> int:
        if isinstance(op, Reg):
            return self._reg_read(op.num, pc)
        if isinstance(op, Imm):
            return op.value & alu.MASK32
        if isinstance(op, Label):
            return self.image.addr_of(op.name)
        raise UndefinedInstruction(f"bad operand {op}", pc)

    def _mem_address(self, mem: Mem, pc: int) -> int:
        address = self._reg_read(mem.base.num, pc) + mem.offset
        if mem.index is not None:
            address += self._reg_read(mem.index.num, pc) << mem.shift
        return address & alu.MASK32

    # -- execution ------------------------------------------------------------

    def _check_fetch(self, pc: int) -> None:
        """MPU fetch check with a single-entry region cache."""
        if self._fetch_lo <= pc < self._fetch_hi:
            return
        region = self.memory.memmap.check_access(
            pc, world=self.world, is_write=False, is_fetch=True
        )
        self._fetch_lo = region.base
        self._fetch_hi = region.base + region.size

    def step(self) -> RetireEvent:
        """Execute one instruction; returns its retire event."""
        pc = self.regs[PC]
        for hook in self.pre_hooks:
            hook(pc)
        self._check_fetch(pc)
        instr = self.image.instr_at.get(pc)
        if instr is None:
            raise UndefinedInstruction("fetch from non-instruction address", pc)

        next_pc, extra_cycles = self._execute(instr, pc)
        taken = next_pc != pc + instr.size
        self.cycles += instr.spec.cycles + extra_cycles
        if taken:
            self.cycles += TAKEN_BRANCH_PENALTY
        self.retired += 1
        self.regs[PC] = next_pc & alu.MASK32

        event = RetireEvent(pc, next_pc & alu.MASK32, not taken, instr)
        for hook in self.retire_hooks:
            hook(event)
        return event

    def step_fast(self) -> None:
        """``step`` without constructing a RetireEvent when nobody listens.

        Semantically identical to :meth:`step`; the run loop uses this
        variant so runs without retire hooks skip the per-instruction
        event allocation entirely.
        """
        pc = self.regs[PC]
        for hook in self.pre_hooks:
            hook(pc)
        self._check_fetch(pc)
        instr = self.image.instr_at.get(pc)
        if instr is None:
            raise UndefinedInstruction("fetch from non-instruction address", pc)

        next_pc, extra_cycles = self._execute(instr, pc)
        taken = next_pc != pc + instr.size
        self.cycles += instr.spec.cycles + extra_cycles
        if taken:
            self.cycles += TAKEN_BRANCH_PENALTY
        self.retired += 1
        next_pc &= alu.MASK32
        self.regs[PC] = next_pc

        if self.retire_hooks:
            event = RetireEvent(pc, next_pc, not taken, instr)
            for hook in self.retire_hooks:
                hook(event)

    # -- per-kind semantics -----------------------------------------------

    def _execute(self, instr: Instr, pc: int):
        """Returns (next_pc, extra_cycles)."""
        kind = instr.kind
        handler = _DISPATCH.get(kind)
        if handler is None:
            raise UndefinedInstruction(f"unimplemented kind {kind}", pc)
        return handler(self, instr, pc)

    def _exec_move(self, instr: Instr, pc: int):
        dest, src = instr.operands
        if instr.mnemonic == "adr":
            value = self.image.addr_of(src.name)
        else:
            value = self._value(src, pc)
            if instr.mnemonic == "mvn":
                value = (~value) & alu.MASK32
        if dest.num == PC:
            raise UndefinedInstruction("mov to pc is not supported", pc)
        self.regs[dest.num] = value
        if instr.mnemonic in ("mov", "mvn"):
            self.flags.n = bool(value & alu.SIGN_BIT)
            self.flags.z = value == 0
        return pc + instr.size, 0

    def _exec_alu(self, instr: Instr, pc: int):
        dest, lhs_op, rhs_op = instr.operands
        lhs = self._value(lhs_op, pc)
        rhs = self._value(rhs_op, pc)
        mnemonic = instr.mnemonic
        flags = self.flags
        if mnemonic == "add":
            result, flags.n, flags.z, flags.c, flags.v = alu.add_with_flags(lhs, rhs)
        elif mnemonic == "sub":
            result, flags.n, flags.z, flags.c, flags.v = alu.sub_with_flags(lhs, rhs)
        elif mnemonic == "rsb":
            result, flags.n, flags.z, flags.c, flags.v = alu.sub_with_flags(rhs, lhs)
        elif mnemonic == "adc":
            result, flags.n, flags.z, flags.c, flags.v = alu.add_with_flags(
                lhs, rhs, int(flags.c))
        elif mnemonic == "sbc":
            result, flags.n, flags.z, flags.c, flags.v = alu.add_with_flags(
                lhs, (~rhs) & alu.MASK32, int(flags.c))
        elif mnemonic == "mul":
            result = alu.u32(lhs * rhs)
            flags.n, flags.z = bool(result & alu.SIGN_BIT), result == 0
        elif mnemonic == "udiv":
            result = alu.udiv(lhs, rhs)
        elif mnemonic == "sdiv":
            result = alu.sdiv(lhs, rhs)
        elif mnemonic in ("and", "orr", "eor", "bic"):
            if mnemonic == "and":
                raw = lhs & rhs
            elif mnemonic == "orr":
                raw = lhs | rhs
            elif mnemonic == "bic":
                raw = lhs & ~rhs
            else:
                raw = lhs ^ rhs
            result, flags.n, flags.z, _ = alu.logical_flags(raw, flags.c)
        elif mnemonic in ("lsl", "lsr", "asr", "ror"):
            shifter = _SHIFTERS[mnemonic]
            raw, carry = shifter(lhs, rhs & 0xFF, flags.c)
            result, flags.n, flags.z, flags.c = alu.logical_flags(raw, carry)
        else:
            raise UndefinedInstruction(f"ALU op {mnemonic}", pc)
        if dest.num == PC:
            raise UndefinedInstruction("ALU write to pc is not supported", pc)
        self.regs[dest.num] = result
        return pc + instr.size, 0

    def _exec_compare(self, instr: Instr, pc: int):
        lhs_op, rhs_op = instr.operands
        lhs = self._value(lhs_op, pc)
        rhs = self._value(rhs_op, pc)
        flags = self.flags
        if instr.mnemonic == "cmp":
            _, flags.n, flags.z, flags.c, flags.v = alu.sub_with_flags(lhs, rhs)
        elif instr.mnemonic == "cmn":
            _, flags.n, flags.z, flags.c, flags.v = alu.add_with_flags(lhs, rhs)
        else:  # tst
            _, flags.n, flags.z, _ = alu.logical_flags(lhs & rhs, flags.c)
        return pc + instr.size, 0

    def _exec_load(self, instr: Instr, pc: int):
        dest, mem = instr.operands
        if not isinstance(mem, Mem):
            raise UndefinedInstruction("ldr needs a memory operand", pc)
        address = self._mem_address(mem, pc)
        size = _LOAD_SIZES.get(instr.mnemonic, 4)
        value = self.memory.read(address, size, self.world)
        if dest.num == PC:
            # indirect jump (switch dispatch / hijacked pointer)
            return value & ~1 & alu.MASK32, 0
        self.regs[dest.num] = value
        return pc + instr.size, 0

    def _exec_store(self, instr: Instr, pc: int):
        src, mem = instr.operands
        if not isinstance(mem, Mem):
            raise UndefinedInstruction("str needs a memory operand", pc)
        address = self._mem_address(mem, pc)
        size = _STORE_SIZES.get(instr.mnemonic, 4)
        self.memory.write(address, self._reg_read(src.num, pc), size, self.world)
        return pc + instr.size, 0

    def _exec_push(self, instr: Instr, pc: int):
        (reglist,) = instr.operands
        sp = self.regs[SP] - 4 * len(reglist)
        address = sp
        for num in reglist:  # ascending: lowest register at lowest address
            self.memory.write(address, self._reg_read(num, pc), 4, self.world)
            address += 4
        self.regs[SP] = sp
        return pc + instr.size, len(reglist)

    def _exec_pop(self, instr: Instr, pc: int):
        (reglist,) = instr.operands
        address = self.regs[SP]
        next_pc = pc + instr.size
        for num in reglist:
            value = self.memory.read(address, 4, self.world)
            if num == PC:
                next_pc = value & ~1 & alu.MASK32
            else:
                self.regs[num] = value
            address += 4
        self.regs[SP] = address
        return next_pc, len(reglist)

    def _exec_branch(self, instr: Instr, pc: int):
        (target,) = instr.operands
        if instr.cond is not None and not cond_passed(instr.cond, self.flags):
            return pc + instr.size, 0
        return self._value(target, pc) & ~1, 0

    def _exec_call(self, instr: Instr, pc: int):
        (target,) = instr.operands
        self.regs[LR] = (pc + instr.size) & alu.MASK32
        return self._value(target, pc) & ~1, 0

    def _exec_indirect_call(self, instr: Instr, pc: int):
        (target,) = instr.operands
        self.regs[LR] = (pc + instr.size) & alu.MASK32
        return self._reg_read(target.num, pc) & ~1, 0

    def _exec_indirect_branch(self, instr: Instr, pc: int):
        (target,) = instr.operands
        return self._reg_read(target.num, pc) & ~1, 0

    def _exec_compare_branch(self, instr: Instr, pc: int):
        reg, target = instr.operands
        value = self._reg_read(reg.num, pc)
        zero = value == 0
        take = zero if instr.mnemonic == "cbz" else not zero
        if take:
            return self._value(target, pc) & ~1, 0
        return pc + instr.size, 0

    def _exec_system(self, instr: Instr, pc: int):
        if instr.mnemonic == "nop":
            return pc + instr.size, 0
        if instr.mnemonic == "bkpt":
            self.halted = True
            return pc + instr.size, 0
        if instr.mnemonic == "svc":
            if self.svc_handler is None:
                raise UndefinedInstruction("svc with no secure handler", pc)
            (imm,) = instr.operands
            self.svc_handler(imm.value, self)
            return pc + instr.size, 0
        raise UndefinedInstruction(f"system op {instr.mnemonic}", pc)


_DISPATCH = {
    InstrKind.MOVE: CPU._exec_move,
    InstrKind.ALU: CPU._exec_alu,
    InstrKind.COMPARE: CPU._exec_compare,
    InstrKind.LOAD: CPU._exec_load,
    InstrKind.STORE: CPU._exec_store,
    InstrKind.PUSH: CPU._exec_push,
    InstrKind.POP: CPU._exec_pop,
    InstrKind.BRANCH: CPU._exec_branch,
    InstrKind.CALL: CPU._exec_call,
    InstrKind.INDIRECT_CALL: CPU._exec_indirect_call,
    InstrKind.INDIRECT_BRANCH: CPU._exec_indirect_branch,
    InstrKind.COMPARE_BRANCH: CPU._exec_compare_branch,
    InstrKind.SYSTEM: CPU._exec_system,
}
