"""Platform physical memory map.

Mirrors the structure of the AN505 Cortex-M33 image the paper prototypes
on: Non-Secure code flash (split into MTBDR text and the MTBAR stub
region by the rewriter), Non-Secure SRAM, the MTB's dedicated SRAM,
Secure flash/SRAM for the CFA engine, and a peripheral aperture.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional


class World(Enum):
    """TrustZone security state of a bus master or region."""

    NONSECURE = "ns"
    SECURE = "s"


@dataclass
class Region:
    """One contiguous region with security and kind attributes."""

    name: str
    base: int
    size: int
    world: World
    executable: bool = False
    writable: bool = True
    mmio: bool = False

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, address: int) -> bool:
        return self.base <= address < self.end


# Canonical bases (also used by repro.asm.linker.DEFAULT_LAYOUT).
NS_TEXT_BASE = 0x0020_0000
MTBAR_BASE = 0x0030_0000
RODATA_BASE = 0x0040_0000
S_FLASH_BASE = 0x1000_0000
NS_RAM_BASE = 0x2000_0000
NS_RAM_SIZE = 0x0008_0000
MTB_SRAM_BASE = 0x3000_0000
MTB_SRAM_SIZE = 0x0000_4000  # 16 KB dedicated trace SRAM (4 KB used, as M33)
S_RAM_BASE = 0x3800_0000
MMIO_BASE = 0x4000_0000
MMIO_SIZE = 0x0010_0000
STACK_TOP = NS_RAM_BASE + NS_RAM_SIZE - 16


def default_regions() -> List[Region]:
    return [
        Region("ns_text", NS_TEXT_BASE, 0x0008_0000, World.NONSECURE,
               executable=True, writable=True),
        Region("mtbar", MTBAR_BASE, 0x0004_0000, World.NONSECURE,
               executable=True, writable=True),
        Region("rodata", RODATA_BASE, 0x0004_0000, World.NONSECURE,
               executable=False, writable=False),
        Region("s_flash", S_FLASH_BASE, 0x0008_0000, World.SECURE,
               executable=True, writable=False),
        Region("ns_ram", NS_RAM_BASE, NS_RAM_SIZE, World.NONSECURE),
        Region("mtb_sram", MTB_SRAM_BASE, MTB_SRAM_SIZE, World.SECURE),
        Region("s_ram", S_RAM_BASE, 0x0004_0000, World.SECURE),
        Region("mmio", MMIO_BASE, MMIO_SIZE, World.NONSECURE, mmio=True),
    ]


class MemoryMap:
    """Region lookup plus runtime MPU-style overrides.

    The CFA engine uses :meth:`lock_region_writes` to make the attested
    code immutable for the duration of an attested execution, matching
    the NS-MPU locking step of RAP-Track's CFA Engine (paper section
    IV-A).
    """

    def __init__(self, regions: Optional[List[Region]] = None):
        self.regions = regions if regions is not None else default_regions()
        self._write_locks: Dict[str, bool] = {}
        #: bumped on every lock/unlock so cached write grants revalidate
        self.lock_epoch = 0
        # Binary-search index over the (static, disjoint) region list.
        # Overlapping custom maps keep first-match semantics via the
        # linear fallback.
        ordered = sorted(self.regions, key=lambda r: r.base)
        self._overlapping = any(
            a.base + a.size > b.base for a, b in zip(ordered, ordered[1:]))
        self._sorted_regions = ordered
        self._bases = [r.base for r in ordered]

    def region_at(self, address: int) -> Optional[Region]:
        if self._overlapping:
            for region in self.regions:
                if region.contains(address):
                    return region
            return None
        i = bisect_right(self._bases, address) - 1
        if i >= 0:
            region = self._sorted_regions[i]
            if address < region.base + region.size:
                return region
        return None

    def by_name(self, name: str) -> Region:
        for region in self.regions:
            if region.name == name:
                return region
        raise KeyError(name)

    # -- MPU-style locking -------------------------------------------------

    def lock_region_writes(self, name: str) -> None:
        self._write_locks[name] = True
        self.lock_epoch += 1

    def unlock_region_writes(self, name: str) -> None:
        self._write_locks.pop(name, None)
        self.lock_epoch += 1

    def is_write_locked(self, name: str) -> bool:
        return self._write_locks.get(name, False)

    def check_access(self, address: int, *, world: World, is_write: bool,
                     is_fetch: bool = False):
        """Return the region if the access is legal, else raise MemFault."""
        from repro.machine.faults import MemFault

        region = self.region_at(address)
        if region is None:
            raise MemFault("access to unmapped address", address)
        if region.world is World.SECURE and world is World.NONSECURE:
            raise MemFault(
                f"non-secure access to secure region {region.name}", address
            )
        if is_fetch and not region.executable:
            raise MemFault(f"fetch from non-executable region {region.name}",
                           address)
        if is_write and (not region.writable or self.is_write_locked(region.name)):
            raise MemFault(f"write to protected region {region.name}", address)
        return region
