"""JIT runtime: per-image code caches, hook hoisting, invalidation.

Blocks are compiled lazily with a hotness threshold (an entry PC must be
dispatched twice before it is compiled) and cached in two layers:

* a **shared** per-:class:`Image` cache (compilation depends only on the
  image, so MCUs running the same binary — the fleet, the eval grid —
  share compiled code);
* a **local** per-runtime cache of blocks validated against this MCU's
  memory map (every PC in the block must be fetch-legal for this
  world/memmap, because the generated code hoists the per-instruction
  MPU fetch check to registration time).

Hook hoisting: the run loop may execute a compiled block only if every
registered CPU hook opts into batch observation.  An observer opts in by
declaring which of its bound methods is its per-instruction hook
(``JIT_PRE_HOOK`` / ``JIT_RETIRE_HOOK`` class attributes naming the
method) and providing the batch counterpart (``jit_block_pre(pcs)`` /
``jit_block_retire(pcs)``).  Any unrecognized hook — a test lambda, an
experiment's closure — disables block dispatch entirely until the hook
lists change, and execution falls back to per-instruction stepping.
"""

from __future__ import annotations

import weakref
from typing import Dict, List, Optional, Union

from repro.asm.program import Image
from repro.machine.faults import MemFault
from repro.machine.jit.compiler import CompiledBlock, compile_superblock
from repro.machine.jit.superblock import discover_superblock
from repro.machine.memmap import MemoryMap, World

#: dispatches of an entry PC before it is compiled
HOT_THRESHOLD = 2


class _NoJit:
    """Sentinel: this address must be interpreted."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "NOJIT"


NOJIT = _NoJit()


def hoisted_handlers(hooks, attr: str, batch_name: str) -> Optional[list]:
    """Map per-instruction hooks to their batch counterparts.

    Returns a list (possibly empty) of batch callables in hook order, or
    None if any hook does not implement the block-observation protocol.
    """
    out = []
    for hook in hooks:
        obj = getattr(hook, "__self__", None)
        if obj is None:
            return None
        if getattr(hook, "__name__", None) != getattr(type(obj), attr, None):
            return None
        batch = getattr(obj, batch_name, None)
        if batch is None:
            return None
        out.append(batch)
    return out


class _SharedCache:
    """Compilation results shared by every runtime of one image."""

    def __init__(self):
        self.blocks: Dict[int, Union[CompiledBlock, _NoJit]] = {}
        self.hot: Dict[int, int] = {}
        self.runtimes: "weakref.WeakSet[JITRuntime]" = weakref.WeakSet()


_IMAGE_CACHES: "weakref.WeakKeyDictionary[Image, _SharedCache]" = (
    weakref.WeakKeyDictionary()
)


def shared_cache_for(image: Image) -> _SharedCache:
    cache = _IMAGE_CACHES.get(image)
    if cache is None:
        cache = _SharedCache()
        _IMAGE_CACHES[image] = cache
    return cache


class JITRuntime:
    """One MCU's view of the JIT: validated blocks plus statistics."""

    def __init__(self, image: Image, memmap: MemoryMap, world: World):
        self.image = image
        self.memmap = memmap
        self.world = world
        self._shared = shared_cache_for(image)
        self._shared.runtimes.add(self)
        #: entry pc -> CompiledBlock | NOJIT; read directly by MCU.run
        self.blocks: Dict[int, Union[CompiledBlock, _NoJit]] = {}
        self.compiles = 0
        self.invalidations = 0

    # -- dispatch side -----------------------------------------------------

    def consider(self, pc: int) -> Union[CompiledBlock, _NoJit]:
        """Called by the run loop on a local-cache miss.

        Counts warmth, compiles when hot, validates fetch legality for
        this runtime, and caches the decision locally.  Returns NOJIT
        (without caching) while the address is still warming up.
        """
        shared = self._shared
        blk = shared.blocks.get(pc)
        if blk is None:
            count = shared.hot.get(pc, 0) + 1
            if count < HOT_THRESHOLD:
                shared.hot[pc] = count
                return NOJIT
            shared.hot.pop(pc, None)
            blk = self._compile(pc)
            shared.blocks[pc] = blk
        if blk is not NOJIT and not self._fetch_ok(blk):
            blk = NOJIT
        self.blocks[pc] = blk
        return blk

    def _compile(self, pc: int) -> Union[CompiledBlock, _NoJit]:
        block = discover_superblock(self.image, pc)
        if block is None:
            return NOJIT
        try:
            compiled = compile_superblock(self.image, block)
        except Exception:
            # anything the compiler declines is interpreted forever;
            # genuine faults (bad labels, undefined ops) then surface at
            # the architecturally correct instruction via step()
            return NOJIT
        self.compiles += 1
        return compiled

    def _fetch_ok(self, blk: CompiledBlock) -> bool:
        """All of the block's PCs must be fetchable under this memmap."""
        try:
            for pc in blk.pcs:
                self.memmap.check_access(
                    pc, world=self.world, is_write=False, is_fetch=True)
        except MemFault:
            return False
        return True

    # -- invalidation ------------------------------------------------------

    def invalidate(self, address: Optional[int] = None) -> int:
        """Drop cached blocks after the code at ``address`` changed.

        With an address, drops every compiled block whose range covers
        it; NOJIT decisions and warmth counters are always dropped (a
        rewrite can make a previously unprofitable address compilable).
        With no address, drops everything.  Local caches of *all*
        runtimes sharing the image are cleared in place (the run loop
        aliases the dict).  Returns the number of compiled blocks
        dropped.
        """
        shared = self._shared
        if address is None:
            dropped = sum(1 for b in shared.blocks.values() if b is not NOJIT)
            shared.blocks.clear()
        else:
            stale = [entry for entry, b in shared.blocks.items()
                     if b is NOJIT or b.entry <= address < b.end]
            dropped = sum(1 for entry in stale
                          if shared.blocks[entry] is not NOJIT)
            for entry in stale:
                del shared.blocks[entry]
        shared.hot.clear()
        for runtime in shared.runtimes:
            runtime.blocks.clear()
        self.invalidations += 1
        return dropped

    def on_code_write(self, address: int) -> None:
        """Memory observer: a checked write landed in executable code."""
        self.invalidate(address)
