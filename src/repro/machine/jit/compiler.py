"""Superblock → Python code generation.

Each discovered :class:`Superblock` is rendered into the source of one
function ``_block(cpu, _ret)`` and ``compile()``d.  The generated code
is a straight transliteration of what ``CPU.step`` would do for each
instruction, with everything static folded at compile time:

* operand dispatch (kind/mnemonic tests, ``isinstance`` checks) is gone;
* PC-relative reads (``pc + 4``), label addresses, and immediates are
  constants;
* per-instruction cycle and retire accounting is pre-summed and
  committed once at the block boundary;
* ARM flag updates are computed into locals (``ln``/``lz``/``lc``/``lv``)
  and committed to ``cpu.flags`` once.

Memory operations still go through ``cpu.memory.read``/``write`` in
original program order, so MPU checks, MMIO side effects, and faults are
identical to the interpreter's.  Fault exactness: before every memory
operation the generated code stores the instruction's PC in ``_fp``; if
the operation raises, the handler commits the cycles/retires of the
instructions that fully completed (from the ``_CYC``/``_RETD`` tables),
sets ``regs[15] = _fp`` and the flag state, then re-raises — leaving the
CPU in exactly the state the interpreter would have left it in, because
register and memory writes are issued incrementally in interpreter
order.

A block's terminating control transfer (direct/conditional branch, call,
``bx``/``blx``, ``cbz``/``cbnz``, PC-destined pop/load) is *inlined* with
real per-instruction hook calls — only the sequential body has its
observation hoisted.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.asm.program import Image
from repro.isa import alu
from repro.isa.conditions import normalise_cond
from repro.isa.instructions import Instr, InstrKind, TAKEN_BRANCH_PENALTY
from repro.isa.operands import Imm, Label, Mem, Reg
from repro.isa.registers import LR, PC, SP
from repro.machine.cpu import RetireEvent
from repro.machine.jit.superblock import Superblock

M32 = alu.MASK32

#: mnemonics whose generated code reads or writes the flag locals
_FLAG_MNEMONICS = frozenset({
    "mov", "mvn", "add", "sub", "rsb", "adc", "sbc", "mul",
    "and", "orr", "eor", "bic", "lsl", "lsr", "asr", "ror",
    "cmp", "cmn", "tst",
})

_LOAD_SIZES = {"ldrb": 1, "ldrh": 2}
_STORE_SIZES = {"strb": 1, "strh": 2}

#: condition code -> expression over the flag locals
_COND_EXPRS = {
    "eq": "lz",
    "ne": "not lz",
    "cs": "lc",
    "cc": "not lc",
    "mi": "ln",
    "pl": "not ln",
    "vs": "lv",
    "vc": "not lv",
    "hi": "lc and not lz",
    "ls": "not lc or lz",
    "ge": "ln == lv",
    "lt": "ln != lv",
    "gt": "not lz and ln == lv",
    "le": "lz or ln != lv",
}


class JitCompileError(Exception):
    """The block contains something the compiler cannot specialize."""


class CompiledBlock:
    """One compiled superblock plus its dispatch metadata."""

    __slots__ = ("entry", "end", "pcs", "body_pcs", "fn", "max_extra",
                 "n_instr", "source")

    def __init__(self, entry: int, end: int, pcs: Tuple[int, ...],
                 body_pcs: Tuple[int, ...], fn, max_extra: int,
                 n_instr: int, source: str):
        self.entry = entry
        self.end = end
        self.pcs = pcs
        self.body_pcs = body_pcs
        self.fn = fn
        #: retires beyond the first — the run-loop dispatches this block
        #: only when ``retired_so_far + max_extra < limit``, so the
        #: execution-limit guard fires on exactly the same instruction
        #: boundary as under interpretation
        self.max_extra = max_extra
        self.n_instr = n_instr
        self.source = source

    def __repr__(self) -> str:
        return (f"CompiledBlock(entry={self.entry:#x}, end={self.end:#x}, "
                f"n={self.n_instr})")


class _Codegen:
    """Accumulates generated lines plus the fault-commit tables."""

    def __init__(self, image: Image, block: Superblock):
        self.image = image
        self.block = block
        self.lines: List[str] = []
        self.uses_flags = False
        self.uses_mem = False
        self.body_faults = False  # any memory op inside the body
        self.cyc_at: Dict[int, int] = {}
        self.retd_at: Dict[int, int] = {}
        self._cyc = 0  # running pre-sum over completed body instructions
        self._retd = 0

    def emit(self, line: str) -> None:
        self.lines.append(line)

    # -- operand expressions ----------------------------------------------

    def reg_expr(self, num: int, pc: int) -> str:
        if num == PC:
            return hex((pc + 4) & M32)  # architectural read-ahead
        return f"regs[{num}]"

    def val_expr(self, op, pc: int) -> str:
        if isinstance(op, Reg):
            return self.reg_expr(op.num, pc)
        if isinstance(op, Imm):
            return hex(op.value & M32)
        if isinstance(op, Label):
            return hex(self.image.addr_of(op.name))  # KeyError -> no compile
        raise JitCompileError(f"bad operand {op!r}")

    def addr_expr(self, mem: Mem, pc: int) -> str:
        parts = self.reg_expr(mem.base.num, pc)
        if mem.offset:
            parts += f" + ({mem.offset})"
        if mem.index is not None:
            if mem.shift:
                parts += f" + ({self.reg_expr(mem.index.num, pc)} << {mem.shift})"
            else:
                parts += f" + {self.reg_expr(mem.index.num, pc)}"
        return f"({parts}) & 0xFFFFFFFF"

    # -- fault bookkeeping -------------------------------------------------

    def mark_mem_op(self, pc: int) -> None:
        """Record the commit state to restore if this instruction faults."""
        self.uses_mem = True
        self.body_faults = True
        self.cyc_at[pc] = self._cyc
        self.retd_at[pc] = self._retd
        self.emit(f"_fp = {hex(pc)}")

    def account(self, instr: Instr, extra: int = 0) -> None:
        """Advance the pre-sums past one completed sequential instruction."""
        self._cyc += instr.spec.cycles + extra
        self._retd += 1

    # -- per-kind body generation -----------------------------------------

    def gen_body(self, pc: int, instr: Instr) -> None:
        kind = instr.kind
        if instr.mnemonic in _FLAG_MNEMONICS:
            self.uses_flags = True
        if kind is InstrKind.MOVE:
            self._gen_move(pc, instr)
        elif kind is InstrKind.ALU:
            self._gen_alu(pc, instr)
        elif kind is InstrKind.COMPARE:
            self._gen_compare(pc, instr)
        elif kind is InstrKind.LOAD:
            self._gen_load(pc, instr)
        elif kind is InstrKind.STORE:
            self._gen_store(pc, instr)
        elif kind is InstrKind.PUSH:
            self._gen_push(pc, instr)
        elif kind is InstrKind.POP:
            self._gen_pop(pc, instr)
        elif kind is InstrKind.SYSTEM:  # only nop reaches the body
            self.account(instr)
        else:
            raise JitCompileError(f"unsupported body kind {kind}")

    def _gen_move(self, pc: int, instr: Instr) -> None:
        dest, src = instr.operands
        d = dest.num
        mn = instr.mnemonic
        if mn == "adr":
            self.emit(f"regs[{d}] = {hex(self.image.addr_of(src.name))}")
        elif mn == "mov32":
            self.emit(f"regs[{d}] = {self.val_expr(src, pc)}")
        else:  # mov / mvn set N and Z
            value = self.val_expr(src, pc)
            if mn == "mvn":
                self.emit(f"_t = {value} ^ 0xFFFFFFFF")
            else:
                self.emit(f"_t = {value}")
            self.emit(f"regs[{d}] = _t")
            self.emit("ln = _t > 0x7FFFFFFF")
            self.emit("lz = _t == 0")
        self.account(instr)

    def _gen_alu(self, pc: int, instr: Instr) -> None:
        dest, lhs_op, rhs_op = instr.operands
        d = dest.num
        mn = instr.mnemonic
        a = self.val_expr(lhs_op, pc)
        b = self.val_expr(rhs_op, pc)
        emit = self.emit
        if mn in ("add", "adc"):
            cin = "lc" if mn == "adc" else None
            emit(f"_u = {a} + {b}" + (f" + {cin}" if cin else ""))
            self._addsub_flags(a, b)
            emit(f"regs[{d}] = _r")
        elif mn in ("sub", "sbc", "rsb"):
            if mn == "rsb":
                a, b = b, a
            emit(f"_b = {b} ^ 0xFFFFFFFF")
            cin = "lc" if mn == "sbc" else "1"
            emit(f"_u = {a} + _b + {cin}")
            self._addsub_flags(a, "_b")
            emit(f"regs[{d}] = _r")
        elif mn == "mul":
            emit(f"_r = ({a} * {b}) & 0xFFFFFFFF")
            emit("ln = _r > 0x7FFFFFFF")
            emit("lz = _r == 0")
            emit(f"regs[{d}] = _r")
        elif mn == "udiv":
            emit(f"regs[{d}] = _udiv({a}, {b})")
        elif mn == "sdiv":
            emit(f"regs[{d}] = _sdiv({a}, {b})")
        elif mn in ("and", "orr", "eor", "bic"):
            op = {"and": "&", "orr": "|", "eor": "^"}.get(mn)
            if mn == "bic":
                emit(f"_r = {a} & ~{b}")
            else:
                emit(f"_r = {a} {op} {b}")
            emit("ln = _r > 0x7FFFFFFF")
            emit("lz = _r == 0")
            emit(f"regs[{d}] = _r")
        elif mn in ("lsl", "lsr", "asr", "ror"):
            emit(f"_r, lc = _{mn}({a}, {b} & 0xFF, lc)")
            emit("ln = _r > 0x7FFFFFFF")
            emit("lz = _r == 0")
            emit(f"regs[{d}] = _r")
        else:
            raise JitCompileError(f"ALU op {mn}")
        self.account(instr)

    def _addsub_flags(self, a: str, b: str) -> None:
        """N/Z/C/V for ``_u = a + b (+ cin)`` already emitted."""
        emit = self.emit
        emit("_r = _u & 0xFFFFFFFF")
        emit("ln = _r > 0x7FFFFFFF")
        emit("lz = _r == 0")
        emit("lc = _u > 0xFFFFFFFF")
        # signed overflow: both operands' signs differ from the result's
        emit(f"lv = (({a} ^ _r) & ({b} ^ _r)) > 0x7FFFFFFF")

    def _gen_compare(self, pc: int, instr: Instr) -> None:
        lhs_op, rhs_op = instr.operands
        mn = instr.mnemonic
        a = self.val_expr(lhs_op, pc)
        b = self.val_expr(rhs_op, pc)
        if mn == "cmp":
            self.emit(f"_b = {b} ^ 0xFFFFFFFF")
            self.emit(f"_u = {a} + _b + 1")
            self._addsub_flags(a, "_b")
        elif mn == "cmn":
            self.emit(f"_u = {a} + {b}")
            self._addsub_flags(a, b)
        else:  # tst
            self.emit(f"_r = {a} & {b}")
            self.emit("ln = _r > 0x7FFFFFFF")
            self.emit("lz = _r == 0")
        self.account(instr)

    def _gen_load(self, pc: int, instr: Instr) -> None:
        dest, mem = instr.operands
        size = _LOAD_SIZES.get(instr.mnemonic, 4)
        self.mark_mem_op(pc)
        self.emit(f"regs[{dest.num}] = "
                  f"mem_read({self.addr_expr(mem, pc)}, {size}, world)")
        self.account(instr)

    def _gen_store(self, pc: int, instr: Instr) -> None:
        src, mem = instr.operands
        size = _STORE_SIZES.get(instr.mnemonic, 4)
        self.mark_mem_op(pc)
        self.emit(f"mem_write({self.addr_expr(mem, pc)}, "
                  f"{self.reg_expr(src.num, pc)}, {size}, world)")
        self.account(instr)

    def _gen_push(self, pc: int, instr: Instr) -> None:
        (reglist,) = instr.operands
        regs = list(reglist)
        self.mark_mem_op(pc)
        self.emit(f"_sp = regs[13] - {4 * len(regs)}")
        for i, num in enumerate(regs):  # ascending addresses
            slot = "_sp" if i == 0 else f"_sp + {4 * i}"
            self.emit(f"mem_write({slot}, {self.reg_expr(num, pc)}, 4, world)")
        self.emit(f"regs[13] = _sp")
        self.account(instr, extra=len(regs))

    def _gen_pop(self, pc: int, instr: Instr) -> None:
        (reglist,) = instr.operands
        regs = list(reglist)  # PC excluded by discovery
        self.mark_mem_op(pc)
        self.emit("_sp = regs[13]")
        for i, num in enumerate(regs):
            slot = "_sp" if i == 0 else f"_sp + {4 * i}"
            self.emit(f"regs[{num}] = mem_read({slot}, 4, world)")
        self.emit(f"regs[13] = _sp + {4 * len(regs)}")
        self.account(instr, extra=len(regs))

    # -- terminator generation --------------------------------------------

    def gen_terminator(self, tpc: int, instr: Instr) -> None:
        """Inline the final transfer with *real* per-instruction hooks."""
        kind = instr.kind
        emit = self.emit
        next_pc = (tpc + instr.size) & M32
        base_cycles = instr.spec.cycles

        emit("for _h in cpu.pre_hooks:")
        emit(f"    _h({hex(tpc)})")

        if kind is InstrKind.BRANCH:
            (target,) = instr.operands
            tgt = self._target_expr(target, tpc)
            if instr.cond is not None:
                self.uses_flags = True
                cond = _COND_EXPRS[normalise_cond(instr.cond)]
                emit(f"if {cond}:")
                emit(f"    _n = {tgt}")
                emit("else:")
                emit(f"    _n = {hex(next_pc)}")
            else:
                emit(f"_n = {tgt}")
        elif kind is InstrKind.CALL:
            (target,) = instr.operands
            emit(f"regs[14] = {hex(next_pc)}")
            emit(f"_n = {self._target_expr(target, tpc)}")
        elif kind is InstrKind.INDIRECT_CALL:
            (target,) = instr.operands
            emit(f"regs[14] = {hex(next_pc)}")
            emit(f"_n = {self.reg_expr(target.num, tpc)} & 0xFFFFFFFE")
        elif kind is InstrKind.INDIRECT_BRANCH:
            (target,) = instr.operands
            emit(f"_n = {self.reg_expr(target.num, tpc)} & 0xFFFFFFFE")
        elif kind is InstrKind.COMPARE_BRANCH:
            reg, target = instr.operands
            test = "==" if instr.mnemonic == "cbz" else "!="
            emit(f"if {self.reg_expr(reg.num, tpc)} {test} 0:")
            emit(f"    _n = {self._target_expr(target, tpc)}")
            emit("else:")
            emit(f"    _n = {hex(next_pc)}")
        elif kind is InstrKind.POP:
            (reglist,) = instr.operands
            regs = list(reglist)
            base_cycles += len(regs)
            emit("_sp = regs[13]")
            for i, num in enumerate(regs):
                slot = "_sp" if i == 0 else f"_sp + {4 * i}"
                if num == PC:
                    emit(f"_n = mem_read({slot}, 4, world) & 0xFFFFFFFE")
                else:
                    emit(f"regs[{num}] = mem_read({slot}, 4, world)")
            emit(f"regs[13] = _sp + {4 * len(regs)}")
            self.uses_mem = True
        elif kind is InstrKind.LOAD:  # ldr pc, [...] — indirect jump
            _, mem = instr.operands
            emit(f"_n = mem_read({self.addr_expr(mem, tpc)}, 4, world)"
                 " & 0xFFFFFFFE")
            self.uses_mem = True
        else:
            raise JitCompileError(f"unsupported terminator kind {kind}")

        emit("regs[15] = _n")
        emit(f"_sq = _n == {hex(next_pc)}")
        emit(f"cpu.cycles += {base_cycles + TAKEN_BRANCH_PENALTY} - _sq")
        emit("cpu.retired += 1")
        emit("if cpu.retire_hooks:")
        emit(f"    _e = _Ev({hex(tpc)}, _n, _sq, _TI)")
        emit("    for _h in cpu.retire_hooks:")
        emit("        _h(_e)")

    def _target_expr(self, target, pc: int) -> str:
        """Branch-target value with the interpreter's ``& ~1`` applied."""
        if isinstance(target, (Label, Imm)):
            value = (self.image.addr_of(target.name)
                     if isinstance(target, Label) else target.value & M32)
            return hex(value & ~1)
        if isinstance(target, Reg):
            return f"{self.reg_expr(target.num, pc)} & 0xFFFFFFFE"
        raise JitCompileError(f"bad branch target {target!r}")


def compile_superblock(image: Image, block: Superblock) -> CompiledBlock:
    """Generate, compile, and wrap one superblock.

    Raises :class:`JitCompileError` (or ``KeyError`` for unresolved
    labels) when the block cannot be specialized; callers treat any
    exception as a permanent "interpret this address" decision.
    """
    gen = _Codegen(image, block)
    for pc, instr in block.body:
        gen.gen_body(pc, instr)

    body_lines = gen.lines
    gen.lines = []
    n_body = len(block.body)
    body_pcs = tuple(pc for pc, _ in block.body)

    # -- commit of the sequential body ------------------------------------
    commit = gen.lines
    if n_body:
        gen.emit(f"cpu.cycles += {gen._cyc}")
        gen.emit(f"cpu.retired += {n_body}")
    if block.terminator is not None:
        gen.emit(f"regs[15] = {hex(block.terminator[0])}")
    else:
        gen.emit(f"regs[15] = {hex(block.end & M32)}")

    gen.lines = []
    if block.terminator is not None:
        gen.gen_terminator(*block.terminator)
    term_lines = gen.lines

    # flag handling decided now that every part has been generated
    flag_load = []
    flag_commit = []
    if gen.uses_flags:
        flag_load = ["flags = cpu.flags", "ln = flags.n", "lz = flags.z",
                     "lc = flags.c", "lv = flags.v"]
        flag_commit = ["flags.n = ln", "flags.z = lz", "flags.c = lc",
                       "flags.v = lv"]

    preamble = ["regs = cpu.regs"]
    if gen.uses_mem:
        preamble += ["mem_read = cpu.memory.read",
                     "mem_write = cpu.memory.write",
                     "world = cpu.world"]
    preamble += flag_load

    out: List[str] = ["def _block(cpu, _ret):"]

    def indent(lines: List[str], depth: int = 1) -> None:
        out.extend("    " * depth + line for line in lines)

    indent(preamble)
    if gen.body_faults:
        indent(["try:"])
        indent(body_lines, 2)
        indent(["except BaseException:",
                "    cpu.cycles += _CYC[_fp]",
                "    cpu.retired += _RETD[_fp]",
                "    regs[15] = _fp"])
        indent(flag_commit, 2)
        indent(["    raise"])
        indent(commit)
        indent(flag_commit)
    else:
        indent(body_lines)
        indent(commit)
        indent(flag_commit)
    if n_body:
        indent(["for _h in _ret:", "    _h(_PCS)"])
    indent(term_lines)

    source = "\n".join(out) + "\n"
    namespace = {
        "_CYC": gen.cyc_at,
        "_RETD": gen.retd_at,
        "_Ev": RetireEvent,
        "_TI": block.terminator[1] if block.terminator is not None else None,
        "_PCS": body_pcs,
        "_udiv": alu.udiv,
        "_sdiv": alu.sdiv,
        "_lsl": alu.lsl,
        "_lsr": alu.lsr,
        "_asr": alu.asr,
        "_ror": alu.ror,
    }
    code = compile(source, f"<jit:{block.entry:#x}>", "exec")
    exec(code, namespace)

    n_total = len(block)
    return CompiledBlock(
        entry=block.entry,
        end=block.end,
        pcs=block.pcs,
        body_pcs=body_pcs,
        fn=namespace["_block"],
        max_extra=n_total - 1,
        n_instr=n_total,
        source=source,
    )
