"""Superblock discovery over a linked image.

A *superblock* here is a maximal straight-line run of JIT-safe
instructions starting at some entry PC, optionally ended by a single
*inlinable terminator* (a direct/indirect branch, call, compare-branch,
or a PC-destined pop/load).  Discovery is purely static: it walks
``image.instr_at`` forward from the entry until it hits a terminator or
an instruction the compiler refuses to specialize.

JIT-safe body instructions are exactly the ones whose interpreter
semantics are (a) sequential (``next_pc == pc + size``) and (b) free of
side channels the compiler cannot reproduce exactly:

* ``SYSTEM`` ops other than ``nop`` end the block (``svc`` enters the
  SecureGateway, ``bkpt`` halts — both must run in the interpreter);
* ``MOVE``/``ALU`` with a PC destination end the block (the interpreter
  raises :class:`UndefinedInstruction` for these, and the fallback
  ``step()`` must be the one to raise it);
* malformed operands (non-``Mem`` memory operand, non-``Reg``
  destination) end the block for the same reason.

Loads and stores — including MMIO-visible ones — stay *inside* the
block: the compiled code issues them through ``memory.read``/``write``
in original program order, so device side effects are identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.asm.program import Image
from repro.isa.instructions import Instr, InstrKind
from repro.isa.operands import Mem, Reg
from repro.isa.registers import PC

#: Kinds the compiler can inline as a block terminator.
TERMINATOR_KINDS = frozenset({
    InstrKind.BRANCH,
    InstrKind.CALL,
    InstrKind.INDIRECT_CALL,
    InstrKind.INDIRECT_BRANCH,
    InstrKind.COMPARE_BRANCH,
})

#: Smallest body worth compiling when there is no inlinable terminator.
MIN_BODY = 2

#: Hard cap on block length (keeps generated functions small).
MAX_BLOCK = 128


@dataclass
class Superblock:
    """One discovered straight-line region."""

    entry: int
    #: (pc, instr) pairs executed sequentially
    body: List[Tuple[int, Instr]] = field(default_factory=list)
    #: inlinable terminating transfer, or None if the block ends because
    #: the next instruction must run in the interpreter
    terminator: Optional[Tuple[int, Instr]] = None

    @property
    def end(self) -> int:
        """First address past the block."""
        if self.terminator is not None:
            pc, instr = self.terminator
            return pc + instr.size
        pc, instr = self.body[-1]
        return pc + instr.size

    @property
    def pcs(self) -> Tuple[int, ...]:
        out = [pc for pc, _ in self.body]
        if self.terminator is not None:
            out.append(self.terminator[0])
        return tuple(out)

    def __len__(self) -> int:
        return len(self.body) + (1 if self.terminator is not None else 0)


def _body_safe(instr: Instr) -> bool:
    """True if the compiler can execute ``instr`` inside a block body."""
    kind = instr.kind
    ops = instr.operands
    if kind is InstrKind.MOVE or kind is InstrKind.ALU:
        dest = ops[0]
        return isinstance(dest, Reg) and dest.num != PC
    if kind is InstrKind.COMPARE:
        return True
    if kind is InstrKind.LOAD:
        dest = ops[0]
        return (isinstance(dest, Reg) and dest.num != PC
                and isinstance(ops[1], Mem))
    if kind is InstrKind.STORE:
        return isinstance(ops[0], Reg) and isinstance(ops[1], Mem)
    if kind is InstrKind.PUSH:
        return True
    if kind is InstrKind.POP:
        return PC not in ops[0]
    if kind is InstrKind.SYSTEM:
        return instr.mnemonic == "nop"
    return False


def _terminator_safe(instr: Instr) -> bool:
    """True if ``instr`` can be compiled as the block's final transfer."""
    kind = instr.kind
    if kind in TERMINATOR_KINDS:
        return True
    if kind is InstrKind.POP:
        return PC in instr.operands[0]
    if kind is InstrKind.LOAD:
        dest = instr.operands[0]
        return (isinstance(dest, Reg) and dest.num == PC
                and isinstance(instr.operands[1], Mem))
    return False


def discover_superblock(image: Image, entry: int) -> Optional[Superblock]:
    """Walk forward from ``entry``; None if nothing worth compiling."""
    block = Superblock(entry)
    pc = entry
    while len(block.body) < MAX_BLOCK:
        instr = image.instr_at.get(pc)
        if instr is None:
            break
        if _body_safe(instr):
            block.body.append((pc, instr))
            pc += instr.size
            continue
        if _terminator_safe(instr):
            block.terminator = (pc, instr)
        break
    if block.terminator is None and len(block.body) < MIN_BODY:
        return None
    if not block.body and block.terminator is None:
        return None
    return block
