"""Superblock JIT tier for the ISA interpreter.

The software analogue of the paper's MTBDR insight: deterministic
straight-line regions need no per-instruction observation.  Hot
single-entry straight-line superblocks are compiled once into
specialized Python functions that execute the whole block with cycle
counts pre-summed and the per-instruction DWT/MTB/tracer observation
hoisted to the block boundary; everything else (indirect control flow,
SVC gateway calls, faults, unknown hooks) falls back to the
one-instruction-at-a-time interpreter, so trace semantics stay
bit-identical.

See ``docs/internals.md`` section 8 for the soundness argument.
"""

from repro.machine.jit.superblock import Superblock, discover_superblock
from repro.machine.jit.compiler import CompiledBlock, compile_superblock
from repro.machine.jit.runtime import (
    NOJIT,
    JITRuntime,
    hoisted_handlers,
)

__all__ = [
    "Superblock",
    "discover_superblock",
    "CompiledBlock",
    "compile_superblock",
    "JITRuntime",
    "NOJIT",
    "hoisted_handlers",
]
