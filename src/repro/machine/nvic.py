"""A minimal NVIC model (interrupt controller).

The paper's system model (section III) *disables* Non-Secure interrupts
during attested execution and defers interrupt-tolerant CFA to related
work (ISC-FLAT et al.). This model exists to make that guarantee
testable: peripherals can pend IRQs, unattested firmware services them
through Cortex-M-style exception entry/return, and the CFA engine's
disable step provably keeps handlers from running mid-attestation.

Exception entry follows the hardware convention in simplified form: the
caller-saved frame {r0-r3, r12, lr, return-address, xpsr} is pushed to
the stack, LR is loaded with the EXC_RETURN magic, and the PC jumps to
the vector. A ``bx lr`` onto EXC_RETURN unwinds the frame.
"""

from __future__ import annotations

from typing import Dict, List

from repro.isa.registers import LR, PC, SP
from repro.machine.cpu import CPU
from repro.machine.faults import MachineFault

#: magic LR value signalling exception return (low bits ignored)
EXC_RETURN = 0xFFFF_FFF1
EXC_RETURN_MASKED = EXC_RETURN & ~1

_FRAME_REGS = (0, 1, 2, 3, 12, LR)  # plus return address and xPSR
FRAME_BYTES = 4 * (len(_FRAME_REGS) + 2)


class NVIC:
    """Pending-interrupt bookkeeping and exception entry/return."""

    def __init__(self):
        self.vectors: Dict[int, int] = {}  # irq -> handler address
        self.pending: List[int] = []
        self.ns_enabled = True  # global Non-Secure interrupt enable
        self.serviced: List[int] = []  # history, for tests/telemetry
        self._active_depth = 0

    # -- configuration -----------------------------------------------------

    def register_vector(self, irq: int, handler_address: int) -> None:
        self.vectors[irq] = handler_address

    def raise_irq(self, irq: int) -> None:
        """Pend an interrupt (peripheral side)."""
        if irq not in self.vectors:
            raise MachineFault(f"IRQ {irq} has no vector")
        if irq not in self.pending:
            self.pending.append(irq)

    # -- CPU integration -----------------------------------------------------

    def service_if_pending(self, cpu: CPU) -> bool:
        """Take the highest-priority (lowest-numbered) pending IRQ.

        Called by the run loop between instructions; returns True if an
        exception entry was performed.
        """
        if not self.ns_enabled or not self.pending or self._active_depth:
            return False
        irq = min(self.pending)
        self.pending.remove(irq)
        self._enter(cpu, irq)
        return True

    def _enter(self, cpu: CPU, irq: int) -> None:
        flags = cpu.flags
        xpsr = (flags.n << 31) | (flags.z << 30) | (flags.c << 29) \
            | (flags.v << 28) | (irq & 0xFF)
        frame = [cpu.regs[r] for r in _FRAME_REGS]
        frame += [cpu.regs[PC], xpsr]
        sp = cpu.regs[SP] - FRAME_BYTES
        for i, word in enumerate(frame):
            cpu.memory.poke(sp + 4 * i, word, 4)
        cpu.regs[SP] = sp
        cpu.regs[LR] = EXC_RETURN
        cpu.regs[PC] = self.vectors[irq] & ~1
        cpu.cycles += 12  # Cortex-M exception entry latency
        self.serviced.append(irq)
        self._active_depth += 1

    def exception_return(self, cpu: CPU) -> None:
        """Unwind the hardware frame (PC reached EXC_RETURN)."""
        if self._active_depth == 0:
            raise MachineFault("exception return with no active exception")
        sp = cpu.regs[SP]
        values = [cpu.memory.peek(sp + 4 * i, 4)
                  for i in range(len(_FRAME_REGS) + 2)]
        for reg, value in zip(_FRAME_REGS, values):
            cpu.regs[reg] = value
        return_address, xpsr = values[-2], values[-1]
        cpu.flags.n = bool(xpsr & (1 << 31))
        cpu.flags.z = bool(xpsr & (1 << 30))
        cpu.flags.c = bool(xpsr & (1 << 29))
        cpu.flags.v = bool(xpsr & (1 << 28))
        cpu.regs[SP] = sp + FRAME_BYTES
        cpu.regs[PC] = return_address & ~1
        cpu.cycles += 10  # exception return latency
        self._active_depth -= 1
