"""Simulated MCU platform: memory, MMIO bus, CPU core, and the SoC.

Models the parts of a Cortex-M33-class device that the RAP-Track
evaluation depends on: a cycle-counted CPU, a flat physical memory map
with MPU-enforced access control, memory-mapped peripherals, and hook
points where the trace units (``repro.trace``) observe retired
instructions.
"""

from repro.machine.faults import (
    ExecutionLimitExceeded,
    MachineFault,
    MemFault,
    UndefinedInstruction,
)
from repro.machine.memmap import MemoryMap, Region, World
from repro.machine.memory import Memory
from repro.machine.mmio import MMIOBus, MMIODevice
from repro.machine.cpu import CPU, RetireEvent
from repro.machine.mcu import MCU, RunResult

__all__ = [
    "MachineFault",
    "MemFault",
    "UndefinedInstruction",
    "ExecutionLimitExceeded",
    "World",
    "Region",
    "MemoryMap",
    "Memory",
    "MMIOBus",
    "MMIODevice",
    "CPU",
    "RetireEvent",
    "MCU",
    "RunResult",
]
