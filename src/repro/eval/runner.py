"""Run one workload under one CFA method, end to end, with verification.

This is the machinery behind every figure: build the (possibly
rewritten) binary, attach the workload's peripherals, attest, verify
losslessly, and collect the metrics the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.asm import link
from repro.asm.program import Image
from repro.baselines.naive_mtb import NaiveMtbEngine
from repro.baselines.traces import TracesEngine, rewrite_for_traces
from repro.cfa.engine import EngineConfig, RapTrackEngine
from repro.cfa.verifier import NaiveVerifier, Verifier
from repro.core.classify import classify_module
from repro.core.pipeline import RapTrackConfig, transform
from repro.core.rewrite_map import RewriteMap
from repro.eval.cache import ArtifactCache, offline_key
from repro.tz.keystore import KeyStore
from repro.workloads import Workload, load_workload
from repro.workloads.base import make_mcu

#: the four systems of the paper's evaluation
METHODS = ("baseline", "naive-mtb", "rap-track", "traces")


@dataclass
class MethodRun:
    """Metrics from one attested execution."""

    workload: str
    method: str
    cycles: int
    instructions: int
    cflog_bytes: int
    cflog_records: int
    code_size: int
    partial_reports: int
    gateway_calls: int
    report_cycles: int
    verified: bool

    def overhead_vs(self, base: "MethodRun") -> float:
        """Runtime overhead fraction relative to another run."""
        if base.cycles == 0:
            return 0.0
        return (self.cycles - base.cycles) / base.cycles


def offline_artifact(workload: Workload, method: str,
                     rap_config: Optional[RapTrackConfig] = None
                     ) -> Tuple[Image, Optional[RewriteMap]]:
    """Run the offline phase: classify/transform/link one workload.

    Returns the linked image plus the (unbound) rewrite map — exactly
    what the artifact cache persists for a (source, method, config) key.
    """
    module = workload.module()
    if method in ("baseline", "naive-mtb"):
        return link(module), None
    if method == "rap-track":
        result = transform(module, rap_config)
        return link(result.module), result.rmap
    if method == "traces":
        classification = classify_module(module)
        rewritten, rmap = rewrite_for_traces(module, classification)
        return link(rewritten), rmap
    raise ValueError(f"unknown method {method!r}")


def prepare(workload: Workload, method: str,
            rap_config: Optional[RapTrackConfig] = None,
            cache: Optional[ArtifactCache] = None
            ) -> Tuple[Image, Optional[object]]:
    """Build the image (and bound rewrite map) for a method.

    With a ``cache``, the offline phase is memoized on
    :func:`~repro.eval.cache.offline_key`; the cached and freshly-built
    paths produce identical artifacts.
    """
    if cache is not None:
        key = offline_key(workload.source, method, rap_config)
        image, rmap = cache.get_or_build(
            key, lambda: offline_artifact(workload, method, rap_config))
    else:
        image, rmap = offline_artifact(workload, method, rap_config)
    return image, (rmap.bind(image) if rmap is not None else None)


def run_method(name: str, method: str,
               config: Optional[EngineConfig] = None,
               rap_config: Optional[RapTrackConfig] = None,
               verify: bool = True,
               check: bool = True,
               cache: Optional[ArtifactCache] = None,
               enable_jit: Optional[bool] = None) -> MethodRun:
    """Run one workload under one method; verify and sanity-check.

    ``enable_jit`` selects the superblock JIT tier for the simulated
    device (``None`` = process default); metrics are identical either
    way, only wall-clock time changes.
    """
    workload = load_workload(name)
    image, bound = prepare(workload, method, rap_config, cache)
    mcu = make_mcu(image, workload, enable_jit=enable_jit)
    keystore = KeyStore.provision()
    config = config or EngineConfig()

    if method == "baseline":
        run = mcu.run()
        if check and workload.check:
            workload.check(mcu)
        return MethodRun(name, method, run.cycles, run.instructions,
                         0, 0, image.code_size(), 0, 0, 0, True)

    if method == "naive-mtb":
        engine = NaiveMtbEngine(mcu, keystore, config)
        verifier = NaiveVerifier(image, keystore.attestation_key)
    elif method == "rap-track":
        engine = RapTrackEngine(mcu, keystore, bound, config)
        verifier = Verifier(image, bound, keystore.attestation_key)
    elif method == "traces":
        engine = TracesEngine(mcu, keystore, bound, config)
        verifier = Verifier(image, bound, keystore.attestation_key)
    else:
        raise ValueError(f"unknown method {method!r}")

    result = engine.attest(b"eval-challenge")
    if check and workload.check:
        workload.check(mcu)
    verified = True
    if verify:
        outcome = verifier.verify(result, b"eval-challenge")
        verified = outcome.ok
        if not verified:
            raise RuntimeError(
                f"{method} verification failed on {name}: "
                f"{outcome.error or outcome.violations[:3]}"
            )
    return MethodRun(
        workload=name,
        method=method,
        cycles=result.cycles,
        instructions=result.instructions,
        cflog_bytes=result.cflog_bytes,
        cflog_records=len(result.cflog),
        code_size=image.code_size(),
        partial_reports=result.partial_report_count,
        gateway_calls=result.gateway_calls,
        report_cycles=result.report_cycles,
        verified=verified,
    )


def run_all_methods(name: str,
                    config: Optional[EngineConfig] = None,
                    verify: bool = True,
                    cache: Optional[ArtifactCache] = None) -> dict:
    """Run a workload under all four methods; returns method -> run."""
    return {method: run_method(name, method, config, verify=verify,
                               cache=cache)
            for method in METHODS}
