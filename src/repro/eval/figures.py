"""Generators for every table/figure in the paper's evaluation.

Each ``fig*`` function returns a list of row dicts (one per workload)
carrying the same quantities the corresponding paper figure plots;
``format_table`` renders them for the benchmark harness and
EXPERIMENTS.md. Absolute numbers differ from the paper's FPGA
prototype (DESIGN.md section 2); the comparisons — who wins, by what
factor, where the crossovers fall — are the reproduction target.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.cfa.engine import EngineConfig
from repro.eval.cache import ArtifactCache
from repro.eval.parallel import evaluate_grid, ProgressFn
from repro.eval.runner import MethodRun

#: evaluation order (real applications first, BEEBs after — as the paper)
EVAL_WORKLOADS = (
    "ultrasonic", "geiger", "syringe", "temperature", "gps",
    "prime", "crc32", "bubblesort", "fibcall", "matmult",
    "bitcount", "insertsort", "strsearch", "dijkstra", "fir",
)


def collect_all(config: Optional[EngineConfig] = None,
                workloads: Sequence[str] = EVAL_WORKLOADS,
                verify: bool = True,
                jobs: Optional[int] = None,
                cache: Optional[ArtifactCache] = None,
                progress: Optional[ProgressFn] = None
                ) -> Dict[str, Dict[str, MethodRun]]:
    """Run every workload under every method.

    Serial by default; ``jobs`` fans the grid out across worker
    processes and ``cache`` memoizes the offline phase — both routes go
    through :func:`repro.eval.parallel.evaluate_grid`, so the result is
    identical either way.
    """
    runs, _ = evaluate_grid(list(workloads), jobs=jobs,
                            engine_config=config, verify=verify,
                            cache=cache, progress=progress)
    return runs


def fig1_motivation(runs: Dict[str, Dict[str, MethodRun]]) -> List[dict]:
    """Figure 1: naive-MTB CFLog blow-up (a) and instrumentation-based
    CFA runtime blow-up (b)."""
    rows = []
    for name, methods in runs.items():
        naive = methods["naive-mtb"]
        traces = methods["traces"]
        base = methods["baseline"]
        rows.append({
            "workload": name,
            "naive_cflog_B": naive.cflog_bytes,
            "instr_cflog_B": traces.cflog_bytes,
            "cflog_ratio": (naive.cflog_bytes / traces.cflog_bytes
                            if traces.cflog_bytes else float("inf")),
            "baseline_cycles": base.cycles,
            "instr_cycles": traces.cycles,
            "runtime_factor": traces.cycles / base.cycles,
        })
    return rows


def fig8_runtime(runs: Dict[str, Dict[str, MethodRun]]) -> List[dict]:
    """Figure 8: CPU cycles per method, plus the paper's two headline
    overheads (RAP-Track vs naive MTB; TRACES vs baseline)."""
    rows = []
    for name, methods in runs.items():
        base = methods["baseline"]
        naive = methods["naive-mtb"]
        rap = methods["rap-track"]
        traces = methods["traces"]
        rows.append({
            "workload": name,
            "baseline": base.cycles,
            "naive_mtb": naive.cycles,
            "rap_track": rap.cycles,
            "traces": traces.cycles,
            "rap_over_naive_pct": 100.0 * rap.overhead_vs(naive),
            "traces_over_base_pct": 100.0 * traces.overhead_vs(base),
        })
    return rows


def fig9_cflog(runs: Dict[str, Dict[str, MethodRun]]) -> List[dict]:
    """Figure 9: CFLog size (bytes) per method."""
    rows = []
    for name, methods in runs.items():
        rows.append({
            "workload": name,
            "naive_mtb_B": methods["naive-mtb"].cflog_bytes,
            "rap_track_B": methods["rap-track"].cflog_bytes,
            "traces_B": methods["traces"].cflog_bytes,
            "rap_records": methods["rap-track"].cflog_records,
            "traces_records": methods["traces"].cflog_records,
        })
    return rows


def fig10_code_size(runs: Dict[str, Dict[str, MethodRun]]) -> List[dict]:
    """Figure 10: program memory (code bytes) per method."""
    rows = []
    for name, methods in runs.items():
        base = methods["baseline"].code_size
        rap = methods["rap-track"].code_size
        traces = methods["traces"].code_size
        rows.append({
            "workload": name,
            "baseline_B": base,
            "rap_track_B": rap,
            "traces_B": traces,
            "rap_overhead_B": rap - base,
            "traces_overhead_B": traces - base,
        })
    return rows


def partial_report_table(runs: Dict[str, Dict[str, MethodRun]]) -> List[dict]:
    """Section V-B analysis: partial-report transmissions under the
    4 KB MTB limit, per method."""
    rows = []
    for name, methods in runs.items():
        rows.append({
            "workload": name,
            "naive_partials": methods["naive-mtb"].partial_reports,
            "rap_partials": methods["rap-track"].partial_reports,
            "traces_partials": methods["traces"].partial_reports,
            "rap_single_report": methods["rap-track"].partial_reports == 0,
        })
    return rows


def format_table(rows: Iterable[dict], title: str = "") -> str:
    """Render row dicts as an aligned text table."""
    rows = list(rows)
    if not rows:
        return title
    columns = list(rows[0].keys())
    rendered = [[_fmt(row[col]) for col in columns] for row in rows]
    widths = [max(len(col), *(len(r[i]) for r in rendered))
              for i, col in enumerate(columns)]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(col.ljust(w) for col, w in zip(columns, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in rendered:
        lines.append("  ".join(v.rjust(w) if _numeric(v) else v.ljust(w)
                               for v, w in zip(r, widths)))
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == float("inf"):
            return "inf"
        return f"{value:.1f}"
    return str(value)


def _numeric(text: str) -> bool:
    return text.replace(".", "").replace("-", "").replace("inf", "0").isdigit()
