"""Content-addressed cache for offline-phase artifacts.

The offline phase — ``classify_module`` → ``transform`` /
``rewrite_for_traces`` → ``link`` — is pure: its output depends only on
the workload's assembly source, the method, and the
:class:`~repro.core.pipeline.RapTrackConfig` switches. This module
memoizes that output under a content-addressed key so repeated
evaluation runs (CLI invocations, benchmark sessions, parallel
workers) skip straight to the execution phase.

Keys are hex SHA-256 digests over a canonical JSON payload; artifacts
are ``(Image, RewriteMap | None)`` pairs, pickled one-file-per-key with
an atomic rename so concurrent workers never observe a torn write. A
corrupt or unreadable entry is treated as a miss and rebuilt.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
import time
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Tuple, Union

from repro.core.pipeline import RapTrackConfig

#: bump when the artifact layout (or anything feeding it) changes shape
CACHE_VERSION = 2

#: methods whose offline phase is just ``link(module)`` share one entry
_PLAIN_METHODS = ("baseline", "naive-mtb")

_MISS = object()


def config_fingerprint(config: Any) -> str:
    """Stable hex fingerprint of a (possibly nested) dataclass config.

    Works for :class:`RapTrackConfig`, :class:`EngineConfig`, or any
    dataclass tree of plain values; independent of process, dict
    ordering, and ``PYTHONHASHSEED``.
    """
    return _sha256_json(_unfold(config))


def source_fingerprint(source: str) -> str:
    """Hex fingerprint of a workload's assembly source text."""
    return hashlib.sha256(source.encode()).hexdigest()


def offline_key(source: str, method: str,
                rap_config: Optional[RapTrackConfig] = None) -> str:
    """Cache key for one offline-phase artifact.

    ``baseline`` and ``naive-mtb`` run the unmodified binary, so they
    collapse onto a single shared entry; only ``rap-track`` artifacts
    depend on the :class:`RapTrackConfig` (``EngineConfig`` is an
    execution-phase input and deliberately excluded — see
    docs/internals.md).
    """
    payload: Dict[str, Any] = {
        "version": CACHE_VERSION,
        "source": source_fingerprint(source),
        "method": "plain" if method in _PLAIN_METHODS else method,
    }
    if method == "rap-track":
        payload["rap_config"] = _unfold(rap_config or RapTrackConfig())
    return _sha256_json(payload)


def default_cache_dir() -> Path:
    """On-disk cache location: ``$REPRO_CACHE_DIR`` or ``~/.cache``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "rap-track-repro" / "offline"


@dataclasses.dataclass
class CacheStats:
    """Hit/miss counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    #: wall-clock spent inside get_or_build (loads on hits, builds +
    #: stores on misses) — i.e. the offline phase as actually paid
    offline_s: float = 0.0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


def atomic_pickle(root: Union[str, os.PathLike],
                  path: Union[str, os.PathLike], value: Any) -> None:
    """Atomically publish ``value`` pickled at ``path``.

    The one-file-per-key CAS idiom shared by the offline-artifact
    cache and the fleet's durable replay cache: write to a temp file
    in the same directory, then rename — concurrent writers may race
    on the same key, but every rename installs a complete file and
    readers never observe a torn write.
    """
    fd, tmp = tempfile.mkstemp(dir=root, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class ArtifactCache:
    """Two-level (memory + optional disk) content-addressed cache."""

    def __init__(self, root: Optional[Union[str, os.PathLike]] = None):
        self.root = Path(root) if root is not None else None
        if self.root is not None:
            self.root.mkdir(parents=True, exist_ok=True)
        self._memory: Dict[str, Any] = {}
        self.stats = CacheStats()

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.pkl"

    def get(self, key: str) -> Any:
        """Return the cached artifact, or ``None`` on a miss."""
        value = self._lookup(key)
        if value is _MISS:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return value

    def put(self, key: str, value: Any) -> None:
        """Store an artifact in memory and (if configured) on disk."""
        self._memory[key] = value
        self.stats.stores += 1
        if self.root is None:
            return
        atomic_pickle(self.root, self._path(key), value)

    def get_or_build(self, key: str, builder: Callable[[], Any]) -> Any:
        """Memoize ``builder()`` under ``key``."""
        t0 = time.perf_counter()
        try:
            value = self._lookup(key)
            if value is not _MISS:
                self.stats.hits += 1
                return value
            self.stats.misses += 1
            value = builder()
            self.put(key, value)
            return value
        finally:
            self.stats.offline_s += time.perf_counter() - t0

    def _lookup(self, key: str) -> Any:
        if key in self._memory:
            return self._memory[key]
        if self.root is None:
            return _MISS
        try:
            with open(self._path(key), "rb") as fh:
                value = pickle.load(fh)
        except Exception:  # absent or corrupt (any unpickling error):
            return _MISS   # rebuild and overwrite
        self._memory[key] = value
        return value

    def snapshot(self) -> Tuple[int, int, float]:
        """(hits, misses, offline_s) — for computing per-task deltas."""
        return self.stats.hits, self.stats.misses, self.stats.offline_s


def _unfold(value: Any) -> Any:
    """Reduce a config value to JSON-stable plain data."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        out: Dict[str, Any] = {"__dataclass__": type(value).__name__}
        for f in dataclasses.fields(value):
            out[f.name] = _unfold(getattr(value, f.name))
        return out
    if isinstance(value, (list, tuple)):
        return [_unfold(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _unfold(v) for k, v in sorted(value.items())}
    if isinstance(value, (set, frozenset)):
        return sorted(str(v) for v in value)
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return repr(value)


def _sha256_json(payload: Any) -> str:
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode()).hexdigest()
