"""Parallel (workload × method) evaluation with per-cell robustness.

One evaluation *cell* is a single :func:`repro.eval.runner.run_method`
call — the serial primitive stays the only place a cell executes, so
the serial and parallel paths cannot drift apart. This module adds:

* a ``ProcessPoolExecutor`` fan-out (``jobs`` worker processes) over a
  grid of cells, falling back to an in-process loop for ``jobs <= 1``;
* a per-cell wall-clock timeout (``SIGALRM``-based, so a wedged cell
  cannot stall the whole grid) and retry-once semantics when a worker
  process dies underneath the pool;
* a structured progress/metrics stream: a :class:`ProgressEvent` per
  cell plus an aggregate :class:`EvalMetrics` (cells completed, cache
  hit rate, wall-clock vs. CPU time).

Workers share the offline-phase :class:`ArtifactCache` through its
on-disk root; a memory-only cache amortizes within one process only.
"""

from __future__ import annotations

import os
import signal
import time
from concurrent.futures import as_completed, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import (
    Callable, Dict, List, Optional, Sequence, Tuple, Union,
)

from repro.cfa.engine import EngineConfig
from repro.core.pipeline import RapTrackConfig
from repro.eval.cache import ArtifactCache
from repro.eval.runner import METHODS, MethodRun, run_method


@dataclass(frozen=True)
class CellSpec:
    """One (workload, method) cell of the evaluation grid."""

    workload: str
    method: str

    def __str__(self) -> str:
        return f"{self.workload}×{self.method}"


@dataclass
class CellResult:
    """Outcome of one cell: the run, or a structured failure."""

    spec: CellSpec
    run: Optional[MethodRun] = None
    error: Optional[str] = None
    attempts: int = 1
    wall_s: float = 0.0
    cpu_s: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    offline_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.run is not None


@dataclass(frozen=True)
class ProgressEvent:
    """One item of the structured progress stream."""

    kind: str  # "cell" | "retry" | "done"
    done: int
    total: int
    spec: Optional[CellSpec] = None
    detail: str = ""


ProgressFn = Callable[[ProgressEvent], None]


@dataclass
class EvalMetrics:
    """Aggregate metrics for one grid evaluation."""

    cells_total: int = 0
    cells_ok: int = 0
    cells_failed: int = 0
    retries: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    wall_s: float = 0.0
    cpu_s: float = 0.0
    offline_s: float = 0.0
    jobs: int = 1

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    def summary(self) -> str:
        return (
            f"{self.cells_ok}/{self.cells_total} cells ok "
            f"({self.cells_failed} failed, {self.retries} retried), "
            f"jobs={self.jobs}, offline cache hit rate "
            f"{100.0 * self.cache_hit_rate:.0f}% "
            f"({self.cache_hits}/{self.cache_hits + self.cache_misses}), "
            f"offline {self.offline_s * 1e3:.1f}ms, "
            f"wall {self.wall_s:.2f}s, cpu {self.cpu_s:.2f}s"
        )


class CellTimeout(Exception):
    """A cell exceeded its wall-clock budget."""


def _alarm_handler(signum, frame):
    raise CellTimeout()


def run_cell(spec: CellSpec,
             engine_config: Optional[EngineConfig] = None,
             rap_config: Optional[RapTrackConfig] = None,
             verify: bool = True,
             timeout_s: Optional[float] = None,
             cache: Optional[ArtifactCache] = None) -> CellResult:
    """Run one cell with timing, cache accounting, and error capture.

    Never raises: failures (including timeouts and verification
    rejections) come back as ``CellResult.error`` so the orchestrator
    can keep the rest of the grid moving.
    """
    hits0, misses0, offline0 = cache.snapshot() if cache else (0, 0, 0.0)
    wall0, cpu0 = time.perf_counter(), time.process_time()
    run = None
    error = None
    use_alarm = timeout_s is not None and hasattr(signal, "SIGALRM")
    if use_alarm:
        previous = signal.signal(signal.SIGALRM, _alarm_handler)
        signal.setitimer(signal.ITIMER_REAL, timeout_s)
    try:
        run = run_method(spec.workload, spec.method, config=engine_config,
                         rap_config=rap_config, verify=verify, cache=cache)
    except CellTimeout:
        error = f"timeout after {timeout_s:.1f}s"
    except Exception as exc:  # captured, reported, surfaced by caller
        error = f"{type(exc).__name__}: {exc}"
    finally:
        if use_alarm:
            signal.setitimer(signal.ITIMER_REAL, 0)
            signal.signal(signal.SIGALRM, previous)
    hits1, misses1, offline1 = cache.snapshot() if cache else (0, 0, 0.0)
    return CellResult(
        spec=spec,
        run=run,
        error=error,
        wall_s=time.perf_counter() - wall0,
        cpu_s=time.process_time() - cpu0,
        cache_hits=hits1 - hits0,
        cache_misses=misses1 - misses0,
        offline_s=offline1 - offline0,
    )


# -- process-pool plumbing --------------------------------------------------

_worker_cache: Optional[ArtifactCache] = None


def _init_worker(cache_root: Optional[str]) -> None:
    """Open the shared on-disk cache once per worker process."""
    global _worker_cache
    _worker_cache = ArtifactCache(cache_root) if cache_root else None


def _pool_cell(spec: CellSpec,
               engine_config: Optional[EngineConfig],
               rap_config: Optional[RapTrackConfig],
               verify: bool,
               timeout_s: Optional[float]) -> CellResult:
    return run_cell(spec, engine_config, rap_config, verify, timeout_s,
                    cache=_worker_cache)


def _emit(progress: Optional[ProgressFn], event: ProgressEvent) -> None:
    if progress is not None:
        progress(event)


def run_cells(specs: Sequence[CellSpec],
              jobs: Optional[int] = None,
              engine_config: Optional[EngineConfig] = None,
              rap_config: Optional[RapTrackConfig] = None,
              verify: bool = True,
              cache: Optional[ArtifactCache] = None,
              timeout_s: Optional[float] = None,
              retries: int = 1,
              progress: Optional[ProgressFn] = None
              ) -> Tuple[List[CellResult], EvalMetrics]:
    """Run a grid of cells, serially or across worker processes.

    ``jobs`` of ``None``/``0``/``1`` runs in-process (no pool); higher
    values fan out. A cell whose worker process dies (segfault,
    ``os._exit``, OOM-kill) is retried up to ``retries`` more times in
    a fresh pool before being recorded as failed; a cell that merely
    raises is *not* retried — cells are deterministic, so a Python
    error would only repeat.
    """
    specs = list(specs)
    jobs = max(1, jobs or 1)
    wall0 = time.perf_counter()
    if jobs == 1:
        results = []
        for done, spec in enumerate(specs, start=1):
            result = run_cell(spec, engine_config, rap_config, verify,
                              timeout_s, cache=cache)
            results.append(result)
            _emit(progress, ProgressEvent(
                "cell", done, len(specs), spec,
                result.error or "ok"))
        metrics = _aggregate(results, jobs, time.perf_counter() - wall0)
        _emit(progress, ProgressEvent("done", len(specs), len(specs),
                                      detail=metrics.summary()))
        return results, metrics

    cache_root = str(cache.root) if cache is not None and cache.root else None
    by_spec: Dict[CellSpec, CellResult] = {}
    attempts: Dict[CellSpec, int] = {spec: 0 for spec in specs}
    total_retries = 0
    while True:
        pending = [s for s in specs if s not in by_spec]
        if not pending:
            break
        for spec in pending:
            attempts[spec] += 1
        try:
            with ProcessPoolExecutor(
                    max_workers=min(jobs, len(pending)),
                    initializer=_init_worker,
                    initargs=(cache_root,)) as pool:
                futures = {
                    pool.submit(_pool_cell, spec, engine_config, rap_config,
                                verify, timeout_s): spec
                    for spec in pending
                }
                for future in as_completed(futures):
                    spec = futures[future]
                    result = future.result()  # BrokenProcessPool escapes
                    result.attempts = attempts[spec]
                    by_spec[spec] = result
                    _emit(progress, ProgressEvent(
                        "cell", len(by_spec), len(specs), spec,
                        result.error or "ok"))
        except BrokenProcessPool:
            # a worker died mid-batch: cells not yet harvested either
            # crashed or were queued behind the crash — retry them once
            crashed = [s for s in pending if s not in by_spec]
            exhausted = [s for s in crashed if attempts[s] > retries]
            for spec in exhausted:
                by_spec[spec] = CellResult(
                    spec=spec, attempts=attempts[spec],
                    error="worker process died "
                          f"(after {attempts[spec]} attempt(s))")
                _emit(progress, ProgressEvent(
                    "cell", len(by_spec), len(specs), spec,
                    by_spec[spec].error))
            retriable = [s for s in crashed if s not in by_spec]
            total_retries += len(retriable)
            if retriable:
                _emit(progress, ProgressEvent(
                    "retry", len(by_spec), len(specs),
                    detail=f"worker crash; retrying {len(retriable)} "
                           "cell(s) in a fresh pool"))

    results = [by_spec[spec] for spec in specs]
    metrics = _aggregate(results, jobs, time.perf_counter() - wall0)
    metrics.retries = total_retries
    _emit(progress, ProgressEvent("done", len(specs), len(specs),
                                  detail=metrics.summary()))
    return results, metrics


def _aggregate(results: Sequence[CellResult], jobs: int,
               wall_s: float) -> EvalMetrics:
    metrics = EvalMetrics(cells_total=len(results), jobs=jobs, wall_s=wall_s)
    for result in results:
        if result.ok:
            metrics.cells_ok += 1
        else:
            metrics.cells_failed += 1
        metrics.cache_hits += result.cache_hits
        metrics.cache_misses += result.cache_misses
        metrics.cpu_s += result.cpu_s
        metrics.offline_s += result.offline_s
    return metrics


def evaluate_grid(workloads: Sequence[str],
                  methods: Sequence[str] = METHODS,
                  jobs: Optional[int] = None,
                  engine_config: Optional[EngineConfig] = None,
                  rap_config: Optional[RapTrackConfig] = None,
                  verify: bool = True,
                  cache: Optional[ArtifactCache] = None,
                  timeout_s: Optional[float] = None,
                  retries: int = 1,
                  progress: Optional[ProgressFn] = None,
                  strict: bool = True
                  ) -> Tuple[Dict[str, Dict[str, MethodRun]], EvalMetrics]:
    """Evaluate every workload under every method.

    Returns the same ``{workload: {method: MethodRun}}`` shape as the
    serial :func:`repro.eval.figures.collect_all`, plus the metrics.
    With ``strict`` (the default) any failed cell raises ``RuntimeError``
    naming every failure; otherwise failed cells are simply absent.
    """
    specs = [CellSpec(w, m) for w in workloads for m in methods]
    results, metrics = run_cells(
        specs, jobs=jobs, engine_config=engine_config,
        rap_config=rap_config, verify=verify, cache=cache,
        timeout_s=timeout_s, retries=retries, progress=progress)
    failures = [r for r in results if not r.ok]
    if strict and failures:
        detail = "; ".join(f"{r.spec}: {r.error}" for r in failures[:5])
        raise RuntimeError(
            f"{len(failures)} evaluation cell(s) failed: {detail}")
    runs: Dict[str, Dict[str, MethodRun]] = {w: {} for w in workloads}
    for result in results:
        if result.ok:
            runs[result.spec.workload][result.spec.method] = result.run
    return runs, metrics
