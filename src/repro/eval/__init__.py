"""Evaluation harness: method runners, the offline-artifact cache,
the parallel grid executor, and figure/table generators."""

from repro.eval.cache import (
    ArtifactCache,
    config_fingerprint,
    default_cache_dir,
    offline_key,
)
from repro.eval.parallel import (
    CellResult,
    CellSpec,
    EvalMetrics,
    ProgressEvent,
    evaluate_grid,
    run_cell,
    run_cells,
)
from repro.eval.runner import (
    METHODS,
    MethodRun,
    offline_artifact,
    prepare,
    run_all_methods,
    run_method,
)
from repro.eval.figures import (
    fig1_motivation,
    fig8_runtime,
    fig9_cflog,
    fig10_code_size,
    format_table,
    partial_report_table,
)

__all__ = [
    "METHODS",
    "MethodRun",
    "ArtifactCache",
    "CellResult",
    "CellSpec",
    "EvalMetrics",
    "ProgressEvent",
    "config_fingerprint",
    "default_cache_dir",
    "evaluate_grid",
    "offline_artifact",
    "offline_key",
    "prepare",
    "run_cell",
    "run_cells",
    "run_method",
    "run_all_methods",
    "fig1_motivation",
    "fig8_runtime",
    "fig9_cflog",
    "fig10_code_size",
    "partial_report_table",
    "format_table",
]
