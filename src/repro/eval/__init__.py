"""Evaluation harness: method runners and figure/table generators."""

from repro.eval.runner import (
    METHODS,
    MethodRun,
    prepare,
    run_all_methods,
    run_method,
)
from repro.eval.figures import (
    fig1_motivation,
    fig8_runtime,
    fig9_cflog,
    fig10_code_size,
    format_table,
    partial_report_table,
)

__all__ = [
    "METHODS",
    "MethodRun",
    "prepare",
    "run_method",
    "run_all_methods",
    "fig1_motivation",
    "fig8_runtime",
    "fig9_cflog",
    "fig10_code_size",
    "partial_report_table",
    "format_table",
]
