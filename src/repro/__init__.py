"""RAP-Track reproduction: Control Flow Attestation via parallel
MTB/DWT tracking on a simulated ARMv8-M MCU.

Reproduces *RAP-Track: Efficient Control Flow Attestation via Parallel
Tracking in Commodity MCUs* (DAC 2025) as a pure-Python system: the
full platform substrate (ISA, CPU, MTB, DWT, TrustZone), the paper's
offline static-analysis/rewriting phase, the Secure-World CFA engine
with partial reports, the naive-MTB and TRACES-style baselines, a
lossless path-reconstruction Verifier, and the ten evaluation
workloads. See DESIGN.md for the system inventory and EXPERIMENTS.md
for paper-vs-measured results.

Quickstart::

    from repro import attest_rap_track
    outcome = attest_rap_track("ultrasonic")
    assert outcome.verification.ok
"""

from dataclasses import dataclass
from typing import Optional

from repro.asm import assemble, link
from repro.asm.program import Image, Module
from repro.cfa.engine import EngineConfig, RapTrackEngine
from repro.cfa.report import AttestationResult
from repro.cfa.verifier import NaiveVerifier, VerificationResult, Verifier
from repro.core.pipeline import RapTrackConfig, RapTrackResult, transform
from repro.eval.runner import METHODS, run_all_methods, run_method
from repro.machine.mcu import MCU
from repro.tz.keystore import KeyStore
from repro.workloads import WORKLOADS, load_workload
from repro.workloads.base import make_mcu

__version__ = "1.0.0"


@dataclass
class AttestationOutcome:
    """Everything one end-to-end RAP-Track attestation produced."""

    image: Image
    result: AttestationResult
    verification: VerificationResult
    mcu: MCU


def attest_rap_track(workload_name: str,
                     config: Optional[EngineConfig] = None,
                     rap_config: Optional[RapTrackConfig] = None
                     ) -> AttestationOutcome:
    """One-call demo: transform, run, attest, and verify a workload."""
    workload = load_workload(workload_name)
    result = transform(workload.module(), rap_config)
    image = link(result.module)
    bound = result.rmap.bind(image)
    mcu = make_mcu(image, workload)
    keystore = KeyStore.provision()
    engine = RapTrackEngine(mcu, keystore, bound, config)
    attestation = engine.attest(b"quickstart-challenge")
    verifier = Verifier(image, bound, keystore.attestation_key)
    verification = verifier.verify(attestation, b"quickstart-challenge")
    return AttestationOutcome(image, attestation, verification, mcu)


__all__ = [
    "__version__",
    "assemble",
    "link",
    "Module",
    "Image",
    "MCU",
    "transform",
    "RapTrackConfig",
    "RapTrackResult",
    "EngineConfig",
    "RapTrackEngine",
    "Verifier",
    "NaiveVerifier",
    "VerificationResult",
    "AttestationResult",
    "KeyStore",
    "WORKLOADS",
    "load_workload",
    "make_mcu",
    "METHODS",
    "run_method",
    "run_all_methods",
    "attest_rap_track",
    "AttestationOutcome",
]
