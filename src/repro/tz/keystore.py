"""Secure-World key storage for the attestation Root of Trust."""

from __future__ import annotations

import hashlib


class KeyStore:
    """Holds the device attestation key inside the Secure World.

    In the symmetric setting the paper supports (MAC-based reports) the
    Verifier is provisioned with the same key at manufacture time.
    """

    def __init__(self, device_id: bytes, master_secret: bytes):
        self.device_id = device_id
        self._key = hashlib.sha256(b"attest-key|" + device_id + b"|" + master_secret).digest()

    @property
    def attestation_key(self) -> bytes:
        """The symmetric attestation key (Secure World / Verifier only)."""
        return self._key

    @classmethod
    def provision(cls, device_id: str = "prv-0",
                  master_secret: bytes = b"factory-secret") -> "KeyStore":
        """Factory provisioning used by tests and examples."""
        return cls(device_id.encode(), master_secret)
