"""Non-Secure-Callable gateway into the Secure World.

Every instrumentation-based CFA event (TRACES baseline) and every
RAP-Track loop-condition log crosses this gateway. The cycle tax it
charges — NSC entry, callee-saved state handling, security checks, and
the return — is what makes instrumentation-based CFA expensive, and is
therefore a first-class, calibratable part of the model (DESIGN.md
section 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from repro.machine.cpu import CPU
from repro.machine.faults import UndefinedInstruction


@dataclass(frozen=True)
class GatewayCosts:
    """Cycle costs of one Non-Secure -> Secure -> Non-Secure round trip.

    Defaults approximate measured ARMv8-M TZ transition costs (SG entry,
    stack sealing/register clearing, BXNS return) plus a small secure
    dispatch prologue.
    """

    entry: int = 45
    exit: int = 30

    @property
    def round_trip(self) -> int:
        return self.entry + self.exit


class SecureGateway:
    """Dispatches ``svc #id`` calls to registered Secure-World services."""

    def __init__(self, costs: GatewayCosts = GatewayCosts()):
        self.costs = costs
        self._services: Dict[int, Callable[[CPU], int]] = {}
        self.calls = 0
        self.cycles_charged = 0

    def register(self, service_id: int, handler: Callable[[CPU], int]) -> None:
        """Register a service. The handler returns its own cycle cost."""
        if service_id in self._services:
            raise ValueError(f"service {service_id} already registered")
        self._services[service_id] = handler

    def install(self, cpu: CPU) -> None:
        """Make this gateway the CPU's SVC handler."""
        cpu.svc_handler = self.dispatch

    def dispatch(self, service_id: int, cpu: CPU) -> None:
        handler = self._services.get(service_id)
        if handler is None:
            raise UndefinedInstruction(
                f"call to unregistered secure service {service_id}",
                cpu.regs[15],
            )
        self.calls += 1
        service_cycles = handler(cpu)
        charged = self.costs.round_trip + int(service_cycles)
        cpu.cycles += charged
        self.cycles_charged += charged
