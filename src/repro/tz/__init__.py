"""TrustZone-M model: world separation costs and the secure gateway."""

from repro.tz.gateway import GatewayCosts, SecureGateway
from repro.tz.keystore import KeyStore

__all__ = ["SecureGateway", "GatewayCosts", "KeyStore"]
