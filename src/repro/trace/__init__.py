"""Hardware trace units: Micro Trace Buffer and DWT comparators."""

from repro.trace.mtb import MTB, MTBPacket
from repro.trace.dwt import DWT, RangeComparator
from repro.trace.groundtruth import GroundTruthTracer

__all__ = ["MTB", "MTBPacket", "DWT", "RangeComparator", "GroundTruthTracer"]
