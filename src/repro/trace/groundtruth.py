"""Ground-truth execution tracer (test oracle, not part of the device).

Records the complete control flow of a run straight from the CPU retire
stream. The verifier's lossless reconstruction is validated against this
in the test suite.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.machine.cpu import RetireEvent


class GroundTruthTracer:
    """Subscribes to CPU retires and keeps the full path."""

    #: block-observation protocol (repro.machine.jit.runtime)
    JIT_RETIRE_HOOK = "on_retire"

    def __init__(self, record_all: bool = False):
        self.record_all = record_all
        self.transfers: List[Tuple[int, int]] = []  # non-sequential (src, dst)
        self.pcs: List[int] = []  # every executed pc (if record_all)

    def on_retire(self, event: RetireEvent) -> None:
        if self.record_all:
            self.pcs.append(event.src)
        if event.non_sequential:
            self.transfers.append((event.src, event.dst))

    def jit_block_retire(self, pcs) -> None:
        """Hoisted retire hook: all of ``pcs`` retired sequentially."""
        if self.record_all:
            self.pcs.extend(pcs)

    def executed_addresses(self) -> List[int]:
        if not self.record_all:
            raise ValueError("tracer was not configured with record_all")
        return list(self.pcs)
