"""Micro Trace Buffer (MTB) model.

Follows the MTB-M33 TRM behaviours RAP-Track relies on:

* while enabled, every *non-sequential* retire writes an 8-byte packet
  ``(source, destination)`` into a circular buffer in dedicated SRAM;
* ``MTB_MASTER.TSTARTEN``-style direct enable, or start/stop driven by
  DWT comparator events (:class:`repro.trace.dwt.DWT`);
* an ``MTB_FLOW`` watermark that raises a debug exception (modelled as a
  callback into the Secure World) when the write position reaches it;
* non-instant activation: after a start event the MTB needs
  ``activation_latency`` retirements before it records — the reason the
  paper pads MTBAR trampolines with NOPs (section V-C).

Configuration is Secure-World-only by construction: the register file is
not memory-mapped into the Non-Secure address space, and the trace SRAM
itself lives in a Secure region, so Non-Secure stores to it fault.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.machine.cpu import RetireEvent
from repro.machine.memmap import MTB_SRAM_BASE, MTB_SRAM_SIZE
from repro.machine.memory import Memory

#: One trace packet is two 32-bit words (source, destination).
PACKET_BYTES = 8


@dataclass(frozen=True)
class MTBPacket:
    """One recorded control transfer."""

    src: int
    dst: int


class MTB:
    """The trace buffer peripheral."""

    #: block-observation protocol (repro.machine.jit.runtime): the CPU
    #: retire hook this unit registers, hoistable via jit_block_retire
    JIT_RETIRE_HOOK = "on_retire"

    def __init__(self, memory: Memory, *, base: int = MTB_SRAM_BASE,
                 buffer_size: int = 4096, activation_latency: int = 1):
        if buffer_size % PACKET_BYTES:
            raise ValueError("buffer size must be a packet multiple")
        if base + buffer_size > MTB_SRAM_BASE + MTB_SRAM_SIZE:
            raise ValueError("buffer exceeds MTB SRAM")
        self.memory = memory
        self.base = base
        self.buffer_size = buffer_size
        self.activation_latency = activation_latency
        # MTB_MASTER.EN
        self.enabled = False
        # MTB_POSITION (byte offset of next write)
        self.position = 0
        # MTB_FLOW watermark (byte offset) and its debug-exception hook
        self.watermark: Optional[int] = None
        self.watermark_handler: Optional[Callable[["MTB"], None]] = None
        self.wrapped = False
        self.total_packets = 0  # lifetime count (not reset by wrap)
        self._warmup = 0
        self._packets: List[MTBPacket] = []  # shadow of the SRAM contents

    # -- control (Secure World register interface) -------------------------

    def configure(self, *, buffer_size: Optional[int] = None,
                  watermark: Optional[int] = None,
                  watermark_handler=None) -> None:
        if buffer_size is not None:
            if buffer_size % PACKET_BYTES:
                raise ValueError("buffer size must be a packet multiple")
            self.buffer_size = buffer_size
        self.watermark = watermark
        if watermark_handler is not None:
            self.watermark_handler = watermark_handler
        self.reset_position()

    def reset_position(self) -> None:
        """Reset the write pointer (done after each partial report)."""
        self.position = 0
        self.wrapped = False
        self._packets = []

    def start(self) -> None:
        """TSTART event (from DWT) or direct TSTARTEN write."""
        if not self.enabled:
            self.enabled = True
            self._warmup = self.activation_latency

    def stop(self) -> None:
        """TSTOP event (from DWT) or master disable."""
        self.enabled = False

    # -- datapath ------------------------------------------------------------

    def on_retire(self, event: RetireEvent) -> None:
        """Bus snoop: called for every retired instruction."""
        if not self.enabled:
            return
        if self._warmup > 0:
            self._warmup -= 1
            return
        if event.sequential:
            return
        self._record(event.src, event.dst)

    def jit_block_retire(self, pcs) -> None:
        """Hoisted retire hook for a straight-line block of ``pcs``.

        Every retire in the block is sequential, so nothing is recorded;
        the only architectural effect of N sequential retires is that an
        enabled MTB burns down its activation warmup — exactly what the
        per-instruction path does N times.
        """
        if self.enabled and self._warmup > 0:
            self._warmup = max(0, self._warmup - len(pcs))

    def _record(self, src: int, dst: int) -> None:
        offset = self.position
        if offset + PACKET_BYTES > self.buffer_size:
            offset = 0
            self.wrapped = True
            self._packets = []
        self.memory.poke(self.base + offset, src, 4)
        self.memory.poke(self.base + offset + 4, dst, 4)
        self._packets.append(MTBPacket(src, dst))
        self.position = offset + PACKET_BYTES
        self.total_packets += 1
        if self.watermark is not None and self.position >= self.watermark:
            handler = self.watermark_handler
            if handler is not None:
                handler(self)

    # -- Secure World readout ------------------------------------------------

    def drain(self) -> List[MTBPacket]:
        """Read and clear the current buffer contents (Secure World only).

        Reads go through the memory system to stay faithful to the real
        flow (the engine copies the trace SRAM into its report).
        """
        count = self.position // PACKET_BYTES
        packets = []
        for i in range(count):
            src = self.memory.peek(self.base + i * PACKET_BYTES, 4)
            dst = self.memory.peek(self.base + i * PACKET_BYTES + 4, 4)
            packets.append(MTBPacket(src, dst))
        self.reset_position()
        return packets

    @property
    def bytes_used(self) -> int:
        return self.position
