"""Data Watchpoint and Trace (DWT) unit model.

The Cortex-M33 DWT provides four comparators. RAP-Track pairs them into
two PC ranges (paper section IV-B):

* an MTBAR range whose match asserts ``MTB_TSTART``;
* an MTBDR range whose match asserts ``MTB_TSTOP``.

The unit is evaluated with the PC of the instruction *about to execute*
(a CPU pre-hook), so a branch whose source lies in MTBAR is recorded
(including MTBAR→MTBDR exits) while MTBDR→MTBAR entries are not — the
activation discipline the paper defines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.trace.mtb import MTB

#: Hardware comparator budget on the Cortex-M33.
COMPARATOR_SLOTS = 4


@dataclass(frozen=True)
class RangeComparator:
    """A PC range built from two comparators (base and limit)."""

    action: str  # "start" | "stop"
    lo: int
    hi: int  # exclusive

    SLOT_COST = 2

    def matches(self, pc: int) -> bool:
        return self.lo <= pc < self.hi


class DWT:
    """PC-range comparators that gate the MTB."""

    #: block-observation protocol (repro.machine.jit.runtime): the CPU
    #: pre-hook this unit registers, hoistable via jit_block_pre
    JIT_PRE_HOOK = "evaluate"

    def __init__(self, mtb: MTB):
        self.mtb = mtb
        self.ranges: List[RangeComparator] = []

    def configure_range(self, action: str, lo: int, hi: int) -> RangeComparator:
        """Program one PC range; enforces the 4-comparator budget."""
        if action not in ("start", "stop"):
            raise ValueError(f"unknown DWT action: {action}")
        used = sum(r.SLOT_COST for r in self.ranges) + RangeComparator.SLOT_COST
        if used > COMPARATOR_SLOTS:
            raise ValueError("out of DWT comparator slots")
        comparator = RangeComparator(action, lo, hi)
        self.ranges.append(comparator)
        return comparator

    def clear(self) -> None:
        self.ranges = []

    def evaluate(self, pc: int) -> None:
        """CPU pre-hook: assert TSTART/TSTOP based on the upcoming PC."""
        for comparator in self.ranges:
            if comparator.matches(pc):
                if comparator.action == "start":
                    self.mtb.start()
                else:
                    self.mtb.stop()

    def jit_block_pre(self, pcs) -> bool:
        """Hoisted pre-hook for a straight-line block of ``pcs``.

        Sound only when every comparator sees the block *uniformly*
        (matches all of its PCs or none): start/stop are idempotent, so
        N identical evaluations collapse to one.  ``pcs`` is contiguous
        and ascending, so uniformity reduces to checking the endpoints.
        Returns False — with no side effects — when some comparator
        splits the block; the caller then falls back to per-instruction
        stepping.
        """
        first = pcs[0]
        last = pcs[-1]
        for comparator in self.ranges:
            covers = comparator.lo <= first and last < comparator.hi
            disjoint = comparator.hi <= first or comparator.lo > last
            if not (covers or disjoint):
                return False
        self.evaluate(first)
        return True
