"""The Vrf <-> Prv challenge-response protocol (paper section II-C).

Modelled as in-process message passing with an optionally adversarial
channel; only protocol-level properties matter here (nonce freshness,
MAC rejection, report-chain integrity), per DESIGN.md section 2.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Optional, Set

from repro.cfa.engine import AttestationEngineBase
from repro.cfa.report import AttestationResult
from repro.cfa.verifier import VerificationResult


class ProtocolError(Exception):
    """A protocol-level failure (stale nonce, malformed response)."""


@dataclass(frozen=True)
class Challenge:
    """A fresh attestation request."""

    nonce: bytes

    @classmethod
    def derive(cls, seed: bytes, counter: int) -> "Challenge":
        """Deterministic nonce derivation (no wall-clock entropy in the
        simulation; real deployments use a CSPRNG)."""
        return cls(hashlib.sha256(seed + counter.to_bytes(8, "little")).digest()[:16])


@dataclass
class ProverDevice:
    """The Prv side: receives a challenge, runs the engine, responds."""

    engine: AttestationEngineBase

    def handle_request(self, challenge: Challenge) -> AttestationResult:
        return self.engine.attest(challenge.nonce)


class VerifierEndpoint:
    """The Vrf side: issues fresh challenges and assesses responses."""

    def __init__(self, verifier, seed: bytes = b"vrf-seed"):
        self.verifier = verifier
        self.seed = seed
        self._counter = 0
        self._outstanding: Optional[Challenge] = None
        self._seen_nonces: Set[bytes] = set()

    def new_challenge(self) -> Challenge:
        challenge = Challenge.derive(self.seed, self._counter)
        self._counter += 1
        if challenge.nonce in self._seen_nonces:
            raise ProtocolError("nonce reuse")
        self._seen_nonces.add(challenge.nonce)
        self._outstanding = challenge
        return challenge

    def assess(self, response: AttestationResult) -> VerificationResult:
        """Verify a response against the outstanding challenge."""
        if self._outstanding is None:
            raise ProtocolError("no outstanding challenge")
        challenge = self._outstanding
        self._outstanding = None
        return self.verifier.verify(response, challenge.nonce)


def run_attestation(prover: ProverDevice, endpoint: VerifierEndpoint,
                    tamper: Optional[Callable[[AttestationResult],
                                              AttestationResult]] = None
                    ) -> VerificationResult:
    """One full protocol round; ``tamper`` models a network adversary."""
    challenge = endpoint.new_challenge()
    response = prover.handle_request(challenge)
    if tamper is not None:
        response = tamper(response)
    return endpoint.assess(response)
