"""SpecCFA-style sub-path speculation (optional extension).

The paper points at CFLog transmission as the system's bottleneck and
cites SpecCFA (Caulfield et al., ACSAC 2024) for application-aware
sub-path speculation: Vrf and Prv agree on common record sub-sequences
("speculated sub-paths"); at runtime the Prv replaces each run of
matches with one compact token, shrinking the transmitted CFLog without
losing information (the Verifier expands tokens before replay).

This module implements the core of that idea over our record streams:

* :func:`mine_subpaths` — Vrf-side, offline: mine the most profitable
  tandem-repeating sub-sequences from a profiling run's CFLog;
* :func:`compress` / :func:`expand` — the lossless transform;
* :func:`speculate_result` — Prv-side: rewrite an attestation's report
  chain with compressed logs (re-signed, so authentication covers what
  is actually transmitted);
* :class:`SpeculativeVerifier` — authenticates the compressed chain,
  expands, and delegates to the ordinary lossless Verifier.
"""

from __future__ import annotations

import hashlib
import struct
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.cfa.cflog import (
    AddressRecord,
    BranchRecord,
    CFLog,
    LoopRecord,
    Record,
)
from repro.cfa.report import AttestationResult, Report
from repro.cfa.verifier import VerificationResult, Verifier


@dataclass(frozen=True)
class SpecRecord:
    """One token: ``count`` consecutive repetitions of sub-path ``path_id``.

    Wire size is one word (path id and count bit-packed), matching the
    compact encoding SpecCFA targets.
    """

    path_id: int
    count: int
    size_bytes: int = 4

    def pack(self) -> bytes:
        return struct.pack("<BII", 4, self.path_id, self.count)


#: a dictionary of speculated sub-paths: id -> record tuple
SubPathDict = Dict[int, Tuple[Record, ...]]

# -- dictionary serialization ------------------------------------------------
#
# A speculation dictionary crosses the wire (the fleet Vrf pushes mined
# dictionaries to devices), so it has a canonical byte layout::
#
#     payload := b"SPD1" u32 n_paths
#                ( u32 path_id u16 n_records (record)* )*
#     record  := u8 tag u32 a u32 b        # Record.pack, tags 1/2/3
#
# entries sorted by path id, so identical dictionaries serialize to
# identical bytes and :func:`dictionary_digest` is content-addressed.

DICTIONARY_MAGIC = b"SPD1"

_PATTERN_RECORDS = {
    1: BranchRecord,
    2: AddressRecord,
    3: LoopRecord,
}


def pack_dictionary(dictionary: SubPathDict) -> bytes:
    """Canonical serialization of a speculation dictionary."""
    parts = [DICTIONARY_MAGIC, struct.pack("<I", len(dictionary))]
    for path_id in sorted(dictionary):
        pattern = dictionary[path_id]
        if not pattern:
            raise ValueError(f"sub-path {path_id} is empty")
        parts.append(struct.pack("<IH", path_id, len(pattern)))
        for record in pattern:
            if isinstance(record, SpecRecord):
                raise ValueError("sub-paths cannot nest speculation tokens")
            parts.append(record.pack())
    return b"".join(parts)


def unpack_dictionary(payload: bytes) -> SubPathDict:
    """Invert :func:`pack_dictionary`; strict (raises ``ValueError``)."""
    if payload[:4] != DICTIONARY_MAGIC:
        raise ValueError("bad dictionary magic")
    pos = 4
    if pos + 4 > len(payload):
        raise ValueError("truncated dictionary header")
    (n_paths,) = struct.unpack_from("<I", payload, pos)
    pos += 4
    dictionary: SubPathDict = {}
    for _ in range(n_paths):
        if pos + 6 > len(payload):
            raise ValueError("truncated sub-path header")
        path_id, n_records = struct.unpack_from("<IH", payload, pos)
        pos += 6
        if path_id in dictionary:
            raise ValueError(f"duplicate sub-path id {path_id}")
        if n_records == 0:
            raise ValueError(f"sub-path {path_id} is empty")
        pattern = []
        for _ in range(n_records):
            if pos + 9 > len(payload):
                raise ValueError("truncated sub-path record")
            tag, a, b = struct.unpack_from("<BII", payload, pos)
            pos += 9
            cls = _PATTERN_RECORDS.get(tag)
            if cls is None:
                raise ValueError(f"unknown sub-path record tag {tag}")
            pattern.append(cls(a, b))
        dictionary[path_id] = tuple(pattern)
    if pos != len(payload):
        raise ValueError("trailing bytes after dictionary")
    return dictionary


def dictionary_digest(dictionary: SubPathDict) -> bytes:
    """Content digest of a dictionary (its canonical serialization)."""
    return hashlib.sha256(pack_dictionary(dictionary)).digest()


#: the digest every Prv and Vrf agree on before any mining has happened
EMPTY_DICTIONARY_DIGEST = dictionary_digest({})


def mine_subpaths(records: Sequence[Record], *, max_len: int = 8,
                  top_k: int = 8, min_gain_bytes: int = 16) -> SubPathDict:
    """Mine profitable sub-paths from a profiling CFLog (Vrf side).

    Scans for sub-sequences that repeat back-to-back (tandem repeats —
    the shape loops produce) and keeps the ``top_k`` by total byte
    savings. Deterministic given the input.
    """
    gains: Counter = Counter()
    n = len(records)
    for length in range(1, max_len + 1):
        i = 0
        while i + length <= n:
            candidate = tuple(records[i:i + length])
            repeats = 1
            j = i + length
            while (j + length <= n
                   and tuple(records[j:j + length]) == candidate):
                repeats += 1
                j += length
            if repeats >= 2:
                saved = sum(r.size_bytes for r in candidate) * repeats - 4
                gains[candidate] += saved
                i = j
            else:
                i += 1
    chosen = [
        candidate for candidate, gain in gains.most_common()
        if gain >= min_gain_bytes
    ][:top_k]
    # longer sub-paths first so greedy compression prefers them
    chosen.sort(key=len, reverse=True)
    return {path_id: candidate for path_id, candidate in enumerate(chosen)}


def compress(records: Sequence[Record],
             dictionary: SubPathDict) -> List[Record]:
    """Greedy left-to-right sub-path substitution (Prv side)."""
    ordered = sorted(dictionary.items(), key=lambda kv: len(kv[1]),
                     reverse=True)
    out: List[Record] = []
    i = 0
    n = len(records)
    while i < n:
        matched = False
        for path_id, pattern in ordered:
            length = len(pattern)
            if tuple(records[i:i + length]) != pattern:
                continue
            count = 1
            j = i + length
            while tuple(records[j:j + length]) == pattern:
                count += 1
                j += length
            out.append(SpecRecord(path_id, count))
            i = j
            matched = True
            break
        if not matched:
            out.append(records[i])
            i += 1
    return out


def expand(records: Sequence[Record],
           dictionary: SubPathDict) -> List[Record]:
    """Invert :func:`compress` (Vrf side, after authentication)."""
    out: List[Record] = []
    for record in records:
        if isinstance(record, SpecRecord):
            try:
                pattern = dictionary[record.path_id]
            except KeyError:
                raise ValueError(
                    f"unknown speculated sub-path id {record.path_id}"
                ) from None
            out.extend(pattern * record.count)
        else:
            out.append(record)
    return out


def speculate_result(result: AttestationResult, dictionary: SubPathDict,
                     key: bytes) -> AttestationResult:
    """Rewrite a report chain with compressed CFLogs, re-signed.

    In a deployment the engine compresses before signing; applying the
    transform to an existing result models the same wire format.
    """
    reports = []
    for report in result.reports:
        compressed = Report(
            device_id=report.device_id,
            method=report.method,
            challenge=report.challenge,
            h_mem=report.h_mem,
            seq=report.seq,
            final=report.final,
            cflog=CFLog(compress(report.cflog.records, dictionary)),
        ).sign(key)
        reports.append(compressed)
    return AttestationResult(
        reports=reports,
        cycles=result.cycles,
        instructions=result.instructions,
        gateway_calls=result.gateway_calls,
        gateway_cycles=result.gateway_cycles,
        exit_reason=result.exit_reason,
        mtb_packets=result.mtb_packets,
        report_cycles=result.report_cycles,
    )


class SpeculativeVerifier:
    """Vrf for compressed chains: authenticate, expand, then replay."""

    def __init__(self, verifier: Verifier, dictionary: SubPathDict):
        self.verifier = verifier
        self.dictionary = dictionary

    def verify(self, result: AttestationResult,
               challenge: bytes) -> VerificationResult:
        authenticated = (
            result.verify_chain(self.verifier.key)
            and result.challenge == challenge
            and all(r.h_mem == self.verifier.expected_h_mem
                    for r in result.reports)
        )
        try:
            expanded = expand(result.cflog.records, self.dictionary)
        except ValueError as exc:
            out = VerificationResult(authenticated=authenticated,
                                     lossless=False, error=str(exc))
            return out
        outcome = self.verifier.replay(expanded)
        outcome.authenticated = authenticated
        return outcome
