"""The control flow log (CFLog) and its entry formats.

Entry sizes follow the mechanisms that produce them:

* :class:`BranchRecord` — an MTB packet: two 32-bit words (source and
  destination of a non-sequential transfer), 8 bytes;
* :class:`AddressRecord` — a TRACES-style instrumentation entry: a
  single 32-bit destination word, 4 bytes (site identity is implicit in
  replay order, so it costs nothing on the wire);
* :class:`LoopRecord` — a logged loop condition. Through the MTB-less
  TRACES path this is one word (4 bytes); RAP-Track's engine stores it
  alongside 8-byte MTB packets (site word + value word).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterable, List, Union


@dataclass(frozen=True)
class BranchRecord:
    """An MTB packet: (recording-instruction address, destination)."""

    key: int  # packet source = address of the recording instruction
    dst: int
    size_bytes: int = 8

    def pack(self) -> bytes:
        return struct.pack("<BII", 1, self.key, self.dst)


@dataclass(frozen=True)
class AddressRecord:
    """A TRACES instrumentation entry: destination only on the wire."""

    key: int  # logging site (svc) address — implicit in replay order
    dst: int
    size_bytes: int = 4

    def pack(self) -> bytes:
        return struct.pack("<BII", 2, self.key, self.dst)


@dataclass(frozen=True)
class LoopRecord:
    """A logged loop condition (the counter value at loop entry)."""

    key: int  # logging site (svc) address
    value: int
    size_bytes: int = 8

    def pack(self) -> bytes:
        return struct.pack("<BII", 3, self.key, self.value & 0xFFFFFFFF)


Record = Union[BranchRecord, AddressRecord, LoopRecord]


class CFLog:
    """An ordered control flow log with wire-size accounting."""

    def __init__(self, records: Iterable[Record] = ()):
        self.records: List[Record] = list(records)

    def append(self, record: Record) -> None:
        self.records.append(record)

    def extend(self, records: Iterable[Record]) -> None:
        self.records.extend(records)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def __getitem__(self, index):
        return self.records[index]

    @property
    def size_bytes(self) -> int:
        """Total wire size of the log."""
        return sum(r.size_bytes for r in self.records)

    def pack(self) -> bytes:
        """Deterministic serialization (MAC input)."""
        return b"".join(r.pack() for r in self.records)

    def __str__(self) -> str:
        return f"CFLog({len(self.records)} records, {self.size_bytes} B)"
