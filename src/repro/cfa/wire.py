"""Wire format: serialize/parse report chains for transmission.

The in-memory objects model the protocol; this codec is what actually
crosses the Prv->Vrf link (and what a fuzzer would attack). The format
is length-delimited and self-describing:

``report  := header fields cflog mac``, all little-endian, with each
variable-length field length-prefixed. Records reuse the 9-byte tagged
encoding of :meth:`Record.pack`.
"""

from __future__ import annotations

import struct
from typing import List, Tuple

from repro.cfa.cflog import (
    AddressRecord,
    BranchRecord,
    CFLog,
    LoopRecord,
    Record,
)
from repro.cfa.report import AttestationResult, Report
from repro.cfa.speccfa import SpecRecord

MAGIC = b"RAPT"
VERSION = 1

#: every record crosses the wire as the 9-byte tagged ``Record.pack``
RECORD_BYTES = 9


class WireError(Exception):
    """Malformed or truncated wire data."""


def _pack_bytes(data: bytes) -> bytes:
    return struct.pack("<I", len(data)) + data


class _Reader:
    def __init__(self, data: bytes):
        self.data = data
        self.pos = 0

    def take(self, count: int) -> bytes:
        if self.pos + count > len(self.data):
            raise WireError("truncated wire data")
        out = self.data[self.pos:self.pos + count]
        self.pos += count
        return out

    def u8(self) -> int:
        return self.take(1)[0]

    def u32(self) -> int:
        return struct.unpack("<I", self.take(4))[0]

    def lp_bytes(self) -> bytes:
        return self.take(self.u32())

    @property
    def exhausted(self) -> bool:
        return self.pos == len(self.data)


def encode_record(record: Record) -> bytes:
    return record.pack()


def decode_record(reader: _Reader) -> Record:
    tag = reader.u8()
    a = reader.u32()
    b = reader.u32()
    if tag == 1:
        return BranchRecord(a, b)
    if tag == 2:
        return AddressRecord(a, b)
    if tag == 3:
        return LoopRecord(a, b)
    if tag == 4:
        return SpecRecord(a, b)
    raise WireError(f"unknown record tag {tag}")


def encode_report(report: Report) -> bytes:
    body = b"".join([
        _pack_bytes(report.device_id),
        _pack_bytes(report.method.encode()),
        _pack_bytes(report.challenge),
        _pack_bytes(report.h_mem),
        struct.pack("<IB", report.seq, 1 if report.final else 0),
        struct.pack("<I", len(report.cflog)),
        b"".join(encode_record(r) for r in report.cflog),
        _pack_bytes(report.mac),
    ])
    return MAGIC + struct.pack("<B", VERSION) + _pack_bytes(body)


def decode_report(data: bytes) -> Tuple[Report, int]:
    """Parse one report; returns ``(report, bytes_consumed)``."""
    reader = _Reader(data)
    if reader.take(4) != MAGIC:
        raise WireError("bad magic")
    version = reader.u8()
    if version != VERSION:
        raise WireError(f"unsupported version {version}")
    body = _Reader(reader.lp_bytes())
    device_id = body.lp_bytes()
    try:
        method = body.lp_bytes().decode("utf-8")
    except UnicodeDecodeError as exc:
        raise WireError(f"method field is not valid UTF-8: {exc}") from None
    challenge = body.lp_bytes()
    h_mem = body.lp_bytes()
    seq, final = struct.unpack("<IB", body.take(5))
    if final not in (0, 1):
        raise WireError(f"final flag must be 0 or 1, got {final}")
    count = body.u32()
    # each record is exactly RECORD_BYTES; reject absurd counts before
    # looping so a mutated length cannot drive a long decode spin
    if count * RECORD_BYTES > len(body.data) - body.pos:
        raise WireError(
            f"record count {count} exceeds the remaining body")
    records: List[Record] = [decode_record(body) for _ in range(count)]
    mac = body.lp_bytes()
    if not body.exhausted:
        raise WireError("trailing bytes inside report body")
    report = Report(
        device_id=device_id, method=method, challenge=challenge,
        h_mem=h_mem, seq=seq, final=bool(final), cflog=CFLog(records),
        mac=mac,
    )
    return report, reader.pos


# -- shard handoff framing --------------------------------------------------
#
# The sharded fleet router hands device traffic to the shard that owns
# the device over its own envelope, so a shard can run in another
# process (or on another host) and still receive exactly the bytes the
# device transmitted, attributed to the right session.

SHARD_MAGIC = b"RSHD"
SHARD_VERSION = 1

#: frame kinds: a device report inbound to a shard, a challenge
#: outbound from a shard (re-challenge fan-in at the router), a
#: dictionary push outbound, a dictionary ACK inbound, a policy
#: notice outbound, or a healing order outbound — policy traffic
#: crosses the shard boundary exactly like session traffic
SHARD_KIND_REPORT = 1
SHARD_KIND_CHALLENGE = 2
SHARD_KIND_DICT = 3
SHARD_KIND_DACK = 4
SHARD_KIND_PLCY = 5
SHARD_KIND_HEAL = 6
_SHARD_KINDS = (SHARD_KIND_REPORT, SHARD_KIND_CHALLENGE,
                SHARD_KIND_DICT, SHARD_KIND_DACK,
                SHARD_KIND_PLCY, SHARD_KIND_HEAL)


def encode_shard_frame(shard_id: int, device_id: str, payload: bytes,
                       kind: int = SHARD_KIND_REPORT) -> bytes:
    """Envelope one device payload for handoff to ``shard_id``."""
    if kind not in _SHARD_KINDS:
        raise WireError(f"unknown shard frame kind {kind}")
    if not 0 <= shard_id <= 0xFFFFFFFF:
        raise WireError(f"shard id {shard_id} out of range")
    return (SHARD_MAGIC
            + struct.pack("<BBI", SHARD_VERSION, kind, shard_id)
            + _pack_bytes(device_id.encode())
            + _pack_bytes(payload))


def decode_shard_frame(data: bytes) -> Tuple[int, str, int, bytes]:
    """Parse a shard handoff frame.

    Returns ``(shard_id, device_id, kind, payload)``; raises
    :class:`WireError` on damage (bad magic/version/kind, non-UTF-8
    device id, trailing bytes) — the shard boundary is as hostile a
    surface as the device link and gets the same strictness.
    """
    reader = _Reader(data)
    if reader.take(4) != SHARD_MAGIC:
        raise WireError("bad shard frame magic")
    version, kind, shard_id = struct.unpack("<BBI", reader.take(6))
    if version != SHARD_VERSION:
        raise WireError(f"unsupported shard frame version {version}")
    if kind not in _SHARD_KINDS:
        raise WireError(f"unknown shard frame kind {kind}")
    try:
        device_id = reader.lp_bytes().decode("utf-8")
    except UnicodeDecodeError as exc:
        raise WireError(
            f"device id is not valid UTF-8: {exc}") from None
    payload = reader.lp_bytes()
    if not reader.exhausted:
        raise WireError("trailing bytes after shard frame")
    return shard_id, device_id, kind, payload


# -- dictionary distribution framing ----------------------------------------
#
# The fleet Vrf mines speculation dictionaries from live traffic and
# pushes them to devices; a device acknowledges the epoch it installed.
# Both directions are framed here so the epoch handshake is a wire
# protocol, not an in-process convention:
#
# ``DICT`` (Vrf -> Prv): the dictionary itself, named by its profile,
# monotone epoch number, and content digest (the receiver re-hashes the
# payload and refuses a frame whose digest lies).
#
# ``DACK`` (Prv -> Vrf): the device's signed acknowledgement that it
# installed (epoch, digest); the MAC is computed under the device's
# attestation key (see ``repro.cfa.fleet.dictver.dack_mac``) so a
# spoofed ACK cannot silently re-pin a device.

DICT_MAGIC = b"DICT"
DICT_VERSION = 1
DACK_MAGIC = b"DACK"
DACK_VERSION = 1
_DIGEST_LEN = 32


def encode_dict_frame(workload: str, method: str, epoch: int,
                      digest: bytes, payload: bytes) -> bytes:
    """Frame one dictionary push for a device."""
    if len(digest) != _DIGEST_LEN:
        raise WireError("dictionary digest must be 32 bytes")
    if not 0 <= epoch <= 0xFFFFFFFF:
        raise WireError(f"epoch {epoch} out of range")
    return (DICT_MAGIC
            + struct.pack("<BI", DICT_VERSION, epoch)
            + digest
            + _pack_bytes(workload.encode())
            + _pack_bytes(method.encode())
            + _pack_bytes(payload))


def decode_dict_frame(data: bytes) -> Tuple[str, str, int, bytes, bytes]:
    """Parse a dictionary push; returns
    ``(workload, method, epoch, digest, payload)``."""
    reader = _Reader(data)
    if reader.take(4) != DICT_MAGIC:
        raise WireError("bad dictionary frame magic")
    version, epoch = struct.unpack("<BI", reader.take(5))
    if version != DICT_VERSION:
        raise WireError(f"unsupported dictionary frame version {version}")
    digest = reader.take(_DIGEST_LEN)
    try:
        workload = reader.lp_bytes().decode("utf-8")
        method = reader.lp_bytes().decode("utf-8")
    except UnicodeDecodeError as exc:
        raise WireError(f"non-UTF-8 profile field: {exc}") from None
    payload = reader.lp_bytes()
    if not reader.exhausted:
        raise WireError("trailing bytes after dictionary frame")
    return workload, method, epoch, digest, payload


def encode_dack_frame(device_id: str, epoch: int, digest: bytes,
                      mac: bytes) -> bytes:
    """Frame one device's dictionary acknowledgement."""
    if len(digest) != _DIGEST_LEN:
        raise WireError("dictionary digest must be 32 bytes")
    if not 0 <= epoch <= 0xFFFFFFFF:
        raise WireError(f"epoch {epoch} out of range")
    return (DACK_MAGIC
            + struct.pack("<BI", DACK_VERSION, epoch)
            + digest
            + _pack_bytes(device_id.encode())
            + _pack_bytes(mac))


def decode_dack_frame(data: bytes) -> Tuple[str, int, bytes, bytes]:
    """Parse an ACK; returns ``(device_id, epoch, digest, mac)``."""
    reader = _Reader(data)
    if reader.take(4) != DACK_MAGIC:
        raise WireError("bad dictionary ACK magic")
    version, epoch = struct.unpack("<BI", reader.take(5))
    if version != DACK_VERSION:
        raise WireError(f"unsupported dictionary ACK version {version}")
    digest = reader.take(_DIGEST_LEN)
    try:
        device_id = reader.lp_bytes().decode("utf-8")
    except UnicodeDecodeError as exc:
        raise WireError(f"device id is not valid UTF-8: {exc}") from None
    mac = reader.lp_bytes()
    if not reader.exhausted:
        raise WireError("trailing bytes after dictionary ACK")
    return device_id, epoch, digest, mac


# -- policy control-plane framing --------------------------------------------
#
# The policy engine notifies devices of lifecycle transitions and
# drives the guaranteed-healing protocol over its own frames:
#
# ``PLCY`` (Vrf -> Prv): a policy notice — the device's new lifecycle
# state, the reason, and the policy epoch it was decided under. MAC'd
# under the device's attestation key so a network adversary cannot
# fake a quarantine (or a rejoin) notice.
#
# ``HEAL`` (Vrf -> Prv): a healing order — the pinned firmware
# measurement the device must re-provision, the healing attempt
# number, and the fresh challenge nonce its post-heal chain must
# answer. MAC'd under the device's attestation key so only the real
# Vrf can force a re-provision.

PLCY_MAGIC = b"PLCY"
PLCY_VERSION = 1
HEAL_MAGIC = b"HEAL"
HEAL_VERSION = 1


def encode_policy_frame(device_id: str, state: str, reason: str,
                        policy_epoch: int, mac: bytes) -> bytes:
    """Frame one policy notice for a device."""
    if not 0 <= policy_epoch <= 0xFFFFFFFF:
        raise WireError(f"policy epoch {policy_epoch} out of range")
    return (PLCY_MAGIC
            + struct.pack("<BI", PLCY_VERSION, policy_epoch)
            + _pack_bytes(device_id.encode())
            + _pack_bytes(state.encode())
            + _pack_bytes(reason.encode())
            + _pack_bytes(mac))


def decode_policy_frame(data: bytes) -> Tuple[str, str, str, int, bytes]:
    """Parse a policy notice; returns
    ``(device_id, state, reason, policy_epoch, mac)``."""
    reader = _Reader(data)
    if reader.take(4) != PLCY_MAGIC:
        raise WireError("bad policy frame magic")
    version, policy_epoch = struct.unpack("<BI", reader.take(5))
    if version != PLCY_VERSION:
        raise WireError(f"unsupported policy frame version {version}")
    try:
        device_id = reader.lp_bytes().decode("utf-8")
        state = reader.lp_bytes().decode("utf-8")
        reason = reader.lp_bytes().decode("utf-8")
    except UnicodeDecodeError as exc:
        raise WireError(f"non-UTF-8 policy field: {exc}") from None
    mac = reader.lp_bytes()
    if not reader.exhausted:
        raise WireError("trailing bytes after policy frame")
    return device_id, state, reason, policy_epoch, mac


def encode_heal_frame(device_id: str, attempt: int, policy_epoch: int,
                      measurement: bytes, nonce: bytes,
                      mac: bytes) -> bytes:
    """Frame one healing order for a quarantined device."""
    if not 1 <= attempt <= 0xFFFFFFFF:
        raise WireError(f"healing attempt {attempt} out of range")
    if not 0 <= policy_epoch <= 0xFFFFFFFF:
        raise WireError(f"policy epoch {policy_epoch} out of range")
    return (HEAL_MAGIC
            + struct.pack("<BII", HEAL_VERSION, attempt, policy_epoch)
            + _pack_bytes(device_id.encode())
            + _pack_bytes(measurement)
            + _pack_bytes(nonce)
            + _pack_bytes(mac))


def decode_heal_frame(
        data: bytes) -> Tuple[str, int, int, bytes, bytes, bytes]:
    """Parse a healing order; returns
    ``(device_id, attempt, policy_epoch, measurement, nonce, mac)``."""
    reader = _Reader(data)
    if reader.take(4) != HEAL_MAGIC:
        raise WireError("bad healing frame magic")
    version, attempt, policy_epoch = struct.unpack(
        "<BII", reader.take(9))
    if version != HEAL_VERSION:
        raise WireError(f"unsupported healing frame version {version}")
    if attempt < 1:
        raise WireError("healing attempt must be >= 1")
    try:
        device_id = reader.lp_bytes().decode("utf-8")
    except UnicodeDecodeError as exc:
        raise WireError(f"device id is not valid UTF-8: {exc}") from None
    measurement = reader.lp_bytes()
    nonce = reader.lp_bytes()
    mac = reader.lp_bytes()
    if not reader.exhausted:
        raise WireError("trailing bytes after healing frame")
    return device_id, attempt, policy_epoch, measurement, nonce, mac


def encode_result(result: AttestationResult) -> bytes:
    """Serialize a whole report chain."""
    return b"".join(encode_report(r) for r in result.reports)


def decode_result(data: bytes) -> AttestationResult:
    """Parse a report chain back into an :class:`AttestationResult`.

    Only the authenticated protocol surface survives the wire — runtime
    telemetry (cycles etc.) is measurement-side and not transmitted.
    """
    reports = []
    pos = 0
    while pos < len(data):
        report, consumed = decode_report(data[pos:])
        reports.append(report)
        pos += consumed
    if not reports:
        raise WireError("empty chain")
    return AttestationResult(reports=reports)
