"""Secure-World service numbers (SVC immediates).

RAP-Track only ever calls the loop-condition logger (section IV-D); the
TRACES baseline instruments every tracked event with a dedicated call.
"""

#: RAP-Track + TRACES: log the loop condition at a simple-loop entry.
SVC_LOG_LOOP = 2

# TRACES instrumentation services (one per event class).
SVC_TRACES_COND_TAKEN = 3
SVC_TRACES_COND_NOT_TAKEN = 4
SVC_TRACES_IND_CALL = 5
SVC_TRACES_RET_POP = 6
SVC_TRACES_LDR = 7
SVC_TRACES_BX = 8
