"""Streaming verification of partial-report chains.

Section IV-E's partial reports exist because Prv cannot hold the whole
CFLog; the operational counterpart on the Vrf side is *incremental*
consumption: authenticate each partial as it arrives (rejecting bad
chains early, bounding Vrf memory to the running log) and replay once
the final report lands. :class:`StreamingVerifier` implements that over
the wire codec.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cfa.cflog import Record
from repro.cfa.report import AttestationResult, Report
from repro.cfa.verifier import VerificationResult, Verifier
from repro.cfa.wire import decode_report


class StreamError(Exception):
    """A protocol violation in the incoming report stream."""


class StreamingVerifier:
    """Consumes a report chain one (wire-encoded) report at a time."""

    def __init__(self, verifier: Verifier, challenge: bytes):
        self.verifier = verifier
        self.challenge = challenge
        self._records: List[Record] = []
        self._next_seq = 0
        self._finished = False
        self.rejected: Optional[str] = None

    @property
    def partials_accepted(self) -> int:
        return self._next_seq

    @property
    def finished(self) -> bool:
        """True once the final report has been absorbed."""
        return self._finished

    @property
    def records(self) -> List[Record]:
        """The authenticated records accumulated so far (shared list)."""
        return self._records

    def feed_bytes(self, data: bytes) -> None:
        """Feed one wire-encoded report."""
        report, consumed = decode_report(data)
        if consumed != len(data):
            raise StreamError("trailing bytes after report")
        self.feed(report)

    def feed(self, report: Report) -> None:
        """Authenticate and absorb one report, in order."""
        if self._finished:
            raise StreamError("stream already finished")
        if self.rejected:
            raise StreamError(f"stream already rejected: {self.rejected}")
        if not report.verify(self.verifier.key):
            self.rejected = f"bad MAC on report #{report.seq}"
        elif report.challenge != self.challenge:
            self.rejected = f"challenge mismatch on report #{report.seq}"
        elif report.h_mem != self.verifier.expected_h_mem:
            self.rejected = f"H_MEM mismatch on report #{report.seq}"
        elif report.seq != self._next_seq:
            self.rejected = (f"out-of-order report #{report.seq}, "
                             f"expected #{self._next_seq}")
        if self.rejected:
            raise StreamError(self.rejected)
        self._records.extend(report.cflog.records)
        self._next_seq += 1
        if report.final:
            self._finished = True

    def finish(self) -> VerificationResult:
        """Replay the accumulated log after the final report."""
        if not self._finished:
            raise StreamError("final report not yet received")
        outcome = self.verifier.replay(self._records)
        outcome.authenticated = True  # each report was checked on feed
        return outcome


def stream_attestation(result: AttestationResult, verifier: Verifier,
                       challenge: bytes) -> VerificationResult:
    """Convenience: push a whole chain through a StreamingVerifier."""
    stream = StreamingVerifier(verifier, challenge)
    for report in result.reports:
        stream.feed(report)
    return stream.finish()
