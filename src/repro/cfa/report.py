"""Attestation reports: structure, authentication, and run results."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.cfa.cflog import CFLog
from repro.crypto.mac import mac_report, verify_mac


@dataclass
class Report:
    """One (possibly partial) attestation report.

    A full attestation is a chain of ``seq``-numbered reports sharing
    one challenge; only the last has ``final=True`` (paper section
    IV-E: partial reports under the MTB_FLOW watermark).
    """

    device_id: bytes
    method: str
    challenge: bytes
    h_mem: bytes
    seq: int
    final: bool
    cflog: CFLog
    mac: bytes = b""

    def _fields(self):
        return (
            self.device_id,
            self.method.encode(),
            self.challenge,
            self.h_mem,
            self.seq.to_bytes(4, "little"),
            b"\x01" if self.final else b"\x00",
            self.cflog.pack(),
        )

    def sign(self, key: bytes) -> "Report":
        self.mac = mac_report(key, *self._fields())
        return self

    def verify(self, key: bytes) -> bool:
        return verify_mac(key, self.mac, *self._fields())


@dataclass
class AttestationResult:
    """Everything one attested execution produced, plus run metrics."""

    reports: List[Report] = field(default_factory=list)
    cycles: int = 0
    instructions: int = 0
    gateway_calls: int = 0
    gateway_cycles: int = 0
    exit_reason: str = ""
    mtb_packets: int = 0  # total packets the MTB captured (lifetime)
    report_cycles: int = 0  # report signing/transmission pause cycles

    @property
    def final_report(self) -> Report:
        return self.reports[-1]

    @property
    def challenge(self) -> bytes:
        return self.final_report.challenge

    @property
    def cflog(self) -> CFLog:
        """The full log: all partial reports concatenated in order."""
        merged = CFLog()
        for report in self.reports:
            merged.extend(report.cflog.records)
        return merged

    @property
    def cflog_bytes(self) -> int:
        return sum(r.cflog.size_bytes for r in self.reports)

    @property
    def partial_report_count(self) -> int:
        return max(0, len(self.reports) - 1)

    def verify_chain(self, key: bytes) -> bool:
        """Check MACs, sequencing, and challenge consistency."""
        if not self.reports:
            return False
        challenge = self.reports[0].challenge
        for seq, report in enumerate(self.reports):
            if report.seq != seq or report.challenge != challenge:
                return False
            if report.final != (seq == len(self.reports) - 1):
                return False
            if not report.verify(key):
                return False
        return True
