"""The Secure-World CFA Engine.

Implements the execution phase of RAP-Track (paper section IV-A):

1. disable Non-Secure interrupts and MPU-lock the attested binary;
2. measure the code (``H_MEM``);
3. program the DWT ranges and the MTB (watermark, activation latency);
4. release the application in the Non-Secure World;
5. on the MTB_FLOW watermark exception, emit a signed *partial* report
   and reset the trace buffer (section IV-E);
6. when the application finishes, sign the final report over
   ``(Chal, H_MEM, CFLog)``.

A common base class carries the report machinery so the naive-MTB and
TRACES baseline engines (``repro.baselines``) reuse it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.asm.program import MTBAR, TEXT, Image
from repro.cfa.cflog import BranchRecord, CFLog, LoopRecord, Record
from repro.cfa.report import AttestationResult, Report
from repro.cfa.services import SVC_LOG_LOOP
from repro.core.rewrite_map import BoundRewriteMap
from repro.crypto.hashing import measure_image
from repro.machine.cpu import CPU
from repro.machine.mcu import MCU
from repro.trace.dwt import DWT
from repro.trace.mtb import MTB
from repro.tz.gateway import GatewayCosts, SecureGateway
from repro.tz.keystore import KeyStore
from repro.isa.registers import PC


@dataclass
class EngineConfig:
    """Secure-World configuration knobs (calibration points)."""

    mtb_buffer_size: int = 4096  # the M33 MTB limit the paper cites
    watermark: Optional[int] = None  # None = full buffer
    activation_latency: int = 1  # retirements before MTB records
    gateway: GatewayCosts = field(default_factory=GatewayCosts)
    loop_log_cycles: int = 24  # secure loop-condition append routine
    event_log_cycles: int = 22  # secure branch-record append (TRACES)
    hash_cycles_per_byte: int = 4  # H_MEM measurement cost (one-off)
    sign_cycles: int = 6400  # HMAC of one report (one-off)


class AttestationEngineBase:
    """Shared report/lifecycle machinery for all CFA methods."""

    method = "base"

    def __init__(self, mcu: MCU, keystore: KeyStore,
                 config: Optional[EngineConfig] = None):
        self.mcu = mcu
        self.image: Image = mcu.image
        self.keystore = keystore
        self.config = config or EngineConfig()
        self.reports: List[Report] = []
        self._challenge: bytes = b""
        self._h_mem: bytes = b""
        self._seq = 0
        self.ns_interrupts_enabled = True
        self.setup_cycles = 0
        self.report_cycles = 0  # signing/transmission pauses (separate
        # from figure-8 CPU cycles, per the paper's section V-B framing)

    # -- lifecycle ---------------------------------------------------------

    def _begin(self, challenge: bytes) -> None:
        self._challenge = challenge
        self.reports = []
        self._seq = 0
        self.report_cycles = 0
        self.ns_interrupts_enabled = False  # paper section III
        self.mcu.nvic.ns_enabled = False
        for region in ("ns_text", "mtbar"):
            self.mcu.memmap.lock_region_writes(region)
        self._h_mem = measure_image(self.image)
        self.setup_cycles = (
            len(self.image.code_bytes()) * self.config.hash_cycles_per_byte
        )

    def _end(self) -> None:
        for region in ("ns_text", "mtbar"):
            self.mcu.memmap.unlock_region_writes(region)
        self.ns_interrupts_enabled = True
        self.mcu.nvic.ns_enabled = True

    def _emit_report(self, records: List[Record], final: bool) -> Report:
        report = Report(
            device_id=self.keystore.device_id,
            method=self.method,
            challenge=self._challenge,
            h_mem=self._h_mem,
            seq=self._seq,
            final=final,
            cflog=CFLog(records),
        ).sign(self.keystore.attestation_key)
        self._seq += 1
        self.reports.append(report)
        return report

    def attest(self, challenge: bytes) -> AttestationResult:
        raise NotImplementedError


class RapTrackEngine(AttestationEngineBase):
    """RAP-Track: MTB/DWT parallel tracking over the rewritten binary."""

    method = "rap-track"

    def __init__(self, mcu: MCU, keystore: KeyStore, bound_map: BoundRewriteMap,
                 config: Optional[EngineConfig] = None):
        super().__init__(mcu, keystore, config)
        self.bound_map = bound_map
        self.mtb = MTB(
            mcu.memory,
            buffer_size=self.config.mtb_buffer_size,
            activation_latency=self.config.activation_latency,
        )
        self.dwt = DWT(self.mtb)
        self.gateway = SecureGateway(self.config.gateway)
        self.gateway.register(SVC_LOG_LOOP, self._log_loop_condition)
        # engine-side log of loop records, tagged with the MTB packet
        # count at log time so the streams merge in execution order
        self._loop_records: List[Tuple[int, LoopRecord]] = []
        self._drained_packets = 0

    # -- secure services ------------------------------------------------------

    def _log_loop_condition(self, cpu: CPU) -> int:
        site = cpu.regs[PC]
        loop = self.bound_map.loop_at.get(site)
        if loop is None:
            raise RuntimeError(f"loop-log svc from unknown site {site:#x}")
        value = cpu.regs[loop.counter_reg]
        self._loop_records.append(
            (self.mtb.total_packets, LoopRecord(site, value))
        )
        return self.config.loop_log_cycles

    # -- trace plumbing ---------------------------------------------------------

    def _configure_tracing(self) -> None:
        text_lo, text_hi = self.image.section_ranges[TEXT]
        mtbar_lo, mtbar_hi = self.image.section_ranges.get(
            MTBAR, (0, 0)
        )
        self.dwt.clear()
        if mtbar_hi > mtbar_lo:
            self.dwt.configure_range("start", mtbar_lo, mtbar_hi)
        self.dwt.configure_range("stop", text_lo, text_hi)
        self.mtb.configure(
            watermark=self.config.watermark or self.config.mtb_buffer_size,
            watermark_handler=self._on_watermark,
        )
        self.mtb.stop()
        cpu = self.mcu.cpu
        if self.dwt.evaluate not in cpu.pre_hooks:
            cpu.pre_hooks.append(self.dwt.evaluate)
        if self.mtb.on_retire not in cpu.retire_hooks:
            cpu.retire_hooks.append(self.mtb.on_retire)
        self.gateway.install(cpu)

    def _merged_records(self) -> List[Record]:
        """Drain the MTB and interleave loop records in program order."""
        if self.mtb.wrapped:
            raise RuntimeError("MTB wrapped before drain: packets lost")
        packets = self.mtb.drain()
        merged: List[Record] = []
        pending = self._loop_records
        cursor = 0
        for global_index, packet in enumerate(packets, start=self._drained_packets):
            while cursor < len(pending) and pending[cursor][0] <= global_index:
                merged.append(pending[cursor][1])
                cursor += 1
            merged.append(BranchRecord(packet.src, packet.dst))
        while cursor < len(pending):
            merged.append(pending[cursor][1])
            cursor += 1
        self._loop_records = []
        self._drained_packets += len(packets)
        return merged

    def _on_watermark(self, _mtb: MTB) -> None:
        """MTB_FLOW debug exception: emit a partial report and resume."""
        self._emit_report(self._merged_records(), final=False)
        self.report_cycles += self.config.sign_cycles

    # -- main entry ------------------------------------------------------------

    def attest(self, challenge: bytes) -> AttestationResult:
        """Run the attested application once and produce the report chain."""
        self._begin(challenge)
        self._drained_packets = 0
        self._loop_records = []
        self.mtb.total_packets = 0
        self._configure_tracing()
        self.mcu.reset()
        try:
            run = self.mcu.run()
            self._emit_report(self._merged_records(), final=True)
        finally:
            self._end()
        return AttestationResult(
            reports=list(self.reports),
            cycles=run.cycles,
            instructions=run.instructions,
            gateway_calls=self.gateway.calls,
            gateway_cycles=self.gateway.cycles_charged,
            exit_reason=run.exit_reason,
            mtb_packets=self.mtb.total_packets,
            report_cycles=self.report_cycles + self.config.sign_cycles,
        )
