"""Path auditing on top of lossless verification.

The paper (section II-D, citing the SoK [12]) argues the advantage of
*lossless* CFA: because Vrf reconstructs the complete path, it can
detect attacks that never corrupt a branch target — data-only /
control-flow-bending attacks that steer execution down *legal* CFG
edges. Such runs pass every CFI policy check (no ``Violation``), but
their reconstructed path differs from expected behaviour.

This module provides that second-stage assessment: compare a verified
path against a reference (a golden run, or an expected profile) and
summarise where behaviour diverged — per-address execution counts, the
first divergence point, and the conditional sites whose outcome
frequencies changed.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.asm.program import Image


@dataclass
class SiteDelta:
    """Execution-count change at one address."""

    address: int
    label: Optional[str]
    reference_count: int
    observed_count: int

    @property
    def delta(self) -> int:
        return self.observed_count - self.reference_count


@dataclass
class AuditReport:
    """Outcome of comparing an observed path against a reference."""

    identical: bool
    first_divergence: Optional[int] = None  # path position
    reference_length: int = 0
    observed_length: int = 0
    deltas: List[SiteDelta] = field(default_factory=list)

    def summary(self) -> str:
        if self.identical:
            return ("paths identical "
                    f"({self.observed_length} instructions)")
        lines = [
            f"paths diverge at position {self.first_divergence} "
            f"(reference {self.reference_length}, "
            f"observed {self.observed_length} instructions)",
            "largest per-address execution-count changes:",
        ]
        for delta in self.deltas[:8]:
            name = f" ({delta.label})" if delta.label else ""
            lines.append(
                f"  {delta.address:#010x}{name}: "
                f"{delta.reference_count} -> {delta.observed_count} "
                f"({delta.delta:+d})")
        return "\n".join(lines)


def audit_paths(reference: Sequence[int], observed: Sequence[int],
                image: Optional[Image] = None,
                top: int = 16) -> AuditReport:
    """Compare two reconstructed paths (sequences of addresses)."""
    if list(reference) == list(observed):
        return AuditReport(identical=True,
                           reference_length=len(reference),
                           observed_length=len(observed))
    first = next(
        (i for i, (a, b) in enumerate(zip(reference, observed)) if a != b),
        min(len(reference), len(observed)),
    )
    ref_counts = Counter(reference)
    obs_counts = Counter(observed)
    deltas = []
    for address in sorted(set(ref_counts) | set(obs_counts)):
        r, o = ref_counts.get(address, 0), obs_counts.get(address, 0)
        if r != o:
            label = image.label_at(address) if image else None
            deltas.append(SiteDelta(address, label, r, o))
    deltas.sort(key=lambda d: abs(d.delta), reverse=True)
    return AuditReport(
        identical=False,
        first_divergence=first,
        reference_length=len(reference),
        observed_length=len(observed),
        deltas=deltas[:top],
    )


def conditional_outcome_profile(path: Sequence[int],
                                bound_map) -> Dict[int, Tuple[int, int]]:
    """Per-conditional (taken, not_taken) counts from a replayed path.

    For every trampolined conditional site, count how often the next
    path entry was the taken target versus the fall-through — the
    behavioural fingerprint a data-only attack perturbs.
    """
    positions: Dict[int, List[int]] = {}
    for index, address in enumerate(path):
        if address in bound_map.cond_at:
            positions.setdefault(address, []).append(index)
    profile: Dict[int, Tuple[int, int]] = {}
    image = bound_map.image
    for site, hits in positions.items():
        info = bound_map.cond_at[site]
        instr = image.instr_at[site]
        taken = not_taken = 0
        for index in hits:
            if index + 1 >= len(path):
                continue
            succ = path[index + 1]
            if info.flavor == "taken":
                if succ == info.taken_addr:
                    taken += 1
                else:
                    not_taken += 1
            elif info.flavor == "not_taken":
                if succ == info.taken_addr:
                    taken += 1
                else:
                    not_taken += 1
            else:  # always: unconditional latch
                taken += 1
        profile[site] = (taken, not_taken)
    return profile
