"""Verifier-side report validation and lossless path reconstruction.

``Vrf`` holds the (public) rewritten binary, the linking metadata
(:class:`~repro.core.rewrite_map.BoundRewriteMap`), and the shared
attestation key. Verification has three layers:

1. **Authentication** — MAC chain, sequence numbers, challenge
   freshness, and the expected ``H_MEM``.
2. **Lossless replay** — the CFLog is replayed against the binary:
   deterministic transfers are followed statically, fixed loops are
   unrolled from their static trip counts, loop-opt loops from their
   logged conditions, and every trampolined site consumes exactly one
   matching record. Replay succeeding with the log fully consumed means
   the complete control flow path has been reconstructed.
3. **Policy evidence** — consumed indirect targets are screened against
   the binary's legal-target sets and a shadow return stack; mismatches
   become :class:`Violation` evidence of ROP/JOP-style attacks (the log
   itself stays authentic — CFA reports attacks, it does not mask them).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.asm.program import Image
from repro.cfa.cflog import AddressRecord, BranchRecord, LoopRecord, Record
from repro.cfa.report import AttestationResult
from repro.core.loops import trip_count
from repro.core.rewrite_map import BoundRewriteMap
from repro.crypto.hashing import measure_image
from repro.isa.instructions import InstrKind

#: Replay step guard (a verifier-side runaway protection).
DEFAULT_MAX_STEPS = 20_000_000

#: The bare-metal exit sentinel (return to the reset value of LR).
EXIT_SENTINEL = 0xFFFF_FFFE


@dataclass(frozen=True)
class Violation:
    """One piece of attack evidence surfaced during replay."""

    kind: str  # e.g. "rop-return", "jop-call", "bad-jump-target"
    address: int  # site address in the attested binary
    detail: str


@dataclass
class VerificationResult:
    """Outcome of verifying one attestation."""

    authenticated: bool
    lossless: bool
    violations: List[Violation] = field(default_factory=list)
    path: List[int] = field(default_factory=list)
    consumed: int = 0
    #: deepest the reconstructed shadow return stack ever got — the
    #: observable the `BNDS1` static depth bound is checked against
    max_shadow_depth: int = 0
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        """Authentic, fully reconstructable, and attack-free."""
        return self.authenticated and self.lossless and not self.violations


class ReplayError(Exception):
    """The log cannot be losslessly replayed against the binary."""


class Verifier:
    """The remote Verifier for trampoline-based CFA (RAP-Track/TRACES)."""

    def __init__(self, image: Image, bound_map: BoundRewriteMap, key: bytes,
                 max_steps: int = DEFAULT_MAX_STEPS):
        self.image = image
        self.map = bound_map
        self.key = key
        self.max_steps = max_steps
        self.expected_h_mem = measure_image(image)

    # -- top level ----------------------------------------------------------

    def verify(self, result: AttestationResult,
               challenge: bytes) -> VerificationResult:
        """Authenticate the report chain, then reconstruct the path."""
        authenticated = (
            result.verify_chain(self.key)
            and result.challenge == challenge
            and all(r.h_mem == self.expected_h_mem for r in result.reports)
        )
        out = self.replay(result.cflog.records)
        out.authenticated = authenticated
        return out

    # -- replay ------------------------------------------------------------

    def replay(self, records: Sequence[Record]) -> VerificationResult:
        """Reconstruct the complete execution path from the CFLog."""
        result = VerificationResult(authenticated=False, lossless=False)
        try:
            self._replay(records, result)
            result.lossless = result.error is None
        except ReplayError as exc:
            result.error = str(exc)
            result.lossless = False
        return result

    def _replay(self, records: Sequence[Record],
                result: VerificationResult) -> None:
        image, rmap = self.image, self.map
        pc = image.entry
        cursor = 0
        shadow: List[int] = []
        fixed_state = {}
        loop_state = {}
        path = result.path
        steps = 0

        def peek() -> Optional[Record]:
            return records[cursor] if cursor < len(records) else None

        while True:
            steps += 1
            if steps > self.max_steps:
                raise ReplayError("replay exceeded the step guard")
            instr = image.instr_at.get(pc)
            if instr is None:
                raise ReplayError(f"replay left the code image at {pc:#010x}")
            path.append(pc)

            # 1. loop-condition log sites
            if pc in rmap.loop_at:
                info = rmap.loop_at[pc]
                entry = peek()
                if not isinstance(entry, LoopRecord) or entry.key != pc:
                    raise ReplayError(
                        f"missing loop-condition record at {pc:#010x}"
                    )
                cursor += 1
                trips = trip_count(info, entry.value)
                loop_state[info.latch_addr] = trips - 1
                pc += instr.size
                continue

            # 2. trampolined indirect transfers
            if pc in rmap.indirect_at:
                info = rmap.indirect_at[pc]
                entry = peek()
                if (not isinstance(entry, (BranchRecord, AddressRecord))
                        or entry.key != info.rec_addr):
                    raise ReplayError(
                        f"missing record for indirect transfer at {pc:#010x}"
                    )
                cursor += 1
                if instr.mnemonic == "svc":
                    # TRACES shape: the instrumented branch follows the svc
                    path.append(pc + instr.size)
                dst = entry.dst
                if dst == EXIT_SENTINEL and not shadow:
                    break  # top-level return: program exit
                if info.kind == "call":
                    shadow.append(self._call_resume(pc))
                    result.max_shadow_depth = max(
                        result.max_shadow_depth, len(shadow))
                    if dst not in rmap.function_entry_addrs:
                        result.violations.append(Violation(
                            "jop-call", pc,
                            f"indirect call to non-entry {dst:#010x}"))
                elif info.kind in ("return_pop", "return_bx"):
                    if shadow:
                        expected = shadow.pop()
                        if dst != expected:
                            result.violations.append(Violation(
                                "rop-return", pc,
                                f"return to {dst:#010x}, "
                                f"call site expected {expected:#010x}"))
                    else:
                        result.violations.append(Violation(
                            "rop-return", pc,
                            f"return to {dst:#010x} with empty call stack"))
                else:  # ldr / bx computed jumps
                    legal = (dst in rmap.address_taken_addrs
                             or dst in rmap.function_entry_addrs)
                    if not legal:
                        result.violations.append(Violation(
                            "bad-jump-target", pc,
                            f"computed jump to {dst:#010x}"))
                if image.instr_at.get(dst) is None:
                    raise ReplayError(
                        f"logged target {dst:#010x} is not code")
                pc = dst
                continue

            # 3. trampolined conditionals
            if pc in rmap.cond_at:
                info = rmap.cond_at[pc]
                entry = peek()
                match = (isinstance(entry, (BranchRecord, AddressRecord))
                         and entry.key == info.rec_addr)
                if info.flavor == "always":
                    # silent-cycle latch: a record is mandatory
                    if not match:
                        raise ReplayError(
                            f"missing record for latch at {pc:#010x}")
                    cursor += 1
                    rec = image.instr_at.get(info.rec_addr)
                    if rec is not None and rec.mnemonic == "svc":
                        path.append(info.rec_addr)
                        path.append(info.rec_addr + rec.size)
                    pc = info.taken_addr
                elif info.flavor == "taken":
                    if match:
                        cursor += 1
                        rec = image.instr_at.get(info.rec_addr)
                        if rec is not None and rec.mnemonic == "svc":
                            # TRACES in-text thunk: svc + direct branch
                            path.append(info.rec_addr)
                            path.append(info.rec_addr + rec.size)
                        pc = info.taken_addr
                    else:
                        pc += instr.size
                else:  # forward-exit: a record means "stayed in the loop"
                    if match:
                        cursor += 1
                        # the in-text consume site (RAP: the inserted
                        # direct branch; TRACES: the inline svc)
                        path.append(pc + instr.size)
                        pc = info.cont_addr
                    else:
                        pc = info.taken_addr
                continue

            # 4. fixed loops: unroll from the static trip count
            if pc in rmap.fixed_trip_at:
                remaining = fixed_state.get(pc)
                if remaining is None:
                    remaining = rmap.fixed_trip_at[pc] - 1
                if remaining > 0:
                    fixed_state[pc] = remaining - 1
                    pc = self._taken_target(pc, instr)
                else:
                    fixed_state.pop(pc, None)
                    pc += instr.size
                continue

            # 5. loop-opt latches: governed by the consumed condition
            if pc in rmap.loop_latches:
                remaining = loop_state.get(pc)
                if remaining is None:
                    raise ReplayError(
                        f"loop latch at {pc:#010x} reached without "
                        f"a logged loop condition")
                if remaining > 0:
                    loop_state[pc] = remaining - 1
                    pc = self._taken_target(pc, instr)
                else:
                    del loop_state[pc]
                    pc += instr.size
                continue

            # 6. untracked instructions
            kind = instr.kind
            if kind is InstrKind.BRANCH:
                if instr.cond is not None:
                    raise ReplayError(
                        f"unclassified conditional at {pc:#010x}")
                pc = self._taken_target(pc, instr)
            elif kind is InstrKind.CALL:
                shadow.append(pc + instr.size)
                result.max_shadow_depth = max(
                    result.max_shadow_depth, len(shadow))
                pc = self._taken_target(pc, instr)
            elif kind is InstrKind.INDIRECT_BRANCH:
                # untracked bx lr: a leaf return through an unspilled LR
                if not shadow:
                    break  # entry function returned: program exit
                pc = shadow.pop()
            elif instr.mnemonic == "bkpt":
                break
            elif instr.writes_pc():
                raise ReplayError(
                    f"unclassified pc-writing instruction at {pc:#010x}")
            elif instr.mnemonic == "svc":
                raise ReplayError(f"unexpected svc at {pc:#010x}")
            else:
                pc += instr.size

        result.consumed = cursor
        if cursor != len(records):
            raise ReplayError(
                f"{len(records) - cursor} CFLog records left after "
                f"execution reached its end")

    # -- helpers -----------------------------------------------------------

    def _taken_target(self, pc: int, instr) -> int:
        target = instr.direct_target()
        if target is None:
            raise ReplayError(f"no direct target at {pc:#010x}")
        return self.image.addr_of(target.name)

    def _call_resume(self, site: int) -> int:
        """Runtime return address of an indirect-call site.

        RAP-Track sites are a single ``bl`` (resume right after it); the
        TRACES shape is ``svc`` + the original ``blx`` (resume after the
        pair).
        """
        instr = self.image.instr_at[site]
        if instr.mnemonic == "svc":
            branch_addr = site + instr.size
            branch = self.image.instr_at[branch_addr]
            return branch_addr + branch.size
        return site + instr.size


class NaiveVerifier:
    """Verifier for the naive-MTB baseline: replay of the *unmodified*
    binary where every non-sequential transfer consumes one MTB packet."""

    def __init__(self, image: Image, key: bytes,
                 max_steps: int = DEFAULT_MAX_STEPS):
        self.image = image
        self.key = key
        self.max_steps = max_steps
        self.expected_h_mem = measure_image(image)

    def verify(self, result: AttestationResult,
               challenge: bytes) -> VerificationResult:
        authenticated = (
            result.verify_chain(self.key)
            and result.challenge == challenge
            and all(r.h_mem == self.expected_h_mem for r in result.reports)
        )
        out = self.replay(result.cflog.records)
        out.authenticated = authenticated
        return out

    def replay(self, records: Sequence[Record]) -> VerificationResult:
        result = VerificationResult(authenticated=False, lossless=False)
        try:
            self._replay(records, result)
            result.lossless = result.error is None
        except ReplayError as exc:
            result.error = str(exc)
        return result

    def _replay(self, records: Sequence[Record],
                result: VerificationResult) -> None:
        image = self.image
        pc = image.entry
        cursor = 0
        shadow: List[int] = []
        steps = 0
        while True:
            steps += 1
            if steps > self.max_steps:
                raise ReplayError("replay exceeded the step guard")
            instr = image.instr_at.get(pc)
            if instr is None:
                raise ReplayError(f"replay left the code image at {pc:#010x}")
            result.path.append(pc)

            def consume() -> BranchRecord:
                nonlocal cursor
                if cursor >= len(records):
                    raise ReplayError(f"CFLog exhausted at {pc:#010x}")
                entry = records[cursor]
                if not isinstance(entry, BranchRecord) or entry.key != pc:
                    raise ReplayError(
                        f"CFLog record mismatch at {pc:#010x}")
                cursor += 1
                return entry

            kind = instr.kind
            if kind is InstrKind.BRANCH and instr.cond is None:
                target = self.image.addr_of(instr.direct_target().name)
                if target == pc + instr.size:
                    pc = target  # branch-to-next retires sequentially
                else:
                    entry = consume()
                    pc = entry.dst
            elif (kind is InstrKind.COMPARE_BRANCH
                  or (kind is InstrKind.BRANCH and instr.cond is not None)):
                entry = records[cursor] if cursor < len(records) else None
                if isinstance(entry, BranchRecord) and entry.key == pc:
                    cursor += 1
                    pc = entry.dst
                else:
                    pc += instr.size
            elif kind is InstrKind.CALL:
                target = self.image.addr_of(instr.direct_target().name)
                shadow.append(pc + instr.size)
                result.max_shadow_depth = max(
                    result.max_shadow_depth, len(shadow))
                if target == pc + instr.size:
                    pc = target  # call-to-next retires sequentially
                else:
                    entry = consume()
                    pc = entry.dst
            elif kind is InstrKind.INDIRECT_CALL:
                entry = consume()
                shadow.append(pc + instr.size)
                result.max_shadow_depth = max(
                    result.max_shadow_depth, len(shadow))
                pc = entry.dst
            elif kind is InstrKind.INDIRECT_BRANCH:
                entry = consume()
                if entry.dst == EXIT_SENTINEL and not shadow:
                    break  # top-level return: program exit
                if shadow and entry.dst == shadow[-1]:
                    shadow.pop()
                pc = entry.dst
            elif instr.writes_pc():  # pop {...,pc} / ldr pc
                entry = consume()
                if entry.dst == EXIT_SENTINEL and not shadow:
                    break  # top-level return: program exit
                if kind is InstrKind.POP and shadow:
                    expected = shadow.pop()
                    if entry.dst != expected:
                        result.violations.append(Violation(
                            "rop-return", pc,
                            f"return to {entry.dst:#010x}, "
                            f"call site expected {expected:#010x}"))
                pc = entry.dst
            elif instr.mnemonic == "bkpt":
                break
            else:
                pc += instr.size

        result.consumed = cursor
        if cursor != len(records):
            raise ReplayError(
                f"{len(records) - cursor} CFLog records left after "
                f"execution reached its end")
