"""The firmware/attestation registry: signed, versioned policy documents.

A :class:`PolicyDoc` pins, for one device profile, the set of firmware
measurements (``H_MEM`` values) a Vrf is willing to accept — one of
them distinguished as the *pinned* image the healing protocol
re-provisions — plus an explicit revocation list. Documents are
versioned exactly like speculation dictionaries
(:class:`~repro.cfa.fleet.dictver.DictionaryRegistry`): monotone,
content-addressed policy epochs, one immutable file per epoch, gapless
strict reload, idempotent republish. Epoch 0 is the permissive
document (no pins, nothing revoked) — a fleet that never publishes
policy behaves exactly as before this layer existed.

Unlike dictionaries, policy documents are *authority*: each one
carries an HMAC under the Vrf's policy key
(:func:`policy_key`, derived from the service seed like the evidence
audit key), verified on every reload — a tampered policy store refuses
to load rather than silently admitting revoked firmware.

**Byte layout** (little-endian, ``lp x`` = ``u32 len(x) || x``)::

    doc  := b"FWP1" u8 version lp workload lp method u32 epoch
            lp pinned u16 n_allowed (lp measurement)*
            u16 n_revoked (lp measurement)*
    file := doc mac[32]          # mac = HMAC-SHA256(K_policy, doc)
"""

from __future__ import annotations

import hashlib
import hmac
import os
import struct
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.cfa.fleet.verify import DeviceProfile

POLICY_MAGIC = b"FWP1"
POLICY_VERSION = 1
_MAC_LEN = 32

#: evaluation outcomes of :meth:`PolicyRegistry.evaluate`
ALLOWED = "allowed"
REVOKED_FW = "revoked"
UNPINNED = "unpinned"
UNKNOWN_PROFILE = "unknown-profile"


class PolicyError(Exception):
    """A policy document failed verification or violated monotonicity."""


def policy_key(seed: bytes) -> bytes:
    """The Vrf-side policy-signing key derived from the service seed."""
    return hashlib.sha256(b"policy-sign|" + seed).digest()


def _lp(data: bytes) -> bytes:
    return struct.pack("<I", len(data)) + data


class _Reader:
    def __init__(self, data: bytes):
        self.data = data
        self.pos = 0

    def take(self, count: int) -> bytes:
        if self.pos + count > len(self.data):
            raise PolicyError("truncated policy document")
        out = self.data[self.pos:self.pos + count]
        self.pos += count
        return out

    def u8(self) -> int:
        return self.take(1)[0]

    def u16(self) -> int:
        return struct.unpack("<H", self.take(2))[0]

    def u32(self) -> int:
        return struct.unpack("<I", self.take(4))[0]

    def lp_bytes(self) -> bytes:
        return self.take(self.u32())

    def lp_str(self) -> str:
        try:
            return self.lp_bytes().decode("utf-8")
        except UnicodeDecodeError as exc:
            raise PolicyError(f"non-UTF-8 policy field: {exc}") from None

    @property
    def exhausted(self) -> bool:
        return self.pos == len(self.data)


def pack_policy(profile: DeviceProfile, epoch: int, pinned: bytes,
                allowed: Tuple[bytes, ...],
                revoked: Tuple[bytes, ...]) -> bytes:
    """Canonical serialization of one policy document (the MAC input)."""
    parts = [
        POLICY_MAGIC,
        struct.pack("<B", POLICY_VERSION),
        _lp(profile.workload.encode()),
        _lp(profile.method.encode()),
        struct.pack("<I", epoch),
        _lp(pinned),
        struct.pack("<H", len(allowed)),
    ]
    for measurement in allowed:
        parts.append(_lp(measurement))
    parts.append(struct.pack("<H", len(revoked)))
    for measurement in revoked:
        parts.append(_lp(measurement))
    return b"".join(parts)


def unpack_policy(payload: bytes
                  ) -> Tuple[DeviceProfile, int, bytes,
                             Tuple[bytes, ...], Tuple[bytes, ...]]:
    """Strictly parse one canonical policy document."""
    reader = _Reader(payload)
    if reader.take(4) != POLICY_MAGIC:
        raise PolicyError("bad policy document magic")
    version = reader.u8()
    if version != POLICY_VERSION:
        raise PolicyError(f"unsupported policy document version {version}")
    workload = reader.lp_str()
    method = reader.lp_str()
    epoch = reader.u32()
    pinned = reader.lp_bytes()
    allowed = tuple(reader.lp_bytes() for _ in range(reader.u16()))
    revoked = tuple(reader.lp_bytes() for _ in range(reader.u16()))
    if not reader.exhausted:
        raise PolicyError("trailing bytes after policy document")
    return DeviceProfile(workload, method), epoch, pinned, allowed, revoked


@dataclass(frozen=True)
class PolicyDoc:
    """One immutable, signed policy version for one device profile."""

    profile: DeviceProfile
    epoch: int
    pinned: bytes                  # the image healing re-provisions
    allowed: Tuple[bytes, ...]     # acceptable measurements (incl. pinned)
    revoked: Tuple[bytes, ...]     # measurements that hard-quarantine
    payload: bytes                 # canonical serialization
    digest: bytes                  # sha256(payload): the content address
    mac: bytes                     # HMAC-SHA256(K_policy, payload)

    @property
    def is_permissive(self) -> bool:
        return self.epoch == 0


def _profile_key(profile: DeviceProfile) -> str:
    return f"{profile.workload}__{profile.method}"


class PolicyRegistry:
    """Monotone, content-addressed, MAC'd policy versions per profile."""

    def __init__(self, key: bytes,
                 store_dir: Optional[Union[str, os.PathLike]] = None):
        self.key = key
        self._lock = threading.Lock()
        #: profile -> [PolicyDoc for epoch 1..N] (epoch 0 is implicit)
        self._epochs: Dict[DeviceProfile, List[PolicyDoc]] = {}
        self.store_dir = Path(store_dir) if store_dir is not None else None
        if self.store_dir is not None:
            self.store_dir.mkdir(parents=True, exist_ok=True)
            self._load()

    # -- persistence ----------------------------------------------------------

    def _epoch_path(self, profile: DeviceProfile, epoch: int) -> Path:
        return self.store_dir / f"{_profile_key(profile)}__{epoch:06d}.pol"

    def _load(self) -> None:
        for path in sorted(self.store_dir.glob("*.pol")):
            blob = path.read_bytes()
            if len(blob) < _MAC_LEN:
                raise PolicyError(f"policy file {path.name} too short")
            payload, mac = blob[:-_MAC_LEN], blob[-_MAC_LEN:]
            if not hmac.compare_digest(
                    mac, hmac.new(self.key, payload,
                                  hashlib.sha256).digest()):
                raise PolicyError(
                    f"policy file {path.name} failed MAC verification")
            profile, epoch, pinned, allowed, revoked = unpack_policy(payload)
            doc = PolicyDoc(
                profile=profile, epoch=epoch, pinned=pinned,
                allowed=allowed, revoked=revoked, payload=payload,
                digest=hashlib.sha256(payload).digest(), mac=mac)
            chain = self._epochs.setdefault(profile, [])
            if doc.epoch != len(chain) + 1:
                raise PolicyError(
                    f"policy store {self.store_dir} has a gap: "
                    f"{path.name} is epoch {doc.epoch}, expected "
                    f"{len(chain) + 1}")
            chain.append(doc)

    def _persist(self, doc: PolicyDoc) -> None:
        if self.store_dir is None:
            return
        path = self._epoch_path(doc.profile, doc.epoch)
        tmp = path.with_suffix(".tmp")
        tmp.write_bytes(doc.payload + doc.mac)
        os.replace(tmp, path)

    # -- the registry surface -------------------------------------------------

    def publish(self, profile: DeviceProfile, pinned: bytes,
                allowed: Tuple[bytes, ...] = (),
                revoked: Tuple[bytes, ...] = ()) -> PolicyDoc:
        """Sign and version a policy document under the next epoch.

        ``pinned`` is always acceptable; ``allowed`` lists additional
        acceptable measurements and ``revoked`` the banned ones (a
        measurement cannot be both). Publishing content identical to
        the current latest is idempotent.
        """
        if pinned in revoked:
            raise PolicyError("pinned measurement cannot be revoked")
        full_allowed = tuple(sorted({pinned, *allowed} - set(revoked)))
        revoked = tuple(sorted(set(revoked)))
        with self._lock:
            chain = self._epochs.setdefault(profile, [])
            epoch = len(chain) + 1
            payload = pack_policy(profile, epoch, pinned, full_allowed,
                                  revoked)
            if chain:
                latest = chain[-1]
                if (latest.pinned, latest.allowed,
                        latest.revoked) == (pinned, full_allowed, revoked):
                    return latest
            doc = PolicyDoc(
                profile=profile, epoch=epoch, pinned=pinned,
                allowed=full_allowed, revoked=revoked, payload=payload,
                digest=hashlib.sha256(payload).digest(),
                mac=hmac.new(self.key, payload, hashlib.sha256).digest())
            self._persist(doc)
            chain.append(doc)
            return doc

    def revoke(self, profile: DeviceProfile,
               measurement: bytes) -> PolicyDoc:
        """Publish a new epoch with ``measurement`` moved to the
        revocation list (the pinned image cannot be revoked — publish a
        new pin first)."""
        latest = self.latest(profile)
        if latest.is_permissive:
            raise PolicyError(
                f"profile {profile} has no published policy to revoke "
                f"a measurement from")
        if measurement == latest.pinned:
            raise PolicyError("cannot revoke the pinned measurement; "
                              "publish a new pin first")
        return self.publish(
            profile, latest.pinned,
            allowed=tuple(m for m in latest.allowed if m != measurement),
            revoked=tuple(sorted({*latest.revoked, measurement})))

    def get(self, profile: DeviceProfile, epoch: int) -> PolicyDoc:
        """Resolve ``(profile, epoch)``; epoch 0 always resolves to the
        permissive document."""
        if epoch == 0:
            payload = pack_policy(profile, 0, b"", (), ())
            return PolicyDoc(
                profile=profile, epoch=0, pinned=b"", allowed=(),
                revoked=(), payload=payload,
                digest=hashlib.sha256(payload).digest(),
                mac=hmac.new(self.key, payload, hashlib.sha256).digest())
        with self._lock:
            chain = self._epochs.get(profile, [])
            if not 1 <= epoch <= len(chain):
                raise KeyError(
                    f"profile {profile} has no policy epoch {epoch}")
            return chain[epoch - 1]

    def latest(self, profile: DeviceProfile) -> PolicyDoc:
        with self._lock:
            chain = self._epochs.get(profile, [])
            if chain:
                return chain[-1]
        return self.get(profile, 0)

    def latest_epoch(self, profile: DeviceProfile) -> int:
        with self._lock:
            return len(self._epochs.get(profile, []))

    def profiles(self) -> List[DeviceProfile]:
        with self._lock:
            return sorted(self._epochs,
                          key=lambda p: (p.workload, p.method))

    def evaluate(self, profile: DeviceProfile,
                 measurement: bytes) -> str:
        """Judge one firmware measurement under the latest policy.

        Returns :data:`ALLOWED`, :data:`REVOKED_FW`, :data:`UNPINNED`
        (a document exists but does not list the measurement), or
        :data:`UNKNOWN_PROFILE` (no document published — permissive by
        design, so fleets without policy behave exactly as before).
        An empty measurement is always :data:`UNKNOWN_PROFILE`: records
        predating measurement capture cannot be judged.
        """
        if not measurement:
            return UNKNOWN_PROFILE
        latest = self.latest(profile)
        if latest.is_permissive:
            return UNKNOWN_PROFILE
        if measurement in latest.revoked:
            return REVOKED_FW
        if measurement in latest.allowed:
            return ALLOWED
        return UNPINNED
