"""Rebuild the policy control plane from the evidence store alone.

The control plane keeps **no private database**: every lifecycle
decision is a record in a device's evidence hash chain, every policy
document is a signed file in the policy store, and every dictionary
epoch a content-addressed file in the dictionary store. This module is
the proof: :func:`reconstruct_control_plane` starts from nothing but a
``store_dir`` and the service seed, strictly audits every evidence
log, and folds the records back into a complete
:class:`~repro.cfa.policy.engine.PolicyEngine` plus the fleet's
verdict map and per-device rounds — the same state a resumed service
carries, derived offline by an auditor who never ran the service.

:func:`write_recovery_manifest` drops a ``RECOVERY.md`` beside the
logs describing exactly that procedure (trust boundaries, integrity
checks, authoritative reconstruction order), so an operator staring at
a dead Vrf's disk knows what is state and what is merely cache.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.cfa.fleet.store import verify_evidence_trail
from repro.cfa.policy.engine import PolicyEngine, STATE_NAMES
from repro.cfa.policy.registry import PolicyRegistry, policy_key

#: the manifest is versioned so auditors can detect procedure drift
MANIFEST_VERSION = 1

_MANIFEST = """\
# RECOVERY — fleet Vrf control-plane reconstruction (manifest v{version})

Everything under this directory is rebuildable state. Nothing here is
secret; the secrets are the service seed (from which the evidence
audit key and the policy signing key derive) and the per-device
attestation keys, which live outside this store.

## What is authoritative

| path              | contents                                | trust |
|-------------------|-----------------------------------------|-------|
| `evidence-*.log`  | per-shard hash-chained evidence logs    | HMAC per record + per-device hash chain under the audit key |
| `policy/*.pol`    | signed firmware-policy epochs           | HMAC under the policy key; monotone, gapless epochs |
| `dicts/*.dict`    | speculation-dictionary epochs           | content-addressed (sha256 of payload) |
| `replay/`         | replay-cache CAS                        | **cache only** — safe to delete; rebuilt lazily |

## Integrity verification (do this first)

1. Derive `K_audit = SHA256("evidence-audit|" || seed)` and
   `K_policy = SHA256("policy-sign|" || seed)`.
2. For every `evidence-*.log`: verify strictly (every frame MACs under
   `K_audit`; every device's `prev_digest`/`seq` chain is gapless from
   genesis; no torn or trailing bytes). `repro audit --json` does
   exactly this and exits non-zero on any failure.
3. For every `policy/*.pol`: verify the trailing 32-byte HMAC under
   `K_policy`; epochs per profile must be gapless from 1.
4. For every `dicts/*.dict`: the filename epoch must be gapless and
   the payload must parse as a canonical SPD1 dictionary.

A failure in step 2 anywhere but a single torn tail frame is tamper,
not crash damage — stop and investigate before trusting anything.

## Authoritative reconstruction order

1. **Verdicts + rounds** — replay each log's *session* records in file
   order: the latest record per device is its current verdict; the
   per-device session-record count is its nonce round (device-scoped
   nonce derivation resumes from it).
2. **Policy state** — fold each log's records in file order through
   the policy engine: session records re-run the scoring fold, policy
   records are the persisted transitions (each must match what the
   fold re-derives). A device's end state (HEALTHY/SUSPECT/
   QUARANTINED/HEALING/REJOINED/REVOKED), failure score, and healing
   attempts all fall out of the fold. If the file ends with a session
   record whose derived decisions are missing (the crash window), the
   resuming store re-appends them byte-identically.
3. **Registries** — reload `policy/` and `dicts/` (steps 3–4 above
   already verified them); the engine's firmware judgments and the
   session epoch pins resolve against these.
4. **Caches** — nothing to do: the replay CAS re-warms lazily and
   undelivered PLCY/HEAL notices are re-sent (both are idempotent).

`repro.cfa.policy.recovery.reconstruct_control_plane(store_dir, seed)`
executes steps 1–3 and returns the reconstructed snapshot.
"""


@dataclass
class ControlPlaneSnapshot:
    """Everything reconstructable from a store directory."""

    engine: PolicyEngine
    registry: PolicyRegistry
    #: device id -> latest SessionVerdict (from session records)
    verdicts: Dict[str, object] = field(default_factory=dict)
    #: device id -> completed sessions (the nonce round to resume at)
    rounds: Dict[str, int] = field(default_factory=dict)
    #: device id -> evidence chain head digest
    heads: Dict[str, bytes] = field(default_factory=dict)
    logs_verified: int = 0
    session_records: int = 0
    policy_records: int = 0

    def states(self) -> Dict[str, str]:
        """device id -> lifecycle state name."""
        return self.engine.state_names()

    def summary(self) -> str:
        by_state: Dict[str, int] = {}
        for name in self.states().values():
            by_state[name] = by_state.get(name, 0) + 1
        states = ", ".join(f"{count} {name}" for name, count
                           in sorted(by_state.items())) or "none tracked"
        return (f"{self.logs_verified} log(s) verified: "
                f"{self.session_records} session + "
                f"{self.policy_records} policy records over "
                f"{len(self.heads)} device(s); policy states: {states}")


def audit_key(seed: bytes) -> bytes:
    # mirrors repro.cfa.fleet.shard.audit_key without importing the
    # service stack into the auditor path
    import hashlib
    return hashlib.sha256(b"evidence-audit|" + seed).digest()


def reconstruct_control_plane(
        store_dir: Union[str, os.PathLike],
        seed: bytes = b"fleet-vrf",
        suspect_threshold: int = 2,
        max_heal_attempts: int = 2) -> ControlPlaneSnapshot:
    """Rebuild the full control plane from a store directory alone.

    Runs the manifest's reconstruction order: strict audit of every
    ``evidence-*.log``, registry reload, then the policy fold. Raises
    (:class:`~repro.cfa.fleet.store.EvidenceError` /
    :class:`~repro.cfa.policy.registry.PolicyError` / ``ValueError``)
    if any integrity check fails — an auditor never silently patches.
    """
    store_dir = Path(store_dir)
    registry = PolicyRegistry(
        policy_key(seed),
        store_dir / "policy" if (store_dir / "policy").exists() else None)
    engine = PolicyEngine(registry=registry,
                          suspect_threshold=suspect_threshold,
                          max_heal_attempts=max_heal_attempts)
    snapshot = ControlPlaneSnapshot(engine=engine, registry=registry)
    key = audit_key(seed)
    logs = sorted(store_dir.glob("evidence-*.log"))
    if not logs:
        single = store_dir / "evidence.log"
        if single.exists():
            logs = [single]
    for path in logs:
        records = verify_evidence_trail(path, key)
        snapshot.logs_verified += 1
        for record in records:
            snapshot.heads[record.device_id] = record.digest
            if record.is_policy:
                snapshot.policy_records += 1
            else:
                snapshot.session_records += 1
                snapshot.verdicts[record.device_id] = record.to_verdict()
                snapshot.rounds[record.device_id] = snapshot.rounds.get(
                    record.device_id, 0) + 1
        # the fold is per-log: every device lives in exactly one shard
        # log, so folding logs independently is folding devices
        # independently (store=None: an auditor only reads)
        engine.restore(records, store=None)
    return snapshot


def write_recovery_manifest(
        store_dir: Union[str, os.PathLike]) -> Path:
    """Write (or refresh) ``RECOVERY.md`` beside the evidence logs."""
    path = Path(store_dir) / "RECOVERY.md"
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(".tmp")
    tmp.write_text(_MANIFEST.format(version=MANIFEST_VERSION))
    os.replace(tmp, path)
    return path
