"""The guaranteed-healing protocol (ACFA-style remediation).

A quarantined device is not abandoned: the Vrf drives it through a
re-provision-and-prove round trip and only readmits it on evidence.
The sequence (every step of which lands in the evidence chain)::

    Vrf                                         Prv (quarantined)
     │  PLCY notice: you are QUARANTINED             │
     │──────────────────────────────────────────────>│
     │  HEAL order: pinned measurement M,            │
     │  attempt a, fresh nonce n   [MAC'd, K_dev]    │
     │──────────────────────────────────────────────>│
     │                              verify MAC; re-provision firmware
     │                              to M; attest from reset against n
     │   report chain answering n (healing session)  │
     │<──────────────────────────────────────────────│
     │  clean chain + acceptable measurement         │
     │    -> REJOINED (admitted again)               │
     │  anything else -> attempt burned; retry       │
     │    until max_heal_attempts, then REVOKED      │

Both frame types are MAC'd under the *device's* attestation key: a
network adversary can neither fake a quarantine notice (denial of
service) nor a healing order (forced re-provision), and a device
ignores orders it cannot authenticate. The challenge nonce inside the
HEAL order is the healing session's real nonce — the post-heal chain
is replay-protected exactly like any other session.

This module is pure protocol (MACs + frame build/verify); the state
transitions live in :mod:`repro.cfa.policy.engine` and the transport
loop in the fleet service (``heal_pushes`` / ``policy_pushes``).
"""

from __future__ import annotations

import hashlib
import hmac
import struct
from typing import Optional, Tuple

from repro.cfa.policy.engine import state_name
from repro.cfa.wire import (
    WireError,
    decode_heal_frame,
    decode_policy_frame,
    encode_heal_frame,
    encode_policy_frame,
)


def heal_mac(key: bytes, device_id: str, attempt: int,
             policy_epoch: int, measurement: bytes,
             nonce: bytes) -> bytes:
    """The MAC a Vrf puts on a healing order (device attestation key)."""
    return hmac.new(
        key,
        b"heal-order|" + device_id.encode()
        + struct.pack("<II", attempt, policy_epoch)
        + struct.pack("<I", len(measurement)) + measurement
        + nonce,
        hashlib.sha256).digest()


def policy_notice_mac(key: bytes, device_id: str, state: str,
                      reason: str, policy_epoch: int) -> bytes:
    """The MAC a Vrf puts on a lifecycle notice (device key)."""
    return hmac.new(
        key,
        b"policy-notice|" + device_id.encode() + b"|" + state.encode()
        + b"|" + reason.encode() + struct.pack("<I", policy_epoch),
        hashlib.sha256).digest()


def build_heal_frame(key: bytes, device_id: str, attempt: int,
                     policy_epoch: int, measurement: bytes,
                     nonce: bytes) -> bytes:
    """One wire-encoded, MAC'd healing order."""
    return encode_heal_frame(
        device_id, attempt, policy_epoch, measurement, nonce,
        heal_mac(key, device_id, attempt, policy_epoch, measurement,
                 nonce))


def verify_heal_frame(key: bytes, device_id: str,
                      data: bytes) -> Optional[Tuple[int, int, bytes,
                                                     bytes]]:
    """Device-side validation of a healing order.

    Returns ``(attempt, policy_epoch, measurement, nonce)`` iff the
    frame decodes, names this device, and its MAC verifies under the
    device's key; ``None`` otherwise (the device ignores it).
    """
    try:
        framed_id, attempt, policy_epoch, measurement, nonce, mac = \
            decode_heal_frame(data)
    except WireError:
        return None
    if framed_id != device_id:
        return None
    if not hmac.compare_digest(
            mac, heal_mac(key, device_id, attempt, policy_epoch,
                          measurement, nonce)):
        return None
    return attempt, policy_epoch, measurement, nonce


def build_policy_frame(key: bytes, device_id: str, state_code: int,
                       reason: str, policy_epoch: int) -> bytes:
    """One wire-encoded, MAC'd lifecycle notice."""
    state = state_name(state_code)
    return encode_policy_frame(
        device_id, state, reason, policy_epoch,
        policy_notice_mac(key, device_id, state, reason, policy_epoch))


def verify_policy_frame(key: bytes, device_id: str,
                        data: bytes) -> Optional[Tuple[str, str, int]]:
    """Device-side validation of a lifecycle notice.

    Returns ``(state, reason, policy_epoch)`` iff the frame decodes,
    names this device, and its MAC verifies; ``None`` otherwise.
    """
    try:
        framed_id, state, reason, policy_epoch, mac = \
            decode_policy_frame(data)
    except WireError:
        return None
    if framed_id != device_id:
        return None
    if not hmac.compare_digest(
            mac, policy_notice_mac(key, device_id, state, reason,
                                   policy_epoch)):
        return None
    return state, reason, policy_epoch
