"""The quarantine engine: a deterministic fold over session evidence.

Every lifecycle decision this engine makes is a **pure function of the
device's evidence chain**: the inputs are exactly the fields persisted
in the device's session records (accepted, reason, violations,
expired, firmware measurement, healing flag) plus the signed policy
documents, and the fold is replayed record-by-record — so the live
path and the crash-recovery path run the *same code over the same
bytes* and produce byte-identical decision records. That is what makes
the kill-and-restart differential hold by construction instead of by
luck, and what makes the whole control plane rebuildable from the
evidence store alone (:mod:`repro.cfa.policy.recovery`).

The state machine::

                      soft failure           score >= threshold
        HEALTHY ───────────────────> SUSPECT ───────────────────┐
           ^  ^                         │                       │
           │  │ accepted ("recover")    │ hard signal           │
           │  └─────────────────────────┘                       v
           │         hard signal (violation / equivocation   QUARANTINED
           │          / revoked or unpinned firmware)        │  ^     │
           │                                      begin_heal │  │     │
           │                                                 v  │     │
           │                    clean chain ("rejoin")    HEALING     │ heal
        REJOINED <────────────────────────────────────────┘ │         │ attempts
           │                                                │fail     │ exhausted
           └── (admitted again; future failures re-score)   └──> back │
                                                                      v
                                                                  REVOKED

Hard signals quarantine immediately: an *authenticated* control-flow
violation (the chain verified but walked a bad edge — the device is
compromised, not flaky), equivocation (two conflicting reports for one
sequence number — only a compromised or cloned device can sign both),
and a firmware measurement the policy registry lists as revoked (or
refuses to pin). Soft failures — MAC/framing damage, truncation,
stale-epoch attestations, replayed chains, idle expiry — score one
point each and quarantine at ``suspect_threshold`` consecutive
failures; one accepted session wipes the score ("recover"). Honest
devices never produce rejected verdicts, so an honest fleet can never
be wrongfully quarantined — zero is structural, not statistical.

Admission control: QUARANTINED, HEALING and REVOKED devices cannot
open sessions or land reports (:class:`PolicyDeniedError`); the only
session a HEALING device owns is the one the healing protocol itself
opened.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.cfa.fleet.verify import DeviceProfile
from repro.cfa.policy.registry import (
    PolicyRegistry,
    REVOKED_FW,
    UNPINNED,
)

# lifecycle states (the u8 codes persisted in policy records)
HEALTHY = 0
SUSPECT = 1
QUARANTINED = 2
HEALING = 3
REJOINED = 4
REVOKED = 5

STATE_NAMES = {
    HEALTHY: "HEALTHY",
    SUSPECT: "SUSPECT",
    QUARANTINED: "QUARANTINED",
    HEALING: "HEALING",
    REJOINED: "REJOINED",
    REVOKED: "REVOKED",
}

#: states a device may open sessions / land reports from
_ADMITTED = (HEALTHY, SUSPECT, REJOINED)

#: decision actions (persisted as strings so the trail reads plainly)
ACT_SUSPECT = "suspect"
ACT_QUARANTINE = "quarantine"
ACT_RECOVER = "recover"
ACT_HEAL = "heal"
ACT_REJOIN = "rejoin"
ACT_HEAL_FAIL = "heal-fail"
ACT_REVOKE = "revoke"


def state_name(code: int) -> str:
    try:
        return STATE_NAMES[code]
    except KeyError:
        raise ValueError(f"unknown policy state code {code}") from None


class PolicyDeniedError(Exception):
    """Admission refused: the device is quarantined or revoked."""


@dataclass(frozen=True)
class PolicyDecision:
    """One lifecycle transition, exactly as persisted in the evidence
    log (field-for-field the policy-record body)."""

    device_id: str
    workload: str
    method: str
    from_state: int
    to_state: int
    action: str
    reason: str
    score: int           # failure score *after* this decision
    heal_attempt: int    # healing attempts consumed so far
    policy_epoch: int    # policy-document epoch the decision ran under
    measurement: bytes   # the firmware measurement that was judged

    @property
    def profile(self) -> DeviceProfile:
        return DeviceProfile(self.workload, self.method)


@dataclass
class DevicePolicyState:
    """The engine's per-device fold state."""

    profile: DeviceProfile
    state: int = HEALTHY
    score: int = 0
    heal_attempts: int = 0
    last_reason: str = ""
    #: last firmware measurement seen on an accepted session (what
    #: healing re-provisions when no policy document pins an image)
    good_measurement: bytes = b""
    decisions: int = 0


#: observation fields the fold consumes — both live appends
#: (EvidenceRecord) and recovery replays satisfy this shape
_HARD_EQUIVOCATION = "conflicting duplicate"


class PolicyEngine:
    """Scores devices over their evidence chains and owns their states."""

    def __init__(self, registry: Optional[PolicyRegistry] = None,
                 suspect_threshold: int = 2,
                 max_heal_attempts: int = 2):
        if suspect_threshold < 1:
            raise ValueError("suspect_threshold must be >= 1")
        if max_heal_attempts < 1:
            raise ValueError("max_heal_attempts must be >= 1")
        self.registry = registry
        self.suspect_threshold = suspect_threshold
        self.max_heal_attempts = max_heal_attempts
        self._lock = threading.Lock()
        self.states: Dict[str, DevicePolicyState] = {}
        #: device id -> (state, reason, policy epoch) not yet pushed as
        #: a PLCY notice. Deliberately *not* restored from evidence:
        #: notices are idempotent and re-sending after a crash is safe.
        self._unnotified: Dict[str, Tuple[int, str, int]] = {}
        self.decisions_made = 0

    # -- introspection --------------------------------------------------------

    def state_of(self, device_id: str) -> int:
        with self._lock:
            entry = self.states.get(device_id)
            return entry.state if entry else HEALTHY

    def state_names(self) -> Dict[str, str]:
        with self._lock:
            return {device: STATE_NAMES[entry.state]
                    for device, entry in self.states.items()}

    def devices_in(self, state: int) -> List[str]:
        with self._lock:
            return sorted(device for device, entry in self.states.items()
                          if entry.state == state)

    def admits(self, device_id: str) -> bool:
        return self.state_of(device_id) in _ADMITTED

    def deny_reason(self, device_id: str) -> str:
        return (f"device {device_id!r} is "
                f"{STATE_NAMES[self.state_of(device_id)]}")

    def take_notices(self) -> List[Tuple[str, int, str, int]]:
        """Drain pending ``(device, state, reason, policy_epoch)``
        lifecycle notices for the PLCY push path."""
        with self._lock:
            out = [(device, state, reason, epoch)
                   for device, (state, reason, epoch)
                   in sorted(self._unnotified.items())]
            self._unnotified.clear()
            return out

    # -- the fold -------------------------------------------------------------

    def _entry(self, device_id: str,
               profile: DeviceProfile) -> DevicePolicyState:
        entry = self.states.get(device_id)
        if entry is None:
            entry = DevicePolicyState(profile=profile)
            self.states[device_id] = entry
        return entry

    def _policy_epoch(self, profile: DeviceProfile) -> int:
        if self.registry is None:
            return 0
        return self.registry.latest_epoch(profile)

    def _judge_measurement(self, profile: DeviceProfile,
                           measurement: bytes) -> str:
        """The firmware-registry verdict ("" = nothing to object to)."""
        if self.registry is None:
            return ""
        outcome = self.registry.evaluate(profile, measurement)
        if outcome == REVOKED_FW:
            return (f"firmware measurement {measurement.hex()[:16]} is "
                    f"revoked by policy")
        if outcome == UNPINNED:
            return (f"firmware measurement {measurement.hex()[:16]} is "
                    f"not pinned by policy")
        return ""

    def _hard_reason(self, obs) -> str:
        """A hard signal quarantines immediately, whatever the score."""
        if obs.accepted:
            # the chain verified — but the image itself may be banned
            return self._judge_measurement(obs.profile, obs.measurement)
        if getattr(obs, "violations", ()):
            kind = obs.violations[0][0]
            return (f"authenticated control-flow violation "
                    f"({kind}; {len(obs.violations)} total)")
        if _HARD_EQUIVOCATION in obs.reason:
            return f"equivocation: {obs.reason}"
        fw = self._judge_measurement(obs.profile, obs.measurement)
        if fw:
            return fw
        return ""

    def preview(self, obs) -> List[PolicyDecision]:
        """The decisions one session observation triggers — **pure**.

        ``obs`` is anything shaped like a v3 session evidence record:
        ``device_id``, ``profile``/``workload``/``method``,
        ``accepted``, ``reason``, ``violations``, ``measurement``,
        ``healing``. Recovery replays persisted records through this
        same function, so re-derived decisions are byte-identical to
        the ones a crash lost.
        """
        with self._lock:
            return self._preview_locked(obs)

    def _preview_locked(self, obs) -> List[PolicyDecision]:
        device_id = obs.device_id
        profile = obs.profile
        entry = self.states.get(device_id) or DevicePolicyState(
            profile=profile)
        epoch = self._policy_epoch(profile)
        measurement = getattr(obs, "measurement", b"")

        def decision(to_state: int, action: str, reason: str,
                     score: int, heal_attempt: int,
                     from_state: int) -> PolicyDecision:
            return PolicyDecision(
                device_id=device_id, workload=profile.workload,
                method=profile.method, from_state=from_state,
                to_state=to_state, action=action, reason=reason,
                score=score, heal_attempt=heal_attempt,
                policy_epoch=epoch, measurement=measurement)

        if getattr(obs, "healing", False):
            # the healing round: a clean chain on acceptable firmware
            # rejoins; anything else burns the attempt
            if entry.state != HEALING:
                return []  # stale healing report after a manual reset
            fw = (self._judge_measurement(profile, measurement)
                  if obs.accepted else "")
            if obs.accepted and not fw:
                return [decision(
                    REJOINED, ACT_REJOIN,
                    "healing chain verified clean", 0,
                    entry.heal_attempts, HEALING)]
            why = fw or (obs.reason or "healing chain rejected")
            out = [decision(QUARANTINED, ACT_HEAL_FAIL,
                            f"healing attempt {entry.heal_attempts} "
                            f"failed: {why}",
                            entry.score, entry.heal_attempts, HEALING)]
            if entry.heal_attempts >= self.max_heal_attempts:
                out.append(decision(
                    REVOKED, ACT_REVOKE,
                    f"healing exhausted after "
                    f"{entry.heal_attempts} attempt(s)",
                    entry.score, entry.heal_attempts, QUARANTINED))
            return out

        if entry.state not in _ADMITTED:
            return []  # no session should exist; ignore, don't re-judge

        hard = self._hard_reason(obs)
        if hard:
            return [decision(QUARANTINED, ACT_QUARANTINE, hard,
                             entry.score, entry.heal_attempts,
                             entry.state)]
        if obs.accepted:
            if entry.state == SUSPECT:
                return [decision(HEALTHY, ACT_RECOVER,
                                 "accepted session cleared the score",
                                 0, entry.heal_attempts, SUSPECT)]
            return []
        # soft failure: rejection or expiry with no hard signal
        score = entry.score + 1
        if score >= self.suspect_threshold:
            return [decision(
                QUARANTINED, ACT_QUARANTINE,
                f"{score} consecutive failed session(s), last: "
                f"{obs.reason or 'expired'}",
                score, entry.heal_attempts, entry.state)]
        return [decision(
            SUSPECT, ACT_SUSPECT,
            obs.reason or "session expired", score,
            entry.heal_attempts, entry.state)]

    def apply(self, decision) -> None:
        """Advance the fold by one decision (live or replayed).

        ``decision`` is a :class:`PolicyDecision` or a persisted
        policy record — anything carrying the decision fields.
        """
        with self._lock:
            self._apply_locked(decision)

    def _apply_locked(self, decision) -> None:
        profile = DeviceProfile(decision.workload, decision.method)
        entry = self._entry(decision.device_id, profile)
        entry.state = decision.to_state
        entry.score = decision.score
        entry.last_reason = decision.reason
        entry.decisions += 1
        if decision.action == ACT_HEAL:
            entry.heal_attempts = decision.heal_attempt
        elif decision.action == ACT_REJOIN:
            entry.heal_attempts = 0
        self.decisions_made += 1
        self._unnotified[decision.device_id] = (
            decision.to_state, decision.reason, decision.policy_epoch)

    def observe(self, obs) -> List[PolicyDecision]:
        """Preview + apply: the live-path entry point. The caller must
        persist each returned decision *before* releasing the verdict
        (the service does this under its own lock)."""
        with self._lock:
            decisions = self._preview_locked(obs)
            for decision in decisions:
                self._apply_locked(decision)
            if obs.accepted and not getattr(obs, "healing", False):
                entry = self._entry(obs.device_id, obs.profile)
                measurement = getattr(obs, "measurement", b"")
                if measurement and entry.state in _ADMITTED:
                    entry.good_measurement = measurement
            return decisions

    # -- healing hooks --------------------------------------------------------

    def begin_heal(self, device_id: str) -> Optional[PolicyDecision]:
        """The QUARANTINED -> HEALING transition (exogenous: driven by
        the healing coordinator, not by a session record). Returns the
        decision to persist+apply, or ``None`` if the device is not
        eligible (not quarantined, or out of attempts — the revoke
        escalation happens on the failed healing session itself)."""
        with self._lock:
            entry = self.states.get(device_id)
            if entry is None or entry.state != QUARANTINED:
                return None
            if entry.heal_attempts >= self.max_heal_attempts:
                return None
            attempt = entry.heal_attempts + 1
            return PolicyDecision(
                device_id=device_id, workload=entry.profile.workload,
                method=entry.profile.method, from_state=QUARANTINED,
                to_state=HEALING, action=ACT_HEAL,
                reason=f"healing attempt {attempt} of "
                       f"{self.max_heal_attempts}: re-provision pinned "
                       f"firmware and re-challenge",
                score=entry.score, heal_attempt=attempt,
                policy_epoch=self._policy_epoch(entry.profile),
                measurement=self.heal_measurement(device_id))

    def heal_measurement(self, device_id: str) -> bytes:
        """The image a healing order re-provisions: the policy-pinned
        measurement when a document exists, else the device's last
        known-good measurement (factory image otherwise)."""
        entry = self.states.get(device_id)
        if entry is None:
            return b""
        if self.registry is not None:
            doc = self.registry.latest(entry.profile)
            if not doc.is_permissive:
                return doc.pinned
        return entry.good_measurement

    def heal_order(self, device_id: str) -> Optional[
            Tuple[int, int, bytes, DeviceProfile]]:
        """The standing heal order for a HEALING device —
        ``(attempt, policy_epoch, measurement, profile)`` — so a
        restarted coordinator can re-issue the same HEAL frame without
        minting a new decision. ``None`` unless the device is HEALING."""
        with self._lock:
            entry = self.states.get(device_id)
            if entry is None or entry.state != HEALING:
                return None
            return (entry.heal_attempts, self._policy_epoch(entry.profile),
                    self.heal_measurement(device_id), entry.profile)

    def healing_devices(self) -> List[str]:
        return self.devices_in(HEALING)

    def quarantined_devices(self) -> List[str]:
        return self.devices_in(QUARANTINED)

    # -- crash recovery -------------------------------------------------------

    def restore(self, records, store=None) -> Tuple[int, int]:
        """Rebuild the fold from one evidence log's records, repairing
        the crash window.

        ``records`` is the mixed (session + policy) record list of one
        store, in file order. Session records re-run the fold; the
        policy records that follow each one must match what the fold
        re-derives (anything else is tamper). A crash between a session
        append and its decision appends loses only the *globally last*
        decisions of the file — those are re-derived and, when
        ``store`` is given, re-appended **byte-identically** (same
        fields, same chain position).

        Returns ``(decisions_replayed, decisions_repaired)``.
        """
        expected: Dict[str, List[PolicyDecision]] = {}
        replayed = repaired = 0
        with self._lock:
            for record in records:
                if getattr(record, "is_policy", False):
                    queue = expected.get(record.device_id)
                    if queue:
                        want = queue.pop(0)
                        # defense-in-depth: the hash chain already
                        # authenticates the record; additionally check
                        # it against the re-run fold. Only comparable
                        # when the record was decided under the policy
                        # epoch the registry holds *now* — a mid-run
                        # publish changes later judgments, so older
                        # records are trusted on the chain alone.
                        if (want.policy_epoch == record.policy_epoch
                                and not _decision_matches(want, record)):
                            raise ValueError(
                                f"policy record for "
                                f"{record.device_id!r} (seq "
                                f"{record.seq}) does not match the "
                                f"fold: logged {record.action!r} "
                                f"{STATE_NAMES[record.to_state]}, "
                                f"derived {want.action!r} "
                                f"{STATE_NAMES[want.to_state]}")
                    elif record.action != ACT_HEAL:
                        raise ValueError(
                            f"unexpected policy record "
                            f"{record.action!r} for "
                            f"{record.device_id!r} (seq {record.seq}): "
                            f"no session record predicts it")
                    self._apply_locked(record)
                    replayed += 1
                else:
                    # a session record's decisions always directly
                    # follow it in the device's chain: anything still
                    # pending here means the log skipped them
                    pending = expected.setdefault(record.device_id, [])
                    if pending:
                        raise ValueError(
                            f"device {record.device_id!r}: session "
                            f"record at seq {record.seq} arrived before "
                            f"{len(pending)} expected policy record(s)")
                    # preview only — each decision is applied when its
                    # persisted policy record arrives (or repaired at
                    # end-of-stream if the crash lost it)
                    expected[record.device_id] = list(
                        self._preview_locked(record))
                    if record.accepted and not getattr(
                            record, "healing", False):
                        entry = self._entry(record.device_id,
                                            record.profile)
                        if (record.measurement
                                and entry.state in _ADMITTED):
                            entry.good_measurement = record.measurement
            # the crash window: decisions derived but never persisted —
            # re-derive, re-append (same chain position: nothing for
            # the device was appended after them), and apply
            for device_id in sorted(expected):
                for decision in expected[device_id]:
                    if store is not None:
                        store.append_decision(decision)
                    self._apply_locked(decision)
                    repaired += 1
            # restart resends any still-relevant lifecycle notice
            self._unnotified = {
                device: (entry.state, entry.last_reason,
                         self._policy_epoch(entry.profile))
                for device, entry in sorted(self.states.items())
                if entry.state not in (HEALTHY,) and entry.decisions}
        return replayed, repaired


def _decision_matches(decision: PolicyDecision, record) -> bool:
    return (decision.device_id == record.device_id
            and decision.workload == record.workload
            and decision.method == record.method
            and decision.from_state == record.from_state
            and decision.to_state == record.to_state
            and decision.action == record.action
            and decision.reason == record.reason
            and decision.score == record.score
            and decision.heal_attempt == record.heal_attempt
            and decision.policy_epoch == record.policy_epoch
            and decision.measurement == record.measurement)
