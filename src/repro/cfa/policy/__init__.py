"""Policy control plane for the fleet Vrf.

Verdicts end at pass/fail; this package decides what *happens* to a
device afterwards. Three pieces:

* :mod:`~repro.cfa.policy.registry` — the firmware/attestation
  registry: signed, monotone-epoch policy documents pinning the
  acceptable firmware measurements per device profile, with
  revocation.
* :mod:`~repro.cfa.policy.engine` — the quarantine engine: a
  deterministic fold over session evidence that scores devices and
  walks them through HEALTHY → SUSPECT → QUARANTINED → HEALING →
  REJOINED (→ REVOKED), enforcing admission control and emitting one
  auditable :class:`~repro.cfa.policy.engine.PolicyDecision` per
  transition.
* :mod:`~repro.cfa.policy.heal` — the guaranteed-healing protocol:
  MAC'd ``HEAL`` orders carrying the pinned firmware measurement and a
  fresh challenge, with retry and escalation to permanent revocation.

Every decision is appended to the evidence store as a policy record in
the device's own hash chain, and :mod:`~repro.cfa.policy.recovery`
rebuilds the whole control-plane state from the evidence logs alone.
"""

from repro.cfa.policy.engine import (
    HEALING,
    HEALTHY,
    PolicyDecision,
    PolicyDeniedError,
    PolicyEngine,
    QUARANTINED,
    REJOINED,
    REVOKED,
    STATE_NAMES,
    SUSPECT,
    state_name,
)
from repro.cfa.policy.heal import (
    build_heal_frame,
    build_policy_frame,
    heal_mac,
    policy_notice_mac,
    verify_heal_frame,
    verify_policy_frame,
)
from repro.cfa.policy.recovery import (
    ControlPlaneSnapshot,
    reconstruct_control_plane,
    write_recovery_manifest,
)
from repro.cfa.policy.registry import (
    PolicyDoc,
    PolicyError,
    PolicyRegistry,
    policy_key,
)

__all__ = [
    "HEALTHY", "SUSPECT", "QUARANTINED", "HEALING", "REJOINED",
    "REVOKED", "STATE_NAMES", "state_name",
    "PolicyDecision", "PolicyDeniedError", "PolicyEngine",
    "PolicyDoc", "PolicyError", "PolicyRegistry", "policy_key",
    "heal_mac", "verify_heal_frame", "build_heal_frame",
    "policy_notice_mac", "verify_policy_frame", "build_policy_frame",
    "ControlPlaneSnapshot", "reconstruct_control_plane",
    "write_recovery_manifest",
]
