"""Control Flow Attestation: engines, reports, protocol, and verifier."""

from repro.cfa.cflog import AddressRecord, BranchRecord, CFLog, LoopRecord
from repro.cfa.report import AttestationResult, Report
from repro.cfa.engine import EngineConfig, RapTrackEngine
from repro.cfa.verifier import VerificationResult, Verifier, Violation
from repro.cfa.protocol import Challenge, ProtocolError, ProverDevice, VerifierEndpoint

__all__ = [
    "BranchRecord",
    "AddressRecord",
    "LoopRecord",
    "CFLog",
    "Report",
    "AttestationResult",
    "EngineConfig",
    "RapTrackEngine",
    "Verifier",
    "VerificationResult",
    "Violation",
    "Challenge",
    "ProverDevice",
    "VerifierEndpoint",
    "ProtocolError",
]
