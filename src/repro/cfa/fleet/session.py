"""Per-device session bookkeeping for the fleet Vrf.

The :class:`SessionManager` is the protocol brain of the service and
deliberately knows nothing about threads or worker pools: every method
is a pure state transition driven by an explicit logical clock, which
is what makes session semantics unit-testable and the serial/pooled
service paths identical. It owns:

* **challenge issuance** — one fresh nonce per session attempt,
  derived from a counter exactly like
  :class:`~repro.cfa.protocol.VerifierEndpoint`, with a seen-nonce set
  guarding reuse;
* **replay protection** — a report is only accepted if its challenge
  matches the session's *outstanding* nonce and its device id matches
  the session's device: chains replayed from an earlier challenge (or
  another device) die at ingest, before any MAC work is spent;
* **sequence tracking** — in-order reports extend the accepted chain;
  out-of-order reports are buffered inside a bounded *reorder window*
  and drained when the gap fills; duplicates of already-seen reports
  are dropped iff byte-identical (a conflicting duplicate is
  equivocation and rejects the session); anything past the final
  report rejects;
* **idle expiry and retry** — a session with no activity for
  ``idle_timeout`` logical seconds is re-challenged (fresh nonce,
  chain discarded) up to ``max_attempts`` times, then expired.

Structural checks here are *pre-filters*: the authoritative verdict
always comes from replaying the accepted chain through
:func:`~repro.cfa.fleet.verify.verify_session_chain`, which re-checks
MACs, challenge, and sequencing from scratch.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.cfa.protocol import Challenge
from repro.cfa.fleet.dictver import DictEpoch, spec_challenge
from repro.cfa.fleet.verify import DeviceProfile, SessionVerdict
from repro.cfa.report import Report
from repro.cfa.speccfa import SubPathDict, expand
from repro.cfa.wire import WireError, decode_report

# session lifecycle states
PENDING = "pending"        # challenged, no report accepted yet
STREAMING = "streaming"    # mid-chain
QUEUED = "queued"          # chain complete, awaiting verification
VERIFIED = "verified"      # verdict in, accepted
REJECTED = "rejected"      # verdict in (or protocol violation), refused
EXPIRED = "expired"        # idled out after the last attempt

#: states in which a session still occupies Vrf resources
ACTIVE_STATES = (PENDING, STREAMING, QUEUED)


class FleetOverloadError(Exception):
    """The service refused a new session: at its max_sessions limit."""


@dataclass
class Session:
    """One device's attestation session (possibly across retries)."""

    device_id: str
    profile: DeviceProfile
    key: bytes
    challenge: Challenge
    opened_at: float
    last_activity: float
    state: str = PENDING
    attempt: int = 1
    #: how many sessions this device opened before this one (feeds
    #: device-scoped nonce derivation; 0 under the counter scope)
    round_index: int = 0
    #: the dictionary epoch this session is pinned to. Pinned at
    #: ``open`` (from the device's last acknowledged epoch) and never
    #: changed afterwards: a dictionary push landing mid-session takes
    #: effect at the device's *next* session, so Prv and Vrf always
    #: compress/expand under the same version.
    epoch: int = 0
    dict_digest: bytes = b""
    dictionary: Optional[SubPathDict] = None
    chunks: List[bytes] = field(default_factory=list)  # accepted, in order
    #: the decoded twins of ``chunks`` — ingest already paid for the
    #: decode, so in-process verification need not decode again
    reports: List[Report] = field(default_factory=list)
    #: reorder-window holding area: seq -> (bytes, decoded report)
    buffered: Dict[int, Tuple[bytes, Report]] = field(default_factory=dict)
    next_seq: int = 0
    final_seq: Optional[int] = None
    duplicates: int = 0
    reject_reason: str = ""
    verdict: Optional[SessionVerdict] = None
    #: opened by the healing protocol (bypasses admission control; its
    #: evidence record carries the healing flag so the policy fold can
    #: judge the rejoin)
    healing: bool = False

    @property
    def active(self) -> bool:
        return self.state in ACTIVE_STATES

    @property
    def bound_challenge(self) -> bytes:
        """What the reports' challenge field must equal: the bare nonce
        under epoch 0, the epoch-bound nonce otherwise (so the report
        MACs pin the session to exactly one dictionary version)."""
        return spec_challenge(self.challenge.nonce, self.epoch,
                              self.dict_digest)

    def admission_records(self) -> Optional[list]:
        """The chain's claimed records, dictionary-expanded — what the
        `BNDS1` admission screen inspects before replay is paid for.
        ``None`` when expansion fails (the chain references unknown
        dictionary entries; replay will reject it authoritatively)."""
        records = []
        for report in self.reports:
            records.extend(report.cflog.records)
        if self.dictionary:
            try:
                records = expand(records, self.dictionary)
            except ValueError:
                return None
        return records


class SessionManager:
    """Protocol state for every device session at the fleet Vrf."""

    def __init__(self, seed: bytes = b"fleet-vrf",
                 idle_timeout: float = 30.0,
                 reorder_window: int = 8,
                 max_attempts: int = 2,
                 max_sessions: Optional[int] = None,
                 nonce_scope: str = "counter",
                 epoch_bindings: Optional[Callable[
                     [DeviceProfile], Sequence[Tuple[int, bytes]]]] = None):
        if nonce_scope not in ("counter", "device"):
            raise ValueError(f"unknown nonce scope {nonce_scope!r}")
        #: optional ``profile -> [(epoch, digest)]`` lookup used only to
        #: *diagnose* a challenge mismatch as a stale-epoch attestation
        #: (the rejection itself never depends on it)
        self.epoch_bindings = epoch_bindings
        self.seed = seed
        self.idle_timeout = idle_timeout
        self.reorder_window = reorder_window
        self.max_attempts = max_attempts
        self.max_sessions = max_sessions
        self.nonce_scope = nonce_scope
        self.sessions: Dict[str, Session] = {}
        self._counter = 0
        self._seen_nonces = set()
        #: device id -> sessions opened so far (device nonce scope)
        self._device_rounds: Dict[str, int] = {}
        # aggregate ingest accounting (the service folds these into metrics)
        self.duplicates_dropped = 0
        self.reports_ignored = 0

    # -- challenge issuance -------------------------------------------------

    def _fresh_challenge(self, device_id: str = "", round_index: int = 0,
                         attempt: int = 1) -> Challenge:
        """One fresh nonce.

        Under the default ``counter`` scope nonces come off a global
        counter (the ``VerifierEndpoint`` scheme): their values depend
        on issuance *order*. The ``device`` scope derives the nonce
        from ``(seed, device id, round, attempt)`` instead, so a
        device's challenge is independent of how sessions interleave,
        how the fleet is sharded, and whether the Vrf restarted — the
        property the sharding and crash-recovery differentials pin.
        Uniqueness still holds per (device, round, attempt) and the
        seen-nonce set guards both scopes.
        """
        if self.nonce_scope == "device":
            scoped = hashlib.sha256(b"|".join([
                b"device-nonce", self.seed, device_id.encode(),
                round_index.to_bytes(8, "little")])).digest()
            challenge = Challenge.derive(scoped, attempt)
        else:
            challenge = Challenge.derive(self.seed, self._counter)
            self._counter += 1
        if challenge.nonce in self._seen_nonces:
            raise RuntimeError("nonce reuse")  # unreachable with a counter
        self._seen_nonces.add(challenge.nonce)
        return challenge

    def restore_rounds(self, rounds: Dict[str, int]) -> None:
        """Resume device-scoped nonce derivation after a restart.

        ``rounds`` maps device id -> completed sessions (one evidence
        record each). A settled device's next session derives a nonce
        no pre-crash chain can answer, while a device that was mid-
        session re-derives its exact pre-crash challenge, so the
        device's retransmitted chain verifies unchanged.
        """
        self._device_rounds.update(rounds)

    @property
    def active_count(self) -> int:
        return sum(1 for s in self.sessions.values() if s.active)

    def open(self, device_id: str, profile: DeviceProfile, key: bytes,
             now: float = 0.0,
             dict_epoch: Optional[DictEpoch] = None) -> Session:
        """Admit a device and issue its challenge.

        ``dict_epoch`` pins the session to one dictionary version (the
        device's last acknowledged epoch); omitted means epoch 0
        (plain, uncompressed logs).
        """
        existing = self.sessions.get(device_id)
        if existing is not None and existing.active:
            raise ValueError(f"device {device_id!r} already has an "
                             f"active session")
        if (self.max_sessions is not None
                and self.active_count >= self.max_sessions):
            raise FleetOverloadError(
                f"at the {self.max_sessions}-session limit; "
                f"refusing {device_id!r}")
        round_index = self._device_rounds.get(device_id, 0)
        self._device_rounds[device_id] = round_index + 1
        session = Session(
            device_id=device_id, profile=profile, key=key,
            challenge=self._fresh_challenge(device_id, round_index, 1),
            opened_at=now, last_activity=now, round_index=round_index,
        )
        if dict_epoch is not None and not dict_epoch.is_empty:
            session.epoch = dict_epoch.epoch
            session.dict_digest = dict_epoch.digest
            session.dictionary = dict_epoch.dictionary
        self.sessions[device_id] = session
        return session

    # -- report ingest ------------------------------------------------------

    def _reject(self, session: Session, reason: str) -> Session:
        session.state = REJECTED
        session.reject_reason = reason
        return session

    def _diagnose_challenge(self, session: Session, report) -> str:
        """Name a challenge mismatch precisely.

        A chain compressed under any epoch other than the session's
        pinned one fails the bound-challenge equality above — that is
        the security property (no expansion under a mismatched
        dictionary is ever attempted). For the reject *reason*, probe
        the known epoch bindings so a stale-epoch attestation is
        reported as such instead of as a generic replay.
        """
        nonce = session.challenge.nonce
        bindings = [(0, b"")]
        if self.epoch_bindings is not None:
            bindings += list(self.epoch_bindings(session.profile))
        for epoch, digest in bindings:
            if epoch == session.epoch:
                continue
            if report.challenge == spec_challenge(nonce, epoch, digest):
                return (f"report #{report.seq} compressed under "
                        f"dictionary epoch {epoch}, but the session is "
                        f"pinned to epoch {session.epoch} (stale-epoch "
                        f"attestation)")
        return (f"report #{report.seq} does not answer the "
                f"outstanding challenge (replayed chain?)")

    def ingest(self, device_id: str, data: bytes,
               now: float) -> Optional[Session]:
        """Absorb one wire-encoded report from a device.

        Returns the session so the caller can act on its new state
        (``QUEUED`` means the chain is complete and ready to verify;
        ``REJECTED`` means a protocol violation was just detected), or
        ``None`` when the report has no live session to land in (late,
        unknown device) and was counted + dropped.
        """
        session = self.sessions.get(device_id)
        if session is None or session.state not in (PENDING, STREAMING):
            self.reports_ignored += 1
            return None
        session.last_activity = now
        try:
            report, consumed = decode_report(data)
            if consumed != len(data):
                raise WireError("trailing bytes after report")
        except WireError as exc:
            return self._reject(session, f"malformed report: {exc}")
        if report.device_id != device_id.encode():
            return self._reject(
                session, "report device id does not match the session")
        if report.challenge != session.bound_challenge:
            return self._reject(
                session, self._diagnose_challenge(session, report))
        seq = report.seq
        if seq < session.next_seq:  # duplicate of an accepted report
            if session.chunks[seq] == data:
                session.duplicates += 1
                self.duplicates_dropped += 1
                return session
            return self._reject(
                session, f"conflicting duplicate of report #{seq}")
        if seq in session.buffered:  # duplicate of a buffered report
            if session.buffered[seq][0] == data:
                session.duplicates += 1
                self.duplicates_dropped += 1
                return session
            return self._reject(
                session, f"conflicting duplicate of report #{seq}")
        if session.final_seq is not None and seq > session.final_seq:
            return self._reject(
                session,
                f"report #{seq} past the final report #{session.final_seq}")
        if report.final:
            if any(b > seq for b in session.buffered):
                return self._reject(
                    session, f"buffered report past the final #{seq}")
            session.final_seq = seq
        if seq == session.next_seq:
            session.chunks.append(data)
            session.reports.append(report)
            session.next_seq += 1
            while session.next_seq in session.buffered:  # drain the window
                chunk, buffered = session.buffered.pop(session.next_seq)
                session.chunks.append(chunk)
                session.reports.append(buffered)
                session.next_seq += 1
        else:
            if seq - session.next_seq > self.reorder_window:
                return self._reject(
                    session,
                    f"report #{seq} outside the reorder window "
                    f"(expecting #{session.next_seq}, window "
                    f"{self.reorder_window})")
            session.buffered[seq] = (data, report)
        session.state = STREAMING
        if (session.final_seq is not None
                and session.next_seq > session.final_seq):
            session.state = QUEUED
        return session

    # -- timeouts / retry ---------------------------------------------------

    def tick(self, now: float) -> Tuple[List[Session], List[Session]]:
        """Advance the logical clock; returns (re-challenged, expired).

        A stalled chain (no activity for ``idle_timeout``) is
        re-challenged with a fresh nonce while attempts remain — the
        partial chain is discarded, because reports are bound to their
        challenge — and expired after the last attempt. Sessions that
        are already queued for verification are not expired: their
        chain is complete and the verdict is in flight.
        """
        rechallenged: List[Session] = []
        expired: List[Session] = []
        for session in self.sessions.values():
            if session.state not in (PENDING, STREAMING):
                continue
            if now - session.last_activity < self.idle_timeout:
                continue
            if session.attempt < self.max_attempts:
                session.attempt += 1
                session.challenge = self._fresh_challenge(
                    session.device_id, session.round_index, session.attempt)
                session.chunks = []
                session.reports = []
                session.buffered = {}
                session.next_seq = 0
                session.final_seq = None
                session.state = PENDING
                session.last_activity = now
                rechallenged.append(session)
            else:
                session.state = EXPIRED
                session.reject_reason = (
                    f"idle timeout after {session.attempt} attempt(s)")
                expired.append(session)
        return rechallenged, expired
