"""Versioned speculation dictionaries and the epoch handshake.

SpecCFA-style compression only works when Prv and Vrf hold the *same*
dictionary; in a fleet whose dictionaries are re-mined from live
traffic that agreement has to be a protocol, not an assumption. This
module is the Vrf-side half of that protocol:

* :class:`DictionaryRegistry` — per device profile, a monotone
  sequence of :class:`DictEpoch` versions. Epoch 0 is always the empty
  dictionary (plain, uncompressed logs), so a device that never
  acknowledges anything keeps attesting exactly as before mining
  existed. Every published epoch is named by its number *and* the
  content digest of its canonical serialization, and old epochs stay
  resolvable forever — an evidence record naming ``(profile, epoch)``
  can always be re-expanded.

* :func:`spec_challenge` — the cryptographic pin. A session compressed
  under epoch ``e > 0`` answers ``H(nonce || epoch || digest)`` rather
  than the bare nonce, so its reports authenticate **only** against
  the exact dictionary version both sides agreed on: a chain
  compressed under any other epoch fails the challenge check at
  ingest, before any expansion is attempted — mismatched dictionaries
  can never be silently expanded into garbage replay.

* :func:`dack_mac` — the MAC a device puts on its ``DACK`` frame
  (under its attestation key), so a network adversary cannot re-pin a
  device to an epoch it does not hold.

With ``store_dir`` set the registry persists each epoch payload as one
file (atomic publish, like every other store in this repo) and reloads
the full epoch history on construction, so dictionary versions survive
Vrf restarts alongside the evidence log.
"""

from __future__ import annotations

import hashlib
import hmac
import os
import struct
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.cfa.fleet.verify import DeviceProfile
from repro.cfa.speccfa import (
    EMPTY_DICTIONARY_DIGEST,
    SubPathDict,
    dictionary_digest,
    pack_dictionary,
    unpack_dictionary,
)

#: nonce length of :meth:`repro.cfa.protocol.Challenge.derive`
_NONCE_LEN = 16


@dataclass(frozen=True)
class DictEpoch:
    """One immutable dictionary version for one device profile."""

    profile: DeviceProfile
    epoch: int
    digest: bytes
    payload: bytes

    @property
    def dictionary(self) -> SubPathDict:
        return unpack_dictionary(self.payload)

    @property
    def is_empty(self) -> bool:
        return self.epoch == 0


def spec_challenge(nonce: bytes, epoch: int, digest: bytes) -> bytes:
    """The challenge a session pinned to ``(epoch, digest)`` answers.

    Epoch 0 (no speculation) answers the bare nonce — byte-compatible
    with every pre-speculation device. Any later epoch folds the epoch
    number and the dictionary content digest into the challenge, so
    the report MACs (which cover the challenge field) bind the session
    to exactly one dictionary version.
    """
    if epoch == 0:
        return nonce
    return hashlib.sha256(
        b"spec-epoch|" + nonce + struct.pack("<I", epoch) + digest
    ).digest()[:_NONCE_LEN]


def dack_mac(key: bytes, device_id: str, epoch: int,
             digest: bytes) -> bytes:
    """The MAC a device signs its dictionary acknowledgement with."""
    return hmac.new(
        key,
        b"dict-ack|" + device_id.encode() + struct.pack("<I", epoch)
        + digest,
        hashlib.sha256).digest()


def _profile_key(profile: DeviceProfile) -> str:
    return f"{profile.workload}__{profile.method}"


class DictionaryRegistry:
    """Monotone, content-addressed dictionary versions per profile."""

    def __init__(self, store_dir: Optional[Union[str, os.PathLike]] = None):
        self._lock = threading.Lock()
        #: profile -> [DictEpoch for epoch 1..N] (epoch 0 is implicit)
        self._epochs: Dict[DeviceProfile, List[DictEpoch]] = {}
        #: digest -> DictEpoch, for resolving ACKs
        self._by_digest: Dict[bytes, DictEpoch] = {}
        self.store_dir = Path(store_dir) if store_dir is not None else None
        if self.store_dir is not None:
            self.store_dir.mkdir(parents=True, exist_ok=True)
            self._load()

    # -- persistence ----------------------------------------------------------

    def _epoch_path(self, profile: DeviceProfile, epoch: int) -> Path:
        return self.store_dir / f"{_profile_key(profile)}__{epoch:06d}.dict"

    def _load(self) -> None:
        for path in sorted(self.store_dir.glob("*.dict")):
            workload, method, epoch_str = path.stem.rsplit("__", 2)
            profile = DeviceProfile(workload, method)
            payload = path.read_bytes()
            unpack_dictionary(payload)  # strict: refuse corrupt epochs
            entry = DictEpoch(
                profile=profile, epoch=int(epoch_str),
                digest=hashlib.sha256(payload).digest(), payload=payload)
            chain = self._epochs.setdefault(profile, [])
            if entry.epoch != len(chain) + 1:
                raise ValueError(
                    f"dictionary store {self.store_dir} has a gap: "
                    f"{path.name} is epoch {entry.epoch}, expected "
                    f"{len(chain) + 1}")
            chain.append(entry)
            self._by_digest[entry.digest] = entry

    def _persist(self, entry: DictEpoch) -> None:
        if self.store_dir is None:
            return
        path = self._epoch_path(entry.profile, entry.epoch)
        tmp = path.with_suffix(".tmp")
        tmp.write_bytes(entry.payload)
        os.replace(tmp, path)

    # -- the registry surface -------------------------------------------------

    def publish(self, profile: DeviceProfile,
                dictionary: SubPathDict) -> DictEpoch:
        """Version a mined dictionary under the next epoch number.

        Publishing the byte-identical dictionary again returns the
        existing epoch instead of burning a new number, so repeated
        mining over unchanged traffic is idempotent.
        """
        if not dictionary:
            return self.get(profile, 0)
        payload = pack_dictionary(dictionary)
        digest = hashlib.sha256(payload).digest()
        with self._lock:
            chain = self._epochs.setdefault(profile, [])
            if chain and chain[-1].digest == digest:
                return chain[-1]
            entry = DictEpoch(profile=profile, epoch=len(chain) + 1,
                              digest=digest, payload=payload)
            self._persist(entry)
            chain.append(entry)
            self._by_digest[digest] = entry
            return entry

    def get(self, profile: DeviceProfile, epoch: int) -> DictEpoch:
        """Resolve ``(profile, epoch)``; epoch 0 always resolves."""
        if epoch == 0:
            return DictEpoch(profile=profile, epoch=0,
                             digest=EMPTY_DICTIONARY_DIGEST,
                             payload=pack_dictionary({}))
        with self._lock:
            chain = self._epochs.get(profile, [])
            if not 1 <= epoch <= len(chain):
                raise KeyError(
                    f"profile {profile} has no dictionary epoch {epoch}")
            return chain[epoch - 1]

    def latest(self, profile: DeviceProfile) -> DictEpoch:
        with self._lock:
            chain = self._epochs.get(profile, [])
            if chain:
                return chain[-1]
        return self.get(profile, 0)

    def latest_epoch(self, profile: DeviceProfile) -> int:
        with self._lock:
            return len(self._epochs.get(profile, []))

    def find(self, digest: bytes) -> Optional[DictEpoch]:
        """Resolve a content digest back to its epoch (ACK ingest)."""
        with self._lock:
            return self._by_digest.get(digest)

    def epochs_of(self, profile: DeviceProfile) -> List[DictEpoch]:
        """Every published epoch for a profile (excluding epoch 0)."""
        with self._lock:
            return list(self._epochs.get(profile, []))

    def bindings(self, profile: DeviceProfile) -> List[Tuple[int, bytes]]:
        """``(epoch, digest)`` pairs for stale-epoch diagnosis."""
        with self._lock:
            return [(e.epoch, e.digest)
                    for e in self._epochs.get(profile, [])]


def verify_dack(registry: DictionaryRegistry, profile: DeviceProfile,
                key: bytes, device_id: str, epoch: int, digest: bytes,
                mac: bytes) -> Optional[DictEpoch]:
    """Validate one decoded ``DACK`` frame against the registry.

    Returns the acknowledged epoch iff ``(epoch, digest)`` names a
    published dictionary *of the device's own profile* and the MAC
    verifies under the device's key; ``None`` otherwise (the caller
    counts and drops it).
    """
    try:
        entry = registry.get(profile, epoch)
    except KeyError:
        return None
    if entry.digest != digest or entry.epoch != epoch:
        return None
    if not hmac.compare_digest(mac, dack_mac(key, device_id, epoch,
                                             digest)):
        return None
    return entry
