"""Mine hot sub-paths from live fleet traffic (the Vrf-side learner).

The static :func:`repro.cfa.speccfa.mine_subpaths` only catches
*tandem* repeats (a loop body repeating back-to-back); real CFLogs are
full of hot sub-paths that recur **non**-adjacently — an inner-loop
body separated by data-dependent records, a helper call sequence, a
sensor-poll idiom — which a fixed tandem dictionary leaves
uncompressed. This miner closes that gap with the machinery the fleet
tier already provides:

* :class:`TrafficSampler` — a bounded, deduplicating tap on the
  authenticated record streams of *accepted* sessions. Identical
  executions across the fleet (the common case: same firmware, same
  inputs) collapse to one exemplar stream with a session count, so the
  sample a 10k-device fleet feeds the miner stays tiny while its
  weights still reflect live traffic volume.

* :func:`mine_fleet_dictionary` — n-gram frequency mining over the
  sampled streams, profit-scored by **measured** bytes saved: a
  candidate sub-path enters the dictionary only if actually
  compressing the weighted sample with it saves at least
  ``min_gain_bytes`` beyond what the already-chosen sub-paths save.
  Greedy selection with measured marginal gain makes the usual n-gram
  pathology (ten overlapping shifts of the same hot loop all scoring
  high, then shadowing each other) self-correcting.

Everything is deterministic for a fixed traffic sample: streams are
visited in sorted digest order and candidates are ranked with a full
tiebreak on their canonical serialization, so two Vrf replicas (or a
restarted one) mine byte-identical dictionaries — which is what makes
dictionary *epochs* content-addressable in the first place.
"""

from __future__ import annotations

import hashlib
import threading
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cfa.cflog import Record
from repro.cfa.fleet.verify import DeviceProfile
from repro.cfa.speccfa import SubPathDict, compress

#: one weighted exemplar: (record stream, sessions observed)
WeightedStream = Tuple[Tuple[Record, ...], int]


def _stream_bytes(records: Sequence[Record]) -> int:
    return sum(r.size_bytes for r in records)


def _stream_digest(records: Sequence[Record]) -> bytes:
    return hashlib.sha256(b"".join(r.pack() for r in records)).digest()


@dataclass
class ProfileSample:
    """The deduplicated traffic sample for one device profile."""

    #: stream digest -> exemplar record tuple (bounded by max_streams)
    streams: Dict[bytes, Tuple[Record, ...]] = field(default_factory=dict)
    #: stream digest -> sessions observed (bounded by max_digests;
    #: cold digests — and their exemplars — are evicted deterministically
    #: when the bound is hit)
    counts: Counter = field(default_factory=Counter)
    sessions: int = 0
    bytes_observed: int = 0


class TrafficSampler:
    """Bounded per-profile tap on accepted sessions' record streams.

    Both maps are hard-bounded, so a fleet of adversarially-diverse
    streams cannot grow Vrf memory without limit: at most
    ``max_streams`` exemplar record tuples are retained per profile,
    and the dedup-count map holds at most ``max_digests`` entries
    (default ``4 * max_streams``) — one 32-byte digest plus one int
    each, so the per-profile footprint is a few KiB however many
    distinct executions the fleet produces. When a new digest would
    exceed the cap, the *coldest* existing entry is evicted
    deterministically — minimum count, ties broken by lexicographically
    smallest digest, the newcomer itself never evicted — and its
    exemplar (if retained) is dropped with it. Evictions are counted
    (:attr:`evictions`, surfaced as ``sampler_evictions`` in
    :class:`~repro.cfa.fleet.metrics.FleetMetrics`); an evicted hot
    path that stays hot simply re-enters with a fresh count.
    """

    def __init__(self, max_streams: int = 64,
                 max_digests: Optional[int] = None):
        if max_streams < 1:
            raise ValueError("max_streams must be >= 1")
        self.max_streams = max_streams
        self.max_digests = (max(max_streams, max_digests)
                            if max_digests is not None
                            else 4 * max_streams)
        self.evictions = 0
        self._lock = threading.Lock()
        self._profiles: Dict[DeviceProfile, ProfileSample] = {}

    def _evict_coldest(self, sample: ProfileSample,
                       keep: bytes) -> None:
        """Deterministically evict the coldest digest (never ``keep``)."""
        victim = min(
            (d for d in sample.counts if d != keep),
            key=lambda d: (sample.counts[d], d))
        del sample.counts[victim]
        sample.streams.pop(victim, None)
        self.evictions += 1

    def observe(self, profile: DeviceProfile,
                records: Sequence[Record],
                digest: Optional[bytes] = None) -> None:
        """Absorb one accepted session's (expanded) record stream."""
        if digest is None:
            digest = _stream_digest(records)
        with self._lock:
            sample = self._profiles.setdefault(profile, ProfileSample())
            sample.sessions += 1
            sample.bytes_observed += _stream_bytes(records)
            sample.counts[digest] += 1
            while len(sample.counts) > self.max_digests:
                self._evict_coldest(sample, digest)
            if (digest in sample.counts
                    and digest not in sample.streams
                    and len(sample.streams) < self.max_streams):
                sample.streams[digest] = tuple(records)

    def sample(self, profile: DeviceProfile) -> List[WeightedStream]:
        """The weighted exemplar streams for one profile, in sorted
        digest order (the miner's deterministic input)."""
        with self._lock:
            sample = self._profiles.get(profile)
            if sample is None:
                return []
            return [(sample.streams[d], sample.counts[d])
                    for d in sorted(sample.streams)]

    def profiles(self) -> List[DeviceProfile]:
        with self._lock:
            return sorted(self._profiles,
                          key=lambda p: (p.workload, p.method))

    def sessions_observed(self, profile: DeviceProfile) -> int:
        with self._lock:
            sample = self._profiles.get(profile)
            return sample.sessions if sample else 0

    @staticmethod
    def merge(samplers: Sequence["TrafficSampler"]) -> "TrafficSampler":
        """Fold per-shard samplers into one fleet-wide sample (counts
        sum; both bounds apply to the merged set — the merged map is
        trimmed back to ``max_digests`` by the same coldest-first
        rule)."""
        merged = TrafficSampler(
            max_streams=max((s.max_streams for s in samplers), default=64),
            max_digests=max((s.max_digests for s in samplers),
                            default=None) or None)
        for sampler in samplers:
            with sampler._lock:
                items = list(sampler._profiles.items())
            for profile, sample in items:
                out = merged._profiles.setdefault(profile, ProfileSample())
                out.sessions += sample.sessions
                out.bytes_observed += sample.bytes_observed
                out.counts.update(sample.counts)
                for digest in sorted(sample.streams):
                    if (digest not in out.streams
                            and len(out.streams) < merged.max_streams):
                        out.streams[digest] = sample.streams[digest]
        for out in merged._profiles.values():
            while len(out.counts) > merged.max_digests:
                coldest = min(out.counts,
                              key=lambda d: (out.counts[d], d))
                del out.counts[coldest]
                out.streams.pop(coldest, None)
                merged.evictions += 1
        return merged


def _weighted_bytes(streams: Sequence[WeightedStream],
                    dictionary: SubPathDict) -> int:
    """Total wire bytes of the sample compressed under ``dictionary``."""
    if not dictionary:
        return sum(w * _stream_bytes(records) for records, w in streams)
    return sum(w * _stream_bytes(compress(list(records), dictionary))
               for records, w in streams)


def mine_fleet_dictionary(streams: Sequence[WeightedStream],
                          max_len: int = 8,
                          top_k: int = 16,
                          min_gain_bytes: int = 16,
                          candidate_pool: int = 96) -> SubPathDict:
    """Mine a speculation dictionary from weighted fleet traffic.

    Candidate sub-paths are every n-gram of length 2..``max_len``
    occurring in the sample, ranked by an upper-bound profit score
    ``(pattern bytes - token bytes) x weighted occurrences``; the top
    ``candidate_pool`` survivors are then admitted greedily, each one
    kept only if the **measured** compressed size of the whole sample
    drops by at least ``min_gain_bytes``. Because a token costs 4
    bytes and every pattern is at least 4 bytes, the mined dictionary
    can never expand a stream — profit is structurally non-negative.

    Deterministic: independent of stream order, candidate hash order,
    and dict iteration order.
    """
    ordered = sorted(streams,
                     key=lambda sw: _stream_digest(sw[0]))
    gains: Counter = Counter()
    for records, weight in ordered:
        n = len(records)
        for length in range(2, max_len + 1):
            for i in range(n - length + 1):
                gains[records[i:i + length]] += weight
    candidates = sorted(
        gains.items(),
        key=lambda kv: (-(_stream_bytes(kv[0]) - 4) * kv[1],
                        b"".join(r.pack() for r in kv[0])))
    candidates = [(pattern, count) for pattern, count in candidates
                  if (_stream_bytes(pattern) - 4) * count
                  >= min_gain_bytes][:candidate_pool]
    chosen: List[Tuple[Record, ...]] = []
    current_bytes = _weighted_bytes(ordered, {})
    for pattern, _count in candidates:
        if len(chosen) >= top_k:
            break
        trial = sorted(
            chosen + [pattern],
            key=lambda p: (-len(p), b"".join(r.pack() for r in p)))
        trial_bytes = _weighted_bytes(
            ordered, {i: p for i, p in enumerate(trial)})
        if current_bytes - trial_bytes >= min_gain_bytes:
            chosen = trial
            current_bytes = trial_bytes
    # longest-first ids so greedy compression prefers long matches,
    # with the serialization tiebreak keeping ids deterministic
    chosen.sort(key=lambda p: (-len(p), b"".join(r.pack() for r in p)))
    return {path_id: pattern for path_id, pattern in enumerate(chosen)}


def mining_gain(streams: Sequence[WeightedStream],
                dictionary: SubPathDict) -> int:
    """Measured profit: weighted sample bytes saved by ``dictionary``
    (non-negative by construction)."""
    return (_weighted_bytes(streams, {})
            - _weighted_bytes(streams, dictionary))


def learn_dictionaries(service, profiles=None, max_len: int = 8,
                       top_k: int = 16, min_gain_bytes: int = 16):
    """One fleet learning round: mine and publish per-profile epochs.

    ``service`` is anything with the fleet-service learning surface
    (``traffic_samples()`` and ``publish_dictionary()``: both
    :class:`~repro.cfa.fleet.service.FleetService` and
    :class:`~repro.cfa.fleet.shard.ShardedFleetService`). Returns
    ``profile -> DictEpoch`` for every profile whose mined dictionary
    was worth publishing. Pushing the new epochs to devices (and
    ingesting their ACKs) is the transport's job — see
    ``dictionary_pushes`` / ``ingest_dack`` on the services.
    """
    samples = service.traffic_samples()
    published = {}
    for profile in sorted(samples, key=lambda p: (p.workload, p.method)):
        if profiles is not None and profile not in profiles:
            continue
        streams = samples[profile]
        if not streams:
            continue
        dictionary = mine_fleet_dictionary(
            streams, max_len=max_len, top_k=top_k,
            min_gain_bytes=min_gain_bytes)
        if not dictionary:
            continue
        published[profile] = service.publish_dictionary(profile, dictionary)
    return published
