"""Structured metrics for the fleet verification service.

Mirrors the :class:`~repro.eval.parallel.EvalMetrics` idiom: plain
counters mutated under the service lock, plus derived views (latency
percentiles, throughput) computed on demand and a one-line
``summary()`` for the CLI/CI smoke output.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence


def percentile(values: List[float], fraction: float) -> float:
    """Nearest-rank percentile; 0.0 on an empty sample."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil(fraction * len(ordered)))
    return ordered[rank - 1]


@dataclass
class FleetMetrics:
    """Aggregate counters for one service lifetime."""

    # sessions
    sessions_opened: int = 0
    sessions_verified: int = 0
    sessions_rejected: int = 0
    sessions_expired: int = 0
    sessions_retried: int = 0
    sessions_refused: int = 0  # overload: never admitted
    #: chains rejected by the `BNDS1` static-bound screen before replay
    sessions_bounds_rejected: int = 0
    # reports
    reports_ingested: int = 0
    reports_ignored: int = 0   # late / unknown-device deliveries
    duplicates_dropped: int = 0
    bytes_ingested: int = 0
    # verification engine
    verify_latencies_s: List[float] = field(default_factory=list, repr=False)
    queue_depth: int = 0
    queue_depth_max: int = 0
    workers: int = 0
    executor: str = "inline"
    replay_cache_hits: int = 0
    replay_cache_misses: int = 0
    wall_s: float = 0.0
    # durability / sharding
    evidence_records: int = 0
    evidence_bytes: int = 0
    evidence_fsyncs: int = 0
    sessions_recovered: int = 0  # verdicts restored from the evidence log
    shards: int = 0              # 0 = unsharded single service
    recovery_s: float = 0.0      # wall time replaying evidence at restart
    # adaptive speculation (dictionary epoch handshake)
    dict_pushes: int = 0         # DICT frames offered to lagging devices
    dict_acks: int = 0           # valid DACKs that advanced a device's pin
    dict_acks_rejected: int = 0  # malformed / forged / mismatched DACKs
    #: traffic-sampler exemplars evicted by the dedup-map bound
    sampler_evictions: int = 0
    # policy control plane
    sessions_denied: int = 0     # open_session refused: quarantined/revoked
    reports_denied: int = 0      # reports dropped from blocked devices
    policy_decisions: int = 0    # decision records appended (live+repaired)
    policy_notices: int = 0      # PLCY frames pushed
    suspects: int = 0            # transitions into SUSPECT
    quarantines: int = 0         # transitions into QUARANTINED
    recoveries: int = 0          # SUSPECT -> HEALTHY recoveries
    heals_started: int = 0       # HEAL orders issued
    heals_failed: int = 0        # healing rounds that burned an attempt
    rejoins: int = 0             # HEALING -> REJOINED successes
    revocations: int = 0         # permanent revocations

    @property
    def sessions_settled(self) -> int:
        return (self.sessions_verified + self.sessions_rejected
                + self.sessions_expired)

    @property
    def reports_per_second(self) -> float:
        return self.reports_ingested / self.wall_s if self.wall_s else 0.0

    def latency_percentiles(self) -> Dict[str, float]:
        sample = self.verify_latencies_s
        return {
            "p50": percentile(sample, 0.50),
            "p95": percentile(sample, 0.95),
            "p99": percentile(sample, 0.99),
        }

    def summary(self) -> str:
        pct = self.latency_percentiles()
        return (
            f"{self.sessions_settled}/{self.sessions_opened} sessions "
            f"settled ({self.sessions_verified} ok, "
            f"{self.sessions_rejected} rejected, "
            f"{self.sessions_expired} expired, "
            f"{self.sessions_retried} retried, "
            f"{self.sessions_refused} refused), "
            f"{self.reports_ingested} reports "
            f"({self.bytes_ingested} B, {self.duplicates_dropped} dup, "
            f"{self.reports_ignored} ignored) "
            f"at {self.reports_per_second:.0f} rps, "
            f"workers={self.workers} ({self.executor}), "
            f"verify p50/p95/p99 {pct['p50'] * 1e3:.1f}/"
            f"{pct['p95'] * 1e3:.1f}/{pct['p99'] * 1e3:.1f} ms, "
            f"queue depth max {self.queue_depth_max}, "
            f"replay cache {self.replay_cache_hits}/"
            f"{self.replay_cache_hits + self.replay_cache_misses} hits, "
            + (f"bounds screen {self.sessions_bounds_rejected} rejected, "
               if self.sessions_bounds_rejected else "")
            + (f"shards={self.shards}, " if self.shards else "")
            + (f"evidence {self.evidence_records} rec "
               f"({self.evidence_bytes} B, {self.evidence_fsyncs} fsync), "
               if self.evidence_records else "")
            + (f"recovered {self.sessions_recovered} verdicts in "
               f"{self.recovery_s * 1e3:.1f} ms, "
               if self.sessions_recovered else "")
            + (f"dict pushes/acks {self.dict_pushes}/{self.dict_acks} "
               f"({self.dict_acks_rejected} rejected), "
               if self.dict_pushes or self.dict_acks
               or self.dict_acks_rejected else "")
            + (f"policy {self.policy_decisions} decisions "
               f"({self.quarantines} quarantine, {self.heals_started} "
               f"heal, {self.rejoins} rejoin, {self.revocations} "
               f"revoked; {self.sessions_denied}+{self.reports_denied} "
               f"denied), "
               if self.policy_decisions or self.sessions_denied
               or self.reports_denied else "")
            + f"wall {self.wall_s:.2f}s"
        )


def aggregate_metrics(per_shard: Sequence[FleetMetrics],
                      wall_s: float = 0.0,
                      recovery_s: float = 0.0) -> FleetMetrics:
    """Fold per-shard metrics into one fleet-wide view.

    Counters sum; latency samples concatenate (so the percentiles are
    fleet-wide, not a mean of per-shard percentiles); queue depth takes
    the worst shard. ``wall_s`` is the *router's* wall clock — shards
    run concurrently, so summing their walls would double count.
    """
    total = FleetMetrics(shards=len(per_shard))
    for m in per_shard:
        total.sessions_opened += m.sessions_opened
        total.sessions_verified += m.sessions_verified
        total.sessions_rejected += m.sessions_rejected
        total.sessions_expired += m.sessions_expired
        total.sessions_retried += m.sessions_retried
        total.sessions_refused += m.sessions_refused
        total.sessions_bounds_rejected += m.sessions_bounds_rejected
        total.sessions_recovered += m.sessions_recovered
        total.reports_ingested += m.reports_ingested
        total.reports_ignored += m.reports_ignored
        total.duplicates_dropped += m.duplicates_dropped
        total.bytes_ingested += m.bytes_ingested
        total.verify_latencies_s.extend(m.verify_latencies_s)
        total.queue_depth_max = max(total.queue_depth_max,
                                    m.queue_depth_max)
        total.workers += m.workers
        total.replay_cache_hits += m.replay_cache_hits
        total.replay_cache_misses += m.replay_cache_misses
        total.evidence_records += m.evidence_records
        total.evidence_bytes += m.evidence_bytes
        total.evidence_fsyncs += m.evidence_fsyncs
        total.dict_pushes += m.dict_pushes
        total.dict_acks += m.dict_acks
        total.dict_acks_rejected += m.dict_acks_rejected
        total.sampler_evictions += m.sampler_evictions
        total.sessions_denied += m.sessions_denied
        total.reports_denied += m.reports_denied
        total.policy_decisions += m.policy_decisions
        total.policy_notices += m.policy_notices
        total.suspects += m.suspects
        total.quarantines += m.quarantines
        total.recoveries += m.recoveries
        total.heals_started += m.heals_started
        total.heals_failed += m.heals_failed
        total.rejoins += m.rejoins
        total.revocations += m.revocations
    executors = {m.executor for m in per_shard}
    total.executor = executors.pop() if len(executors) == 1 else "mixed"
    total.wall_s = wall_s or max(
        (m.wall_s for m in per_shard), default=0.0)
    total.recovery_s = recovery_s
    return total
