"""Shard the fleet Vrf: a consistent-hash router over worker shards.

One :class:`FleetService` owns every session in a fleet; past a few
hundred thousand devices that single protocol brain (and its lock)
is the bottleneck. :class:`ShardedFleetService` partitions the fleet
by device id: a :class:`HashRing` routes each device to exactly one
shard, and each shard is a full ``FleetService`` owning its devices'
sessions, nonces, reorder windows, replay cache, and evidence log —
no state is shared across shards, so shards can run their own worker
pools (or, with the handoff framing in :mod:`repro.cfa.wire`, in
separate processes) without coordination.

Three properties make sharding invisible to verdicts, all pinned by
``tests/test_fleet_sharding.py``:

* **device-scoped nonces** — challenges derive from
  ``(seed, device id, round, attempt)`` rather than a global counter,
  so the challenge a device answers (and hence every wire byte and
  every evidence digest) is independent of shard count;
* **one owner per device** — the ring maps a device id to exactly one
  shard, so session state is never split or duplicated;
* **per-device evidence chains** — each device's hash chain threads
  only through its own records, so the chain head is invariant to how
  devices interleave inside (or across) shard logs.

Consistent hashing keeps resharding cheap: adding a shard to an
``n``-shard ring remaps only ~``1/(n+1)`` of the keyspace, and every
remapped device lands on the *new* shard — an existing shard never
inherits devices from another existing shard, so their evidence logs
and session state stay put.

With ``store_dir`` set, each shard appends to its own evidence log
(``evidence-NN.log``) and all shards share one content-addressed
replay-cache directory (atomic single-file publishes make concurrent
writers safe, exactly like the offline-artifact cache). Constructing
with ``resume=True`` replays the evidence logs — truncating at most
one torn tail per shard — and restores every released verdict and
every device's nonce round before new traffic is admitted: the
crash-recovery protocol of docs/internals.md §9.
"""

from __future__ import annotations

import bisect
import hashlib
import os
import time
from pathlib import Path
from types import SimpleNamespace
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.cfa.fleet.dictver import DictEpoch, DictionaryRegistry
from repro.cfa.fleet.metrics import FleetMetrics, aggregate_metrics
from repro.cfa.fleet.mining import TrafficSampler
from repro.cfa.fleet.service import FleetService
from repro.cfa.fleet.store import DurableReplayCache, EvidenceStore
from repro.cfa.fleet.verify import DeviceProfile, SessionVerdict
from repro.cfa.policy.engine import PolicyEngine
from repro.cfa.policy.recovery import write_recovery_manifest
from repro.cfa.policy.registry import PolicyRegistry, policy_key
from repro.cfa.protocol import Challenge
from repro.cfa.wire import (
    SHARD_KIND_DACK,
    SHARD_KIND_DICT,
    SHARD_KIND_HEAL,
    SHARD_KIND_PLCY,
    SHARD_KIND_REPORT,
    decode_shard_frame,
    encode_shard_frame,
)


def audit_key(seed: bytes) -> bytes:
    """The Vrf-side evidence-MAC key derived from the service seed."""
    return hashlib.sha256(b"evidence-audit|" + seed).digest()


class HashRing:
    """Consistent hashing of device ids onto shard ids.

    Each shard contributes ``vnodes`` pseudo-random points on a
    64-bit ring; a device routes to the owner of the first point at or
    after its own hash (wrapping). More vnodes smooth the load split
    and the remap fraction at the cost of a larger (still tiny) ring.
    """

    def __init__(self, shard_count: int, vnodes: int = 64,
                 shard_ids: Optional[Sequence[int]] = None):
        if vnodes < 1:
            raise ValueError("need at least one vnode per shard")
        if shard_ids is None:
            if shard_count < 1:
                raise ValueError("need at least one shard")
            shard_ids = tuple(range(shard_count))
        else:
            # an explicit member set: what a ring looks like after
            # decommissions — shard ids need not be contiguous
            shard_ids = tuple(sorted(set(shard_ids)))
            if not shard_ids:
                raise ValueError("need at least one shard")
        self.shard_ids = shard_ids
        self.shard_count = len(shard_ids)
        self.vnodes = vnodes
        points: List[Tuple[int, int]] = []
        for shard in shard_ids:
            for vnode in range(vnodes):
                points.append((self._point(
                    f"shard:{shard}:vnode:{vnode}".encode()), shard))
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [s for _, s in points]

    @staticmethod
    def _point(data: bytes) -> int:
        return int.from_bytes(hashlib.sha256(data).digest()[:8], "big")

    def route(self, device_id: str) -> int:
        """The shard that owns ``device_id``."""
        here = self._point(b"device:" + device_id.encode())
        index = bisect.bisect_right(self._points, here)
        if index == len(self._points):  # wrap past the last point
            index = 0
        return self._owners[index]

    def remove(self, shard: int) -> "HashRing":
        """The ring after decommissioning ``shard``.

        A removed shard's vnode points vanish; every one of its keys
        falls through to the next surviving point. Keys owned by the
        survivors never move (their owning points are untouched) — the
        mirror of the add-a-shard property, pinned by the removal
        property test in ``tests/test_fleet_sharding.py``.
        """
        if shard not in self.shard_ids:
            raise ValueError(f"shard {shard} is not on the ring")
        return HashRing(
            0, vnodes=self.vnodes,
            shard_ids=[s for s in self.shard_ids if s != shard])


class ShardedFleetService:
    """N fleet shards behind one consistent-hash router.

    Presents the same surface as :class:`FleetService` (``open_session``
    / ``submit`` / ``tick`` / ``drain`` / ``close`` / ``verdicts``), so
    the simulator, the CLI, and the benchmarks drive either
    interchangeably. Every submit crosses the shard boundary through
    the wire handoff framing — encode at the router, decode at the
    shard — so the path a multi-process deployment would take is the
    path that is tested.
    """

    def __init__(self, shards: int = 2,
                 store_dir: Optional[Union[str, os.PathLike]] = None,
                 seed: bytes = b"fleet-vrf",
                 workers: int = 0,
                 executor: str = "auto",
                 idle_timeout: float = 30.0,
                 reorder_window: int = 8,
                 max_attempts: int = 2,
                 max_sessions: Optional[int] = None,
                 replay_cache: bool = True,
                 fsync: bool = True,
                 resume: bool = False,
                 vnodes: int = 64,
                 sampler: bool = False,
                 policy: bool = False,
                 key_lookup=None,
                 suspect_threshold: int = 2,
                 max_heal_attempts: int = 2,
                 bounds=None):
        self.ring = HashRing(shards, vnodes=vnodes)
        self.seed = seed
        self.audit_key = audit_key(seed)
        self.store_dir = Path(store_dir) if store_dir is not None else None
        # dictionary versions are fleet-wide, not per shard: one shared
        # registry (persisted beside the evidence logs when durable) so
        # every shard resolves the same (profile, epoch) -> dictionary
        self.registry = DictionaryRegistry(
            self.store_dir / "dicts" if self.store_dir is not None else None)
        # the policy control plane is likewise fleet-wide: one signed
        # firmware registry and one quarantine engine shared by every
        # shard. Devices are disjoint across shards, so the per-store
        # policy folds compose into the fleet-wide engine state.
        self.policy_registry: Optional[PolicyRegistry] = None
        self.policy: Optional[PolicyEngine] = None
        if policy:
            self.policy_registry = PolicyRegistry(
                policy_key(seed),
                self.store_dir / "policy"
                if self.store_dir is not None else None)
            self.policy = PolicyEngine(
                registry=self.policy_registry,
                suspect_threshold=suspect_threshold,
                max_heal_attempts=max_heal_attempts)
        self.stores: List[Optional[EvidenceStore]] = []
        self.shards: List[FleetService] = []
        t0 = time.perf_counter()
        recovered = 0
        for shard_id in range(shards):
            store = None
            cache: Union[bool, DurableReplayCache] = replay_cache
            if self.store_dir is not None:
                store = EvidenceStore(
                    self.store_dir / f"evidence-{shard_id:02d}.log",
                    self.audit_key, fsync=fsync)
                if replay_cache:
                    # one shared CAS directory: atomic publishes make
                    # cross-shard (and cross-process) writers safe
                    cache = DurableReplayCache(self.store_dir / "replay")
            service = FleetService(
                workers=workers, seed=seed, idle_timeout=idle_timeout,
                reorder_window=reorder_window, max_attempts=max_attempts,
                max_sessions=max_sessions, replay_cache=cache,
                executor=executor, store=store, nonce_scope="device",
                registry=self.registry, sampler=sampler,
                policy=self.policy, key_lookup=key_lookup,
                bounds=bounds)
            if store is not None and store.recovered:
                if not resume:
                    raise ValueError(
                        f"evidence log {store.path} already has "
                        f"{len(store.recovered)} record(s); pass "
                        f"resume=True to recover or use a fresh "
                        f"store_dir")
                recovered += service.restore(store.recovered)
            self.stores.append(store)
            self.shards.append(service)
        self.recovered_verdicts = recovered
        if self.store_dir is not None:
            # the operator's map of what on this disk is authoritative
            # state vs cache, and how to rebuild the control plane
            write_recovery_manifest(self.store_dir)
        self._recovery_s = time.perf_counter() - t0 if resume else 0.0
        self._started = time.perf_counter()

    # -- the FleetService surface -------------------------------------------

    @property
    def manager(self) -> SimpleNamespace:
        """Protocol constants view (what the simulator consults); the
        real per-device state lives in each shard's own manager."""
        first = self.shards[0].manager
        return SimpleNamespace(
            idle_timeout=first.idle_timeout,
            max_attempts=first.max_attempts,
            reorder_window=first.reorder_window,
        )

    def shard_of(self, device_id: str) -> int:
        return self.ring.route(device_id)

    def open_session(self, device_id: str, profile: DeviceProfile,
                     key: bytes, now: float = 0.0) -> Challenge:
        return self.shards[self.ring.route(device_id)].open_session(
            device_id, profile, key, now)

    def submit(self, device_id: str, data: bytes, now: float = 0.0) -> None:
        """Route one report to its owning shard via the handoff frame."""
        shard_id = self.ring.route(device_id)
        frame = encode_shard_frame(shard_id, device_id, data)
        framed_shard, framed_device, kind, payload = \
            decode_shard_frame(frame)
        assert kind == SHARD_KIND_REPORT
        self.shards[framed_shard].submit(framed_device, payload, now)

    def tick(self, now: float) -> List[Tuple[str, Challenge]]:
        """Advance every shard's logical clock; merge re-challenges."""
        out: List[Tuple[str, Challenge]] = []
        for service in self.shards:
            out.extend(service.tick(now))
        return out

    @property
    def verdicts(self) -> Dict[str, SessionVerdict]:
        merged: Dict[str, SessionVerdict] = {}
        for service in self.shards:
            merged.update(service.verdicts)
        return merged

    def evidence_heads(self) -> Dict[str, bytes]:
        """device id -> evidence-chain head digest, fleet-wide."""
        merged: Dict[str, bytes] = {}
        for store in self.stores:
            if store is not None:
                merged.update(store.heads())
        return merged

    # -- adaptive speculation (router surface) ------------------------------

    def traffic_samples(self) -> Dict[DeviceProfile, list]:
        """Fleet-wide miner input: per-shard samplers merged into one
        sample, so the miner sees the whole fleet's traffic weights."""
        samplers = [s.sampler for s in self.shards if s.sampler is not None]
        if not samplers:
            return {}
        merged = TrafficSampler.merge(samplers)
        return {profile: merged.sample(profile)
                for profile in merged.profiles()}

    def publish_dictionary(self, profile: DeviceProfile,
                           dictionary) -> DictEpoch:
        """One publish in the shared registry; every shard resolves the
        new epoch immediately (the registry is the shared truth)."""
        return self.registry.publish(profile, dictionary)

    def dictionary_pushes(
            self, profile: Optional[DeviceProfile] = None
    ) -> List[Tuple[str, bytes]]:
        """``(device_id, DICT frame)`` fleet-wide. Each push crosses
        the shard handoff framing (kind ``DICT``) exactly like a report
        submit does, so the multi-process path is the tested path."""
        pushes: List[Tuple[str, bytes]] = []
        for shard_id, service in enumerate(self.shards):
            for device_id, payload in service.dictionary_pushes(profile):
                frame = encode_shard_frame(
                    shard_id, device_id, payload, kind=SHARD_KIND_DICT)
                framed_shard, framed_device, kind, inner = \
                    decode_shard_frame(frame)
                assert kind == SHARD_KIND_DICT and framed_shard == shard_id
                pushes.append((framed_device, inner))
        return pushes

    def ingest_dack(self, device_id: str, data: bytes,
                    now: float = 0.0) -> bool:
        """Route a device's ``DACK`` to its owning shard (kind ``DACK``
        handoff frame); the shard validates MAC and registry binding."""
        shard_id = self.ring.route(device_id)
        frame = encode_shard_frame(
            shard_id, device_id, data, kind=SHARD_KIND_DACK)
        framed_shard, framed_device, kind, payload = \
            decode_shard_frame(frame)
        assert kind == SHARD_KIND_DACK
        return self.shards[framed_shard].ingest_dack(
            framed_device, payload, now)

    def acked_epoch(self, device_id: str, profile: DeviceProfile) -> int:
        return self.shards[self.ring.route(device_id)].acked_epoch(
            device_id, profile)

    # -- policy control plane (router surface) ------------------------------

    def policy_states(self) -> Dict[str, str]:
        """device id -> lifecycle state name, fleet-wide."""
        return self.policy.state_names() if self.policy else {}

    def begin_heal(self, device_id: str,
                   now: float = 0.0) -> Optional[Tuple[str, bytes]]:
        """Heal one quarantined device at its owning shard."""
        return self.shards[self.ring.route(device_id)].begin_heal(
            device_id, now)

    def heal_pushes(self, now: float = 0.0) -> List[Tuple[str, bytes]]:
        """One fleet-wide healing round. The engine is shared, so the
        router — not the shards — enumerates quarantined devices and
        routes each heal to the shard that owns the device's sessions;
        each order crosses the ``HEAL`` handoff framing like every
        other shard-bound byte."""
        if self.policy is None:
            return []
        pushes: List[Tuple[str, bytes]] = []
        for device_id in self.policy.quarantined_devices():
            shard_id = self.ring.route(device_id)
            push = self.shards[shard_id].begin_heal(device_id, now)
            if push is None:
                continue
            frame = encode_shard_frame(
                shard_id, push[0], push[1], kind=SHARD_KIND_HEAL)
            framed_shard, framed_device, kind, inner = \
                decode_shard_frame(frame)
            assert kind == SHARD_KIND_HEAL and framed_shard == shard_id
            pushes.append((framed_device, inner))
        return pushes

    def resume_heals(self, now: float = 0.0) -> List[Tuple[str, bytes]]:
        """Re-issue standing heal orders after a restart, each at its
        owning shard (no new decisions are minted)."""
        if self.policy is None:
            return []
        pushes: List[Tuple[str, bytes]] = []
        for device_id in self.policy.healing_devices():
            shard_id = self.ring.route(device_id)
            push = self.shards[shard_id].resume_heal(device_id, now)
            if push is None:
                continue
            frame = encode_shard_frame(
                shard_id, push[0], push[1], kind=SHARD_KIND_HEAL)
            framed_shard, framed_device, kind, inner = \
                decode_shard_frame(frame)
            assert kind == SHARD_KIND_HEAL and framed_shard == shard_id
            pushes.append((framed_device, inner))
        return pushes

    def policy_pushes(self) -> List[Tuple[str, bytes]]:
        """Drain pending lifecycle notices fleet-wide (kind ``PLCY``
        handoff frames; each notice is MAC'd by the owning shard under
        the device's key)."""
        if self.policy is None:
            return []
        pushes: List[Tuple[str, bytes]] = []
        for device_id, state, reason, epoch in self.policy.take_notices():
            shard_id = self.ring.route(device_id)
            payload = self.shards[shard_id].policy_notice_frame(
                device_id, state, reason, epoch)
            if payload is None:
                continue
            frame = encode_shard_frame(
                shard_id, device_id, payload, kind=SHARD_KIND_PLCY)
            framed_shard, framed_device, kind, inner = \
                decode_shard_frame(frame)
            assert kind == SHARD_KIND_PLCY and framed_shard == shard_id
            pushes.append((framed_device, inner))
        return pushes

    def drain(self) -> FleetMetrics:
        for service in self.shards:
            service.drain()
        return self.metrics

    def close(self) -> FleetMetrics:
        for service in self.shards:
            service.close()
        return self.metrics

    @property
    def metrics(self) -> FleetMetrics:
        return aggregate_metrics(
            [s.metrics for s in self.shards],
            wall_s=time.perf_counter() - self._started,
            recovery_s=self._recovery_s)

    def __enter__(self) -> "ShardedFleetService":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
