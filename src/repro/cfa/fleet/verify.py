"""The single session-verification primitive behind the fleet service.

One attestation *session* is a device's whole wire-encoded report
chain; verifying it means running the exact serial machinery —
:class:`~repro.cfa.streaming.StreamingVerifier` fed one report at a
time — and folding the outcome into a :class:`SessionVerdict`, a pure
picklable value. The in-process path and the worker-pool path both
call :func:`verify_session_chain`, so serial and concurrent fleet
verification cannot drift apart (the same discipline
``eval/parallel.py`` applies to evaluation cells).

Worker processes rebuild the Vrf-side artifacts (linked image + bound
rewrite map) themselves from the device *profile*; the offline phase
is a pure function of ``(workload, method)`` (see ``eval/cache.py``),
so worker-built verifiers are identical to main-process ones. Built
artifacts are memoized per process in :data:`_ARTIFACTS`.
"""

from __future__ import annotations

import hashlib
import struct
import threading
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.cfa.speccfa import SpecRecord, SubPathDict, expand
from repro.cfa.streaming import StreamError, StreamingVerifier
from repro.cfa.verifier import NaiveVerifier, Verifier
from repro.cfa.wire import WireError
from repro.eval.runner import prepare
from repro.workloads import load_workload


@dataclass(frozen=True)
class DeviceProfile:
    """What Vrf knows about a device model: which attested binary it
    runs and under which CFA method — enough to rebuild the verifier."""

    workload: str
    method: str = "rap-track"

    def __str__(self) -> str:
        return f"{self.workload}/{self.method}"


@dataclass(frozen=True)
class SessionVerdict:
    """The fleet-level outcome of one attestation session.

    Pure data: picklable across the worker pool and comparable, so two
    verification paths agreeing means their verdicts are ``==``. The
    replayed path is carried as a SHA-256 digest (plus its length) so
    a large fleet result stays small crossing process boundaries while
    still pinning the reconstruction bit-for-bit.
    """

    device_id: str
    profile: DeviceProfile
    accepted: bool
    authenticated: bool = False
    lossless: bool = False
    violations: Tuple[Tuple[str, int, str], ...] = ()
    reason: str = ""
    reports: int = 0
    records: int = 0
    path_len: int = 0
    path_digest: str = ""
    #: digest of the *expanded* (canonical) record stream the replay
    #: consumed — invariant under speculation-dictionary changes, so
    #: identical executions produce identical verdicts whether their
    #: logs crossed the wire compressed or plain
    records_digest: str = ""


def path_digest(path: Sequence[int]) -> str:
    """Order-sensitive digest of a replayed path."""
    packed = b"".join(struct.pack("<I", pc & 0xFFFFFFFF) for pc in path)
    return hashlib.sha256(packed).hexdigest()


@dataclass(frozen=True)
class _ReplaySummary:
    """The replay-derived half of a verdict (authentication excluded)."""

    lossless: bool
    violations: Tuple[Tuple[str, int, str], ...]
    error: str
    consumed: int
    path_len: int
    path_digest: str


class ReplayCache:
    """Memoizes the replay of identical ``(profile, CFLog)`` chains.

    Fleet devices running the same firmware produce byte-identical
    CFLogs on honest runs, so the expensive lossless replay is shared
    across the fleet and keyed by a digest of the authenticated record
    stream. Only the replay is cached — authentication (MACs, nonce,
    ``H_MEM``, sequencing) is per-session by construction and always
    re-checked, so a cached entry can never launder a forged chain.
    Replay is a pure function of ``(verifier artifacts, records)``,
    which makes the memoization verdict-preserving.
    """

    def __init__(self):
        self._entries: Dict[Tuple[DeviceProfile, bytes], _ReplaySummary] = {}
        self._lock = threading.Lock()  # shared by thread-pool workers
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key(records) -> bytes:
        return hashlib.sha256(
            b"".join(r.pack() for r in records)).digest()

    def lookup(self, profile: DeviceProfile,
               key: bytes) -> Optional[_ReplaySummary]:
        with self._lock:
            entry = self._entries.get((profile, key))
            if entry is None:
                self.misses += 1
            else:
                self.hits += 1
            return entry

    def store(self, profile: DeviceProfile, key: bytes,
              entry: _ReplaySummary) -> None:
        with self._lock:
            self._entries[(profile, key)] = entry


def _summarize(outcome) -> _ReplaySummary:
    return _ReplaySummary(
        lossless=outcome.lossless,
        violations=tuple(
            (v.kind, v.address, v.detail) for v in outcome.violations),
        error=outcome.error or "",
        consumed=outcome.consumed,
        path_len=len(outcome.path),
        path_digest=path_digest(outcome.path),
    )


# per-process memo of Vrf-side offline artifacts: profile -> (image, bound)
_ARTIFACTS: Dict[DeviceProfile, tuple] = {}


def build_verifier(profile: DeviceProfile, key: bytes):
    """(Re)build the Vrf for a profile; offline artifacts are memoized."""
    artifacts = _ARTIFACTS.get(profile)
    if artifacts is None:
        artifacts = prepare(load_workload(profile.workload), profile.method)
        _ARTIFACTS[profile] = artifacts
    image, bound = artifacts
    if profile.method == "naive-mtb":
        return NaiveVerifier(image, key)
    if bound is None:
        raise ValueError(f"method {profile.method!r} is not attestable")
    return Verifier(image, bound, key)


def verify_session_chain(device_id: str, profile: DeviceProfile, key: bytes,
                         challenge: bytes, chunks: Sequence[bytes],
                         cache: Optional[ReplayCache] = None,
                         reports: Optional[Sequence] = None,
                         info: Optional[dict] = None,
                         dictionary: Optional[SubPathDict] = None
                         ) -> SessionVerdict:
    """Verify one complete session chain exactly as the serial Vrf would.

    ``chunks`` are the session's wire-encoded reports in sequence
    order; when the caller already decoded them (the session manager
    does, for its protocol pre-filters), passing the decoded twins as
    ``reports`` skips the redundant wire decode — decoding is
    deterministic, so both forms yield the same verdict.
    Authentication (MACs, challenge, ``H_MEM``, sequencing) always runs
    per session; with a ``cache``, only the pure replay step is shared
    between identical chains — the cached and uncached paths produce
    ``==`` verdicts. Never raises: wire damage and protocol violations
    come back as a rejected verdict so a poisoned session cannot take a
    worker (or the service thread) down with it.

    ``dictionary`` is the speculation dictionary of the session's
    pinned epoch: after authentication, speculated tokens in the
    record stream are expanded through it before replay. The replay
    cache is keyed by the digest of the **expanded** stream, so a
    compressed session and a plain session of the same execution
    share one cached replay — and produce ``==`` verdicts.

    ``info``, when supplied, receives side-band facts that must *not*
    influence verdict equality — currently ``info["cache_hit"]``, True
    iff the replay half came from the cache. The evidence store uses
    it to annotate (never skip) the record for a cache-served verdict.
    """
    try:
        verifier = build_verifier(profile, key)
    except Exception as exc:  # unknown workload/method in the profile
        return SessionVerdict(
            device_id=device_id, profile=profile, accepted=False,
            reason=f"no verifier for profile {profile}: {exc}")
    stream = StreamingVerifier(verifier, challenge)
    try:
        if reports is not None:
            for report in reports:
                stream.feed(report)
        else:
            for chunk in chunks:
                stream.feed_bytes(chunk)
        if not stream.finished:
            raise StreamError("final report not yet received")
        records = stream.records
        if dictionary or any(isinstance(r, SpecRecord) for r in records):
            # expansion only after every report authenticated; a token
            # naming an unknown sub-path (wrong/missing dictionary) is
            # an explicit rejection, never a silent mis-expansion
            try:
                records = expand(records, dictionary or {})
            except ValueError as exc:
                raise StreamError(
                    f"speculation expansion failed: {exc}") from None
        key_digest = ReplayCache.key(records)
        if cache is not None:
            summary = cache.lookup(profile, key_digest)
            if info is not None:
                info["cache_hit"] = summary is not None
            if summary is None:
                summary = _summarize(_replay(verifier, records))
                cache.store(profile, key_digest, summary)
        else:
            summary = _summarize(_replay(verifier, records))
    except (WireError, StreamError) as exc:
        return SessionVerdict(
            device_id=device_id, profile=profile, accepted=False,
            reason=str(exc), reports=stream.partials_accepted)
    return SessionVerdict(
        device_id=device_id,
        profile=profile,
        # every report authenticated on feed; ok = replay clean on top
        accepted=summary.lossless and not summary.violations,
        authenticated=True,
        lossless=summary.lossless,
        violations=summary.violations,
        reason=summary.error,
        reports=len(chunks),
        records=summary.consumed,
        path_len=summary.path_len,
        path_digest=summary.path_digest,
        records_digest=key_digest.hex(),
    )


def _replay(verifier, records):
    """Replay an authenticated (and expanded) record stream."""
    outcome = verifier.replay(records)
    outcome.authenticated = True  # each report was checked on feed
    return outcome


# the worker-side replay cache (one per process, like _ARTIFACTS)
_WORKER_CACHE = ReplayCache()


def pool_verify(device_id: str, profile: DeviceProfile, key: bytes,
                challenge: bytes, chunks: Sequence[bytes],
                use_cache: bool,
                dictionary: Optional[SubPathDict] = None
                ) -> Tuple[SessionVerdict, int, int]:
    """Worker-pool entry point (module-level for pickling).

    Returns ``(verdict, cache_hits_delta, cache_misses_delta)`` so the
    service can aggregate worker-side cache effectiveness.
    """
    cache = _WORKER_CACHE if use_cache else None
    hits0, misses0 = _WORKER_CACHE.hits, _WORKER_CACHE.misses
    verdict = verify_session_chain(
        device_id, profile, key, challenge, chunks, cache=cache,
        dictionary=dictionary)
    return (verdict, _WORKER_CACHE.hits - hits0,
            _WORKER_CACHE.misses - misses0)


def local_verify(args: tuple, cache: Optional[ReplayCache],
                 reports: Optional[Sequence] = None,
                 info: Optional[dict] = None,
                 dictionary: Optional[SubPathDict] = None
                 ) -> Tuple[SessionVerdict, int, int]:
    """Thread-pool entry point: shares the service's cache in-process
    (cache deltas ride the shared object, so none are reported here;
    the caller's ``info`` dict rides along for the cache-hit flag)."""
    return verify_session_chain(
        *args, cache=cache, reports=reports, info=info,
        dictionary=dictionary), 0, 0
