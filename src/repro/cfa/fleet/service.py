"""The fleet attestation service: many devices, one Vrf.

:class:`FleetService` multiplexes thousands of concurrent device
sessions over the wire codec. The split of responsibilities:

* the :class:`~repro.cfa.fleet.session.SessionManager` does the cheap,
  strictly-ordered protocol bookkeeping (challenges, replay
  protection, sequence tracking, expiry) on the caller's thread;
* the expensive part — MAC-checking and losslessly replaying a
  completed chain — is fanned out across a worker pool
  (``workers > 1``), or run inline for ``workers <= 1``; every path
  executes the same :func:`~repro.cfa.fleet.verify.verify_session_chain`
  primitive, so verdicts are identical by construction.

The pool flavour is selectable (``executor=``): ``"process"`` uses a
``ProcessPoolExecutor`` for real multi-core parallelism but pays a
per-session pickle/IPC toll that only extra cores can amortize;
``"thread"`` uses a ``ThreadPoolExecutor``, which shares the replay
cache and the in-process artifact memo and overlaps the GIL-releasing
HMAC work, at near-zero dispatch cost. The default ``"auto"`` picks
threads on a single-core host (where process workers are pure
overhead) and processes otherwise.

**Backpressure**: at most ``max_pending`` chains may be in flight to
the pool; when the bound is hit, ``submit`` of a chain-completing
report *blocks* the ingest thread until a worker frees a slot — the
overload propagates to the transport instead of growing an unbounded
queue. Admission control is separate: with ``max_sessions`` set,
``open_session`` refuses new devices (``FleetOverloadError``) once
that many sessions are active.

All timing used for protocol decisions is an explicit logical clock
(``now``) supplied by the caller, so tests and the simulator are
deterministic; only the performance metrics touch the wall clock.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import (
    Executor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from types import SimpleNamespace
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.cfa.fleet.dictver import (
    DictEpoch,
    DictionaryRegistry,
    verify_dack,
)
from repro.cfa.fleet.metrics import FleetMetrics
from repro.cfa.fleet.mining import TrafficSampler
from repro.cfa.fleet.store import EvidenceStore, chain_digest
from repro.cfa.fleet.session import (
    EXPIRED,
    QUEUED,
    REJECTED,
    VERIFIED,
    Session,
    SessionManager,
)
from repro.cfa.fleet.verify import (
    DeviceProfile,
    ReplayCache,
    SessionVerdict,
    local_verify,
    pool_verify,
    verify_session_chain,
)
from repro.cfa.policy.engine import (
    ACT_HEAL,
    ACT_HEAL_FAIL,
    ACT_QUARANTINE,
    ACT_RECOVER,
    ACT_REJOIN,
    ACT_REVOKE,
    ACT_SUSPECT,
    PolicyDeniedError,
    PolicyEngine,
)
from repro.cfa.policy.heal import build_heal_frame, build_policy_frame

#: decision action -> FleetMetrics counter name
_DECISION_COUNTERS = {
    ACT_SUSPECT: "suspects",
    ACT_QUARANTINE: "quarantines",
    ACT_RECOVER: "recoveries",
    ACT_HEAL: "heals_started",
    ACT_HEAL_FAIL: "heals_failed",
    ACT_REJOIN: "rejoins",
    ACT_REVOKE: "revocations",
}
from repro.cfa.protocol import Challenge
from repro.cfa.speccfa import expand
from repro.cfa.wire import WireError, decode_dack_frame, encode_dict_frame
from repro.core.analysis.certificate import BoundsRegistry, screen_records


class FleetService:
    """Session-multiplexing verification front end for a device fleet."""

    def __init__(self, workers: int = 0,
                 seed: bytes = b"fleet-vrf",
                 idle_timeout: float = 30.0,
                 reorder_window: int = 8,
                 max_attempts: int = 2,
                 max_sessions: Optional[int] = None,
                 max_pending: Optional[int] = None,
                 replay_cache: Union[bool, ReplayCache] = True,
                 executor: str = "auto",
                 store: Optional[EvidenceStore] = None,
                 nonce_scope: str = "counter",
                 registry: Optional[DictionaryRegistry] = None,
                 sampler: Union[bool, TrafficSampler, None] = None,
                 policy: Optional[PolicyEngine] = None,
                 key_lookup: Optional[Callable[[str], bytes]] = None,
                 bounds: Optional[BoundsRegistry] = None):
        #: policy control plane: when set, every settled session feeds
        #: the quarantine engine's fold, its decisions are persisted in
        #: the evidence chain, and admission control applies (shared
        #: with sibling shards when the router injects one engine —
        #: devices are disjoint across shards, so per-store folds
        #: compose)
        self.policy = policy
        #: device id -> attestation key, for policy/heal pushes to
        #: devices with no session on file (e.g. right after a restart)
        self._key_lookup = key_lookup
        #: `BNDS1` certificates for the fleet's firmware images: when
        #: set, a completed chain whose claimed log length or inferred
        #: stack depth exceeds the image's pinned static bound is
        #: rejected at admission — before any replay work is spent —
        #: with an evidence record like any other verdict
        self.bounds = bounds
        #: speculation-dictionary versions this Vrf knows (shared with
        #: sibling shards when the router injects one registry)
        self.registry = registry or DictionaryRegistry()
        #: live-traffic tap feeding the sub-path miner; None = no
        #: sampling (the default: sampling costs one digest per
        #: accepted session)
        if sampler is True:
            sampler = TrafficSampler()
        self.sampler: Optional[TrafficSampler] = sampler or None
        #: device id -> last ACKed dictionary epoch for its profile
        self._acks: Dict[Tuple[str, DeviceProfile], int] = {}
        self.manager = SessionManager(
            seed=seed, idle_timeout=idle_timeout,
            reorder_window=reorder_window, max_attempts=max_attempts,
            max_sessions=max_sessions, nonce_scope=nonce_scope,
            epoch_bindings=self.registry.bindings)
        self.workers = max(0, workers)
        # replay_cache may be a ready-made cache instance (e.g. a
        # DurableReplayCache over a shared CAS directory) or a bool
        if isinstance(replay_cache, ReplayCache):
            self.use_replay_cache = True
            self._cache: Optional[ReplayCache] = replay_cache
        else:
            self.use_replay_cache = bool(replay_cache)
            self._cache = ReplayCache() if replay_cache else None
        #: durable evidence log; when set, every verdict is fsync'd
        #: into the hash chain *before* it is released
        self.store = store
        if executor == "auto":
            executor = "thread" if (os.cpu_count() or 1) <= 1 else "process"
        if executor not in ("thread", "process"):
            raise ValueError(f"unknown executor {executor!r}")
        self.executor = executor
        self.metrics = FleetMetrics(
            workers=self.workers,
            executor=executor if self.workers > 1 else "inline")
        self.verdicts: Dict[str, SessionVerdict] = {}
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._inflight = 0
        self._worker_hits = 0    # process-pool cache deltas (remote caches)
        self._worker_misses = 0
        self._pool: Optional[Executor] = None
        self._slots: Optional[threading.BoundedSemaphore] = None
        if self.workers > 1:
            if executor == "process":
                self._pool = ProcessPoolExecutor(max_workers=self.workers)
            else:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix="fleet-verify")
            self._slots = threading.BoundedSemaphore(
                max_pending or 4 * self.workers)
        self._started = time.perf_counter()

    # -- session lifecycle --------------------------------------------------

    def open_session(self, device_id: str, profile: DeviceProfile,
                     key: bytes, now: float = 0.0) -> Challenge:
        """Admit a device, issue its challenge (raises FleetOverloadError
        at the ``max_sessions`` admission limit).

        The session is pinned, for its whole lifetime, to the
        dictionary epoch the device last acknowledged (epoch 0 until a
        first ACK arrives): a push landing mid-session changes nothing
        until the device's next session.

        With a policy engine attached, QUARANTINED / HEALING / REVOKED
        devices are refused (:class:`PolicyDeniedError`) — the only
        session such a device may own is the one :meth:`begin_heal`
        opens for it.
        """
        with self._lock:
            if self.policy is not None and not self.policy.admits(device_id):
                self.metrics.sessions_denied += 1
                raise PolicyDeniedError(self.policy.deny_reason(device_id))
            epoch = self._acks.get((device_id, profile), 0)
            dict_epoch = self.registry.get(profile, epoch)
            try:
                session = self.manager.open(device_id, profile, key, now,
                                            dict_epoch=dict_epoch)
            except Exception:
                self.metrics.sessions_refused += 1
                raise
            self.metrics.sessions_opened += 1
            return session.challenge

    def submit(self, device_id: str, data: bytes, now: float = 0.0) -> None:
        """Ingest one wire-encoded report from a device.

        Cheap protocol checks happen inline; a report that completes
        its session's chain dispatches verification (possibly blocking
        on backpressure — see the module docstring).
        """
        with self._lock:
            if self.policy is not None and not self.policy.admits(device_id):
                # blocked devices land nothing — except into the healing
                # session the protocol itself opened for them
                session = self.manager.sessions.get(device_id)
                if session is None or not session.active:
                    self.metrics.reports_denied += 1
                    return
            self.metrics.reports_ingested += 1
            self.metrics.bytes_ingested += len(data)
            before_ignored = self.manager.reports_ignored
            before_dup = self.manager.duplicates_dropped
            session = self.manager.ingest(device_id, data, now)
            self.metrics.reports_ignored += (
                self.manager.reports_ignored - before_ignored)
            self.metrics.duplicates_dropped += (
                self.manager.duplicates_dropped - before_dup)
            if session is None:
                return
            if session.state == REJECTED and session.verdict is None:
                self._record_locked(session, SessionVerdict(
                    device_id=session.device_id, profile=session.profile,
                    accepted=False, reason=session.reject_reason,
                    reports=len(session.chunks)))
                return
            if session.state == QUEUED and self.bounds is not None:
                reason = self._screen_bounds_locked(session)
                if reason is not None:
                    self.metrics.sessions_bounds_rejected += 1
                    self._record_locked(session, SessionVerdict(
                        device_id=session.device_id,
                        profile=session.profile, accepted=False,
                        reason=reason, reports=len(session.chunks)))
                    return
        if session.state == QUEUED:
            self._dispatch(session)

    def tick(self, now: float) -> List[Tuple[str, Challenge]]:
        """Advance the logical clock: expire idle sessions, re-challenge
        stalled ones. Returns ``(device_id, fresh_challenge)`` pairs the
        transport should deliver to the stalled devices."""
        with self._lock:
            rechallenged, expired = self.manager.tick(now)
            self.metrics.sessions_retried += len(rechallenged)
            for session in expired:
                self._record_locked(session, SessionVerdict(
                    device_id=session.device_id, profile=session.profile,
                    accepted=False, reason=session.reject_reason,
                    reports=len(session.chunks)))
            return [(s.device_id, s.challenge) for s in rechallenged]

    # -- crash recovery -----------------------------------------------------

    def restore(self, records) -> int:
        """Rebuild released state from recovered evidence records.

        Each *session* record is one settled session: its verdict
        re-enters the verdict map (latest round wins) and the device's
        round counter advances, so device-scoped nonce derivation
        resumes exactly where the crashed process stopped — settled
        devices get fresh challenges, interrupted ones re-derive their
        pre-crash nonce. With a policy engine attached, the mixed
        (session + policy) stream then re-runs the policy fold — every
        device's lifecycle state comes back, and decisions a crash lost
        (derived but never appended) are re-appended byte-identically.
        Returns the number of verdicts restored. The replay cache is
        not rebuilt here: a :class:`DurableReplayCache` re-warms
        lazily from its own content-addressed files.
        """
        records = list(records)
        session_records = [r for r in records
                           if not getattr(r, "is_policy", False)]
        rounds: Dict[str, int] = {}
        with self._lock:
            for record in session_records:
                self.verdicts[record.device_id] = record.to_verdict()
                rounds[record.device_id] = rounds.get(
                    record.device_id, 0) + 1
            self.manager.restore_rounds(rounds)
            self.metrics.sessions_recovered += len(session_records)
        if self.policy is not None:
            replayed, repaired = self.policy.restore(records,
                                                     store=self.store)
            with self._lock:
                self.metrics.policy_decisions += replayed + repaired
                if self.store is not None:
                    self.metrics.evidence_records = (
                        self.store.records_appended)
                    self.metrics.evidence_bytes = self.store.bytes_appended
                    self.metrics.evidence_fsyncs = self.store.fsyncs
        return len(session_records)

    # -- adaptive speculation: mining taps + epoch handshake ----------------

    def traffic_samples(self) -> Dict[DeviceProfile, list]:
        """``profile -> weighted exemplar streams`` — the miner's input
        (empty when sampling is off)."""
        if self.sampler is None:
            return {}
        return {profile: self.sampler.sample(profile)
                for profile in self.sampler.profiles()}

    def publish_dictionary(self, profile: DeviceProfile,
                           dictionary) -> DictEpoch:
        """Version a mined dictionary under the next epoch number in
        the (possibly shard-shared) registry."""
        return self.registry.publish(profile, dictionary)

    def dictionary_pushes(
            self, profile: Optional[DeviceProfile] = None
    ) -> List[Tuple[str, bytes]]:
        """``(device_id, DICT frame)`` for every known device lagging
        the latest published epoch of its profile.

        "Known" means the device has opened a session with this Vrf at
        some point; the transport delivers the frames and feeds signed
        ``DACK`` replies back through :meth:`ingest_dack`. A device
        that never ACKs simply keeps receiving the offer — and keeps
        attesting under its pinned (possibly 0) epoch.
        """
        pushes: List[Tuple[str, bytes]] = []
        with self._lock:
            devices = [(d, s.profile)
                       for d, s in self.manager.sessions.items()]
        for device_id, dev_profile in sorted(devices):
            if profile is not None and dev_profile != profile:
                continue
            latest = self.registry.latest(dev_profile)
            if latest.is_empty:
                continue
            acked = self._acks.get((device_id, dev_profile), 0)
            if acked >= latest.epoch:
                continue
            frame = encode_dict_frame(
                dev_profile.workload, dev_profile.method,
                latest.epoch, latest.digest, latest.payload)
            pushes.append((device_id, frame))
        with self._lock:
            self.metrics.dict_pushes += len(pushes)
        return pushes

    def ingest_dack(self, device_id: str, data: bytes,
                    now: float = 0.0) -> bool:
        """Absorb one wire-encoded ``DACK`` frame from a device.

        The acknowledged epoch must name a published dictionary of the
        device's own profile and the MAC must verify under the device's
        attestation key; anything else is counted and dropped (a
        network adversary cannot re-pin a device). A valid ACK moves
        the device's pin — its *next* session opens under the new
        epoch; the current one stays on the epoch it was opened with.
        """
        with self._lock:
            try:
                acked_id, epoch, digest, mac = decode_dack_frame(data)
            except WireError:
                self.metrics.dict_acks_rejected += 1
                return False
            if acked_id != device_id:
                self.metrics.dict_acks_rejected += 1
                return False
            session = self.manager.sessions.get(device_id)
            if session is None:  # never opened a session: no key on file
                self.metrics.dict_acks_rejected += 1
                return False
            entry = verify_dack(self.registry, session.profile,
                                session.key, device_id, epoch, digest,
                                mac)
            if entry is None:
                self.metrics.dict_acks_rejected += 1
                return False
            pin = (device_id, session.profile)
            # monotone: a replayed older ACK can never roll a device back
            if entry.epoch <= self._acks.get(pin, 0):
                return True
            self._acks[pin] = entry.epoch
            self.metrics.dict_acks += 1
            return True

    def acked_epoch(self, device_id: str, profile: DeviceProfile) -> int:
        """The dictionary epoch this device last acknowledged."""
        with self._lock:
            return self._acks.get((device_id, profile), 0)

    # -- policy control plane: quarantine + guaranteed healing --------------

    def _count_decision_locked(self, decision) -> None:
        self.metrics.policy_decisions += 1
        counter = _DECISION_COUNTERS.get(decision.action)
        if counter is not None:
            setattr(self.metrics, counter,
                    getattr(self.metrics, counter) + 1)

    def _device_key_locked(self, device_id: str) -> Optional[bytes]:
        session = self.manager.sessions.get(device_id)
        if session is not None:
            return session.key
        if self._key_lookup is not None:
            return self._key_lookup(device_id)
        return None

    def begin_heal(self, device_id: str,
                   now: float = 0.0) -> Optional[Tuple[str, bytes]]:
        """Issue a heal order for one quarantined device.

        Persists + applies the QUARANTINED -> HEALING decision, opens
        the device's healing session (admission control does not apply:
        the protocol itself owns this session) and returns the
        ``(device_id, HEAL frame)`` the transport must deliver. The
        frame orders the device to re-provision the policy-pinned
        firmware and answer a fresh challenge; the session's evidence
        record carries the healing flag, so the fold judges the rejoin.
        ``None`` when the device is not eligible (not quarantined, out
        of attempts, or no attestation key on file).
        """
        if self.policy is None:
            return None
        with self._lock:
            key = self._device_key_locked(device_id)
            if key is None:
                return None
            decision = self.policy.begin_heal(device_id)
            if decision is None:
                return None
            if self.store is not None:
                self.store.append_decision(decision)
                self.metrics.evidence_records = self.store.records_appended
                self.metrics.evidence_bytes = self.store.bytes_appended
                self.metrics.evidence_fsyncs = self.store.fsyncs
            self.policy.apply(decision)
            self._count_decision_locked(decision)
            epoch = self._acks.get((device_id, decision.profile), 0)
            dict_epoch = self.registry.get(decision.profile, epoch)
            session = self.manager.open(device_id, decision.profile, key,
                                        now, dict_epoch=dict_epoch)
            session.healing = True
            self.metrics.sessions_opened += 1
            frame = build_heal_frame(
                key, device_id, decision.heal_attempt,
                decision.policy_epoch, decision.measurement,
                session.challenge.nonce)
        return (device_id, frame)

    def heal_pushes(self, now: float = 0.0) -> List[Tuple[str, bytes]]:
        """One healing round: a heal order for every quarantined device
        that still has attempts left (devices out of attempts stay
        quarantined until an operator intervenes or a failed healing
        session already revoked them)."""
        if self.policy is None:
            return []
        pushes: List[Tuple[str, bytes]] = []
        for device_id in self.policy.quarantined_devices():
            push = self.begin_heal(device_id, now)
            if push is not None:
                pushes.append(push)
        return pushes

    def resume_heal(self, device_id: str,
                    now: float = 0.0) -> Optional[Tuple[str, bytes]]:
        """Re-issue one standing heal order after a restart (idempotent).

        A device the evidence log shows as HEALING already burned its
        attempt; no new decision is minted. Its healing session is
        re-opened — device-scoped nonces make the re-derived challenge
        identical to the pre-crash one, so a device that already
        answered can simply retransmit — and the HEAL frame is rebuilt
        from the engine's standing order. A device whose healing
        session is still live is re-framed without reopening.
        """
        if self.policy is None:
            return None
        order = self.policy.heal_order(device_id)
        if order is None:
            return None
        attempt, policy_epoch, measurement, profile = order
        with self._lock:
            key = self._device_key_locked(device_id)
            if key is None:
                return None
            session = self.manager.sessions.get(device_id)
            if session is None or not session.active:
                epoch = self._acks.get((device_id, profile), 0)
                dict_epoch = self.registry.get(profile, epoch)
                session = self.manager.open(device_id, profile, key,
                                            now, dict_epoch=dict_epoch)
                session.healing = True
                self.metrics.sessions_opened += 1
            frame = build_heal_frame(
                key, device_id, attempt, policy_epoch, measurement,
                session.challenge.nonce)
        return (device_id, frame)

    def resume_heals(self, now: float = 0.0) -> List[Tuple[str, bytes]]:
        """:meth:`resume_heal` for every HEALING device."""
        if self.policy is None:
            return []
        frames = (self.resume_heal(device_id, now)
                  for device_id in self.policy.healing_devices())
        return [frame for frame in frames if frame is not None]

    def policy_notice_frame(self, device_id: str, state: int,
                            reason: str, epoch: int) -> Optional[bytes]:
        """Build one PLCY lifecycle notice (MAC'd under the device key
        so a device can reject forged quarantine notices); ``None``
        when no key is on file."""
        with self._lock:
            key = self._device_key_locked(device_id)
            if key is None:
                return None
            self.metrics.policy_notices += 1
            return build_policy_frame(key, device_id, state, reason, epoch)

    def policy_pushes(self) -> List[Tuple[str, bytes]]:
        """Drain pending lifecycle notices as ``(device_id, PLCY
        frame)`` pairs. Notices are idempotent: a crash between
        draining and delivery just re-sends after :meth:`restore`."""
        if self.policy is None:
            return []
        pushes: List[Tuple[str, bytes]] = []
        for device_id, state, reason, epoch in self.policy.take_notices():
            frame = self.policy_notice_frame(device_id, state, reason,
                                             epoch)
            if frame is not None:
                pushes.append((device_id, frame))
        return pushes

    def _sample_locked(self, session: Session,
                       verdict: SessionVerdict) -> None:
        """Feed one accepted session's expanded stream to the sampler."""
        records = []
        for report in session.reports:
            records.extend(report.cflog.records)
        if session.dictionary:
            try:
                records = expand(records, session.dictionary)
            except ValueError:  # unreachable: accepted implies expanded
                return
        digest = (bytes.fromhex(verdict.records_digest)
                  if verdict.records_digest else None)
        self.sampler.observe(session.profile, records, digest=digest)

    # -- admission pre-check: certified path bounds ------------------------

    def _screen_bounds_locked(self, session: Session) -> Optional[str]:
        """Screen a completed chain against its image's `BNDS1` bound.

        Purely a fast-path rejection: the certificate is pinned to one
        image digest, so the screen only applies when the chain claims
        exactly that measurement (a wrong measurement is replay's /
        the policy registry's business), and only ever *rejects* —
        passing the screen proves nothing, replay stays authoritative.
        """
        cert = self.bounds.get(session.profile.workload,
                               session.profile.method)
        if cert is None:
            return None
        if not session.reports \
                or session.reports[0].h_mem != cert.image_digest:
            return None
        records = session.admission_records()
        if records is None:
            return None
        return screen_records(cert, records)

    # -- verification fan-out -----------------------------------------------

    def _dispatch(self, session: Session) -> None:
        chunks = tuple(session.chunks)
        args = (session.device_id, session.profile, session.key,
                session.bound_challenge, chunks)
        reports = tuple(session.reports)
        dictionary = session.dictionary
        if self._pool is None:
            t0 = time.perf_counter()
            info: Dict[str, bool] = {}
            verdict = verify_session_chain(
                *args, cache=self._cache, reports=reports, info=info,
                dictionary=dictionary)
            self._record(session, verdict, time.perf_counter() - t0,
                         cache_hit=info.get("cache_hit", False))
            return
        self._slots.acquire()  # backpressure: block until a slot frees
        with self._lock:
            self._inflight += 1
            self.metrics.queue_depth += 1
            self.metrics.queue_depth_max = max(
                self.metrics.queue_depth_max, self.metrics.queue_depth)
        t0 = time.perf_counter()
        info = {}
        if self.executor == "process":
            # bytes cross the process boundary; the worker decodes
            future = self._pool.submit(
                pool_verify, *args, self.use_replay_cache, dictionary)
        else:
            future = self._pool.submit(
                local_verify, args, self._cache, reports, info,
                dictionary)
        future.add_done_callback(
            lambda fut: self._harvest(session, t0, info, fut))

    def _harvest(self, session: Session, t0: float, info: dict,
                 future: Future) -> None:
        self._slots.release()
        hits = misses = 0
        try:
            verdict, hits, misses = future.result()
        except Exception as exc:  # worker death / pickling failure
            verdict = SessionVerdict(
                device_id=session.device_id, profile=session.profile,
                accepted=False,
                reason=f"verifier worker failed: "
                       f"{type(exc).__name__}: {exc}")
        # process workers report the hit as a counter delta; thread
        # workers filled the shared info dict before the future resolved
        cache_hit = bool(info.get("cache_hit", False) or hits > 0)
        with self._lock:
            self.metrics.queue_depth -= 1
            self._inflight -= 1
            self._worker_hits += hits
            self._worker_misses += misses
            self.metrics.verify_latencies_s.append(
                time.perf_counter() - t0)
            self._record_locked(session, verdict, cache_hit=cache_hit)
            if self._inflight == 0:
                self._idle.notify_all()

    def _record(self, session: Session, verdict: SessionVerdict,
                latency_s: float, cache_hit: bool = False) -> None:
        with self._lock:
            self.metrics.verify_latencies_s.append(latency_s)
            self._record_locked(session, verdict, cache_hit=cache_hit)

    def _record_locked(self, session: Session, verdict: SessionVerdict,
                       cache_hit: bool = False) -> None:
        # durability first: the evidence record (cache hits included —
        # a replayed verdict is still a verdict) must be fsync'd into
        # the hash chain before anything observes the verdict. If the
        # append fails the verdict is withheld, never half-released.
        measurement = session.reports[0].h_mem if session.reports else b""
        record = None
        if self.store is not None:
            record = self.store.append(
                verdict,
                chain=chain_digest(session.chunks),
                challenge=session.challenge.nonce,
                cache_hit=cache_hit,
                expired=session.state == EXPIRED,
                epoch=session.epoch,
                measurement=measurement,
                healing=session.healing,
            )
            self.metrics.evidence_records = self.store.records_appended
            self.metrics.evidence_bytes = self.store.bytes_appended
            self.metrics.evidence_fsyncs = self.store.fsyncs
        if self.sampler is not None and verdict.accepted:
            self._sample_locked(session, verdict)
        if self.policy is not None:
            # the fold's input is the *persisted* record (live and
            # crash-recovery paths thus run the same code over the same
            # bytes); with no store attached, an equivalent observation
            if record is None:
                record = SimpleNamespace(
                    device_id=session.device_id, profile=session.profile,
                    accepted=verdict.accepted, reason=verdict.reason,
                    violations=tuple(verdict.violations),
                    measurement=measurement, healing=session.healing)
            decisions = self.policy.observe(record)
            for decision in decisions:
                if self.store is not None:
                    self.store.append_decision(decision)
                self._count_decision_locked(decision)
            if decisions and self.store is not None:
                self.metrics.evidence_records = self.store.records_appended
                self.metrics.evidence_bytes = self.store.bytes_appended
                self.metrics.evidence_fsyncs = self.store.fsyncs
        session.verdict = verdict
        if session.state == EXPIRED:
            self.metrics.sessions_expired += 1
        elif verdict.accepted:
            session.state = VERIFIED
            self.metrics.sessions_verified += 1
        else:
            session.state = REJECTED
            session.reject_reason = session.reject_reason or verdict.reason
            self.metrics.sessions_rejected += 1
        self.verdicts[session.device_id] = verdict
        # cache totals = the shared in-process cache plus worker deltas
        local_hits = self._cache.hits if self._cache else 0
        local_misses = self._cache.misses if self._cache else 0
        self.metrics.replay_cache_hits = self._worker_hits + local_hits
        self.metrics.replay_cache_misses = self._worker_misses + local_misses

    # -- draining / shutdown ------------------------------------------------

    def drain(self) -> FleetMetrics:
        """Wait for every in-flight verification; refresh wall metrics."""
        with self._idle:
            self._idle.wait_for(lambda: self._inflight == 0)
        self.metrics.wall_s = time.perf_counter() - self._started
        return self.metrics

    def close(self) -> FleetMetrics:
        metrics = self.drain()
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self.store is not None:
            self.store.close()
        return metrics

    def __enter__(self) -> "FleetService":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
