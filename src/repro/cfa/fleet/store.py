"""Durable, hash-chained evidence for every fleet verdict.

Two pieces of persistence live here, unifying the content-addressed
idiom of :mod:`repro.eval.cache` with the fleet tier:

* :class:`EvidenceStore` — an append-only log in which every settled
  session becomes one :class:`EvidenceRecord`. Records for a device
  form a hash chain: record *i* carries the digest of record *i-1*
  (32 zero bytes for the genesis record), a MAC under the Vrf's audit
  key, and commits to the verdict *and* to a digest of the exact wire
  bytes the device transmitted, so the full verdict history is
  externally auditable and any single-byte mutation of the persisted
  bytes is detectable. The record is flushed and ``fsync``'d before
  the verdict is released to anyone — a verdict that exists outside
  the service is, by construction, already on disk.

* :class:`DurableReplayCache` — the fleet replay cache backed by the
  same two-level content-addressed store the offline artifacts use
  (:class:`~repro.eval.cache.ArtifactCache`): replay summaries are
  pickled one-file-per-key with an atomic rename, so a restarted
  service re-warms from disk instead of re-replaying the fleet's
  firmware chains.

**Byte layout** (all little-endian; ``lp x`` = ``u32 len(x) || x``)::

    file    := b"EVD1" u8 version (frame)*
    frame   := u32 frame_len prev_digest[32] mac[32] body
    body    := u8 kind session | u8 kind policy          (version 3)
    session := lp device_id lp workload lp method lp challenge
               chain_digest[32] u32 epoch u8 flags lp reason
               u32 reports u32 records u32 path_len lp path_digest
               lp records_digest
               u16 n_violations (lp kind u32 address lp detail)*
               lp measurement u32 seq
    policy  := lp device_id lp workload lp method
               u8 from_state u8 to_state lp action lp reason
               u32 score u32 heal_attempt u32 policy_epoch
               lp measurement u32 seq

Three format versions coexist. Version 1 predates dictionary epochs
(no ``epoch``/``records_digest``) and version 2 predates the policy
control plane (no ``kind`` byte, no ``measurement``): both still load,
audit, and restore — the parser dispatches on the file's version byte,
and a store opened on a legacy file keeps appending session records in
that file's native version so its chains stay verifiable end to end.
Policy-decision records (``kind`` 1, the transitions of
:mod:`repro.cfa.policy.engine`) thread through the *same* per-device
hash chain as the device's session records — one chain per device
commits its verdicts and its lifecycle, interleaved in decision order.

``flags`` bits: 0 accepted, 1 authenticated, 2 lossless, 3 cache_hit,
4 expired, 5 healing (the session was opened by the healing
protocol). **Hash schedule**::

    mac_i    = HMAC-SHA256(K_audit, prev_digest_i || body_i)
    digest_i = SHA256(prev_digest_i || body_i || mac_i)

so the head digest of a device's chain commits every verdict, every
chain digest, and every MAC before it. Verification
(:func:`verify_evidence_trail`) is strict: torn or trailing bytes are
a failure. Recovery (:meth:`EvidenceStore` opening an existing file)
is crash-tolerant: a torn *tail* — the one partial frame an
interrupted write or fsync can leave — is truncated away; any damage
before the tail is tamper and raises :class:`EvidenceError`.
"""

from __future__ import annotations

import hashlib
import hmac
import os
import struct
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.cfa.fleet.verify import (
    DeviceProfile,
    ReplayCache,
    SessionVerdict,
    _ReplaySummary,
)
from repro.eval.cache import ArtifactCache

EVIDENCE_MAGIC = b"EVD1"
EVIDENCE_VERSION = 3
#: every version this parser can load (new files are always written
#: at EVIDENCE_VERSION; legacy files keep their own)
SUPPORTED_VERSIONS = (1, 2, 3)
#: genesis link: the "previous digest" of a device's first record
GENESIS = b"\x00" * 32
_HEADER_LEN = 5
_DIGEST_LEN = 32
#: a frame is at least prev_digest + mac + the fixed body fields
_MIN_FRAME = 2 * _DIGEST_LEN

#: record kinds (version >= 3; earlier versions are all-session)
KIND_SESSION = 0
KIND_POLICY = 1

_FLAG_ACCEPTED = 1 << 0
_FLAG_AUTHENTICATED = 1 << 1
_FLAG_LOSSLESS = 1 << 2
_FLAG_CACHE_HIT = 1 << 3
_FLAG_EXPIRED = 1 << 4
_FLAG_HEALING = 1 << 5


class EvidenceError(Exception):
    """The evidence trail failed verification (tamper or corruption)."""


def chain_digest(chunks: Sequence[bytes]) -> bytes:
    """Digest of a session's exact wire bytes, length-prefixed so
    report boundaries cannot be shifted without changing the digest."""
    h = hashlib.sha256()
    for chunk in chunks:
        h.update(struct.pack("<I", len(chunk)))
        h.update(chunk)
    return h.digest()


def _lp(data: bytes) -> bytes:
    return struct.pack("<I", len(data)) + data


class _Reader:
    """Bounded little-endian reader (the wire-codec idiom)."""

    def __init__(self, data: bytes):
        self.data = data
        self.pos = 0

    def take(self, count: int) -> bytes:
        if self.pos + count > len(self.data):
            raise EvidenceError("truncated evidence body")
        out = self.data[self.pos:self.pos + count]
        self.pos += count
        return out

    def u8(self) -> int:
        return self.take(1)[0]

    def u16(self) -> int:
        return struct.unpack("<H", self.take(2))[0]

    def u32(self) -> int:
        return struct.unpack("<I", self.take(4))[0]

    def lp_bytes(self) -> bytes:
        return self.take(self.u32())

    def lp_str(self) -> str:
        try:
            return self.lp_bytes().decode("utf-8")
        except UnicodeDecodeError as exc:
            raise EvidenceError(f"non-UTF-8 evidence field: {exc}") from None

    @property
    def exhausted(self) -> bool:
        return self.pos == len(self.data)


@dataclass(frozen=True)
class EvidenceRecord:
    """One settled session, as persisted in the evidence log."""

    device_id: str
    workload: str
    method: str
    challenge: bytes      # the nonce this session's chain answered
    chain_digest: bytes   # digest of the exact wire bytes received
    epoch: int            # dictionary epoch the session was pinned to
    accepted: bool
    authenticated: bool
    lossless: bool
    cache_hit: bool       # verdict's replay half came from the cache
    expired: bool
    reason: str
    reports: int
    records: int
    path_len: int
    path_digest: str
    records_digest: str
    violations: Tuple[Tuple[str, int, str], ...]
    seq: int              # per-device index in the chain, from 0
    prev_digest: bytes
    mac: bytes
    digest: bytes
    #: firmware measurement (``H_MEM``) the session attested, for the
    #: policy registry to judge (b"" on pre-v3 records and on sessions
    #: rejected before any report landed)
    measurement: bytes = b""
    #: the session was opened by the healing protocol
    healing: bool = False

    #: discriminator shared with :class:`PolicyRecord`
    is_policy = False

    @property
    def profile(self) -> DeviceProfile:
        return DeviceProfile(self.workload, self.method)

    def to_verdict(self) -> SessionVerdict:
        """Reconstruct the exact :class:`SessionVerdict` this record
        persisted (cache_hit/expired are evidence annotations, not
        verdict fields, so recovery is caching-agnostic)."""
        return SessionVerdict(
            device_id=self.device_id,
            profile=self.profile,
            accepted=self.accepted,
            authenticated=self.authenticated,
            lossless=self.lossless,
            violations=self.violations,
            reason=self.reason,
            reports=self.reports,
            records=self.records,
            path_len=self.path_len,
            path_digest=self.path_digest,
            records_digest=self.records_digest,
        )


@dataclass(frozen=True)
class PolicyRecord:
    """One policy-engine decision, as persisted in the evidence log.

    Field-for-field the
    :class:`~repro.cfa.policy.engine.PolicyDecision` that produced it,
    plus the chain bookkeeping every record carries. Policy records
    share their device's hash chain with its session records, so the
    chain head commits the device's lifecycle as well as its verdicts.
    """

    device_id: str
    workload: str
    method: str
    from_state: int
    to_state: int
    action: str
    reason: str
    score: int
    heal_attempt: int
    policy_epoch: int
    measurement: bytes
    seq: int
    prev_digest: bytes
    mac: bytes
    digest: bytes

    is_policy = True

    @property
    def profile(self) -> DeviceProfile:
        return DeviceProfile(self.workload, self.method)


def _encode_body(verdict: SessionVerdict, challenge: bytes,
                 chain: bytes, cache_hit: bool, expired: bool,
                 seq: int, epoch: int = 0,
                 version: int = EVIDENCE_VERSION,
                 measurement: bytes = b"",
                 healing: bool = False) -> bytes:
    flags = ((_FLAG_ACCEPTED if verdict.accepted else 0)
             | (_FLAG_AUTHENTICATED if verdict.authenticated else 0)
             | (_FLAG_LOSSLESS if verdict.lossless else 0)
             | (_FLAG_CACHE_HIT if cache_hit else 0)
             | (_FLAG_EXPIRED if expired else 0)
             | (_FLAG_HEALING if healing and version >= 3 else 0))
    if len(chain) != _DIGEST_LEN:
        raise ValueError("chain digest must be 32 bytes")
    if version == 1 and epoch:
        raise EvidenceError(
            "version-1 evidence logs cannot record dictionary epochs; "
            "migrate to a fresh store")
    parts = []
    if version >= 3:
        parts.append(struct.pack("<B", KIND_SESSION))
    parts += [
        _lp(verdict.device_id.encode()),
        _lp(verdict.profile.workload.encode()),
        _lp(verdict.profile.method.encode()),
        _lp(challenge),
        chain,
    ]
    if version >= 2:
        parts.append(struct.pack("<I", epoch))
    parts += [
        struct.pack("<B", flags),
        _lp(verdict.reason.encode()),
        struct.pack("<III", verdict.reports, verdict.records,
                    verdict.path_len),
        _lp(verdict.path_digest.encode()),
    ]
    if version >= 2:
        parts.append(_lp(verdict.records_digest.encode()))
    parts.append(struct.pack("<H", len(verdict.violations)))
    for kind, address, detail in verdict.violations:
        parts.append(_lp(kind.encode()))
        parts.append(struct.pack("<I", address & 0xFFFFFFFF))
        parts.append(_lp(detail.encode()))
    if version >= 3:
        parts.append(_lp(measurement))
    parts.append(struct.pack("<I", seq))
    return b"".join(parts)


def _encode_policy_body(decision, seq: int) -> bytes:
    """Serialize one policy decision (duck-typed: any object carrying
    the :class:`~repro.cfa.policy.engine.PolicyDecision` fields)."""
    return b"".join([
        struct.pack("<B", KIND_POLICY),
        _lp(decision.device_id.encode()),
        _lp(decision.workload.encode()),
        _lp(decision.method.encode()),
        struct.pack("<BB", decision.from_state, decision.to_state),
        _lp(decision.action.encode()),
        _lp(decision.reason.encode()),
        struct.pack("<III", decision.score, decision.heal_attempt,
                    decision.policy_epoch),
        _lp(decision.measurement),
        struct.pack("<I", seq),
    ])


def _decode_body(body: bytes, prev_digest: bytes, mac: bytes,
                 version: int = EVIDENCE_VERSION
                 ) -> Union[EvidenceRecord, "PolicyRecord"]:
    reader = _Reader(body)
    if version >= 3:
        kind = reader.u8()
        if kind == KIND_POLICY:
            return _decode_policy_body(reader, body, prev_digest, mac)
        if kind != KIND_SESSION:
            raise EvidenceError(f"unknown evidence record kind {kind}")
    device_id = reader.lp_str()
    workload = reader.lp_str()
    method = reader.lp_str()
    challenge = reader.lp_bytes()
    chain = reader.take(_DIGEST_LEN)
    epoch = reader.u32() if version >= 2 else 0
    flags = reader.u8()
    reason = reader.lp_str()
    reports, records, path_len = struct.unpack("<III", reader.take(12))
    path_digest = reader.lp_str()
    records_digest = reader.lp_str() if version >= 2 else ""
    n_violations = reader.u16()
    violations = []
    for _ in range(n_violations):
        kind = reader.lp_str()
        address = reader.u32()
        detail = reader.lp_str()
        violations.append((kind, address, detail))
    measurement = reader.lp_bytes() if version >= 3 else b""
    seq = reader.u32()
    if not reader.exhausted:
        raise EvidenceError("trailing bytes inside evidence body")
    return EvidenceRecord(
        device_id=device_id, workload=workload, method=method,
        challenge=challenge, chain_digest=chain, epoch=epoch,
        accepted=bool(flags & _FLAG_ACCEPTED),
        authenticated=bool(flags & _FLAG_AUTHENTICATED),
        lossless=bool(flags & _FLAG_LOSSLESS),
        cache_hit=bool(flags & _FLAG_CACHE_HIT),
        expired=bool(flags & _FLAG_EXPIRED),
        reason=reason, reports=reports, records=records,
        path_len=path_len, path_digest=path_digest,
        records_digest=records_digest,
        violations=tuple(violations), seq=seq,
        prev_digest=prev_digest, mac=mac,
        digest=hashlib.sha256(prev_digest + body + mac).digest(),
        measurement=measurement,
        healing=bool(flags & _FLAG_HEALING),
    )


def _decode_policy_body(reader: _Reader, body: bytes,
                        prev_digest: bytes, mac: bytes) -> PolicyRecord:
    device_id = reader.lp_str()
    workload = reader.lp_str()
    method = reader.lp_str()
    from_state, to_state = struct.unpack("<BB", reader.take(2))
    action = reader.lp_str()
    reason = reader.lp_str()
    score, heal_attempt, policy_epoch = struct.unpack(
        "<III", reader.take(12))
    measurement = reader.lp_bytes()
    seq = reader.u32()
    if not reader.exhausted:
        raise EvidenceError("trailing bytes inside policy record body")
    return PolicyRecord(
        device_id=device_id, workload=workload, method=method,
        from_state=from_state, to_state=to_state, action=action,
        reason=reason, score=score, heal_attempt=heal_attempt,
        policy_epoch=policy_epoch, measurement=measurement, seq=seq,
        prev_digest=prev_digest, mac=mac,
        digest=hashlib.sha256(prev_digest + body + mac).digest(),
    )


def _record_mac(key: bytes, prev_digest: bytes, body: bytes) -> bytes:
    return hmac.new(key, prev_digest + body, hashlib.sha256).digest()


def _parse(data: bytes, key: bytes
           ) -> Tuple[List[Union[EvidenceRecord, PolicyRecord]], int,
                      Optional[str]]:
    """Parse and verify an evidence file image.

    Returns ``(records, valid_length, torn_reason)``: every verified
    record, the byte offset up to which the file is intact, and — when
    the file ends in one incomplete frame — why the tail is torn
    (``None`` for a clean end). Anything *other* than a torn tail
    (bad header, MAC mismatch, chain break, oversized frame) raises
    :class:`EvidenceError`: crash damage is confined to the tail, so
    damage anywhere else is tamper.
    """
    if len(data) < _HEADER_LEN:
        if not data:
            return [], 0, None
        return [], 0, "torn file header"
    if data[:4] != EVIDENCE_MAGIC:
        raise EvidenceError("bad evidence magic")
    version = data[4]
    if version not in SUPPORTED_VERSIONS:
        raise EvidenceError(f"unsupported evidence version {version}")
    pos = _HEADER_LEN
    heads: Dict[str, Tuple[int, bytes]] = {}
    records: List[EvidenceRecord] = []
    while pos < len(data):
        if pos + 4 > len(data):
            return records, pos, "torn frame length"
        (frame_len,) = struct.unpack("<I", data[pos:pos + 4])
        if frame_len < _MIN_FRAME:
            raise EvidenceError(f"frame at {pos} too short ({frame_len} B)")
        if pos + 4 + frame_len > len(data):
            return records, pos, (
                f"torn frame at {pos} ({len(data) - pos - 4}/"
                f"{frame_len} B present)")
        frame = data[pos + 4:pos + 4 + frame_len]
        prev_digest = frame[:_DIGEST_LEN]
        mac = frame[_DIGEST_LEN:2 * _DIGEST_LEN]
        body = frame[2 * _DIGEST_LEN:]
        if not hmac.compare_digest(mac, _record_mac(key, prev_digest, body)):
            raise EvidenceError(f"MAC mismatch on frame at {pos}")
        record = _decode_body(body, prev_digest, mac, version)
        seq, expected_prev = heads.get(record.device_id, (0, GENESIS))
        if record.seq != seq:
            raise EvidenceError(
                f"device {record.device_id!r}: evidence seq {record.seq}, "
                f"expected {seq}")
        if record.prev_digest != expected_prev:
            raise EvidenceError(
                f"device {record.device_id!r}: chain break at record "
                f"#{record.seq}")
        heads[record.device_id] = (seq + 1, record.digest)
        records.append(record)
        pos += 4 + frame_len
    return records, pos, None


def verify_evidence_trail(path: Union[str, os.PathLike],
                          key: bytes
                          ) -> List[Union[EvidenceRecord, PolicyRecord]]:
    """Strictly verify an evidence log from disk.

    Every frame must parse, MAC under ``key``, and extend its device's
    hash chain in order; any torn or trailing byte is a failure. This
    is the external-auditor entry point: it shares no state with the
    store that wrote the file.
    """
    data = Path(path).read_bytes()
    records, consumed, torn = _parse(data, key)
    if torn is not None:
        raise EvidenceError(torn)
    if consumed != len(data):
        raise EvidenceError("trailing bytes after last frame")
    return records


class EvidenceStore:
    """Append-only, fsync-before-release evidence log (one file).

    Opening an existing file *recovers* it: all intact records are
    verified and loaded (exposed as :attr:`recovered`), a torn tail is
    truncated away, and per-device chain heads resume exactly where
    the previous process stopped — so chains continue across restarts
    with no seam. ``fsync_fn`` is injectable for fault testing.
    """

    def __init__(self, path: Union[str, os.PathLike], key: bytes,
                 fsync: bool = True, fsync_fn=None):
        self.path = Path(path)
        self.key = key
        self.fsync_enabled = fsync
        self._fsync = fsync_fn or os.fsync
        self.records_appended = 0
        self.bytes_appended = 0
        self.fsyncs = 0
        self.truncated_tail = ""  # recovery note: torn bytes dropped
        self._heads: Dict[str, Tuple[int, bytes]] = {}
        self.recovered: List[Union[EvidenceRecord, PolicyRecord]] = []
        #: the format this file is written in — a reopened legacy log
        #: keeps its native version so its chains stay verifiable
        self.version = EVIDENCE_VERSION
        self.path.parent.mkdir(parents=True, exist_ok=True)
        existing = self.path.read_bytes() if self.path.exists() else b""
        if existing:
            self.recovered, good, torn = _parse(existing, key)
            if len(existing) >= _HEADER_LEN:
                self.version = existing[4]
            for record in self.recovered:
                self._heads[record.device_id] = (
                    record.seq + 1, record.digest)
            if torn is not None:
                self.truncated_tail = torn
                with open(self.path, "r+b") as fh:
                    fh.truncate(good)
        self._fh = open(self.path, "ab")
        if self._fh.tell() == 0:
            self._fh.write(
                EVIDENCE_MAGIC + struct.pack("<B", self.version))
            self._fh.flush()
            if self.fsync_enabled:
                self._fsync(self._fh.fileno())
        self._good_offset = self._fh.tell()

    # -- writing ------------------------------------------------------------

    def append(self, verdict: SessionVerdict, chain: bytes,
               challenge: bytes = b"", cache_hit: bool = False,
               expired: bool = False, epoch: int = 0,
               measurement: bytes = b"",
               healing: bool = False) -> EvidenceRecord:
        """Persist one verdict; durable before this method returns.

        The in-memory chain head only advances after the bytes are on
        disk, so a failed append leaves the store consistent with the
        file (modulo a torn tail, which the next open truncates — the
        same discipline a crash relies on). Callers must not release
        the verdict if this raises.
        """
        device_id = verdict.device_id
        seq, prev_digest = self._heads.get(device_id, (0, GENESIS))
        body = _encode_body(verdict, challenge, chain, cache_hit,
                            expired, seq, epoch=epoch,
                            version=self.version,
                            measurement=measurement, healing=healing)
        self._append_frame(device_id, seq, prev_digest, body)
        mac = _record_mac(self.key, prev_digest, body)
        return _decode_body(body, prev_digest, mac, self.version)

    def append_decision(self, decision) -> PolicyRecord:
        """Persist one policy decision into its device's hash chain.

        ``decision`` carries the
        :class:`~repro.cfa.policy.engine.PolicyDecision` fields. Same
        durability contract as :meth:`append`: the caller must not act
        on the transition (admission, healing, notices) if this raises.
        Policy records require the current format; appending one to a
        legacy (v1/v2) log is refused rather than silently corrupting
        old auditors.
        """
        if self.version < 3:
            raise EvidenceError(
                f"evidence log {self.path} is format version "
                f"{self.version}; policy records need version 3 "
                f"(use a fresh store for the policy control plane)")
        device_id = decision.device_id
        seq, prev_digest = self._heads.get(device_id, (0, GENESIS))
        body = _encode_policy_body(decision, seq)
        self._append_frame(device_id, seq, prev_digest, body)
        mac = _record_mac(self.key, prev_digest, body)
        record = _decode_body(body, prev_digest, mac, self.version)
        assert isinstance(record, PolicyRecord)
        return record

    def _append_frame(self, device_id: str, seq: int,
                      prev_digest: bytes, body: bytes) -> None:
        mac = _record_mac(self.key, prev_digest, body)
        frame = prev_digest + mac + body
        try:
            self._fh.write(struct.pack("<I", len(frame)) + frame)
            self._fh.flush()
            if self.fsync_enabled:
                self._fsync(self._fh.fileno())
                self.fsyncs += 1
        except BaseException:
            # best-effort rewind so a *surviving* process can continue;
            # a dead one leaves the torn tail for recovery to truncate
            try:
                self._fh.truncate(self._good_offset)
                self._fh.seek(self._good_offset)
            except OSError:
                pass
            raise
        self._good_offset = self._fh.tell()
        digest = hashlib.sha256(prev_digest + body + mac).digest()
        self._heads[device_id] = (seq + 1, digest)
        self.records_appended += 1
        self.bytes_appended += 4 + len(frame)

    # -- reading ------------------------------------------------------------

    def head(self, device_id: str) -> Optional[bytes]:
        """Current chain-head digest for a device (None if no records)."""
        entry = self._heads.get(device_id)
        return entry[1] if entry else None

    def heads(self) -> Dict[str, bytes]:
        """device id -> chain-head digest, for every recorded device."""
        return {device: digest for device, (_, digest)
                in self._heads.items()}

    @property
    def device_count(self) -> int:
        return len(self._heads)

    def records(self) -> Iterator[EvidenceRecord]:
        """Re-read and strictly verify every record from disk."""
        self._fh.flush()
        return iter(verify_evidence_trail(self.path, self.key))

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.flush()
            if self.fsync_enabled:
                self._fsync(self._fh.fileno())
            self._fh.close()

    def __enter__(self) -> "EvidenceStore":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


class DurableReplayCache(ReplayCache):
    """The fleet replay cache, persisted content-addressed on disk.

    Entries live in an :class:`~repro.eval.cache.ArtifactCache`
    (memory + one pickle file per key, atomic rename), keyed by a
    digest of ``(profile, record-stream digest)`` — the same CAS
    discipline the offline-artifact cache uses, so concurrent shards
    can share one directory and a restarted service re-warms from
    disk. A corrupt or unreadable entry is a miss and gets rebuilt,
    exactly like an offline artifact; and as with the in-memory cache,
    only the pure replay half of a verdict is ever stored, so the
    disk image cannot launder authentication.
    """

    def __init__(self, root: Optional[Union[str, os.PathLike]] = None):
        super().__init__()
        self._cas = ArtifactCache(root)
        self.disk_hits = 0

    @staticmethod
    def cas_key(profile: DeviceProfile, key: bytes) -> str:
        payload = b"|".join([
            b"fleet-replay-v1",
            profile.workload.encode(),
            profile.method.encode(),
            key,
        ])
        return hashlib.sha256(payload).hexdigest()

    def lookup(self, profile: DeviceProfile,
               key: bytes) -> Optional[_ReplaySummary]:
        with self._lock:
            entry = self._entries.get((profile, key))
            if entry is None:
                entry = self._cas.get(self.cas_key(profile, key))
                if entry is not None:
                    self._entries[(profile, key)] = entry
                    self.disk_hits += 1
            if entry is None:
                self.misses += 1
            else:
                self.hits += 1
            return entry

    def store(self, profile: DeviceProfile, key: bytes,
              entry: _ReplaySummary) -> None:
        with self._lock:
            self._entries[(profile, key)] = entry
            self._cas.put(self.cas_key(profile, key), entry)
