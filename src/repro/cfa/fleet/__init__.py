"""Fleet attestation: one Vrf serving many concurrent device sessions.

The package splits along the cost structure of fleet CFA:

* :mod:`~repro.cfa.fleet.session` — cheap per-report protocol state
  (challenges, replay protection, sequencing, expiry/retry);
* :mod:`~repro.cfa.fleet.verify` — the expensive chain-verification
  primitive shared verbatim by the serial and pooled paths;
* :mod:`~repro.cfa.fleet.service` — the multiplexing front end with a
  worker-pool fan-out, bounded-queue backpressure, and metrics;
* :mod:`~repro.cfa.fleet.simulator` — the load generator / adversary
  model used by the tests, the ``fleet`` CLI, and the benchmarks.
"""

from repro.cfa.fleet.metrics import FleetMetrics
from repro.cfa.fleet.service import FleetService
from repro.cfa.fleet.session import FleetOverloadError, Session, SessionManager
from repro.cfa.fleet.simulator import (
    BEHAVIORS,
    ChainFactory,
    DeviceSpec,
    FleetSimulator,
    HONEST_BEHAVIORS,
    HOSTILE_BEHAVIORS,
    SimulationReport,
    build_fleet_specs,
    device_key,
)
from repro.cfa.fleet.verify import (
    DeviceProfile,
    SessionVerdict,
    verify_session_chain,
)

__all__ = [
    "BEHAVIORS",
    "ChainFactory",
    "DeviceProfile",
    "DeviceSpec",
    "FleetMetrics",
    "FleetOverloadError",
    "FleetService",
    "FleetSimulator",
    "HONEST_BEHAVIORS",
    "HOSTILE_BEHAVIORS",
    "Session",
    "SessionManager",
    "SessionVerdict",
    "SimulationReport",
    "build_fleet_specs",
    "device_key",
    "verify_session_chain",
]
