"""Fleet attestation: one Vrf serving many concurrent device sessions.

The package splits along the cost structure of fleet CFA:

* :mod:`~repro.cfa.fleet.session` — cheap per-report protocol state
  (challenges, replay protection, sequencing, expiry/retry);
* :mod:`~repro.cfa.fleet.verify` — the expensive chain-verification
  primitive shared verbatim by the serial and pooled paths;
* :mod:`~repro.cfa.fleet.service` — the multiplexing front end with a
  worker-pool fan-out, bounded-queue backpressure, and metrics;
* :mod:`~repro.cfa.fleet.simulator` — the load generator / adversary
  model used by the tests, the ``fleet`` CLI, and the benchmarks;
* :mod:`~repro.cfa.fleet.store` — the durable hash-chained evidence
  log (fsync-before-release) and the content-addressed persistent
  replay cache;
* :mod:`~repro.cfa.fleet.shard` — the consistent-hash router that
  partitions the fleet across per-shard services, with crash-restart
  recovery from the evidence logs;
* :mod:`~repro.cfa.fleet.dictver` — versioned speculation
  dictionaries and the cryptographic epoch handshake (DICT/DACK);
* :mod:`~repro.cfa.fleet.mining` — the live-traffic sampler and the
  profit-scored sub-path miner behind the adaptive speculation loop.

The policy control plane — firmware registry, quarantine engine, and
guaranteed healing — lives in :mod:`repro.cfa.policy` and plugs into
the services here via the ``policy=`` constructor hooks.
"""

from repro.cfa.fleet.dictver import (
    DictEpoch,
    DictionaryRegistry,
    dack_mac,
    spec_challenge,
    verify_dack,
)
from repro.cfa.fleet.metrics import FleetMetrics, aggregate_metrics
from repro.cfa.fleet.mining import (
    TrafficSampler,
    learn_dictionaries,
    mine_fleet_dictionary,
    mining_gain,
)
from repro.cfa.fleet.service import FleetService
from repro.cfa.fleet.session import FleetOverloadError, Session, SessionManager
from repro.cfa.fleet.shard import HashRing, ShardedFleetService, audit_key
from repro.cfa.fleet.store import (
    DurableReplayCache,
    EvidenceError,
    EvidenceRecord,
    EvidenceStore,
    PolicyRecord,
    chain_digest,
    verify_evidence_trail,
)
from repro.cfa.fleet.simulator import (
    BEHAVIORS,
    CampaignReport,
    CampaignSimulator,
    ChainFactory,
    DeviceSpec,
    FleetSimulator,
    HONEST_BEHAVIORS,
    HOSTILE_BEHAVIORS,
    SimulationReport,
    build_campaign_specs,
    build_fleet_specs,
    device_key,
)
from repro.cfa.fleet.verify import (
    DeviceProfile,
    ReplayCache,
    SessionVerdict,
    verify_session_chain,
)

__all__ = [
    "BEHAVIORS",
    "CampaignReport",
    "CampaignSimulator",
    "ChainFactory",
    "DeviceProfile",
    "DeviceSpec",
    "DictEpoch",
    "DictionaryRegistry",
    "DurableReplayCache",
    "EvidenceError",
    "EvidenceRecord",
    "EvidenceStore",
    "FleetMetrics",
    "FleetOverloadError",
    "FleetService",
    "FleetSimulator",
    "HONEST_BEHAVIORS",
    "HOSTILE_BEHAVIORS",
    "HashRing",
    "PolicyRecord",
    "ReplayCache",
    "Session",
    "SessionManager",
    "SessionVerdict",
    "ShardedFleetService",
    "SimulationReport",
    "TrafficSampler",
    "aggregate_metrics",
    "audit_key",
    "build_campaign_specs",
    "build_fleet_specs",
    "chain_digest",
    "dack_mac",
    "device_key",
    "learn_dictionaries",
    "mine_fleet_dictionary",
    "mining_gain",
    "spec_challenge",
    "verify_dack",
    "verify_evidence_trail",
    "verify_session_chain",
]
