"""Drive N simulated devices through the fleet wire protocol.

The simulator is the load generator *and* the adversary model for the
fleet service: each :class:`DeviceSpec` names a device profile (which
workload/method it attests) and a delivery *behavior* — honest, or one
of the hostile/faulty transports the service must survive:

========== ==============================================================
behavior    delivery
========== ==============================================================
honest      the chain, in order
duplicate   one report delivered twice (byte-identical)
reorder     two adjacent reports swapped (inside the reorder window)
stall       final report withheld; answers the retry challenge in full
tamper      one byte flipped inside a report (MAC or framing breaks)
truncate    one report cut short (structural wire damage)
attack      a genuine ROP execution on the ``vulnerable`` firmware
equivocate  two *conflicting* copies of one report (same seq, different
            bytes — only a compromised or cloned device can emit both)
========== ==============================================================

:class:`CampaignSimulator` layers the policy control plane's adversary
model on top: a fleet where a fraction of devices start compromised,
get quarantined by the :class:`~repro.cfa.policy.engine.PolicyEngine`,
are re-provisioned through the HEAL protocol, and re-attest clean —
with SLA accounting (time-to-quarantine, healing success, wrongful
quarantines) the ``repro policy`` CLI and the CI smoke gate report.

Device executions are deterministic, so the simulator attests each
distinct ``(profile, attacked)`` template **once** and then re-signs
the template's report chain per session — same CFLog and ``H_MEM``,
that session's challenge/device id, that device's key — which is
byte-for-byte what a real deterministic Prv would transmit, and makes
thousand-session fleets cheap to generate.
"""

from __future__ import annotations

import hashlib
import random
import zlib
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.baselines.naive_mtb import NaiveMtbEngine
from repro.baselines.traces import TracesEngine
from repro.cfa.cflog import CFLog
from repro.cfa.engine import EngineConfig, RapTrackEngine
from repro.cfa.fleet.dictver import DictEpoch, dack_mac, spec_challenge
from repro.cfa.fleet.service import FleetService
from repro.cfa.fleet.verify import DeviceProfile, SessionVerdict
from repro.cfa.policy.engine import PolicyDeniedError
from repro.cfa.policy.heal import verify_heal_frame, verify_policy_frame
from repro.cfa.report import Report
from repro.cfa.speccfa import compress
from repro.cfa.wire import decode_dict_frame, encode_dack_frame, encode_report
from repro.eval.runner import prepare
from repro.tz.keystore import KeyStore
from repro.workloads import load_workload
from repro.workloads import vulnerable
from repro.workloads.base import make_mcu

#: behaviors whose sessions a correct service must end up accepting
HONEST_BEHAVIORS = frozenset({"honest", "duplicate", "reorder", "stall"})
#: behaviors whose sessions a correct service must end up rejecting
HOSTILE_BEHAVIORS = frozenset({"tamper", "truncate", "attack", "equivocate"})
BEHAVIORS = tuple(sorted(HONEST_BEHAVIORS | HOSTILE_BEHAVIORS))

#: fleet-wide provisioning secret (device key = KDF(device id, secret))
FLEET_SECRET = b"fleet-factory-secret"


def device_key(device_id: str) -> bytes:
    """The symmetric attestation key provisioned for one device."""
    return KeyStore(device_id.encode(), FLEET_SECRET).attestation_key


@dataclass(frozen=True)
class DeviceSpec:
    """One simulated device: identity, firmware profile, behavior."""

    device_id: str
    profile: DeviceProfile
    behavior: str = "honest"
    #: whether this device acknowledges dictionary pushes; a
    #: non-ACKing device keeps attesting under its last pinned epoch
    #: (epoch 0 forever if it never ACKed anything)
    acks: bool = True

    @property
    def expected_accepted(self) -> bool:
        """Whether a correct Vrf accepts this device's session (stalled
        devices assume the service re-challenges at least once)."""
        return self.behavior in HONEST_BEHAVIORS


@dataclass
class _Template:
    """One attested execution, ready to re-sign per session."""

    method: str
    h_mem: bytes
    cflogs: List[CFLog]  # one per (partial) report, in order


class ChainFactory:
    """Attest once per (profile, attacked) pair; re-sign per session."""

    def __init__(self, watermark: Optional[int] = 1024, cache=None):
        self.engine_config = EngineConfig(watermark=watermark)
        self.cache = cache
        self._templates: Dict[Tuple[DeviceProfile, bool], _Template] = {}
        #: (profile, attacked, dict digest) -> compressed per-report logs
        self._compressed: Dict[Tuple[DeviceProfile, bool, bytes],
                               List[CFLog]] = {}

    def _attest_template(self, profile: DeviceProfile,
                         attacked: bool) -> _Template:
        workload = load_workload(profile.workload)
        image, bound = prepare(workload, profile.method, cache=self.cache)
        mcu = make_mcu(image, workload)
        if attacked:
            # the ROP payload rides the vulnerable firmware's UART feed
            mcu.mmio.device("uart").set_feed(vulnerable.attack_feed(image))
        keystore = KeyStore.provision("template")
        if profile.method == "rap-track":
            engine = RapTrackEngine(mcu, keystore, bound, self.engine_config)
        elif profile.method == "traces":
            engine = TracesEngine(mcu, keystore, bound, self.engine_config)
        elif profile.method == "naive-mtb":
            engine = NaiveMtbEngine(mcu, keystore, self.engine_config)
        else:
            raise ValueError(f"unknown method {profile.method!r}")
        result = engine.attest(b"fleet-template")
        return _Template(
            method=engine.method,
            h_mem=result.reports[0].h_mem,
            cflogs=[r.cflog for r in result.reports],
        )

    def chain(self, spec: DeviceSpec, nonce: bytes,
              dict_epoch: Optional[DictEpoch] = None) -> List[bytes]:
        """The wire-encoded report chain ``spec`` sends for ``nonce``.

        With ``dict_epoch`` set (the device's last acknowledged
        dictionary version), each report's CFLog is compressed under
        that dictionary and the chain answers the epoch-bound
        challenge — exactly what a speculation-enabled Prv transmits.
        Compressed logs are cached per (profile, attacked, digest), so
        a fleet on one epoch compresses each template once.
        """
        key = (spec.profile, spec.behavior == "attack")
        template = self._templates.get(key)
        if template is None:
            template = self._attest_template(*key)
            self._templates[key] = template
        cflogs = template.cflogs
        challenge = nonce
        if dict_epoch is not None and not dict_epoch.is_empty:
            challenge = spec_challenge(
                nonce, dict_epoch.epoch, dict_epoch.digest)
            ckey = key + (dict_epoch.digest,)
            cflogs = self._compressed.get(ckey)
            if cflogs is None:
                dictionary = dict_epoch.dictionary
                cflogs = []
                for cflog in template.cflogs:
                    log = CFLog()
                    log.extend(compress(list(cflog.records), dictionary))
                    cflogs.append(log)
                self._compressed[ckey] = cflogs
        last = len(cflogs) - 1
        signing_key = device_key(spec.device_id)
        return [
            encode_report(Report(
                device_id=spec.device_id.encode(),
                method=template.method,
                challenge=challenge,
                h_mem=template.h_mem,
                seq=seq,
                final=seq == last,
                cflog=cflog,
            ).sign(signing_key))
            for seq, cflog in enumerate(cflogs)
        ]


def apply_behavior(behavior: str, chunks: Sequence[bytes],
                   rng: random.Random) -> List[bytes]:
    """Apply one transport behavior to an honest report chain."""
    chunks = list(chunks)
    if behavior in ("honest", "attack"):
        return chunks
    if behavior == "duplicate":
        index = rng.randrange(len(chunks))
        chunks.insert(index + 1, chunks[index])
        return chunks
    if behavior == "reorder":
        if len(chunks) >= 2:
            index = rng.randrange(len(chunks) - 1)
            chunks[index], chunks[index + 1] = (
                chunks[index + 1], chunks[index])
        return chunks
    if behavior == "stall":
        return chunks[:-1]  # withhold the final report
    if behavior == "tamper":
        index = rng.randrange(len(chunks))
        body = bytearray(chunks[index])
        # flip one bit past the magic/version header
        offset = rng.randrange(9, len(body))
        body[offset] ^= 1 << rng.randrange(8)
        chunks[index] = bytes(body)
        return chunks
    if behavior == "truncate":
        index = rng.randrange(len(chunks))
        cut = rng.randrange(1, 9)
        chunks[index] = chunks[index][:-cut]
        return chunks
    if behavior == "equivocate":
        # a second copy of one report with its trailing (MAC) byte
        # flipped: still well-formed wire, same seq, different bytes —
        # the signature of a cloned or compromised signer. The conflict
        # must land before the chain completes, so pick a non-final
        # report when there is one.
        index = rng.randrange(max(1, len(chunks) - 1))
        twin = bytearray(chunks[index])
        twin[-1] ^= 0x01
        chunks.insert(index + 1, bytes(twin))
        return chunks
    raise ValueError(f"unknown behavior {behavior!r}")


@dataclass
class SimulationReport:
    """What one simulated fleet run produced."""

    verdicts: Dict[str, SessionVerdict] = field(default_factory=dict)
    mismatches: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches


class FleetSimulator:
    """Interleave N device sessions against one fleet service."""

    def __init__(self, specs: Sequence[DeviceSpec], seed: int = 0,
                 watermark: Optional[int] = 1024, cache=None,
                 factory: Optional[ChainFactory] = None):
        self.specs = list(specs)
        self.rng = random.Random(seed)
        # a caller-supplied factory shares its attested templates
        # across simulators (e.g. the halves of a crash-restart run)
        self.factory = factory or ChainFactory(
            watermark=watermark, cache=cache)
        #: device-side dictionary state: the epoch each device has
        #: acknowledged and will compress its next session under
        self.device_epochs: Dict[str, DictEpoch] = {}

    # -- the dictionary push/ACK leg (device side) --------------------------

    def deliver_pushes(
            self, pushes: Sequence[Tuple[str, bytes]]
    ) -> List[Tuple[str, bytes]]:
        """Deliver ``DICT`` frames to their devices; collect signed DACKs.

        Each device validates the offer exactly as firmware would —
        profile match, content digest over the payload — adopts the
        dictionary for its *next* session, and answers with a ``DACK``
        MAC'd under its attestation key. Devices with ``acks=False``
        drop the offer silently (and so stay on their pinned epoch).
        """
        by_id = {spec.device_id: spec for spec in self.specs}
        acks: List[Tuple[str, bytes]] = []
        for device_id, frame in pushes:
            spec = by_id.get(device_id)
            if spec is None or not spec.acks:
                continue
            workload, method, epoch, digest, payload = \
                decode_dict_frame(frame)
            if DeviceProfile(workload, method) != spec.profile:
                continue  # not our firmware: refuse to adopt
            if hashlib.sha256(payload).digest() != digest:
                continue  # damaged in transit: refuse to adopt
            entry = DictEpoch(profile=spec.profile, epoch=epoch,
                              digest=digest, payload=payload)
            entry.dictionary  # strict parse before adopting
            self.device_epochs[device_id] = entry
            acks.append((device_id, encode_dack_frame(
                device_id, epoch, digest,
                dack_mac(device_key(device_id), device_id, epoch,
                         digest))))
        return acks

    def handshake(self, service) -> int:
        """One full push/ACK round trip; returns ACKs accepted."""
        accepted = 0
        for device_id, dack in self.deliver_pushes(
                service.dictionary_pushes()):
            if service.ingest_dack(device_id, dack):
                accepted += 1
        return accepted

    # -- adversarial deliveries --------------------------------------------

    def _deliveries(self, spec: DeviceSpec,
                    chunks: List[bytes]) -> List[bytes]:
        return apply_behavior(spec.behavior, chunks, self.rng)

    # -- the run ------------------------------------------------------------

    def run(self, service: FleetService,
            step_s: float = 0.001) -> SimulationReport:
        """Open every session, interleave all deliveries, settle retries.

        The logical clock advances ``step_s`` per delivered report;
        after the interleaved stream drains, it jumps past the idle
        timeout so stalled sessions are re-challenged (answered in
        full) and then expired if the service is out of retries.
        """
        now = 0.0
        queues: Dict[str, List[bytes]] = {}
        by_id = {spec.device_id: spec for spec in self.specs}
        for spec in self.specs:
            challenge = service.open_session(
                spec.device_id, spec.profile,
                device_key(spec.device_id), now)
            honest = self.factory.chain(
                spec, challenge.nonce,
                self.device_epochs.get(spec.device_id))
            queues[spec.device_id] = self._deliveries(spec, honest)
        # interleave: randomly pick among devices that still have traffic
        live = [d for d, q in queues.items() if q]
        while live:
            device_id = live[self.rng.randrange(len(live))]
            service.submit(device_id, queues[device_id].pop(0), now)
            now += step_s
            if not queues[device_id]:
                live.remove(device_id)
        # settle stalled chains: retry rounds, then expiry. A stalled
        # device answers its retry in full (a transient outage); a
        # hostile device keeps its behavior, so a tamper that merely
        # stalled the chain (e.g. a flipped seq byte) cannot launder
        # itself into acceptance through the retry path.
        for _ in range(service.manager.max_attempts):
            now += service.manager.idle_timeout + 1.0
            rechallenges = service.tick(now)
            for device_id, challenge in rechallenges:
                spec = by_id[device_id]
                chunks = self.factory.chain(
                    spec, challenge.nonce, self.device_epochs.get(device_id))
                if spec.behavior != "stall":
                    chunks = self._deliveries(spec, chunks)
                for chunk in chunks:
                    service.submit(device_id, chunk, now)
                    now += step_s
        service.drain()
        report = SimulationReport(verdicts=dict(service.verdicts))
        for spec in self.specs:
            verdict = report.verdicts.get(spec.device_id)
            if verdict is None:
                report.mismatches.append(
                    f"{spec.device_id} ({spec.behavior}): no verdict")
            elif verdict.accepted != spec.expected_accepted:
                want = "accept" if spec.expected_accepted else "reject"
                report.mismatches.append(
                    f"{spec.device_id} ({spec.behavior}): expected "
                    f"{want}, got "
                    f"{'accept' if verdict.accepted else 'reject'} "
                    f"({verdict.reason or 'ok'})")
        return report


def build_fleet_specs(devices: int,
                      workloads: Sequence[str] = ("fibcall", "prime"),
                      attack_fraction: float = 0.3,
                      method: str = "rap-track",
                      seed: int = 0) -> List[DeviceSpec]:
    """A mixed fleet: honest behaviors cycled over ``workloads``, the
    hostile fraction cycled over tamper/truncate/attack."""
    rng = random.Random(seed)
    # explicit cycle (not sorted(HOSTILE_BEHAVIORS)): fleet compositions
    # are pinned by tests and must not shift as behaviors are added
    hostile = ["attack", "tamper", "truncate"]
    honest = sorted(HONEST_BEHAVIORS)
    specs: List[DeviceSpec] = []
    n_hostile = round(devices * attack_fraction)
    for index in range(devices):
        device_id = f"prv-{index:04d}"
        if index < n_hostile:
            behavior = hostile[index % len(hostile)]
            workload = ("vulnerable" if behavior == "attack"
                        else rng.choice(list(workloads)))
        else:
            behavior = honest[index % len(honest)]
            workload = rng.choice(list(workloads))
        specs.append(DeviceSpec(
            device_id=device_id,
            profile=DeviceProfile(workload, method),
            behavior=behavior,
        ))
    rng.shuffle(specs)
    return specs


# -- compromise-then-heal campaigns (the policy control plane's load) -------


def build_campaign_specs(devices: int,
                         compromised_fraction: float = 0.05,
                         workloads: Sequence[str] = ("fibcall", "prime"),
                         method: str = "rap-track",
                         seed: int = 0) -> List[DeviceSpec]:
    """A campaign fleet: mostly honest devices, a compromised fraction
    cycled over attack/equivocate/tamper (each of which the policy
    engine must quarantine — the first two on hard signals, the last
    by consecutive-failure scoring)."""
    rng = random.Random(seed)
    compromised = ["attack", "equivocate", "tamper"]
    honest = sorted(HONEST_BEHAVIORS)
    n_compromised = round(devices * compromised_fraction)
    specs: List[DeviceSpec] = []
    for index in range(devices):
        device_id = f"prv-{index:04d}"
        if index < n_compromised:
            behavior = compromised[index % len(compromised)]
            workload = ("vulnerable" if behavior == "attack"
                        else rng.choice(list(workloads)))
        else:
            behavior = honest[index % len(honest)]
            workload = rng.choice(list(workloads))
        specs.append(DeviceSpec(
            device_id=device_id,
            profile=DeviceProfile(workload, method),
            behavior=behavior,
        ))
    rng.shuffle(specs)
    return specs


@dataclass
class CampaignReport:
    """SLA accounting for one compromise-then-heal campaign."""

    rounds: int = 0
    #: compromised device -> round index it reached QUARANTINED
    quarantined_round: Dict[str, int] = field(default_factory=dict)
    #: device -> round index its HEAL order was accepted on-device
    healed_round: Dict[str, int] = field(default_factory=dict)
    #: honest devices that were ever quarantined (must stay empty)
    wrongful_quarantines: List[str] = field(default_factory=list)
    #: sessions refused at admission (quarantined/revoked devices)
    denials: int = 0
    #: PLCY lifecycle notices that verified on-device
    notices_verified: int = 0
    compromised: List[str] = field(default_factory=list)
    end_states: Dict[str, str] = field(default_factory=dict)

    @property
    def rejoined(self) -> List[str]:
        return sorted(d for d in self.compromised
                      if self.end_states.get(d) == "REJOINED")

    @property
    def revoked(self) -> List[str]:
        return sorted(d for d in self.compromised
                      if self.end_states.get(d) == "REVOKED")

    @property
    def mean_time_to_quarantine(self) -> float:
        """Mean rounds from compromise (round 0) to QUARANTINED,
        counting the quarantining round itself — 1.0 means every
        compromised device was caught in its first session round."""
        if not self.quarantined_round:
            return 0.0
        return (sum(self.quarantined_round.values())
                / len(self.quarantined_round) + 1.0)

    @property
    def healing_success_rate(self) -> float:
        """Fraction of quarantined-and-healed devices that rejoined."""
        settled = [d for d in self.quarantined_round
                   if self.end_states.get(d) in ("REJOINED", "REVOKED")]
        if not settled:
            return 0.0
        return (sum(1 for d in settled
                    if self.end_states.get(d) == "REJOINED")
                / len(settled))

    @property
    def ok(self) -> bool:
        """The campaign's SLA: every compromised device was caught and
        settled (rejoined or revoked), no honest device was touched."""
        caught = all(d in self.quarantined_round
                     for d in self.compromised)
        settled = all(self.end_states.get(d) in ("REJOINED", "REVOKED")
                      for d in self.compromised)
        return caught and settled and not self.wrongful_quarantines

    def summary(self) -> str:
        return (
            f"{len(self.compromised)} compromised / "
            f"{len(self.end_states)} devices over {self.rounds} "
            f"round(s): {len(self.quarantined_round)} quarantined "
            f"(mean {self.mean_time_to_quarantine:.2f} rounds to "
            f"quarantine), {len(self.rejoined)} rejoined, "
            f"{len(self.revoked)} revoked "
            f"(healing success {self.healing_success_rate:.0%}), "
            f"{len(self.wrongful_quarantines)} wrongful quarantine(s), "
            f"{self.denials} admission denial(s), "
            f"{self.notices_verified} notice(s) verified on-device")


class CampaignSimulator:
    """Drive a compromise-then-heal campaign against a policy-enabled
    service (:class:`FleetService` or ``ShardedFleetService``).

    Device-side state — which devices have been re-provisioned by a
    HEAL order — lives here, *outside* the service: devices do not
    crash when the Vrf does, so a campaign can be split around a
    service kill/restart (the crash differential drives ``run_round``
    / ``heal_round`` step by step against successive service
    incarnations, with one shared factory and one shared simulator).

    Every round is deterministic in ``(seed, round_index)`` alone:
    interleaving draws from a per-round CRC-seeded RNG and the logical
    clock is derived from the round index, so two campaigns over the
    same fleet — interrupted or not — submit byte-identical wire
    traffic.
    """

    def __init__(self, specs: Sequence[DeviceSpec], seed: int = 0,
                 watermark: Optional[int] = 1024, cache=None,
                 factory: Optional[ChainFactory] = None):
        self.specs = list(specs)
        self.seed = seed
        self.factory = factory or ChainFactory(
            watermark=watermark, cache=cache)
        self._by_id = {spec.device_id: spec for spec in self.specs}
        #: device-side re-provision flags (set when a HEAL order lands)
        self.healed: Set[str] = set()
        self.report = CampaignReport(compromised=sorted(
            s.device_id for s in self.specs
            if s.behavior in HOSTILE_BEHAVIORS))

    def _rng(self, round_index: int, phase: str) -> random.Random:
        tag = f"campaign:{self.seed}:{round_index}:{phase}".encode()
        return random.Random(zlib.crc32(tag))

    def _effective(self, spec: DeviceSpec) -> DeviceSpec:
        """What the device actually is this round: a healed device was
        re-flashed with pinned firmware and behaves honestly."""
        if spec.device_id in self.healed \
                and spec.behavior in HOSTILE_BEHAVIORS:
            return replace(spec, behavior="honest")
        return spec

    def pin_profiles(self, service) -> int:
        """Publish a policy document per fleet profile pinning the
        honest firmware measurement (so HEAL orders name a concrete
        image and rogue measurements become hard signals)."""
        if service.policy is None or service.policy.registry is None:
            return 0
        published = 0
        for profile in sorted({s.profile for s in self.specs},
                              key=lambda p: (p.workload, p.method)):
            template = self.factory._templates.get((profile, False))
            if template is None:
                template = self.factory._attest_template(profile, False)
                self.factory._templates[(profile, False)] = template
            service.policy.registry.publish(profile, template.h_mem)
            published += 1
        return published

    # -- one attestation round ---------------------------------------------

    def run_round(self, service, round_index: int,
                  step_s: float = 0.001) -> None:
        """Every admitted device attests once; blocked devices are
        refused at admission and counted."""
        rng = self._rng(round_index, "run")
        now = float(round_index) * 1000.0
        queues: Dict[str, List[bytes]] = {}
        for spec in self.specs:
            eff = self._effective(spec)
            try:
                challenge = service.open_session(
                    eff.device_id, eff.profile,
                    device_key(eff.device_id), now)
            except PolicyDeniedError:
                self.report.denials += 1
                continue
            honest = self.factory.chain(eff, challenge.nonce)
            queues[eff.device_id] = apply_behavior(
                eff.behavior, honest, rng)
        live = sorted(d for d, q in queues.items() if q)
        while live:
            device_id = live[rng.randrange(len(live))]
            service.submit(device_id, queues[device_id].pop(0), now)
            now += step_s
            if not queues[device_id]:
                live.remove(device_id)
        # settle stalled chains exactly like FleetSimulator.run
        for _ in range(service.manager.max_attempts):
            now += service.manager.idle_timeout + 1.0
            for device_id, challenge in service.tick(now):
                eff = self._effective(self._by_id[device_id])
                chunks = self.factory.chain(eff, challenge.nonce)
                if eff.behavior != "stall":
                    chunks = apply_behavior(eff.behavior, chunks, rng)
                for chunk in chunks:
                    service.submit(device_id, chunk, now)
                    now += step_s
        service.drain()
        self._observe_states(service, round_index)

    # -- one healing round ---------------------------------------------------

    def heal_round(self, service, round_index: int,
                   step_s: float = 0.001, resume: bool = False) -> int:
        """Deliver HEAL orders; healed devices answer the healing
        challenge with a clean chain. Returns orders accepted
        on-device. With ``resume=True``, standing orders are re-issued
        (the post-restart path) instead of minting new ones."""
        now = float(round_index) * 1000.0 + 500.0
        pushes = (service.resume_heals(now) if resume
                  else service.heal_pushes(now))
        accepted = 0
        for device_id, frame in sorted(pushes):
            order = verify_heal_frame(
                device_key(device_id), device_id, frame)
            if order is None:
                continue  # forged or damaged order: the device refuses
            _attempt, _epoch, _measurement, nonce = order
            # re-provision: flash the ordered image, attest cleanly
            self.healed.add(device_id)
            self.report.healed_round.setdefault(device_id, round_index)
            accepted += 1
            eff = self._effective(self._by_id[device_id])
            for chunk in self.factory.chain(eff, nonce):
                service.submit(device_id, chunk, now)
                now += step_s
        service.drain()
        self._observe_states(service, round_index)
        return accepted

    def deliver_notices(self, service) -> int:
        """Deliver pending PLCY notices; devices verify the MAC."""
        verified = 0
        for device_id, frame in service.policy_pushes():
            if verify_policy_frame(
                    device_key(device_id), device_id, frame) is not None:
                verified += 1
        self.report.notices_verified += verified
        return verified

    def _observe_states(self, service, round_index: int) -> None:
        if service.policy is None:
            return
        for device_id, state in sorted(
                service.policy.state_names().items()):
            if state in ("QUARANTINED", "HEALING", "REVOKED"):
                self.report.quarantined_round.setdefault(
                    device_id, round_index)
                spec = self._by_id.get(device_id)
                if (spec is not None
                        and spec.behavior in HONEST_BEHAVIORS
                        and device_id
                        not in self.report.wrongful_quarantines):
                    self.report.wrongful_quarantines.append(device_id)

    # -- the whole campaign ---------------------------------------------------

    def run(self, service, rounds: int = 3,
            heal: bool = True) -> CampaignReport:
        """``rounds`` full cycles of attest -> heal -> notify."""
        for round_index in range(rounds):
            self.run_round(service, round_index)
            if heal:
                self.heal_round(service, round_index)
            self.deliver_notices(service)
        self.report.rounds = rounds
        if service.policy is not None:
            self.report.end_states = service.policy.state_names()
        return self.report
