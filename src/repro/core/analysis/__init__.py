"""Whole-program attack-surface analysis.

Four layers on top of the dataflow engine:

- :mod:`repro.core.analysis.callgraph` — interprocedural call graph
  with conservative indirect-transfer over-approximation;
- :mod:`repro.core.analysis.bounds` — certified path bounds (shadow
  stack depth, worst-case CFLog records/bytes, recursion report);
- :mod:`repro.core.analysis.certificate` — HMAC-signed ``BNDS1``
  certificates, the content-addressed store, and the admission screen;
- :mod:`repro.core.analysis.gadgets` — ROP/JOP gadget mining and
  concrete attack-chain synthesis.
"""

from repro.core.analysis.bounds import (
    BOUNDED_METHODS,
    PathBounds,
    analyse_path_bounds,
)
from repro.core.analysis.callgraph import (
    CallGraph,
    CallSite,
    FunctionNode,
    build_call_graph,
)
from repro.core.analysis.certificate import (
    DEFAULT_BOUNDS_SEED,
    BoundsCertificate,
    BoundsRegistry,
    bounds_key,
    certificate_path,
    certify_workload,
    decode_certificate,
    frame_keys,
    load_certificate,
    screen_records,
    sign_certificate,
    store_certificate,
    verify_certificate,
)
from repro.core.analysis.gadgets import (
    AttackChain,
    Gadget,
    TraceSynthesizer,
    chain_reports,
    mine_gadgets,
    synthesize_chains,
    synthesize_return_flood,
)

__all__ = [
    "AttackChain",
    "BOUNDED_METHODS",
    "BoundsCertificate",
    "BoundsRegistry",
    "CallGraph",
    "CallSite",
    "DEFAULT_BOUNDS_SEED",
    "FunctionNode",
    "Gadget",
    "PathBounds",
    "TraceSynthesizer",
    "analyse_path_bounds",
    "bounds_key",
    "build_call_graph",
    "certificate_path",
    "certify_workload",
    "chain_reports",
    "decode_certificate",
    "frame_keys",
    "load_certificate",
    "mine_gadgets",
    "screen_records",
    "sign_certificate",
    "store_certificate",
    "synthesize_chains",
    "synthesize_return_flood",
    "verify_certificate",
]
