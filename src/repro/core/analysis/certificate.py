"""`BNDS1` path-bound certificates: canonical bytes, HMAC, CAS store.

A certificate pins the :mod:`~repro.core.analysis.bounds` result for
one ``(image, method)`` to the image's ``H_MEM`` digest, signed under a
dedicated HMAC key so the fleet can trust bounds it did not compute.
Serialization follows the repo's canonical-bytes discipline (SPD1,
FWP1): fixed magic, version byte, length-prefixed fields, sorted key
lists, strict decode — any malformation raises ``ValueError`` and an
attacker has no degrees of freedom below the MAC.

Layout (all little-endian)::

    "BNDS1" | u8 version
    | u16-lp workload | u16-lp method | u16-lp image_digest
    | u64 max_stack_depth | u64 max_log_records | u64 max_log_bytes
      (0xFFFF_FFFF_FFFF_FFFF = unbounded)
    | u8 depth_exact
    | u16 cycle_count { u16 member_count { u16-lp label } }
    | u32 call_key_count { u32 addr }    (sorted ascending)
    | u32 return_key_count { u32 addr }  (sorted ascending)
    | u16-lp hmac-sha256(payload)

Certificates are content-addressed next to the image artifacts: the
file name is the image digest (hex) plus the method, so the verifier
looks a session's pinned firmware up by the same ``H_MEM`` it already
authenticates.
"""

from __future__ import annotations

import hashlib
import hmac
import os
import struct
import tempfile
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.analysis.bounds import PathBounds, UNBOUNDED

MAGIC = b"BNDS1"
VERSION = 1

#: default signing seed (deployments provision their own)
DEFAULT_BOUNDS_SEED = b"fleet-factory-secret"


def bounds_key(seed: bytes) -> bytes:
    """Derive the certificate-signing key from a deployment seed."""
    return hashlib.sha256(b"bounds-sign|" + seed).digest()


@dataclass(frozen=True)
class BoundsCertificate:
    """One signed, image-pinned static-bounds statement."""

    workload: str
    method: str
    image_digest: bytes  # H_MEM of the attested image
    max_stack_depth: Optional[int]  # None: unbounded
    max_log_records: Optional[int]
    max_log_bytes: Optional[int]
    recursion_cycles: Tuple[Tuple[str, ...], ...]
    depth_exact: bool
    call_keys: Tuple[int, ...]  # record keys that push a return frame
    return_keys: Tuple[int, ...]  # record keys that pop one

    @property
    def bounded(self) -> bool:
        return self.max_log_records is not None


def _pack_u64(value: Optional[int]) -> bytes:
    return struct.pack("<Q", UNBOUNDED if value is None else value)


def _pack_lp(data: bytes) -> bytes:
    if len(data) > 0xFFFF:
        raise ValueError("field too long for u16 length prefix")
    return struct.pack("<H", len(data)) + data


def pack_certificate(cert: BoundsCertificate) -> bytes:
    """The unsigned canonical payload."""
    out = [MAGIC, struct.pack("<B", VERSION)]
    out.append(_pack_lp(cert.workload.encode()))
    out.append(_pack_lp(cert.method.encode()))
    out.append(_pack_lp(cert.image_digest))
    out.append(_pack_u64(cert.max_stack_depth))
    out.append(_pack_u64(cert.max_log_records))
    out.append(_pack_u64(cert.max_log_bytes))
    out.append(struct.pack("<B", 1 if cert.depth_exact else 0))
    out.append(struct.pack("<H", len(cert.recursion_cycles)))
    for cycle in cert.recursion_cycles:
        out.append(struct.pack("<H", len(cycle)))
        for label in cycle:
            out.append(_pack_lp(label.encode()))
    for keys in (cert.call_keys, cert.return_keys):
        ordered = sorted(keys)
        out.append(struct.pack("<I", len(ordered)))
        out.extend(struct.pack("<I", addr) for addr in ordered)
    return b"".join(out)


def sign_certificate(cert: BoundsCertificate, key: bytes) -> bytes:
    """Canonical payload + MAC: the on-disk/wire blob."""
    payload = pack_certificate(cert)
    mac = hmac.new(key, payload, hashlib.sha256).digest()
    return payload + _pack_lp(mac)


class _Reader:
    def __init__(self, data: bytes):
        self.data = data
        self.pos = 0

    def take(self, n: int) -> bytes:
        if self.pos + n > len(self.data):
            raise ValueError("truncated certificate")
        out = self.data[self.pos:self.pos + n]
        self.pos += n
        return out

    def u8(self) -> int:
        return self.take(1)[0]

    def u16(self) -> int:
        return struct.unpack("<H", self.take(2))[0]

    def u32(self) -> int:
        return struct.unpack("<I", self.take(4))[0]

    def u64(self) -> int:
        return struct.unpack("<Q", self.take(8))[0]

    def lp(self) -> bytes:
        return self.take(self.u16())


def _unpack_u64(value: int) -> Optional[int]:
    return None if value == UNBOUNDED else value


def decode_certificate(blob: bytes) -> Tuple[BoundsCertificate, bytes]:
    """Strict parse of a signed blob -> (certificate, mac). Unauthenticated:
    callers that care must use :func:`verify_certificate`."""
    r = _Reader(blob)
    if r.take(5) != MAGIC:
        raise ValueError("bad certificate magic")
    version = r.u8()
    if version != VERSION:
        raise ValueError(f"unsupported certificate version {version}")
    try:
        workload = r.lp().decode("utf-8")
        method = r.lp().decode("utf-8")
    except UnicodeDecodeError as exc:
        raise ValueError(f"non-UTF8 name field: {exc}") from None
    digest = r.lp()
    depth = _unpack_u64(r.u64())
    records = _unpack_u64(r.u64())
    log_bytes = _unpack_u64(r.u64())
    flag = r.u8()
    if flag not in (0, 1):
        raise ValueError(f"depth_exact flag must be 0/1, got {flag}")
    cycles: List[Tuple[str, ...]] = []
    for _ in range(r.u16()):
        members = []
        for _ in range(r.u16()):
            try:
                members.append(r.lp().decode("utf-8"))
            except UnicodeDecodeError as exc:
                raise ValueError(f"non-UTF8 cycle label: {exc}") from None
        cycles.append(tuple(members))
    key_lists: List[Tuple[int, ...]] = []
    for _ in range(2):
        count = r.u32()
        if count * 4 > len(r.data) - r.pos:
            raise ValueError(f"key count {count} exceeds remaining bytes")
        keys = tuple(r.u32() for _ in range(count))
        if list(keys) != sorted(keys):
            raise ValueError("key list not sorted (non-canonical)")
        key_lists.append(keys)
    mac = r.lp()
    if r.pos != len(blob):
        raise ValueError("trailing bytes after certificate")
    cert = BoundsCertificate(
        workload=workload, method=method, image_digest=digest,
        max_stack_depth=depth, max_log_records=records,
        max_log_bytes=log_bytes, recursion_cycles=tuple(cycles),
        depth_exact=bool(flag), call_keys=key_lists[0],
        return_keys=key_lists[1],
    )
    return cert, mac


def verify_certificate(blob: bytes, key: bytes) -> BoundsCertificate:
    """Parse + authenticate; raises ``ValueError`` on any failure."""
    cert, mac = decode_certificate(blob)
    expected = hmac.new(key, pack_certificate(cert),
                        hashlib.sha256).digest()
    if not hmac.compare_digest(mac, expected):
        raise ValueError("certificate MAC mismatch")
    return cert


# -- content-addressed store -------------------------------------------------

def certificate_path(root: str, image_digest: bytes, method: str) -> str:
    return os.path.join(root, f"{image_digest.hex()}.{method}.bnds")


def store_certificate(root: str, cert: BoundsCertificate,
                      key: bytes) -> str:
    """Atomically write the signed blob next to the image artifacts."""
    os.makedirs(root, exist_ok=True)
    path = certificate_path(root, cert.image_digest, cert.method)
    blob = sign_certificate(cert, key)
    fd, tmp = tempfile.mkstemp(dir=root, prefix=".bnds-")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(blob)
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise
    return path


def load_certificate(root: str, image_digest: bytes, method: str,
                     key: bytes) -> Optional[BoundsCertificate]:
    """Load + verify a stored certificate; None when absent."""
    path = certificate_path(root, image_digest, method)
    if not os.path.exists(path):
        return None
    with open(path, "rb") as handle:
        return verify_certificate(handle.read(), key)


# -- admission screening -----------------------------------------------------

def screen_records(cert: BoundsCertificate,
                   records: Sequence[object]) -> Optional[str]:
    """Check a claimed (dictionary-expanded) record stream against the
    certificate. Returns a rejection reason, or None when the claim is
    within bounds.

    The length/byte checks apply whenever the certificate is bounded.
    The depth inference runs only when the certificate marks it exact
    (every shadow push/pop visible in the log — the naive baseline):
    the maximum net excess of return records over call records in any
    window of the stream is a lower bound on the stack depth the chain
    *claims*, and symmetrically for call floods. Trampoline methods
    leave direct calls/leaf returns unlogged, so no sound inference
    exists there — replay's shadow stack covers them instead.
    """
    count = len(records)
    if cert.max_log_records is not None and count > cert.max_log_records:
        return (f"bounds: {count} records exceed the certified maximum "
                f"{cert.max_log_records}")
    total = sum(getattr(r, "size_bytes", 0) for r in records)
    if cert.max_log_bytes is not None and total > cert.max_log_bytes:
        return (f"bounds: {total} log bytes exceed the certified maximum "
                f"{cert.max_log_bytes}")
    if not cert.depth_exact or cert.max_stack_depth is None:
        return None
    calls = frozenset(cert.call_keys)
    returns = frozenset(cert.return_keys)
    up = down = 0
    max_up = max_down = 0
    for record in records:
        key = getattr(record, "key", None)
        if key in calls:
            up += 1
            down = max(0, down - 1)
            if up > max_up:
                max_up = up
        elif key in returns:
            down += 1
            up = max(0, up - 1)
            if down > max_down:
                max_down = down
    inferred = max(max_up, max_down)
    if inferred > cert.max_stack_depth:
        return (f"bounds: inferred stack depth {inferred} exceeds the "
                f"certified maximum {cert.max_stack_depth}")
    return None


# -- production --------------------------------------------------------------

def frame_keys(image, bound_map,
               method: str) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    """(call_keys, return_keys): the record keys that move the shadow
    stack, in the method's own record-key space.

    Trampoline methods key records by the rewrite map's ``rec_addr``;
    the naive baseline keys every packet by the transfer's own address
    in the unmodified image.
    """
    from repro.isa.instructions import InstrKind
    from repro.isa.operands import Reg
    from repro.isa.registers import LR, PC

    calls: List[int] = []
    returns: List[int] = []
    if method in ("rap-track", "traces"):
        if bound_map is not None:
            for addr, info in bound_map.indirect_at.items():
                if info.kind == "call":
                    calls.append(info.rec_addr)
                elif info.kind in ("return_pop", "return_bx"):
                    returns.append(info.rec_addr)
        return tuple(sorted(calls)), tuple(sorted(returns))
    if method != "naive-mtb":
        raise ValueError(f"no frame-key model for method {method!r}")
    for addr, instr in image.instr_at.items():
        kind = instr.kind
        if kind is InstrKind.CALL:
            target = instr.direct_target()
            if target is not None and \
                    image.addr_of(target.name) != addr + instr.size:
                calls.append(addr)
        elif kind is InstrKind.INDIRECT_CALL:
            calls.append(addr)
        elif kind is InstrKind.POP:
            (reglist,) = instr.operands
            if PC in reglist:
                returns.append(addr)
        elif kind is InstrKind.INDIRECT_BRANCH:
            (target,) = instr.operands
            if isinstance(target, Reg) and target.num == LR:
                returns.append(addr)
    return tuple(sorted(calls)), tuple(sorted(returns))


def certify_workload(name: str, method: str, *,
                     seed: bytes = DEFAULT_BOUNDS_SEED,
                     cache=None,
                     store_root: Optional[str] = None) -> BoundsCertificate:
    """Analyze one workload under one method and mint its certificate.

    Runs the whole pipeline: build the attested image, classify the
    original module, build the call graph, compute the path bounds, and
    pin everything to the image's ``H_MEM``. With ``store_root`` the
    signed blob is also written content-addressed next to the image
    artifacts.
    """
    from repro.core.analysis.callgraph import build_call_graph
    from repro.core.analysis.bounds import analyse_path_bounds
    from repro.core.classify import classify_module
    from repro.crypto.hashing import measure_image
    from repro.eval.runner import prepare
    from repro.workloads import load_workload

    workload = load_workload(name)
    image, bound_map = prepare(workload, method, cache=cache)
    classification = classify_module(workload.module())
    graph = build_call_graph(classification)
    bounds = analyse_path_bounds(classification, graph, method)
    calls, returns = frame_keys(image, bound_map, method)
    cert = BoundsCertificate(
        workload=name, method=method,
        image_digest=measure_image(image),
        max_stack_depth=bounds.max_stack_depth,
        max_log_records=bounds.max_log_records,
        max_log_bytes=bounds.max_log_bytes,
        recursion_cycles=bounds.recursion_cycles,
        depth_exact=bounds.depth_exact,
        call_keys=calls, return_keys=returns,
    )
    if store_root is not None:
        store_certificate(store_root, cert, bounds_key(seed))
    return cert


class BoundsRegistry:
    """In-memory (workload, method) -> certificate map for the fleet.

    The fleet service consults it at admission; entries are verified
    blobs (add via :meth:`admit_blob`) or locally produced certificates
    (:meth:`add`, for the in-process pipeline that just built them).
    """

    def __init__(self, key: Optional[bytes] = None):
        self.key = key if key is not None else bounds_key(
            DEFAULT_BOUNDS_SEED)
        self._by_profile: Dict[Tuple[str, str], BoundsCertificate] = {}

    def add(self, cert: BoundsCertificate) -> None:
        self._by_profile[(cert.workload, cert.method)] = cert

    def admit_blob(self, blob: bytes) -> BoundsCertificate:
        cert = verify_certificate(blob, self.key)
        self.add(cert)
        return cert

    def get(self, workload: str, method: str
            ) -> Optional[BoundsCertificate]:
        return self._by_profile.get((workload, method))

    def __len__(self) -> int:
        return len(self._by_profile)


__all__ = [
    "BoundsCertificate",
    "BoundsRegistry",
    "DEFAULT_BOUNDS_SEED",
    "bounds_key",
    "certificate_path",
    "certify_workload",
    "frame_keys",
    "decode_certificate",
    "load_certificate",
    "pack_certificate",
    "screen_records",
    "sign_certificate",
    "store_certificate",
    "verify_certificate",
]
