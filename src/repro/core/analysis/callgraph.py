"""Interprocedural call graph over one module's classification.

The graph's nodes are the functions :meth:`FlatProgram.function_starts`
discovers (entry symbol, ``bl`` targets, address-taken labels); edges
come in three precision tiers, worst first:

1. **direct** — ``bl label`` (including trampolined LOGGED_CALL sites:
   rewriting changes how a call is *logged*, never whether it happens);
2. **devirt** — indirect transfers the PR 5 value-set analysis pinned
   to a single label (the devirtualization license);
3. **indirect** — unresolved ``blx rs`` / computed jumps, conservatively
   over-approximated: the value-set lattice's finite target set when it
   converged below TOP, otherwise *every address-taken function entry*
   (the same legal-target universe the replay verifier enforces).

Indirect *jumps* that leave their function (``bx rs`` / ``ldr pc``
tails) are recorded as ``tail=True`` edges: they transfer control
without pushing a return frame, so reachability follows them but the
shadow-stack depth analysis does not add a frame for them. Direct
branches that leave their function are captured the same way: a ``b``
to another function's entry is a ``tail=True`` direct edge, and a
branch into another function's *interior* (the switch-dispatch idiom,
where address-taken case labels split one real function into several
graph nodes) is recorded in :attr:`CallGraph.gotos` — the bound
analysis merges goto-connected functions back into one unit so cycles
threaded through them stay visible.

Recursion is reported, never hidden: Tarjan SCCs over the call edges
give the cycle report the `BNDS1` certificate embeds, and downstream
bound analyses treat every recursive SCC as unbounded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.core.classify import BranchClass, Classification
from repro.core.dataflow.lattice import Addr
from repro.isa.instructions import InstrKind
from repro.isa.operands import Reg
from repro.isa.registers import LR, PC


@dataclass(frozen=True)
class CallSite:
    """One interprocedural transfer site inside a function."""

    index: int  # instruction index in the flat program
    kind: str  # "direct" | "devirt" | "indirect"
    targets: Tuple[str, ...]  # possible callee names (function labels)
    resolved: bool  # False iff targets is a conservative over-approx
    tail: bool = False  # True: jump (no return frame), not a call


@dataclass
class FunctionNode:
    """One function: its extent and every outgoing transfer."""

    name: str
    start: int  # first instruction index (inclusive)
    end: int  # past-the-end instruction index
    sites: List[CallSite] = field(default_factory=list)

    @property
    def callees(self) -> Set[str]:
        return {t for site in self.sites for t in site.targets}


@dataclass
class CallGraph:
    """Whole-program call graph plus its SCC condensation."""

    entry: str
    functions: Dict[str, FunctionNode]
    #: maps each function to its SCC id (Tarjan order, reverse topological)
    scc_of: Dict[str, int]
    #: SCC id -> member functions
    sccs: List[Tuple[str, ...]]
    #: names of functions on a call cycle (member of a recursive SCC)
    recursive: FrozenSet[str]
    #: (src, dst) pairs: src direct-branches into dst's *interior* —
    #: control flow the function partition cannot express; analyses
    #: must treat goto-connected functions as one region
    gotos: Tuple[Tuple[str, str], ...] = ()

    def edges(self) -> List[Tuple[str, str, CallSite]]:
        out = []
        for node in self.functions.values():
            for site in node.sites:
                for target in site.targets:
                    out.append((node.name, target, site))
        return out

    def reachable(self) -> Set[str]:
        """Functions reachable from the entry point (over all edges)."""
        seen: Set[str] = set()
        stack = [self.entry] if self.entry in self.functions else []
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen.add(name)
            node = self.functions.get(name)
            if node is None:
                continue
            for callee in node.callees:
                if callee in self.functions and callee not in seen:
                    stack.append(callee)
            for src, dst in self.gotos:
                if src == name and dst in self.functions and dst not in seen:
                    stack.append(dst)
        return seen

    def recursion_cycles(self) -> List[Tuple[str, ...]]:
        """Every recursive SCC, members sorted, cycles in SCC order."""
        out = []
        for members in self.sccs:
            if len(members) > 1:
                out.append(tuple(sorted(members)))
            elif members[0] in self.recursive:  # self-recursive
                out.append(members)
        return out

    def topo_order(self) -> List[int]:
        """SCC ids bottom-up: callees before callers (Tarjan order)."""
        return list(range(len(self.sccs)))


def _function_name(classification: Classification, start: int) -> str:
    labels = classification.flat.labels_at[start]
    if labels:
        return labels[0]
    return f"@{start}"


def _conservative_targets(classification: Classification,
                          entry_names: Set[str]) -> Tuple[str, ...]:
    """The legal-target universe for an unresolved indirect transfer:
    address-taken labels that start a function (falling back to every
    function entry if the image takes no addresses at all)."""
    taken = {
        label for label in classification.flat.address_taken_labels()
        if label in entry_names
    }
    if not taken:
        taken = set(entry_names)
    return tuple(sorted(taken))


def _lattice_targets(classification: Classification, index: int,
                     entry_names: Set[str]) -> Optional[Tuple[str, ...]]:
    """The value-set lattice's finite target set, restricted to function
    entries; None when the set is TOP/absent (caller falls back)."""
    facts = classification.dataflow
    if facts is None:
        return None
    values = facts.target_set(index)
    if values.is_top or values.values is None:
        return None
    names: Set[str] = set()
    for value in values.values:
        if not isinstance(value, Addr) or value.offset != 0:
            return None  # non-label or offset target: fall back
        if value.label in entry_names:
            names.add(value.label)
        else:
            return None  # mid-function target: over-approximate instead
    if not names:
        return None
    return tuple(sorted(names))


def _is_return(classification: Classification, index: int) -> bool:
    """True for sites the classifier proved are returns (pops/bx lr),
    which never leave the function sideways."""
    site = classification.sites.get(index)
    if site is not None and site.cls in (
        BranchClass.RETURN_POP,
        BranchClass.LEAF_RETURN,
    ):
        return True
    instr = classification.flat.instrs[index]
    if instr.kind is InstrKind.POP:
        (reglist,) = instr.operands
        return PC in reglist
    if instr.kind is InstrKind.INDIRECT_BRANCH:
        (target,) = instr.operands
        return isinstance(target, Reg) and target.num == LR
    return False


def build_call_graph(classification: Classification) -> CallGraph:
    """Build the interprocedural call graph for one classified module."""
    flat = classification.flat
    starts = flat.function_starts()
    names: Dict[int, str] = {s: _function_name(classification, s)
                             for s in starts}
    entry_names = set(names.values())
    conservative = _conservative_targets(classification, entry_names)

    sorted_starts = sorted(starts)

    def owner_of(index: int) -> Optional[str]:
        best = None
        for s in sorted_starts:
            if s <= index:
                best = s
            else:
                break
        return names.get(best) if best is not None else None

    gotos: Set[Tuple[str, str]] = set()
    functions: Dict[str, FunctionNode] = {}
    for start in starts:
        lo, hi = flat.function_extent(start)
        node = FunctionNode(name=names[start], start=lo, end=hi)
        for idx in range(lo, hi):
            instr = flat.instrs[idx]
            kind = instr.kind
            site = classification.sites.get(idx)
            if kind in (InstrKind.BRANCH, InstrKind.COMPARE_BRANCH):
                target = flat.target_index(instr)
                if target is None or lo <= target < hi:
                    continue  # intra-function: the CFG's business
                if target in names:  # b <entry>: frameless tail call
                    node.sites.append(CallSite(
                        idx, "direct", (names[target],),
                        resolved=True, tail=True))
                else:  # branch into another function's interior
                    owner = owner_of(target)
                    if owner is not None and owner != node.name:
                        gotos.add((node.name, owner))
                continue
            if kind is InstrKind.CALL:
                target = flat.target_index(instr)
                if target is None:
                    continue
                tname = names.get(target)
                if tname is None:  # bl into a non-function label
                    tname = _function_name(classification, target)
                node.sites.append(CallSite(
                    idx, "direct", (tname,), resolved=True))
                continue
            if site is not None and site.cls in (
                BranchClass.DEVIRT_CALL, BranchClass.DEVIRT_JUMP
            ) and site.devirt_target:
                target_idx = flat.label_index.get(site.devirt_target)
                tail = site.cls is BranchClass.DEVIRT_JUMP
                if target_idx is not None and target_idx in names:
                    node.sites.append(CallSite(
                        idx, "devirt", (names[target_idx],),
                        resolved=True, tail=tail))
                continue
            if kind is InstrKind.INDIRECT_CALL:
                targets = _lattice_targets(classification, idx, entry_names)
                node.sites.append(CallSite(
                    idx, "indirect",
                    targets if targets is not None else conservative,
                    resolved=targets is not None))
                continue
            # computed jumps that may cross functions: bx rs (non-return)
            # and ldr pc — returns stay intraprocedural by construction
            is_jump = (
                kind is InstrKind.INDIRECT_BRANCH
                or (kind is InstrKind.LOAD and instr.writes_pc())
            )
            if is_jump and not _is_return(classification, idx):
                targets = _lattice_targets(classification, idx, entry_names)
                node.sites.append(CallSite(
                    idx, "indirect",
                    targets if targets is not None else conservative,
                    resolved=targets is not None, tail=True))
        functions[node.name] = node

    entry = names.get(flat.label_index.get(flat.module.entry, -1),
                      flat.module.entry)
    sccs, scc_of = _tarjan(functions)
    recursive: Set[str] = set()
    for members in sccs:
        if len(members) > 1:
            recursive.update(members)
        else:
            name = members[0]
            if name in functions and name in functions[name].callees:
                recursive.add(name)
    return CallGraph(entry=entry, functions=functions, scc_of=scc_of,
                     sccs=sccs, recursive=frozenset(recursive),
                     gotos=tuple(sorted(gotos)))


def _tarjan(functions: Dict[str, FunctionNode]
            ) -> Tuple[List[Tuple[str, ...]], Dict[str, int]]:
    """Iterative Tarjan SCC; emitted SCCs are in reverse topological
    order (every SCC appears after all SCCs it calls into)."""
    index_of: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    sccs: List[Tuple[str, ...]] = []
    scc_of: Dict[str, int] = {}
    counter = [0]

    def adjacency(name: str) -> List[str]:
        node = functions.get(name)
        if node is None:
            return []
        return sorted(c for c in node.callees if c in functions)

    for root in sorted(functions):
        if root in index_of:
            continue
        work: List[Tuple[str, int]] = [(root, 0)]
        while work:
            name, child = work[-1]
            if child == 0:
                index_of[name] = low[name] = counter[0]
                counter[0] += 1
                stack.append(name)
                on_stack.add(name)
            adj = adjacency(name)
            advanced = False
            while child < len(adj):
                succ = adj[child]
                child += 1
                if succ not in index_of:
                    work[-1] = (name, child)
                    work.append((succ, 0))
                    advanced = True
                    break
                if succ in on_stack:
                    low[name] = min(low[name], index_of[succ])
            if advanced:
                continue
            work.pop()
            if low[name] == index_of[name]:
                members: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    members.append(member)
                    if member == name:
                        break
                sid = len(sccs)
                sccs.append(tuple(members))
                for member in members:
                    scc_of[member] = sid
            if work:
                parent, _ = work[-1]
                low[parent] = min(low[parent], low[name])
    return sccs, scc_of


__all__ = [
    "CallGraph",
    "CallSite",
    "FunctionNode",
    "build_call_graph",
]
