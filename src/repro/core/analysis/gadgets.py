"""ROP/JOP gadget mining and concrete attack-chain synthesis.

The miner runs the *replay verifier's own semantics in generate mode*:
instead of consuming a device's CFLog, a :class:`TraceSynthesizer`
walks the attested image from any address and fabricates exactly the
records replay will demand — loop conditions with minimal trip counts,
mandatory latch records, and one record per indirect-transfer site.
Anything replay accepts, the synthesizer can emit; anything the
synthesizer emits, replay consumes losslessly.

A **gadget** is an address whose forward walk reaches an
attacker-steerable point: an indirect-transfer record site (the next
hop's ``dst`` is chain-controlled) or a terminal ``bkpt`` (a landing
pad — ``vulnerable.py``'s ``maintenance_unlock`` is the canonical
one). Chains are built greedily: walk honestly from the image entry,
hijack the first steerable site toward a mined pad, and keep walking
until the program halts. The result is a complete, losslessly
replayable CFLog whose only difference from an honest one is the
redirected destination — which the shadow stack then flags
(``rop-return`` / ``jop-call``), or the admission pre-check rejects
outright (return-hop floods against a pinned depth bound).

Chains are plain record lists; :func:`chain_reports` wraps one into a
signed report chain, making hostile traces consumable by the fleet
service and ``CampaignSimulator`` exactly like device traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.asm.program import Image
from repro.cfa.cflog import AddressRecord, BranchRecord, CFLog, LoopRecord, Record
from repro.cfa.verifier import EXIT_SENTINEL
from repro.core.loops import trip_count
from repro.core.rewrite_map import BoundRewriteMap
from repro.isa.instructions import InstrKind

#: instruction budget for one gadget probe / one whole-chain walk
PROBE_FUEL = 256
CHAIN_FUEL = 200_000


@dataclass(frozen=True)
class Gadget:
    """One mined gadget: where it starts and how it ends."""

    entry: int  # first executed address
    terminator: int  # address of the steerable/terminal instruction
    kind: str  # "call" | "return_pop" | "return_bx" | "ldr" | "bx" | "halt"
    steps: int  # instructions walked entry -> terminator
    records: int  # records the gadget body itself emits
    label: Optional[str] = None  # symbol at entry, when one exists

    @property
    def is_pad(self) -> bool:
        """Terminal landing pad: execution halts here (no further hop)."""
        return self.kind == "halt"


@dataclass(frozen=True)
class AttackChain:
    """One synthesized hostile CFLog for a specific image."""

    name: str  # e.g. "rop:maintenance_unlock"
    method: str
    records: Tuple[Record, ...]
    gadgets: Tuple[Gadget, ...]  # hop targets, in order
    hijack_site: int  # address of the redirected transfer
    expected_violation: str  # "rop-return" | "jop-call" | "bounds"
    description: str = ""

    @property
    def cflog(self) -> CFLog:
        return CFLog(self.records)


class _Dead(Exception):
    """The walk reached a state replay would refuse."""


@dataclass
class _Walk:
    """Mutable walk state threaded through a synthesis."""

    pc: int
    shadow: List[int] = field(default_factory=list)
    records: List[Record] = field(default_factory=list)
    fixed_state: Dict[int, int] = field(default_factory=dict)
    loop_state: Dict[int, int] = field(default_factory=dict)
    steps: int = 0


@dataclass(frozen=True)
class _Stop:
    """Why a walk paused: at a steerable site or a terminal."""

    kind: str  # indirect kinds, or "halt" / "exit"
    pc: int  # site address ("halt"/"exit": final pc)
    rec_addr: Optional[int] = None  # record key the site demands


class TraceSynthesizer:
    """Replay semantics in generate mode for one attested image.

    ``bound_map`` selects the dialect: a :class:`BoundRewriteMap` for
    the trampoline methods (rap-track / traces), ``None`` for the
    naive baseline's unmodified image.
    """

    def __init__(self, image: Image, bound_map: Optional[BoundRewriteMap],
                 method: str):
        self.image = image
        self.map = bound_map
        self.method = method
        if method in ("rap-track", "traces") and bound_map is None:
            raise ValueError(f"{method} synthesis requires a bound map")

    # -- record fabrication ------------------------------------------------

    def _branch_record(self, key: int, dst: int) -> Record:
        if self.method == "traces":
            return AddressRecord(key, dst)
        return BranchRecord(key, dst)

    def _loop_record(self, key: int, value: int) -> Record:
        size = 4 if self.method == "traces" else 8
        return LoopRecord(key, value, size_bytes=size)

    def _min_trip_value(self, info) -> Tuple[int, int]:
        """A logged counter value giving the fewest loop trips."""
        best: Optional[Tuple[int, int]] = None
        seeds = {0, 1, info.bound, info.bound - info.step,
                 info.bound + info.step, info.bound - 1, info.bound + 1}
        for seed in seeds:
            value = seed & 0xFFFF_FFFF
            try:
                trips = trip_count(info, value)
            except ValueError:
                continue
            if best is None or trips < best[0]:
                best = (trips, value)
        if best is None:
            raise _Dead(f"loop at {info.rec_addr:#x} has no finite trip")
        return best[1], best[0]

    # -- the walk ----------------------------------------------------------

    def walk(self, state: _Walk, fuel: int = CHAIN_FUEL) -> _Stop:
        """Advance until the next steerable site or a terminal."""
        if self.map is None:
            return self._walk_naive(state, fuel)
        return self._walk_trampoline(state, fuel)

    def _walk_trampoline(self, state: _Walk, fuel: int) -> _Stop:
        image, rmap = self.image, self.map
        while True:
            state.steps += 1
            if state.steps > fuel:
                raise _Dead(f"fuel exhausted at {state.pc:#x}")
            pc = state.pc
            instr = image.instr_at.get(pc)
            if instr is None:
                raise _Dead(f"walk left the image at {pc:#x}")
            if pc in rmap.loop_at:
                info = rmap.loop_at[pc]
                value, trips = self._min_trip_value(info)
                state.records.append(self._loop_record(pc, value))
                state.loop_state[info.latch_addr] = trips - 1
                state.pc = pc + instr.size
                continue
            if pc in rmap.indirect_at:
                return _Stop(rmap.indirect_at[pc].kind, pc,
                             rmap.indirect_at[pc].rec_addr)
            if pc in rmap.cond_at:
                info = rmap.cond_at[pc]
                if info.flavor == "always":
                    state.records.append(
                        self._branch_record(info.rec_addr, info.taken_addr))
                    state.pc = info.taken_addr
                elif info.flavor == "taken":
                    state.pc = pc + instr.size  # silent: not taken
                else:  # forward-exit: silence means "left the loop"
                    state.pc = info.taken_addr
                continue
            if pc in rmap.fixed_trip_at:
                remaining = state.fixed_state.get(pc)
                if remaining is None:
                    remaining = rmap.fixed_trip_at[pc] - 1
                if remaining > 0:
                    state.fixed_state[pc] = remaining - 1
                    state.pc = self._taken(pc, instr)
                else:
                    state.fixed_state.pop(pc, None)
                    state.pc = pc + instr.size
                continue
            if pc in rmap.loop_latches:
                remaining = state.loop_state.get(pc)
                if remaining is None:
                    raise _Dead(f"latch {pc:#x} without a loop condition")
                if remaining > 0:
                    state.loop_state[pc] = remaining - 1
                    state.pc = self._taken(pc, instr)
                else:
                    del state.loop_state[pc]
                    state.pc = pc + instr.size
                continue
            kind = instr.kind
            if kind is InstrKind.BRANCH:
                if instr.cond is not None:
                    raise _Dead(f"unclassified conditional at {pc:#x}")
                state.pc = self._taken(pc, instr)
            elif kind is InstrKind.CALL:
                state.shadow.append(pc + instr.size)
                state.pc = self._taken(pc, instr)
            elif kind is InstrKind.INDIRECT_BRANCH:
                if not state.shadow:
                    return _Stop("exit", pc)
                state.pc = state.shadow.pop()
            elif instr.mnemonic == "bkpt":
                return _Stop("halt", pc)
            elif instr.writes_pc() or instr.mnemonic == "svc":
                raise _Dead(f"replay-opaque instruction at {pc:#x}")
            else:
                state.pc = pc + instr.size

    def _walk_naive(self, state: _Walk, fuel: int) -> _Stop:
        image = self.image
        while True:
            state.steps += 1
            if state.steps > fuel:
                raise _Dead(f"fuel exhausted at {state.pc:#x}")
            pc = state.pc
            instr = image.instr_at.get(pc)
            if instr is None:
                raise _Dead(f"walk left the image at {pc:#x}")
            kind = instr.kind
            if kind is InstrKind.BRANCH and instr.cond is None:
                target = self._taken(pc, instr)
                if target != pc + instr.size:
                    state.records.append(self._branch_record(pc, target))
                state.pc = target
            elif (kind is InstrKind.COMPARE_BRANCH
                  or (kind is InstrKind.BRANCH and instr.cond is not None)):
                state.pc = pc + instr.size  # silent: not taken
            elif kind is InstrKind.CALL:
                target = self._taken(pc, instr)
                state.shadow.append(pc + instr.size)
                if target != pc + instr.size:
                    state.records.append(self._branch_record(pc, target))
                state.pc = target
            elif kind is InstrKind.INDIRECT_CALL:
                return _Stop("call", pc, pc)
            elif kind is InstrKind.INDIRECT_BRANCH:
                return _Stop("bx", pc, pc)
            elif instr.writes_pc():
                stop_kind = ("return_pop" if kind is InstrKind.POP
                             else "ldr")
                return _Stop(stop_kind, pc, pc)
            elif instr.mnemonic == "bkpt":
                return _Stop("halt", pc)
            else:
                state.pc = pc + instr.size

    def _taken(self, pc: int, instr) -> int:
        target = instr.direct_target()
        if target is None:
            raise _Dead(f"no direct target at {pc:#x}")
        return self.image.addr_of(target.name)

    # -- steering ----------------------------------------------------------

    def take_indirect(self, state: _Walk, stop: _Stop, dst: int) -> None:
        """Emit the site's record for ``dst`` and apply the same shadow
        semantics replay will: the chain and the verifier never drift."""
        state.records.append(self._branch_record(stop.rec_addr, dst))
        if self.map is not None and self.map.indirect_at[stop.pc].kind \
                == "call":
            state.shadow.append(self._call_resume(stop.pc))
        elif self.map is not None and self.map.indirect_at[stop.pc].kind \
                in ("return_pop", "return_bx"):
            if state.shadow:
                state.shadow.pop()
        elif self.map is None:
            instr = self.image.instr_at[stop.pc]
            if instr.kind is InstrKind.INDIRECT_CALL:
                state.shadow.append(stop.pc + instr.size)
            elif instr.kind is InstrKind.INDIRECT_BRANCH:
                if state.shadow and dst == state.shadow[-1]:
                    state.shadow.pop()
            elif instr.kind is InstrKind.POP and state.shadow:
                state.shadow.pop()
        state.pc = dst

    def _call_resume(self, site: int) -> int:
        instr = self.image.instr_at[site]
        if instr.mnemonic == "svc":
            branch_addr = site + instr.size
            branch = self.image.instr_at[branch_addr]
            return branch_addr + branch.size
        return site + instr.size

    def honest_dst(self, state: _Walk, stop: _Stop) -> Optional[int]:
        """The destination an honest device would log at this site, or
        None when it is not statically determined (open indirect call)."""
        if stop.kind in ("return_pop", "return_bx"):
            return state.shadow[-1] if state.shadow else EXIT_SENTINEL
        if stop.kind == "bx":
            return state.shadow[-1] if state.shadow else EXIT_SENTINEL
        return None


# -- mining ------------------------------------------------------------------

_RETURN_KINDS = ("return_pop", "return_bx", "bx")


def mine_gadgets(image: Image, bound_map: Optional[BoundRewriteMap],
                 method: str, fuel: int = PROBE_FUEL) -> List[Gadget]:
    """Probe every text address: which ones reach a steerable site?"""
    synth = TraceSynthesizer(image, bound_map, method)
    out: List[Gadget] = []
    for entry in sorted(image.instr_at):
        state = _Walk(pc=entry, shadow=[0xDEAD0000])  # a frame to pop
        try:
            stop = synth.walk(state, fuel=fuel)
        except _Dead:
            continue
        if stop.kind == "exit":
            continue
        out.append(Gadget(
            entry=entry, terminator=stop.pc, kind=stop.kind,
            steps=state.steps, records=len(state.records),
            label=image.label_at(entry),
        ))
    return out


def _first_stop_of_kind(synth: TraceSynthesizer, kinds: Sequence[str]
                        ) -> Optional[Tuple[_Walk, _Stop]]:
    """Walk honestly from the entry until a site of one of ``kinds``;
    honest destinations are supplied at earlier steerable sites."""
    state = _Walk(pc=synth.image.entry)
    while True:
        try:
            stop = synth.walk(state)
        except _Dead:
            return None
        if stop.kind in ("halt", "exit"):
            return None
        if stop.kind in kinds:
            return state, stop
        dst = synth.honest_dst(state, stop)
        if dst is None or dst == EXIT_SENTINEL:
            return None
        synth.take_indirect(state, stop, dst)


def _finish_honestly(synth: TraceSynthesizer, state: _Walk) -> bool:
    """Run the walk to halt/exit, steering honestly; False on dead end."""
    while True:
        try:
            stop = synth.walk(state)
        except _Dead:
            return False
        if stop.kind in ("halt", "exit"):
            if stop.kind == "exit" and state.shadow:
                return False
            return True
        dst = synth.honest_dst(state, stop)
        if dst is None:
            return False
        if dst == EXIT_SENTINEL and state.shadow:
            return False
        if dst == EXIT_SENTINEL:
            synth.take_indirect(state, stop, dst)
            return True
        synth.take_indirect(state, stop, dst)


def synthesize_chains(image: Image, bound_map: Optional[BoundRewriteMap],
                      method: str, *, limit: int = 4) -> List[AttackChain]:
    """Greedy chain synthesis: hijack the first steerable transfer.

    Emits up to ``limit`` chains per image: ROP redirections of the
    first return site into each distinct landing pad (terminal
    ``bkpt`` gadgets a return would never reach honestly), then JOP
    redirections of the first indirect-call site into a mid-function
    gadget (not a legal function entry).
    """
    gadgets = mine_gadgets(image, bound_map, method)
    pads = sorted((g for g in gadgets if g.is_pad),
                  key=lambda g: (g.label is None, g.entry))
    chains: List[AttackChain] = []
    synth = TraceSynthesizer(image, bound_map, method)

    # ROP: redirect the first return to a landing pad
    hit = _first_stop_of_kind(synth, _RETURN_KINDS)
    if hit is not None:
        state, stop = hit
        honest = synth.honest_dst(state, stop)
        seen_entries: Set[int] = set()
        for pad in pads:
            if len(chains) >= limit:
                break
            if pad.entry == honest or pad.entry in seen_entries:
                continue
            seen_entries.add(pad.entry)
            forked = _Walk(pc=state.pc, shadow=list(state.shadow),
                           records=list(state.records),
                           fixed_state=dict(state.fixed_state),
                           loop_state=dict(state.loop_state),
                           steps=state.steps)
            synth.take_indirect(forked, stop, pad.entry)
            if not _finish_honestly(synth, forked):
                continue
            label = pad.label or f"{pad.entry:#x}"
            chains.append(AttackChain(
                name=f"rop:{label}", method=method,
                records=tuple(forked.records), gadgets=(pad,),
                hijack_site=stop.pc, expected_violation="rop-return",
                description=(
                    f"return at {stop.pc:#x} redirected from "
                    f"{honest if honest is not None else 0:#x} to the "
                    f"{label} landing pad"),
            ))

    # JOP: redirect the first indirect call into a mid-function gadget
    if len(chains) < limit:
        hit = _first_stop_of_kind(synth, ("call",))
        if hit is not None:
            state, stop = hit
            entries = (bound_map.function_entry_addrs
                       if bound_map is not None else set())
            for pad in pads:
                if pad.entry in entries:
                    continue
                forked = _Walk(pc=state.pc, shadow=list(state.shadow),
                               records=list(state.records),
                               fixed_state=dict(state.fixed_state),
                               loop_state=dict(state.loop_state),
                               steps=state.steps)
                synth.take_indirect(forked, stop, pad.entry)
                if not _finish_honestly(synth, forked):
                    continue
                label = pad.label or f"{pad.entry:#x}"
                chains.append(AttackChain(
                    name=f"jop:{label}", method=method,
                    records=tuple(forked.records), gadgets=(pad,),
                    hijack_site=stop.pc, expected_violation="jop-call",
                    description=(f"indirect call at {stop.pc:#x} bent "
                                 f"into the non-entry gadget {label}"),
                ))
                break
    return chains


def synthesize_return_flood(image: Image,
                            bound_map: Optional[BoundRewriteMap],
                            method: str, hops: int) -> Optional[AttackChain]:
    """A return-to-return hop chain ``hops`` deep: each hop redirects a
    return record into a gadget that runs forward to another return
    site. Against a pinned depth bound the admission pre-check rejects
    the chain before replay ever runs (the drawdown of return records
    exceeds any honest stack depth)."""
    synth = TraceSynthesizer(image, bound_map, method)
    gadgets = mine_gadgets(image, bound_map, method)
    return_gadgets = [g for g in gadgets if g.kind in _RETURN_KINDS]
    pads = [g for g in gadgets if g.is_pad]
    if not return_gadgets or not pads:
        return None
    hit = _first_stop_of_kind(synth, _RETURN_KINDS)
    if hit is None:
        return None
    state, stop = hit
    hijack = stop.pc
    hop_gadget = return_gadgets[0]
    for _ in range(hops):
        synth.take_indirect(state, stop, hop_gadget.entry)
        try:
            stop = synth.walk(state)
        except _Dead:
            return None
        if stop.kind not in _RETURN_KINDS:
            return None
    synth.take_indirect(state, stop, pads[0].entry)
    if not _finish_honestly(synth, state):
        return None
    return AttackChain(
        name=f"flood:{hops}-hops", method=method,
        records=tuple(state.records), gadgets=(hop_gadget, pads[0]),
        hijack_site=hijack, expected_violation="bounds",
        description=(f"{hops} return-to-return hops inflate the claimed "
                     f"stack depth past any honest execution"),
    )


# -- fleet packaging ---------------------------------------------------------

def chain_reports(chain: AttackChain, device_id: str, challenge: bytes,
                  h_mem: bytes, key: bytes,
                  watermark: Optional[int] = None) -> List[bytes]:
    """Wrap a synthesized chain into a signed wire-encoded report chain
    — what a compromised device holding its own key would transmit."""
    from repro.cfa.report import Report
    from repro.cfa.wire import encode_report

    logs: List[List[Record]] = []
    if watermark:
        current: List[Record] = []
        size = 0
        for record in chain.records:
            current.append(record)
            size += record.size_bytes
            if size >= watermark:
                logs.append(current)
                current, size = [], 0
        logs.append(current)
    else:
        logs = [list(chain.records)]
    last = len(logs) - 1
    return [
        encode_report(Report(
            device_id=device_id.encode(), method=chain.method,
            challenge=challenge, h_mem=h_mem, seq=seq,
            final=seq == last, cflog=CFLog(records),
        ).sign(key))
        for seq, records in enumerate(logs)
    ]


__all__ = [
    "AttackChain",
    "Gadget",
    "TraceSynthesizer",
    "chain_reports",
    "mine_gadgets",
    "synthesize_chains",
    "synthesize_return_flood",
]
