"""Static per-image path bounds: shadow-stack depth and CFLog size.

For one classified module and one attestation method this computes
three whole-program worst cases an *honest* device can never exceed:

* ``max_stack_depth`` — deepest shadow return stack any execution can
  build (call edges nest; tail jumps transfer without a frame);
* ``max_log_records`` / ``max_log_bytes`` — most CFLog records/bytes a
  complete attestation can emit under the method's logging model.

``None`` means *unbounded*: recursion makes depth unbounded, and any
loop whose per-iteration cost is non-zero and whose trip count cannot
be bounded statically makes the log unbounded. Unboundedness is a
finding, not a failure — ``workloads/vulnerable.py``'s attacker-fed
copy loop is *correctly* certified unbounded.

Soundness is the only hard requirement (the fleet rejects sessions
that exceed a bound, so an underestimate would reject honest devices);
tightness is measured, not assumed — ``benchmarks/bench_bounds.py``
compares each bound against observed honest maxima.

Cost model per method (mirrors the replay verifiers byte for byte):

=========== ==============================================================
rap-track    every trampolined site consumes one 8-byte record per
             execution, except loop-opt latches: one 8-byte LoopRecord
             per loop *entry* and silent iterations.
traces       same structure, 4-byte records (AddressRecord/LoopRecord).
naive-mtb    the unmodified binary: every non-sequential transfer is one
             8-byte MTB packet — conditionals cost one per evaluation
             (worst case taken), direct branches/calls cost one unless
             they target the next instruction.
=========== ==============================================================

Loops are collapsed innermost-out. A loop multiplies its worst
per-iteration cost by a static trip count when one exists: either the
classifier's fixed-loop count, or this module's *relaxed* trip analysis
(constant-bound counter loops whose bodies may branch but contain no
calls and exactly one counter update that executes every iteration).
Everything else is unbounded unless the body is cost-free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.cfg import CFG
from repro.core.classify import BranchClass, Classification, TRAMPOLINED
from repro.core.dominators import compute_dominators, dominates
from repro.core.loops import (
    Loop,
    SimpleLoopShape,
    _counter_step,
    _initial_value,
    _preceding_flag_setter,
    trip_count,
)
from repro.core.analysis.callgraph import CallGraph, CallSite, FunctionNode
from repro.isa.instructions import InstrKind

INF = float("inf")

#: wire sentinel for an unbounded quantity (u64 all-ones)
UNBOUNDED = 0xFFFF_FFFF_FFFF_FFFF

#: uniform record size on the wire, per method
RECORD_UNIT = {"rap-track": 8, "traces": 4, "naive-mtb": 8}

#: methods the analyzer can certify
BOUNDED_METHODS = tuple(sorted(RECORD_UNIT))


@dataclass(frozen=True)
class PathBounds:
    """The statically certified worst cases for one (module, method)."""

    method: str
    max_stack_depth: Optional[int]  # None: unbounded (recursion)
    max_log_records: Optional[int]  # None: unbounded (open loop)
    max_log_bytes: Optional[int]
    recursion_cycles: Tuple[Tuple[str, ...], ...]
    #: True iff every shadow push/pop is visible in the log, making the
    #: admission-time depth inference exact (naive-mtb only: trampoline
    #: methods leave direct calls and leaf returns unlogged)
    depth_exact: bool

    @property
    def bounded(self) -> bool:
        return self.max_log_records is not None


def _finite(value: float) -> Optional[int]:
    return None if value == INF else int(value)


# -- per-site record costs ---------------------------------------------------

def _site_costs(classification: Classification,
                method: str) -> Tuple[Dict[int, float], Dict[int, float]]:
    """(per-execution record cost by instr index,
    loop-entry record cost by header block id)."""
    flat = classification.flat
    site_cost: Dict[int, float] = {}
    loop_entry_cost: Dict[int, float] = {}
    if method in ("rap-track", "traces"):
        for idx, site in classification.sites.items():
            if site.cls is BranchClass.LOOP_OPT_LATCH:
                # one LoopRecord per entry, charged to the loop itself
                if site.loop is not None:
                    loop_entry_cost[site.loop.header] = 1.0
                continue
            if site.cls in TRAMPOLINED:
                site_cost[idx] = 1.0
        return site_cost, loop_entry_cost
    if method != "naive-mtb":
        raise ValueError(f"no cost model for method {method!r}")
    for idx, instr in enumerate(flat.instrs):
        kind = instr.kind
        if kind is InstrKind.BRANCH:
            if instr.cond is not None:
                site_cost[idx] = 1.0  # worst case: taken
            elif flat.target_index(instr) != idx + 1:
                site_cost[idx] = 1.0
        elif kind is InstrKind.COMPARE_BRANCH:
            site_cost[idx] = 1.0
        elif kind is InstrKind.CALL:
            if flat.target_index(instr) != idx + 1:
                site_cost[idx] = 1.0
        elif kind in (InstrKind.INDIRECT_CALL, InstrKind.INDIRECT_BRANCH):
            site_cost[idx] = 1.0
        elif instr.writes_pc():  # pop {...,pc} / ldr pc
            site_cost[idx] = 1.0
    return site_cost, loop_entry_cost


# -- static trip counts ------------------------------------------------------

def _loop_static_trips(classification: Classification,
                       loop: Loop) -> Optional[int]:
    """A sound static upper bound on a loop's iterations, or None.

    Tier 1 is the classifier's own fixed-loop count. Tier 2 relaxes the
    body-determinism requirement: the body may branch internally, but
    must contain no calls or indirect transfers (nothing can clobber
    the counter), exactly one constant-step counter update, and that
    update must execute on every iteration (its block dominates the
    latch inside the loop). The simulated trip count is then an upper
    bound: each iteration moves the counter at least one step toward
    the exit condition.
    """
    cfg = classification.cfg
    flat = classification.flat
    for latch_bid in loop.latches:
        idx = cfg.blocks[latch_bid].terminator_index
        site = classification.sites.get(idx)
        if (site is not None and site.cls is BranchClass.FIXED_LOOP_LATCH
                and site.trip_count is not None):
            return site.trip_count

    if len(loop.latches) != 1:
        return None
    latch_bid = loop.latches[0]
    latch_block = cfg.blocks[latch_bid]
    latch_idx = latch_block.terminator_index
    latch = flat.instrs[latch_idx]
    if latch.kind is InstrKind.COMPARE_BRANCH:
        reg = latch.operands[0]
        counter, bound = reg.num, 0
        cond = "eq" if latch.mnemonic == "cbz" else "ne"
    elif latch.kind is InstrKind.BRANCH and latch.cond is not None:
        setter = _preceding_flag_setter(flat, latch_block.start, latch_idx)
        if setter is None:
            return None
        counter, bound, idiom = setter
        cond = latch.cond
        if idiom == "self" and cond not in ("eq", "ne", "mi", "pl"):
            return None
    else:
        return None

    # no calls / indirect transfers anywhere in the body: the counter
    # register cannot be clobbered behind the analysis's back
    for bid in loop.body:
        block = cfg.blocks[bid]
        for i in range(block.start, block.end):
            kind = flat.instrs[i].kind
            if kind in (InstrKind.CALL, InstrKind.INDIRECT_CALL,
                        InstrKind.INDIRECT_BRANCH):
                return None
            if flat.instrs[i].writes_pc() and kind is not InstrKind.BRANCH \
                    and kind is not InstrKind.COMPARE_BRANCH:
                return None

    step = _counter_step(cfg, loop, counter)
    if step is None or step == 0:
        return None
    # the single update must run every iteration: find its block and
    # require it to dominate the latch within the loop body
    update_bid = None
    for bid in loop.body:
        block = cfg.blocks[bid]
        for i in range(block.start, block.end):
            instr = flat.instrs[i]
            if instr.mnemonic in ("add", "sub") and instr.operands:
                dest = instr.operands[0]
                if getattr(dest, "num", None) == counter:
                    update_bid = bid
    if update_bid is None:
        return None
    idom = compute_dominators(cfg, loop.header, restrict=set(loop.body))
    if latch_bid not in idom or update_bid not in idom:
        return None
    if not dominates(idom, update_bid, latch_bid):
        return None

    init = _initial_value(cfg, loop, counter)
    if init is None:
        return None
    shape = SimpleLoopShape(latch_idx, counter, bound, step, cond, init)
    try:
        return trip_count(shape, init)
    except ValueError:
        return None


# -- intraprocedural worst-path cost ----------------------------------------

def _longest_dag_path(entry: int, nodes: Set[int],
                      succs: Dict[int, Set[int]],
                      weight: Dict[int, float]) -> float:
    """Max node-weight sum over any path from ``entry``; cycles are
    collapsed by SCC condensation (a cycle with any weight is INF —
    the structured loop pass has already claimed every bounded loop)."""
    if entry not in nodes:
        return 0.0
    sccs, scc_of = _scc(nodes, succs)
    scc_weight: List[float] = []
    for members in sccs:
        total = sum(weight.get(m, 0.0) for m in members)
        cyclic = len(members) > 1 or any(
            m in succs.get(m, ()) for m in members)
        if cyclic and total > 0:
            scc_weight.append(INF)
        else:
            scc_weight.append(total)
    # Tarjan order is reverse topological: process as emitted
    best: Dict[int, float] = {}
    for sid, members in enumerate(sccs):
        out = scc_weight[sid]
        succ_best = 0.0
        for m in members:
            for s in succs.get(m, ()):
                tid = scc_of[s]
                if tid != sid:
                    succ_best = max(succ_best, best.get(tid, 0.0))
        best[sid] = out + succ_best
    return best[scc_of[entry]]


def _scc(nodes: Set[int], succs: Dict[int, Set[int]]
         ) -> Tuple[List[Tuple[int, ...]], Dict[int, int]]:
    """Iterative Tarjan over an int graph (reverse topological order)."""
    index_of: Dict[int, int] = {}
    low: Dict[int, int] = {}
    on_stack: Set[int] = set()
    stack: List[int] = []
    sccs: List[Tuple[int, ...]] = []
    scc_of: Dict[int, int] = {}
    counter = 0
    for root in sorted(nodes):
        if root in index_of:
            continue
        work: List[Tuple[int, List[int], int]] = [
            (root, sorted(s for s in succs.get(root, ()) if s in nodes), 0)]
        while work:
            node, adj, child = work[-1]
            if child == 0 and node not in index_of:
                index_of[node] = low[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            while child < len(adj):
                succ = adj[child]
                child += 1
                if succ not in index_of:
                    work[-1] = (node, adj, child)
                    work.append((succ, sorted(
                        s for s in succs.get(succ, ()) if s in nodes), 0))
                    advanced = True
                    break
                if succ in on_stack:
                    low[node] = min(low[node], index_of[succ])
            if advanced:
                continue
            work.pop()
            if low[node] == index_of[node]:
                members: List[int] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    members.append(member)
                    if member == node:
                        break
                sid = len(sccs)
                sccs.append(tuple(members))
                for member in members:
                    scc_of[member] = sid
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
    return sccs, scc_of


class _FunctionCost:
    """Worst-case record cost of one analysis-unit invocation.

    A unit is one function, or several functions welded together by
    interior gotos (``CallGraph.gotos`` — the switch-dispatch idiom).
    ``entry_start`` picks which member the unit is entered at; indirect
    tail jumps to member entries become explicit edges so cycles
    threaded through the dispatch stay visible.
    """

    def __init__(self, classification: Classification,
                 entry_start: int,
                 members: Sequence[FunctionNode],
                 internal: Set[str],
                 site_cost: Dict[int, float],
                 loop_entry_cost: Dict[int, float],
                 callee_cost: Dict[str, float],
                 trips: Dict[int, Optional[int]],
                 member_start: Dict[str, int]):
        self.cls = classification
        self.cfg = classification.cfg
        self.entry_start = entry_start
        self.extents = [(n.start, n.end) for n in members]
        self.site_cost = site_cost
        self.loop_entry_cost = loop_entry_cost
        self.callee_cost = callee_cost
        self.trips = trips
        #: call/jump cost by call-site index (max over *external* targets;
        #: internal targets are walked through the unit's own CFG)
        self.call_cost: Dict[int, float] = {}
        #: jump-table edges: site block -> internal target entry block
        self.extra_edges: List[Tuple[int, int]] = []
        for node in members:
            for site in node.sites:
                self.call_cost[site.index] = max(
                    (callee_cost.get(t, 0.0) for t in site.targets
                     if t not in internal),
                    default=0.0)
                if site.tail:
                    src_bid = self.cfg.block_of_index.get(site.index)
                    for t in site.targets:
                        if t in internal and src_bid is not None:
                            dst_bid = self.cfg.block_of_index.get(
                                member_start[t])
                            if dst_bid is not None:
                                self.extra_edges.append((src_bid, dst_bid))

    def _in_unit(self, index: int) -> bool:
        return any(lo <= index < hi for lo, hi in self.extents)

    def _block_weight(self, bid: int) -> float:
        block = self.cfg.blocks[bid]
        total = 0.0
        for idx in range(block.start, block.end):
            total += self.site_cost.get(idx, 0.0)
            total += self.call_cost.get(idx, 0.0)
        return total

    def compute(self) -> float:
        entry_bid = self.cfg.block_of_index[self.entry_start]
        candidates = {bid for bid, block in enumerate(self.cfg.blocks)
                      if self._in_unit(block.start)}
        all_succs: Dict[int, Set[int]] = {
            bid: {s for s in self.cfg.blocks[bid].succs if s in candidates}
            for bid in candidates
        }
        for src, dst in self.extra_edges:
            if src in candidates and dst in candidates:
                all_succs[src].add(dst)
        # reachability over the augmented edge set, within the unit
        blocks: Set[int] = set()
        stack = [entry_bid] if entry_bid in candidates else []
        while stack:
            bid = stack.pop()
            if bid in blocks:
                continue
            blocks.add(bid)
            stack.extend(s for s in all_succs[bid] if s not in blocks)
        weight = {bid: self._block_weight(bid) for bid in blocks}
        succs = {bid: {s for s in all_succs[bid] if s in blocks}
                 for bid in blocks}
        loops = [
            loop for loop in self.cls.loops
            if loop.header in blocks and set(loop.body) <= blocks
        ]
        # innermost first; ties broken by header for determinism
        loops.sort(key=lambda l: (len(l.body), l.header))
        collapsed: List[Tuple[Loop, int]] = []  # (loop, virtual node id)
        rep: Dict[int, int] = {bid: bid for bid in blocks}

        def find(bid: int) -> int:
            while rep[bid] != bid:
                rep[bid] = rep[rep[bid]]
                bid = rep[bid]
            return bid

        next_virtual = max(blocks, default=0) + 1
        nodes = set(blocks)
        for loop in loops:
            members = {find(b) for b in loop.body if find(b) in nodes}
            header = find(loop.header)
            if header not in members:
                continue  # already swallowed by an equal-header merge
            # per-iteration cost: longest path inside the (contracted)
            # body from the header, with the loop's back edges removed
            inner_succs = {
                m: {find(s) for s in succs.get(m, ())
                    if find(s) in members and find(s) != header}
                for m in members
            }
            iter_cost = _longest_dag_path(header, members, inner_succs,
                                          weight)
            trips_n = self.trips.get(loop.header)
            entry_cost = self.loop_entry_cost.get(loop.header, 0.0)
            if trips_n is not None:
                total = trips_n * iter_cost + entry_cost
            elif iter_cost == 0:
                total = entry_cost
            else:
                total = INF
            # contract the loop into one virtual node
            vid = next_virtual
            next_virtual += 1
            out: Set[int] = set()
            for m in members:
                for s in succs.get(m, ()):
                    t = find(s)
                    if t in nodes and t not in members:
                        out.add(t)
            for m in members:
                nodes.discard(m)
                succs.pop(m, None)
                weight.pop(m, None)
                rep[m] = vid
            rep[vid] = vid
            nodes.add(vid)
            weight[vid] = total
            succs[vid] = out
            # redirect inbound edges
            for bid in nodes:
                if bid == vid:
                    continue
                succs[bid] = {find(s) for s in succs.get(bid, ())}
            collapsed.append((loop, vid))
        # remap every edge once more (paranoia for chained merges)
        for bid in list(nodes):
            succs[bid] = {find(s) for s in succs.get(bid, ())
                          if find(s) in nodes}
        return _longest_dag_path(find(entry_bid), nodes, succs, weight)


# -- whole-program assembly --------------------------------------------------

def _goto_units(graph: CallGraph) -> Dict[str, str]:
    """Union-find: each function -> the root of its goto-merged unit."""
    parent = {name: name for name in graph.functions}

    def find(name: str) -> str:
        while parent[name] != name:
            parent[name] = parent[parent[name]]
            name = parent[name]
        return name

    for src, dst in graph.gotos:
        if src in parent and dst in parent:
            ra, rb = find(src), find(dst)
            if ra != rb:
                parent[ra] = rb
    return {name: find(name) for name in parent}


def analyse_path_bounds(classification: Classification, graph: CallGraph,
                        method: str) -> PathBounds:
    """Compute the certified bounds for one (classified module, method)."""
    unit = RECORD_UNIT[method]
    site_cost, loop_entry_cost = _site_costs(classification, method)
    trips: Dict[int, Optional[int]] = {}
    for loop in classification.loops:
        trips[loop.header] = _loop_static_trips(classification, loop)

    cycles = tuple(graph.recursion_cycles())

    # weld goto-connected functions into units, then condense the
    # unit-level graph so units are processed callees-first
    root_of = _goto_units(graph)
    unit_members: Dict[str, List[str]] = {}
    for name in graph.functions:
        unit_members.setdefault(root_of[name], []).append(name)
    roots = sorted(unit_members)
    uid = {root: i for i, root in enumerate(roots)}
    usuccs: Dict[int, Set[int]] = {uid[r]: set() for r in roots}
    self_recursive: Set[str] = set()
    for root, members in unit_members.items():
        for name in members:
            if name in graph.recursive:
                self_recursive.add(root)
            for site in graph.functions[name].sites:
                for t in site.targets:
                    if t not in graph.functions:
                        continue
                    if root_of[t] == root:
                        if not site.tail:
                            # a frame-pushing call back into the unit:
                            # recursion through the welded region
                            self_recursive.add(root)
                    else:
                        usuccs[uid[root]].add(uid[root_of[t]])

    cost: Dict[str, float] = {}
    depth: Dict[str, float] = {}
    unit_sccs, _ = _scc(set(uid.values()), usuccs)
    for scc_members in unit_sccs:  # reverse topological: callees first
        scc_roots = [roots[i] for i in scc_members]
        recursive = len(scc_members) > 1 or any(
            r in self_recursive for r in scc_roots)
        for root in scc_roots:
            members = unit_members[root]
            if recursive:
                for name in members:
                    cost[name] = INF
                    depth[name] = INF
                continue
            internal = set(members)
            nodes = [graph.functions[n] for n in members]
            member_start = {n: graph.functions[n].start for n in members}
            # worst-case frame depth is shared by the whole unit
            d = 0.0
            for node in nodes:
                for site in node.sites:
                    external = [depth.get(t, 0.0) for t in site.targets
                                if t not in internal]
                    if site.tail and not external:
                        continue  # jump within the unit: no frame
                    frame = 0.0 if site.tail else 1.0
                    d = max(d, frame + max(external, default=0.0))
            for name in members:
                depth[name] = d
                cost[name] = _FunctionCost(
                    classification, member_start[name], nodes, internal,
                    site_cost, loop_entry_cost, cost, trips,
                    member_start).compute()

    entry = graph.entry
    total_records = cost.get(entry, 0.0)
    total_depth = depth.get(entry, 0.0)
    depth_exact = method == "naive-mtb" and _no_call_to_next(classification)
    return PathBounds(
        method=method,
        max_stack_depth=_finite(total_depth),
        max_log_records=_finite(total_records),
        max_log_bytes=_finite(
            total_records * unit if total_records != INF else INF),
        recursion_cycles=cycles,
        depth_exact=depth_exact,
    )


def _no_call_to_next(classification: Classification) -> bool:
    """True iff no ``bl`` targets its own fall-through (the one direct
    call the naive baseline does *not* log — would blind the admission
    depth inference)."""
    flat = classification.flat
    for idx, instr in enumerate(flat.instrs):
        if instr.kind is InstrKind.CALL and flat.target_index(instr) == idx + 1:
            return False
    return True


__all__ = [
    "BOUNDED_METHODS",
    "PathBounds",
    "RECORD_UNIT",
    "UNBOUNDED",
    "analyse_path_bounds",
]
