"""Natural loop detection and the paper's loop shape analysis."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.core.cfg import CFG
from repro.core.dominators import compute_dominators, dominates
from repro.isa.instructions import Instr, InstrKind
from repro.isa.operands import Imm, Reg


@dataclass
class Loop:
    """One natural loop: header block, body blocks, and its latches."""

    header: int
    body: Set[int] = field(default_factory=set)
    latches: List[int] = field(default_factory=list)

    def contains_block(self, bid: int) -> bool:
        return bid in self.body


def find_natural_loops(cfg: CFG, entry: int) -> List[Loop]:
    """Back-edge based natural loops of the function rooted at ``entry``."""
    idom = compute_dominators(cfg, entry)
    universe = set(idom)
    by_header: Dict[int, Loop] = {}
    for block in cfg.blocks:
        if block.bid not in universe:
            continue
        for succ in block.succs:
            if succ in universe and dominates(idom, succ, block.bid):
                loop = by_header.setdefault(succ, Loop(header=succ))
                loop.latches.append(block.bid)
                _collect_body(cfg, loop, block.bid)
    for loop in by_header.values():
        loop.body.add(loop.header)
    return sorted(by_header.values(), key=lambda l: l.header)


def _collect_body(cfg: CFG, loop: Loop, latch: int) -> None:
    """Standard natural-loop body collection: walk predecessors from the
    latch until the header."""
    if latch == loop.header:
        loop.body.add(latch)
        return
    stack = [latch]
    loop.body.add(latch)
    while stack:
        node = stack.pop()
        for pred in cfg.blocks[node].preds:
            if pred not in loop.body and pred != loop.header:
                loop.body.add(pred)
                stack.append(pred)
            loop.body.add(loop.header)


@dataclass(frozen=True)
class SimpleLoopShape:
    """A loop matching the paper's 'simple loop' criteria (section IV-D).

    The latch compares a register-only iterator against a fixed constant
    and the body contains only deterministic transfers, so a single
    logged loop condition lets the Verifier recover every iteration.
    """

    latch_index: int  # instruction index of the latch conditional branch
    counter_reg: int
    bound: int  # the fixed comparison constant
    step: int  # signed per-iteration counter increment
    cond: str  # latch branch condition code
    init_const: Optional[int]  # statically known initial value, if any


def analyse_simple_loop(cfg: CFG, loop: Loop,
                        ignore_cond_indices: Optional[Set[int]] = None
                        ) -> Optional[SimpleLoopShape]:
    """Check a loop against the simple-loop criteria; None if it fails.

    Criteria (paper section IV-D): the loop comparison is made against a
    fixed constant, the iterator uses register-only arithmetic, and all
    internal branches are deterministic. We additionally require a single
    conditional latch — the common down-counting / up-counting MCU loop.

    ``ignore_cond_indices`` lists conditional-branch indices already
    proven deterministic (fixed inner loops), so nesting a fixed loop
    does not disqualify an outer simple loop.
    """
    flat = cfg.flat
    if len(loop.latches) != 1:
        return None
    latch_block = cfg.blocks[loop.latches[0]]
    latch_idx = latch_block.terminator_index
    latch = flat.instrs[latch_idx]
    if latch.kind is InstrKind.COMPARE_BRANCH:
        reg = latch.operands[0]
        counter, bound = reg.num, 0
        cond = "eq" if latch.mnemonic == "cbz" else "ne"
    elif latch.kind is InstrKind.BRANCH and latch.cond is not None:
        flag_setter = _preceding_flag_setter(flat, latch_block.start, latch_idx)
        if flag_setter is None:
            return None
        counter, bound, idiom = flag_setter
        cond = latch.cond
        if idiom == "self" and cond not in ("eq", "ne", "mi", "pl"):
            # flags of 'subs rI, rI, #k' only equal 'cmp rI_new, #0'
            # for the N/Z-derived conditions
            return None
    else:
        return None

    step = _counter_step(cfg, loop, counter)
    if step is None or step == 0:
        return None
    if not _body_is_deterministic(cfg, loop, latch_idx,
                                  ignore_cond_indices or set()):
        return None
    init = _initial_value(cfg, loop, counter)
    return SimpleLoopShape(latch_idx, counter, bound, step, cond, init)


def _preceding_flag_setter(flat, start: int, latch_idx: int):
    """Find what sets the latch's flags inside the latch block.

    Returns ``(counter_reg, bound, idiom)`` for the two simple idioms:
    ``cmp rI, #bound`` (idiom ``"cmp"``) and the self-flag-setting
    counter update ``add/sub rI, rI, #imm`` (idiom ``"self"``, an
    implicit compare against zero).
    """
    for idx in range(latch_idx - 1, start - 1, -1):
        instr = flat.instrs[idx]
        if instr.mnemonic == "cmp":
            reg_op, imm_op = instr.operands
            if isinstance(reg_op, Reg) and isinstance(imm_op, Imm):
                return reg_op.num, imm_op.value, "cmp"
            return None
        if instr.mnemonic in ("add", "sub"):
            dest, lhs, rhs = instr.operands
            if (isinstance(dest, Reg) and isinstance(lhs, Reg)
                    and dest.num == lhs.num and isinstance(rhs, Imm)):
                # flags come from the update itself: comparison against 0
                return dest.num, 0, "self"
            return None
        if instr.kind in (InstrKind.ALU, InstrKind.COMPARE,
                          InstrKind.MOVE):
            return None  # flags clobbered by something we don't model
    return None


def _counter_step(cfg: CFG, loop: Loop, counter: int) -> Optional[int]:
    """Net constant step applied to the counter per iteration.

    Requires exactly one ``add/sub counter, counter, #imm`` in the loop
    and no other write to the counter register (register-only iterator).
    """
    flat = cfg.flat
    step: Optional[int] = None
    for bid in loop.body:
        block = cfg.blocks[bid]
        for idx in range(block.start, block.end):
            instr = flat.instrs[idx]
            if not _writes_reg(instr, counter):
                continue
            if instr.mnemonic in ("add", "sub"):
                dest, lhs, rhs = instr.operands
                if (isinstance(lhs, Reg) and lhs.num == counter
                        and isinstance(rhs, Imm)):
                    delta = rhs.value if instr.mnemonic == "add" else -rhs.value
                    if step is not None:
                        return None  # multiple updates: not simple
                    step = delta
                    continue
            return None  # non-arithmetic or non-register-only update
    return step


def _writes_reg(instr: Instr, reg: int) -> bool:
    kind = instr.kind
    if kind in (InstrKind.MOVE, InstrKind.ALU, InstrKind.LOAD):
        dest = instr.operands[0]
        return isinstance(dest, Reg) and dest.num == reg
    if kind is InstrKind.POP:
        (reglist,) = instr.operands
        return reg in reglist
    if kind in (InstrKind.CALL, InstrKind.INDIRECT_CALL):
        return reg == 14  # clobbers LR
    return False


def _body_is_deterministic(cfg: CFG, loop: Loop, latch_idx: int,
                           ignore_cond_indices: Set[int]) -> bool:
    """All transfers inside the loop (other than the latch itself) must
    be deterministic: no calls, no indirect transfers, no conditionals
    other than latches of inner loops already proven fixed."""
    flat = cfg.flat
    for bid in loop.body:
        block = cfg.blocks[bid]
        for idx in range(block.start, block.end):
            if idx == latch_idx or idx in ignore_cond_indices:
                continue
            instr = flat.instrs[idx]
            kind = instr.kind
            if kind in (InstrKind.CALL, InstrKind.INDIRECT_CALL,
                        InstrKind.INDIRECT_BRANCH):
                return False
            if kind is InstrKind.COMPARE_BRANCH:
                return False
            if kind is InstrKind.BRANCH and instr.cond is not None:
                return False
            if instr.writes_pc() and kind is not InstrKind.BRANCH:
                return False
            if instr.mnemonic == "svc":
                return False
    return True


def _initial_value(cfg: CFG, loop: Loop, counter: int) -> Optional[int]:
    """Statically-known initial counter value, if the unique lexical
    predecessor of the header ends by setting ``counter`` to a constant.

    This is deliberately conservative: failure just demotes the loop
    from 'fixed/deterministic' to 'loop-opt' (logged condition).
    """
    flat = cfg.flat
    header = cfg.blocks[loop.header]
    preheaders = [p for p in header.preds if p not in loop.body]
    if len(preheaders) != 1:
        return None
    pre = cfg.blocks[preheaders[0]]
    for idx in range(pre.end - 1, pre.start - 1, -1):
        instr = flat.instrs[idx]
        if _writes_reg(instr, counter):
            if instr.mnemonic in ("mov", "mov32"):
                value = instr.operands[1]
                if isinstance(value, Imm):
                    return value.value
            return None
    return None


def trip_count(shape: SimpleLoopShape, init: int) -> int:
    """Number of body executions of a simple loop entered with ``init``.

    The latch branch is taken ``trip_count - 1`` times and falls through
    on the final evaluation. The counter is simulated step by step,
    which is cheap and exactly matches hardware flag semantics.
    """
    from repro.isa import alu
    from repro.isa.conditions import cond_passed
    from repro.isa.registers import Flags

    count = 0
    value = init & alu.MASK32
    guard = 10_000_000
    while True:
        value = alu.u32(value + shape.step)
        _, n, z, c, v = alu.sub_with_flags(value, shape.bound)
        flags = Flags(n, z, c, v)
        if not cond_passed(shape.cond, flags):
            return count + 1  # final iteration executed, branch not taken
        count += 1
        if count > guard:
            raise ValueError("non-terminating simple loop")
