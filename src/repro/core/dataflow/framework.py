"""Generic worklist fixpoint solver.

The solver is graph-shaped, not CFG-shaped: it takes an adjacency map
``node -> successors`` plus a monotone transfer function and computes
the least fixpoint of ``in(n) = join over preds p of transfer(p,
in(p))``, seeded at the given roots. Both the value-set propagation and
the lint analyses instantiate it (forward over block successors,
backward over reversed edges).

Unreached nodes carry no fact (they are absent from the solution) —
that is the implicit bottom, and it keeps join an honest binary
operation over real facts.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Generic,
    Hashable,
    Iterable,
    List,
    Mapping,
    Optional,
    TypeVar,
)

N = TypeVar("N", bound=Hashable)
F = TypeVar("F")


class FixpointDiverged(RuntimeError):
    """The iteration bound tripped: the transfer is not monotone (or the
    lattice has unbounded height) — a framework-usage bug, not an input
    property."""


@dataclass
class Solution(Generic[N, F]):
    """Facts at node entry for every node reached from the roots."""

    in_facts: Dict[N, F] = field(default_factory=dict)
    iterations: int = 0

    def fact(self, node: N) -> Optional[F]:
        return self.in_facts.get(node)


def solve(graph: Mapping[N, Iterable[N]],
          roots: Mapping[N, F],
          transfer: Callable[[N, F], F],
          join: Callable[[F, F], F],
          *,
          eq: Optional[Callable[[F, F], bool]] = None,
          max_passes: int = 256) -> Solution[N, F]:
    """Run the worklist iteration to a fixpoint.

    ``roots`` maps each entry node to its boundary fact. ``transfer``
    produces the fact at a node's *exit* from the fact at its entry;
    ``join`` merges facts flowing into a shared node. ``max_passes``
    bounds how many times any single node may be re-processed before
    the solver declares divergence.
    """
    same = eq or (lambda a, b: bool(a == b))
    sol: Solution[N, F] = Solution()
    sol.in_facts.update(roots)
    visits: Dict[N, int] = {}
    work = deque(roots)
    queued = set(roots)
    while work:
        node = work.popleft()
        queued.discard(node)
        visits[node] = visits.get(node, 0) + 1
        if visits[node] > max_passes:
            raise FixpointDiverged(
                f"node {node!r} re-processed more than {max_passes} times"
            )
        sol.iterations += 1
        out = transfer(node, sol.in_facts[node])
        for succ in graph.get(node, ()):
            if succ not in sol.in_facts:
                sol.in_facts[succ] = out
            else:
                merged = join(sol.in_facts[succ], out)
                if same(merged, sol.in_facts[succ]):
                    continue
                sol.in_facts[succ] = merged
            if succ not in queued:
                queued.add(succ)
                work.append(succ)
    return sol


def reverse_graph(graph: Mapping[N, Iterable[N]]) -> Dict[N, List[N]]:
    """Edge-reversed adjacency (for backward analyses)."""
    out: Dict[N, List[N]] = {n: [] for n in graph}
    for node, succs in graph.items():
        for succ in succs:
            out.setdefault(succ, []).append(node)
    return out
