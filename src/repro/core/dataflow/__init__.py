"""Worklist dataflow engine: lattice, solver, and concrete analyses.

The package deepens the offline phase from purely syntactic
classification to real static analysis (ISSUE 5 / paper section IV-C):
value-set propagation licenses branch devirtualization, LR validity
refines leaf-return detection, and reaching-defs/liveness feed the
``repro lint`` hygiene checks.
"""

from repro.core.dataflow.analyses import (
    ConstMemory,
    DataflowFacts,
    GENERAL_REGS,
    analyse_liveness,
    analyse_lr_validity,
    analyse_module,
    analyse_reaching_defs,
    analyse_value_sets,
    def_use,
)
from repro.core.dataflow.framework import (
    FixpointDiverged,
    Solution,
    reverse_graph,
    solve,
)
from repro.core.dataflow.lattice import (
    Addr,
    BOTTOM,
    Const,
    MAX_WIDTH,
    RegState,
    TOP,
    Value,
    ValueSet,
    lift_binary,
    lift_unary,
    state_clobber,
    state_get,
    state_join,
    state_set,
    vs,
    vs_addr,
    vs_const,
)

__all__ = [
    "Addr", "BOTTOM", "Const", "ConstMemory", "DataflowFacts",
    "FixpointDiverged", "GENERAL_REGS", "MAX_WIDTH", "RegState",
    "Solution", "TOP", "Value", "ValueSet",
    "analyse_liveness", "analyse_lr_validity", "analyse_module",
    "analyse_reaching_defs", "analyse_value_sets", "def_use",
    "lift_binary", "lift_unary", "reverse_graph", "solve",
    "state_clobber", "state_get", "state_join", "state_set",
    "vs", "vs_addr", "vs_const",
]
