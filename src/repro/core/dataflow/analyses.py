"""Concrete dataflow analyses over a :class:`FlatProgram`/CFG.

Four analyses share the worklist framework:

* **value-set propagation** — which constants/addresses each register
  may hold before every instruction (``adr``/``mov32`` address
  materialization, ``mov`` copies, exact ALU folding via
  :mod:`repro.isa.alu`, and literal-pool loads resolved through the
  read-only ``rodata`` image);
* **LR validity** — program points where LR still holds the function's
  entry value (i.e. the return address the shadow stack predicts), a
  path-sensitive refinement of the syntactic
  :meth:`FlatProgram.function_writes_lr` test;
* **reaching definitions** — which instruction (or function entry) last
  wrote each register, feeding the lint's use-before-def check;
* **register liveness** — backward may-liveness feeding the lint's
  dead-definition check.

Soundness boundary: facts describe *policy-conforming* executions —
ones whose indirect transfers land on address-taken labels or function
entries (exactly the set the Verifier enforces) and that do not write
the read-only ``rodata`` region (the memory map faults on such
writes). Every such entry point is an analysis root with a TOP
(unknown-everything) boundary state, so reachable code is never
analysed under an unsound assumption.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Set, Tuple, Union

from repro.asm.program import DataWord, Module
from repro.core.cfg import CFG
from repro.core.dataflow.framework import reverse_graph, solve
from repro.core.dataflow.lattice import (
    Addr,
    Const,
    RegState,
    TOP,
    Value,
    ValueSet,
    lift_binary,
    state_clobber,
    state_get,
    state_join,
    state_set,
    vs,
)
from repro.core.flat import FlatProgram
from repro.isa import alu
from repro.isa.instructions import Instr, InstrKind
from repro.isa.operands import Imm, Label, Mem, Reg
from repro.isa.registers import LR, PC

#: registers tracked by def/use analyses (SP and PC are structural)
GENERAL_REGS = frozenset(range(13))
_DEFUSE_REGS = GENERAL_REGS | {LR}

#: reaching-definitions pseudo-site: "held since function entry"
ENTRY_DEF = -1


# -- read-only memory image -------------------------------------------------

class ConstMemory:
    """Pre-link view of the read-only data image.

    Maps ``label + byte offset`` to the ``.word`` stored there, so the
    value analysis can resolve literal-pool and switch-table loads
    without linking. Only ``rodata`` participates: ``data`` is mutable
    and never constant-foldable.
    """

    def __init__(self, module: Module) -> None:
        self._label_pos: Dict[str, int] = {}
        self._word_at: Dict[int, Union[int, str]] = {}
        section = module.sections.get("rodata")
        offset = 0
        for item in (section.items if section is not None else ()):
            for label in item.labels:
                self._label_pos[label] = offset
            payload = item.payload
            if isinstance(payload, DataWord):
                value = payload.value
                self._word_at[offset] = (
                    value.name if isinstance(value, Label) else value
                )
            offset += payload.size

    def load_word(self, label: str, offset: int) -> Optional[Value]:
        """The abstract value of a 4-byte load at ``label + offset``,
        or None when the location is unknown/not a whole word."""
        base = self._label_pos.get(label)
        if base is None:
            return None
        stored = self._word_at.get(base + offset)
        if stored is None:
            return None
        if isinstance(stored, str):
            return Addr(stored)
        return Const(stored & alu.MASK32)


# -- value-set propagation --------------------------------------------------

_FOLDABLE_ALU = {
    "add": lambda a, b: alu.u32(a + b),
    "sub": lambda a, b: alu.u32(a - b),
    "rsb": lambda a, b: alu.u32(b - a),
    "mul": lambda a, b: alu.u32(a * b),
    "and": lambda a, b: a & b,
    "orr": lambda a, b: a | b,
    "eor": lambda a, b: a ^ b,
    "bic": lambda a, b: a & ~b & alu.MASK32,
    "udiv": alu.udiv,
    "sdiv": alu.sdiv,
    "lsl": lambda a, b: alu.lsl(a, b & 0xFF, False)[0],
    "lsr": lambda a, b: alu.lsr(a, b & 0xFF, False)[0],
    "asr": lambda a, b: alu.asr(a, b & 0xFF, False)[0],
}


def _fold_alu(mnemonic: str) -> Callable[[Value, Value], Optional[Value]]:
    """Concrete ``Value x Value -> Optional[Value]`` for one ALU op."""
    fold = _FOLDABLE_ALU.get(mnemonic)

    def op(a: Value, b: Value) -> Optional[Value]:
        if isinstance(a, Const) and isinstance(b, Const):
            if fold is None:
                return None
            return Const(fold(a.value, b.value))
        # pointer arithmetic: label +/- constant keeps the symbol
        if isinstance(a, Addr) and isinstance(b, Const):
            if mnemonic == "add":
                return Addr(a.label, a.offset + b.value)
            if mnemonic == "sub":
                return Addr(a.label, a.offset - b.value)
        if isinstance(a, Const) and isinstance(b, Addr) and mnemonic == "add":
            return Addr(b.label, b.offset + a.value)
        return None

    return op


class _ValueAnalysis:
    """Forward value-set propagation over basic blocks."""

    def __init__(self, flat: FlatProgram, cfg: CFG,
                 memory: ConstMemory) -> None:
        self.flat = flat
        self.cfg = cfg
        self.memory = memory
        self.equates = flat.module.equates

    def _operand_set(self, op: object, state: RegState) -> ValueSet:
        if isinstance(op, Imm):
            return vs(Const(op.value & alu.MASK32))
        if isinstance(op, Reg):
            if op.num == PC:
                return TOP  # pc-relative reads depend on layout
            return state_get(state, op.num)
        if isinstance(op, Label):
            if op.name in self.equates:
                return vs(Const(self.equates[op.name] & alu.MASK32))
            return vs(Addr(op.name))
        return TOP

    def _mem_address_set(self, mem: Mem, state: RegState) -> ValueSet:
        address = state_get(state, mem.base.num)
        if mem.offset:
            address = lift_binary(
                _fold_alu("add"), address, vs(Const(mem.offset & alu.MASK32)))
        if mem.index is not None:
            scaled = lift_binary(
                _fold_alu("lsl"),
                state_get(state, mem.index.num),
                vs(Const(mem.shift)),
            )
            address = lift_binary(_fold_alu("add"), address, scaled)
        return address

    def load_set(self, mem: Mem, state: RegState) -> ValueSet:
        """Abstract result of a 4-byte load through ``mem``."""
        address = self._mem_address_set(mem, state)
        if address.is_top:
            return TOP
        loaded = set()
        for value in address.values:
            if not isinstance(value, Addr):
                return TOP  # absolute address: not resolvable pre-link
            word = self.memory.load_word(value.label, value.offset)
            if word is None:
                return TOP
            loaded.add(word)
        return ValueSet(frozenset(loaded))

    def transfer_instr(self, instr: Instr, state: RegState) -> RegState:
        kind = instr.kind
        if kind is InstrKind.MOVE:
            dest, src = instr.operands
            value = self._operand_set(src, state)
            if instr.mnemonic == "mvn":
                def negate(v: Value) -> Optional[Value]:
                    if isinstance(v, Const):
                        return Const((~v.value) & alu.MASK32)
                    return None
                value = lift_binary(lambda a, _b: negate(a), value,
                                    vs(Const(0)))
            return state_set(state, dest.num, value)
        if kind is InstrKind.ALU:
            dest, lhs, rhs = instr.operands
            value = lift_binary(
                _fold_alu(instr.mnemonic),
                self._operand_set(lhs, state),
                self._operand_set(rhs, state),
            )
            return state_set(state, dest.num, value)
        if kind is InstrKind.LOAD:
            dest, mem = instr.operands
            if not isinstance(dest, Reg) or dest.num == PC:
                return state
            if instr.mnemonic != "ldr" or not isinstance(mem, Mem):
                return state_set(state, dest.num, TOP)
            return state_set(state, dest.num, self.load_set(mem, state))
        if kind is InstrKind.POP:
            (reglist,) = instr.operands
            return state_clobber(state, (r for r in reglist if r != PC))
        if kind in (InstrKind.CALL, InstrKind.INDIRECT_CALL):
            return {}  # callee may write anything (no ABI contract)
        if kind is InstrKind.SYSTEM and instr.mnemonic == "svc":
            return {}  # secure-world handler: assume full clobber
        return state

    def transfer_block(self, bid: int, state: RegState) -> RegState:
        block = self.cfg.blocks[bid]
        for idx in range(block.start, block.end):
            state = self.transfer_instr(self.flat.instrs[idx], state)
        return state


def _root_blocks(flat: FlatProgram, cfg: CFG) -> List[int]:
    roots: Set[int] = set()
    for start in flat.function_starts():
        bid = cfg.block_of_index.get(start)
        if bid is not None:
            roots.add(bid)
    if cfg.blocks:
        roots.add(cfg.block_of_index.get(0, 0))
    return sorted(roots)


def analyse_value_sets(flat: FlatProgram, cfg: CFG, memory: ConstMemory
                       ) -> Tuple[Dict[int, RegState], int]:
    """Per-instruction entry states for every reachable instruction.

    Returns ``(index -> RegState, solver iterations)``; indices absent
    from the map are unreachable from any analysis root.
    """
    analysis = _ValueAnalysis(flat, cfg, memory)
    graph = {b.bid: tuple(b.succs) for b in cfg.blocks}
    roots: Dict[int, RegState] = {bid: {} for bid in _root_blocks(flat, cfg)}
    solution = solve(graph, roots, analysis.transfer_block, state_join)
    per_index: Dict[int, RegState] = {}
    for bid, state in solution.in_facts.items():
        block = cfg.blocks[bid]
        for idx in range(block.start, block.end):
            per_index[idx] = state
            state = analysis.transfer_instr(flat.instrs[idx], state)
    return per_index, solution.iterations


# -- LR validity ------------------------------------------------------------

def _writes_lr(instr: Instr) -> bool:
    kind = instr.kind
    if kind in (InstrKind.CALL, InstrKind.INDIRECT_CALL):
        return True
    if kind in (InstrKind.MOVE, InstrKind.ALU, InstrKind.LOAD):
        dest = instr.operands[0]
        if isinstance(dest, Reg) and dest.num == LR:
            return True
    if kind is InstrKind.POP:
        (reglist,) = instr.operands
        return LR in reglist
    return False


def analyse_lr_validity(flat: FlatProgram, cfg: CFG) -> FrozenSet[int]:
    """Indices where LR still holds the containing function's entry
    value on *every* path from the entry (a must-analysis: join is
    logical AND, and edges from outside the function contribute False).
    """
    valid: Set[int] = set()
    starts = flat.function_starts()
    for start in starts:
        lo, hi = flat.function_extent(start)
        entry_bid = cfg.block_of_index.get(start)
        if entry_bid is None:
            continue
        member = {
            b.bid for b in cfg.blocks if lo <= b.start and b.end <= hi
        }

        def transfer(bid: int, fact: bool) -> bool:
            block = cfg.blocks[bid]
            for idx in range(block.start, block.end):
                if _writes_lr(flat.instrs[idx]):
                    fact = False
            return fact

        graph = {
            bid: tuple(s for s in cfg.blocks[bid].succs if s in member)
            for bid in member
        }
        # jump targets reachable from outside the extent cannot assume
        # an intact entry LR
        tainted = {
            bid for bid in member
            if any(p not in member for p in cfg.blocks[bid].preds)
            and bid != entry_bid
        }
        roots = {entry_bid: True}
        roots.update({bid: False for bid in tainted})
        solution = solve(graph, roots, transfer, lambda a, b: a and b)
        for bid, fact in solution.in_facts.items():
            if not fact:
                continue
            block = cfg.blocks[bid]
            state = True
            for idx in range(block.start, block.end):
                if state:
                    valid.add(idx)
                if _writes_lr(flat.instrs[idx]):
                    state = False
    return frozenset(valid)


# -- def/use, reaching definitions, liveness --------------------------------

def def_use(instr: Instr) -> Tuple[FrozenSet[int], FrozenSet[int]]:
    """``(defined, used)`` register sets for one instruction.

    Calls and ``svc`` use *all* registers (there is no ABI: callees and
    secure-world handlers read caller registers directly); calls also
    define all registers.
    """
    kind = instr.kind
    if kind in (InstrKind.CALL, InstrKind.INDIRECT_CALL):
        uses = set(_DEFUSE_REGS)
        if kind is InstrKind.INDIRECT_CALL:
            (target,) = instr.operands
            uses.add(target.num)
        return frozenset(_DEFUSE_REGS), frozenset(uses)
    if kind is InstrKind.SYSTEM:
        if instr.mnemonic == "svc":
            return frozenset(), frozenset(_DEFUSE_REGS)
        return frozenset(), frozenset()

    defs: Set[int] = set()
    uses: Set[int] = set()

    def use_op(op: object) -> None:
        if isinstance(op, Reg) and op.num in _DEFUSE_REGS:
            uses.add(op.num)
        elif isinstance(op, Mem):
            if op.base.num in _DEFUSE_REGS:
                uses.add(op.base.num)
            if op.index is not None and op.index.num in _DEFUSE_REGS:
                uses.add(op.index.num)

    if kind in (InstrKind.MOVE, InstrKind.ALU, InstrKind.LOAD):
        dest = instr.operands[0]
        if isinstance(dest, Reg) and dest.num in _DEFUSE_REGS:
            defs.add(dest.num)
        for op in instr.operands[1:]:
            use_op(op)
    elif kind in (InstrKind.COMPARE, InstrKind.STORE):
        for op in instr.operands:
            use_op(op)
    elif kind is InstrKind.PUSH:
        (reglist,) = instr.operands
        uses.update(r for r in reglist if r in _DEFUSE_REGS)
    elif kind is InstrKind.POP:
        (reglist,) = instr.operands
        defs.update(r for r in reglist if r in _DEFUSE_REGS)
    elif kind is InstrKind.COMPARE_BRANCH:
        use_op(instr.operands[0])
    elif kind is InstrKind.INDIRECT_BRANCH:
        use_op(instr.operands[0])
    return frozenset(defs), frozenset(uses)


#: reaching-defs fact: reg -> set of defining instruction indices
#: (missing key = {ENTRY_DEF}: untouched since the root)
ReachFact = Dict[int, FrozenSet[int]]

_ENTRY_SET = frozenset({ENTRY_DEF})


def _reach_join(a: ReachFact, b: ReachFact) -> ReachFact:
    out = dict(a)
    for reg, sites in b.items():
        out[reg] = out.get(reg, _ENTRY_SET) | sites
    for reg in a.keys() - b.keys():
        out[reg] = out[reg] | _ENTRY_SET
    return out


def analyse_reaching_defs(flat: FlatProgram, cfg: CFG
                          ) -> Dict[int, ReachFact]:
    """Reaching definitions at every reachable instruction entry."""
    graph = {b.bid: tuple(b.succs) for b in cfg.blocks}

    def transfer(bid: int, fact: ReachFact) -> ReachFact:
        fact = dict(fact)
        block = cfg.blocks[bid]
        for idx in range(block.start, block.end):
            defs, _uses = def_use(flat.instrs[idx])
            for reg in defs:
                fact[reg] = frozenset({idx})
        return fact

    roots: Dict[int, ReachFact] = {
        bid: {} for bid in _root_blocks(flat, cfg)
    }
    solution = solve(graph, roots, transfer, _reach_join)
    per_index: Dict[int, ReachFact] = {}
    for bid, fact in solution.in_facts.items():
        fact = dict(fact)
        block = cfg.blocks[bid]
        for idx in range(block.start, block.end):
            per_index[idx] = dict(fact)
            defs, _uses = def_use(flat.instrs[idx])
            for reg in defs:
                fact[reg] = frozenset({idx})
    return per_index


def analyse_liveness(flat: FlatProgram, cfg: CFG
                     ) -> Dict[int, FrozenSet[int]]:
    """May-liveness *after* each instruction (backward analysis).

    Block exits that leave the analysed graph — returns, computed
    jumps, ``bkpt``, call edges — treat every register as live: with no
    ABI the caller/inspector may read anything, so only a definition
    overwritten before any possible read counts as dead.
    """
    graph = {b.bid: tuple(b.succs) for b in cfg.blocks}
    backward = reverse_graph(graph)
    exit_bids = {
        cfg.block_of_index[idx] for idx in cfg.exit_indices
    }

    def transfer(bid: int, live: FrozenSet[int]) -> FrozenSet[int]:
        block = cfg.blocks[bid]
        out = set(live)
        for idx in range(block.end - 1, block.start - 1, -1):
            defs, uses = def_use(flat.instrs[idx])
            out -= defs
            out |= uses
        return frozenset(out)

    roots: Dict[int, FrozenSet[int]] = {
        bid: frozenset(_DEFUSE_REGS) for bid in exit_bids
    }
    for bid in backward:
        if not graph.get(bid):
            roots.setdefault(bid, frozenset(_DEFUSE_REGS))
    if not roots:  # fully cyclic text: seed everything conservatively
        roots = {bid: frozenset(_DEFUSE_REGS) for bid in backward}
    solution = solve(backward, roots, transfer, lambda a, b: a | b)

    live_after: Dict[int, FrozenSet[int]] = {}
    for bid in backward:
        live = solution.in_facts.get(bid)
        if live is None:
            continue
        block = cfg.blocks[bid]
        for idx in range(block.end - 1, block.start - 1, -1):
            live_after[idx] = live
            defs, uses = def_use(flat.instrs[idx])
            live = frozenset((live - defs) | uses)
    return live_after


# -- the aggregate ----------------------------------------------------------

@dataclass
class DataflowFacts:
    """Everything the classifier/validator/lint consumers ask for."""

    flat: FlatProgram
    cfg: CFG
    memory: ConstMemory
    value_in: Dict[int, RegState] = field(default_factory=dict)
    lr_valid: FrozenSet[int] = frozenset()
    iterations: int = 0

    def state_at(self, index: int) -> Optional[RegState]:
        """Abstract register file before ``index`` (None: unreachable)."""
        return self.value_in.get(index)

    def target_set(self, index: int) -> ValueSet:
        """Possible destinations of the indirect transfer at ``index``."""
        state = self.value_in.get(index)
        if state is None:
            return TOP
        instr = self.flat.instrs[index]
        kind = instr.kind
        if kind in (InstrKind.INDIRECT_CALL, InstrKind.INDIRECT_BRANCH):
            (target,) = instr.operands
            return state_get(state, target.num)
        if kind is InstrKind.LOAD and instr.writes_pc():
            _dest, mem = instr.operands
            if isinstance(mem, Mem):
                analysis = _ValueAnalysis(self.flat, self.cfg, self.memory)
                return analysis.load_set(mem, state)
        return TOP

    def devirt_target(self, index: int) -> Optional[str]:
        """The unique text label an indirect transfer must reach, if the
        value analysis pins it down — the devirtualization license."""
        label = self.target_set(index).singleton_label()
        if label is not None and label in self.flat.label_index:
            return label
        return None

    def lr_valid_at(self, index: int) -> bool:
        return index in self.lr_valid

    def constant_registers(self, index: int) -> Dict[int, ValueSet]:
        """Non-TOP registers before ``index`` (for reports/dot export),
        restricted to the general-purpose file."""
        state = self.value_in.get(index)
        if not state:
            return {}
        return {
            reg: value for reg, value in sorted(state.items())
            if reg in GENERAL_REGS or reg == LR
        }


def analyse_module(flat: FlatProgram, cfg: CFG) -> DataflowFacts:
    """Run the value-set and LR analyses over one flat program."""
    memory = ConstMemory(flat.module)
    value_in, iterations = analyse_value_sets(flat, cfg, memory)
    lr_valid = analyse_lr_validity(flat, cfg)
    return DataflowFacts(
        flat=flat,
        cfg=cfg,
        memory=memory,
        value_in=value_in,
        lr_valid=lr_valid,
        iterations=iterations,
    )
